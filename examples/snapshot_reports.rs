//! §6's closing conjecture in action: a long-running analytical report
//! reads a consistent snapshot of the accounts while transfer traffic
//! keeps committing underneath it — no blocking, no aborts, no torn
//! totals.
//!
//! ```text
//! cargo run --example snapshot_reports
//! ```

use mmdb::mvcc::VersionedStore;

fn main() {
    println!("§6: versioning for memory-resident concurrency control (REED83)\n");
    let mut bank = VersionedStore::new();

    // 100 accounts, $1 000 each.
    let seed = bank.begin_write();
    for acct in 0..100u64 {
        bank.write(&seed, acct, 1_000).unwrap();
    }
    bank.commit(seed).unwrap();

    // The auditor opens a snapshot...
    let audit = bank.begin_read();
    println!(
        "auditor opens a snapshot at commit horizon {}",
        audit.snapshot()
    );

    // ...while 1 000 transfers commit "concurrently".
    for i in 0..1_000u64 {
        let w = bank.begin_write();
        let from = i % 100;
        let to = (i * 13 + 7) % 100;
        if from != to {
            let f = bank.read_own(&w, from).unwrap();
            let t = bank.read_own(&w, to).unwrap();
            bank.write(&w, from, f - 25).unwrap();
            bank.write(&w, to, t + 25).unwrap();
        }
        bank.commit(w).unwrap();
    }
    println!("1 000 transfers committed while the audit was open");

    // The audit still sees the pristine opening state — every account at
    // exactly $1 000 — even though the live state has moved on.
    let audited: i64 = (0..100).map(|a| bank.read(&audit, a).unwrap()).sum();
    let every_account_untouched = (0..100).all(|a| bank.read(&audit, a) == Some(1_000));
    let live: i64 = (0..100).map(|a| bank.read_latest(a).unwrap()).sum();
    println!(
        "audit total: ${audited} (every account still $1 000 in the snapshot: {every_account_untouched})"
    );
    println!("live total:  ${live} (money conserved across all transfers)");
    println!(
        "write-write conflicts during the run: {} (readers never conflict)",
        bank.conflicts()
    );

    // Close the audit; garbage-collect history nobody can see anymore.
    let before = bank.version_count();
    bank.end_read(audit);
    let dropped = bank.gc();
    println!(
        "\nversions held while the audit pinned its snapshot: {before}; dropped by GC after it closed: {dropped}; remaining: {}",
        bank.version_count()
    );
    assert_eq!(audited, 100_000);
    assert_eq!(live, 100_000);
}
