//! The four §3 join algorithms, executed head-to-head on the same inputs
//! at three memory grants, with their Table 2 simulated costs and a
//! cross-check that every algorithm produces the identical result.
//!
//! ```text
//! cargo run --release --example join_showdown
//! ```

use mmdb_exec::join::{run_join, Algo, JoinSpec};
use mmdb_exec::{workload, ExecContext};
use mmdb_types::{RelationShape, SystemParams};

fn main() {
    let params = SystemParams::table2();
    let shape = RelationShape::table2();
    // 1/20th of the paper's scale: |R| = |S| = 500 pages, 20 000 tuples.
    let (r, s) = workload::table2_relations(shape, 0.05, 99).unwrap();
    let spec = JoinSpec::new(0, 0);
    println!(
        "joining R ({} tuples, {} pages) with S ({} tuples, {} pages)\n",
        r.tuple_count(),
        r.page_count(),
        s.tuple_count(),
        s.page_count()
    );

    let r_f = (r.page_count() as f64 * params.fudge) as usize;
    for (label, mem) in [
        ("starved   (5% of |R|F)", r_f / 20),
        ("moderate (40% of |R|F)", r_f * 2 / 5),
        ("ample   (100% of |R|F)", r_f),
    ] {
        println!("memory: {label} = {mem} pages");
        let mut reference: Option<usize> = None;
        for algo in Algo::PAPER {
            let ctx = ExecContext::new(mem.max(2), params.fudge);
            let out = run_join(algo, &r, &s, spec, &ctx).unwrap();
            let snap = ctx.meter.snapshot();
            match reference {
                None => reference = Some(out.tuple_count()),
                Some(n) => assert_eq!(n, out.tuple_count(), "algorithms must agree"),
            }
            println!(
                "  {:<12} {:>8.1} simulated s   ({:>7} seq I/O, {:>7} rand I/O, {:>9} comps, {} rows)",
                algo.name(),
                snap.seconds(&params),
                snap.seq_ios,
                snap.rand_ios,
                snap.comparisons,
                out.tuple_count(),
            );
        }
        println!();
    }
    println!(
        "the paper's Figure 1 in miniature: simple hash collapses when memory\n\
         is starved, GRACE ignores extra memory, hybrid hash adapts and wins."
    );
}
