//! The §5.2 restart story on the wall-clock engine: commit under group
//! commit, crash, recover, keep committing, restart again — every
//! durably-committed transaction survives every restart, because
//! recovery compacts into a fresh log generation and only deletes the
//! old files once the snapshot is durably complete.
//!
//! ```text
//! cargo run --example session_restart
//! ```

use mmdb_session::{CommitPolicy, Engine, EngineOptions};
use std::time::Duration;

fn options(dir: &std::path::Path) -> EngineOptions {
    EngineOptions::new(CommitPolicy::Group, dir)
        .with_page_write_latency(Duration::from_micros(200))
        .with_flush_interval(Duration::from_micros(500))
}

fn main() {
    let dir = std::env::temp_dir().join(format!("mmdb-session-restart-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    // Generation 0: commit 10 accounts durably, then crash.
    let engine = Engine::start(options(&dir)).unwrap();
    let session = engine.session();
    for account in 0..10u64 {
        let txn = session.begin().unwrap();
        session.write(&txn, account, 100 * account as i64).unwrap();
        session.commit_durable(txn).unwrap();
    }
    // One more commit that is pre-committed but never flushed: the
    // crash must take it, and only it.
    let txn = session.begin().unwrap();
    session.write(&txn, 99, 999).unwrap();
    let _ticket = session.commit(txn).unwrap();
    engine.crash().unwrap();
    println!("crashed with 10 durable commits and 1 in the queue");

    // Recover, verify, commit more on top of the compacted snapshot.
    let (engine, info) = Engine::recover(options(&dir)).unwrap();
    println!(
        "recover #1: {} committed, {} losers, {} records scanned",
        info.committed.len(),
        info.losers.len(),
        info.records_scanned
    );
    assert_eq!(info.committed.len(), 10);
    assert_eq!(engine.read(99).unwrap(), None, "unflushed commit gone");
    let session = engine.session();
    let txn = session.begin().unwrap();
    session.write(&txn, 10, 1_000).unwrap();
    session.commit_durable(txn).unwrap();
    engine.shutdown().unwrap();

    // Restart again: the snapshot generation and the post-recovery
    // commit must both still be there.
    let (engine, info) = Engine::recover(options(&dir)).unwrap();
    println!(
        "recover #2: {} committed, snapshot + post-recovery commit intact",
        info.committed.len()
    );
    for account in 0..10u64 {
        assert_eq!(engine.read(account).unwrap(), Some(100 * account as i64));
    }
    assert_eq!(engine.read(10).unwrap(), Some(1_000));
    engine.shutdown().unwrap();
    std::fs::remove_dir_all(&dir).ok();
    println!("all commits survived both restarts");
}
