//! The paper's §2 motivating queries, run against real AVL and B+-tree
//! indexes with the cost objective `Z·|page reads| + |comparisons|`
//! measured rather than modelled.
//!
//! ```text
//! cargo run --release --example employee_queries
//! ```

use mmdb_index::{AccessTrace, AvlTree, BPlusTree, PagedResidency};
use mmdb_types::WorkloadRng;

fn main() {
    let n: i64 = 100_000;
    println!("building AVL and B+-tree indexes over {n} employees...");
    let mut rng = WorkloadRng::seeded(2024);
    let mut ids: Vec<i64> = (0..n).collect();
    rng.shuffle(&mut ids);

    let mut avl: AvlTree<i64, i64> = AvlTree::with_page_fanout(37);
    for &id in &ids {
        avl.insert(id, id);
    }
    let bt: BPlusTree<i64, i64> = BPlusTree::bulk_load(235, 28, 0.69, (0..n).map(|k| (k, k)));

    println!(
        "AVL: {} logical pages, height {}; B+-tree: {} pages, height {}, occupancy {:.0}%",
        avl.pages(),
        avl.height(),
        bt.pages(),
        bt.height(),
        bt.occupancy() * 100.0
    );

    // Case 1 — random key access:
    //   retrieve (emp.salary) where emp.name = "Jones"
    println!("\n-- case 1: random key lookups (500 probes) --");
    let (z, y) = (20.0, 0.9);
    for h in [0.5, 0.9, 1.0] {
        let m = ((h * avl.pages() as f64) as usize).max(1);
        let do_probe = |probe: &mut dyn FnMut(i64, &mut AccessTrace), total_pages: u64| {
            let mut res = PagedResidency::new(m, 1);
            res.warm_with(total_pages);
            let mut rng = WorkloadRng::seeded(7);
            for _ in 0..1_000 {
                let mut tr = AccessTrace::default();
                probe(rng.int_in(0, n), &mut tr);
                res.replay(&tr.pages_visited);
            }
            res.reset_counters();
            let mut comps = 0u64;
            for _ in 0..500 {
                let mut tr = AccessTrace::default();
                probe(rng.int_in(0, n), &mut tr);
                res.replay(&tr.pages_visited);
                comps += tr.comparisons;
            }
            (res.faults() as f64 / 500.0, comps as f64 / 500.0)
        };
        let (af, ac) = do_probe(
            &mut |k, tr| {
                avl.get_traced(&k, tr);
            },
            avl.pages(),
        );
        let (bf, bc) = do_probe(
            &mut |k, tr| {
                bt.get_traced(&k, tr);
            },
            bt.pages(),
        );
        println!(
            "  |M| = {:>3.0}% of AVL: AVL cost {:>6.1} ({af:.2} faults, {ac:.1} comps) | B+ cost {:>6.1} ({bf:.2} faults, {bc:.1} comps)",
            h * 100.0,
            z * af + y * ac,
            z * bf + bc,
        );
    }

    // Case 2 — sequential access:
    //   retrieve (emp.salary, emp.name) where emp.name = "J*"
    println!("\n-- case 2: position then read 1000 records sequentially --");
    for h in [0.5, 0.9, 1.0] {
        let m = ((h * avl.pages() as f64) as usize).max(1);
        let scan_cost = |scan: &mut dyn FnMut(i64, &mut AccessTrace), total: u64, yv: f64| {
            let mut res = PagedResidency::new(m, 3);
            res.warm_with(total);
            let mut rng = WorkloadRng::seeded(8);
            let mut faults = 0u64;
            let mut comps = 0u64;
            for _ in 0..20 {
                let mut tr = AccessTrace::default();
                scan(rng.int_in(0, n - 1_000), &mut tr);
                faults += res.replay(&tr.pages_visited);
                comps += tr.comparisons;
            }
            (z * faults as f64 + yv * comps as f64) / 20.0
        };
        let ac = scan_cost(
            &mut |from, tr| {
                avl.scan_from_traced(&from, 1_000, tr);
            },
            avl.pages(),
            y,
        );
        let bc = scan_cost(
            &mut |from, tr| {
                bt.scan_from_traced(&from, 1_000, tr);
            },
            bt.pages(),
            1.0,
        );
        println!(
            "  |M| = {:>3.0}% of AVL: AVL scan cost {ac:>8.0} | B+ scan cost {bc:>8.0}  -> {}",
            h * 100.0,
            if ac < bc { "AVL" } else { "B+-tree" }
        );
    }
    println!(
        "\n§2's verdict holds: \"B+-Trees will continue to remain the dominant\n\
         access method\" — the AVL tree only competes when essentially all of\n\
         it is memory-resident."
    );
}
