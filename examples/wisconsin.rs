//! The Wisconsin benchmark (DeWitt 1983 — from the same research group as
//! the paper) running on this engine: the classic selection, join, and
//! aggregate queries, each reporting its simulated 1984 cost.
//!
//! ```text
//! cargo run --release --example wisconsin
//! ```

use mmdb::{Database, IndexKind};
use mmdb_exec::aggregate::AggFunc;
use mmdb_exec::workload;
use mmdb_planner::{JoinEdge, QuerySpec, TableRef};
use mmdb_types::{Predicate, Value};

fn main() {
    let n = 10_000;
    println!("Wisconsin benchmark on mmdb: two {n}-tuple relations\n");
    let mut db = Database::new();
    for name in ["onektup", "tenktup"] {
        db.create_table(name, workload::wisconsin_schema()).unwrap();
    }
    db.insert_many(
        "onektup",
        workload::wisconsin(n / 10, 1).unwrap().into_tuples(),
    )
    .unwrap();
    db.insert_many("tenktup", workload::wisconsin(n, 2).unwrap().into_tuples())
        .unwrap();
    db.create_index("tenktup", 0, IndexKind::BPlusTree).unwrap(); // unique1
    db.create_index("tenktup", 1, IndexKind::Hash).unwrap(); // unique2

    // Query 1 (1 % selection via clustered-ish index range).
    let q1 = QuerySpec::single(TableRef::filtered(
        "tenktup",
        Predicate::Between {
            column: 0,
            lo: Value::Int(0),
            hi: Value::Int((n as i64) / 100 - 1),
        },
    ));
    let o1 = db.query(&q1).unwrap();
    println!(
        "Q1  1% selection:        {:>6} rows  {:>10.6} sim s   plan: {}",
        o1.rows.tuple_count(),
        o1.simulated_seconds,
        o1.plan.plan.to_string().lines().next().unwrap_or(""),
    );

    // Query 3 (10 % selection, no index on `ten`).
    let q3 = QuerySpec::single(TableRef::filtered("tenktup", Predicate::eq(3, 4i64)));
    let o3 = db.query(&q3).unwrap();
    println!(
        "Q3  10% scan selection:  {:>6} rows  {:>10.6} sim s",
        o3.rows.tuple_count(),
        o3.simulated_seconds
    );

    // Query 9-ish (join onektup ⋈ tenktup on unique1).
    let qj = QuerySpec {
        tables: vec![TableRef::plain("onektup"), TableRef::plain("tenktup")],
        joins: vec![JoinEdge {
            left_table: 0,
            left_column: 0,
            right_table: 1,
            right_column: 0,
        }],
    };
    let oj = db.query(&qj).unwrap();
    println!(
        "QJ  join on unique1:     {:>6} rows  {:>10.6} sim s   methods: {:?}",
        oj.rows.tuple_count(),
        oj.simulated_seconds,
        oj.plan
            .plan
            .methods()
            .iter()
            .map(|m| m.name())
            .collect::<Vec<_>>()
    );
    assert_eq!(oj.rows.tuple_count(), n / 10, "every onektup row matches");

    // Aggregate (MIN per hundred-group — 100 groups, one-pass hashing).
    let oa = db
        .aggregate("tenktup", 4, &[AggFunc::Count, AggFunc::Min(0)])
        .unwrap();
    println!("QA  min by `hundred`:    {:>6} rows", oa.tuple_count());
    assert_eq!(oa.tuple_count(), 100);

    // DISTINCT projection onto the string4 domain.
    let op = db.project_distinct("tenktup", &[5]).unwrap();
    println!("QP  distinct string4:    {:>6} rows", op.tuple_count());
    assert_eq!(op.tuple_count(), 4);

    println!(
        "\nall Wisconsin query shapes — selections at controlled selectivity,\n\
         equijoins on unique keys, grouped aggregates, duplicate-eliminating\n\
         projection — execute through the §4 planner with §3 hash operators."
    );
}
