//! §4 access planning demonstrated: the same three-relation query planned
//! under different selectivities and memory grants, showing the collapsed
//! plan space — selectivity ordering plus hybrid hash everywhere.
//!
//! ```text
//! cargo run --release --example access_planning
//! ```

use mmdb::{Database, EngineConfig};
use mmdb_planner::{JoinEdge, QuerySpec, TableRef};
use mmdb_types::{DataType, Predicate, Schema, Tuple, Value, WorkloadRng};

fn build(mem_pages: usize) -> Database {
    let mut db = Database::with_config(EngineConfig {
        mem_pages,
        ..EngineConfig::default()
    });
    db.create_table(
        "lineitem",
        Schema::of(&[
            ("order_id", DataType::Int),
            ("part_id", DataType::Int),
            ("qty", DataType::Int),
        ]),
    )
    .unwrap();
    db.create_table(
        "orders",
        Schema::of(&[("order_id", DataType::Int), ("status", DataType::Int)]),
    )
    .unwrap();
    db.create_table(
        "parts",
        Schema::of(&[("part_id", DataType::Int), ("color", DataType::Int)]),
    )
    .unwrap();
    let mut rng = WorkloadRng::seeded(5);
    for i in 0..30_000i64 {
        db.insert(
            "lineitem",
            Tuple::new(vec![
                Value::Int(rng.int_in(0, 5_000)),
                Value::Int(rng.int_in(0, 1_000)),
                Value::Int(rng.int_in(1, 50)),
            ]),
        )
        .unwrap();
        let _ = i;
    }
    for o in 0..5_000i64 {
        db.insert(
            "orders",
            Tuple::new(vec![Value::Int(o), Value::Int(rng.int_in(0, 5))]),
        )
        .unwrap();
    }
    for p in 0..1_000i64 {
        db.insert(
            "parts",
            Tuple::new(vec![Value::Int(p), Value::Int(rng.int_in(0, 25))]),
        )
        .unwrap();
    }
    db
}

fn query(order_pred: Predicate, part_pred: Predicate) -> QuerySpec {
    QuerySpec {
        tables: vec![
            TableRef::plain("lineitem"),
            TableRef::filtered("orders", order_pred),
            TableRef::filtered("parts", part_pred),
        ],
        joins: vec![
            JoinEdge {
                left_table: 0,
                left_column: 0,
                right_table: 1,
                right_column: 0,
            },
            JoinEdge {
                left_table: 0,
                left_column: 1,
                right_table: 2,
                right_column: 0,
            },
        ],
    }
}

fn main() {
    println!("§4 access planning under large memory\n");
    let db = build(12_000);
    for (label, spec) in [
        ("no filters", query(Predicate::True, Predicate::True)),
        (
            "status = 0 (1/5 of orders)",
            query(Predicate::eq(1, 0i64), Predicate::True),
        ),
        (
            "color = 7 (1/25 of parts)",
            query(Predicate::True, Predicate::eq(1, 7i64)),
        ),
    ] {
        let outcome = db.query(&spec).unwrap();
        println!("query: {label}");
        print!("{}", outcome.plan.plan);
        println!(
            "  -> {} rows, {:.4} simulated s, estimated {:.0} rows\n",
            outcome.rows.tuple_count(),
            outcome.simulated_seconds,
            outcome.plan.estimated_rows
        );
    }

    println!("same query, memory starved to 8 pages:");
    let tight = build(8);
    let outcome = tight
        .query(&query(Predicate::True, Predicate::True))
        .unwrap();
    print!("{}", outcome.plan.plan);
    println!(
        "  -> {} rows, {:.2} simulated s, {} spill I/Os",
        outcome.rows.tuple_count(),
        outcome.simulated_seconds,
        outcome.measured.total_ios()
    );
    println!(
        "\n§4's collapse: hashing's insensitivity to input order removes\n\
         \"interesting order\" bookkeeping — the planner only orders operators\n\
         by selectivity and prices the one dominant algorithm."
    );
}
