//! The §5 story end-to-end: Gray-style banking transactions against the
//! memory-resident transactional store, under every commit policy, with a
//! crash mid-stream and full recovery — money is conserved, uncommitted
//! work vanishes.
//!
//! ```text
//! cargo run --example banking_recovery
//! ```

use mmdb::{CommitMode, TransactionalStore};

fn run(mode: CommitMode, label: &str) {
    println!("-- {label} --");
    let mut bank = TransactionalStore::new(mode);

    // Open 50 accounts with $1 000 each.
    let seed = bank.begin();
    for acct in 0..50u64 {
        bank.write(&seed, acct, 1_000).unwrap();
    }
    bank.commit(seed).unwrap();
    bank.flush();

    // 500 committed transfers (the paper's "typical" 400-byte-log txns).
    for i in 0..500u64 {
        bank.transfer(i % 50, (i * 7 + 3) % 50, 10).unwrap();
    }
    bank.flush();
    let committed_pages = bank.log_pages_written();

    // Two transactions in flight when the lights go out: one aborted
    // cleanly, one simply unfinished.
    let doomed = bank.begin();
    bank.write(&doomed, 0, 1_000_000).unwrap();
    bank.abort(doomed).unwrap();
    let unfinished = bank.begin();
    bank.write(&unfinished, 1, -777).unwrap();

    println!(
        "  before crash: balance(0) = {:?}, balance(1) = {:?} (dirty!), {} log pages, t = {:.0} ms",
        bank.read(0),
        bank.read(1),
        committed_pages,
        bank.now() as f64 / 1000.0
    );

    // Power failure.
    let (recovered, report) = TransactionalStore::recover(bank.crash());
    let total: i64 = (0..50).map(|a| recovered.read(a).unwrap_or(0)).sum();
    println!(
        "  recovered: {} committed txns, {} losers rolled back, {} log records scanned",
        report.committed.len(),
        report.losers.len(),
        report.records_scanned
    );
    println!(
        "  balance(1) = {:?} (dirty write gone), total money = ${total} (conserved: {})\n",
        recovered.read(1),
        total == 50_000
    );
    assert_eq!(total, 50_000);
}

fn main() {
    println!("§5 of DeWitt et al. 1984 — recovery for memory-resident databases\n");
    run(CommitMode::Synchronous, "synchronous commit (≤100 tps)");
    run(CommitMode::GroupCommit, "group commit (≈1000 tps)");
    run(
        CommitMode::PartitionedLog { devices: 4 },
        "partitioned log, 4 devices (≈4000 tps)",
    );
    run(
        CommitMode::StableMemory {
            capacity_bytes: 256 * 1024,
        },
        "stable memory + §5.4 log compression",
    );
    println!("all four §5 commit policies recover correctly.");
}
