//! Quickstart: create a database, load a table, index it, and query it.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use mmdb::{Database, IndexKind};
use mmdb_planner::{JoinEdge, QuerySpec, TableRef};
use mmdb_types::{DataType, Predicate, Schema, Tuple, Value};

fn main() {
    // 1. A database with the paper's default configuration (Table 2
    //    operation prices, 12 000 pages of working memory).
    let mut db = Database::new();

    // 2. Create and load two tables.
    db.create_table(
        "emp",
        Schema::of(&[
            ("id", DataType::Int),
            ("name", DataType::Str),
            ("salary", DataType::Float),
            ("dept", DataType::Int),
        ]),
    )
    .unwrap();
    db.create_table(
        "dept",
        Schema::of(&[("id", DataType::Int), ("name", DataType::Str)]),
    )
    .unwrap();

    for (id, name, salary, dept) in [
        (1, "Jones", 52_000.0, 0),
        (2, "Smith", 48_000.0, 1),
        (3, "Johnson", 61_000.0, 0),
        (4, "Garcia", 55_000.0, 2),
        (5, "Jacobs", 43_000.0, 1),
    ] {
        db.insert(
            "emp",
            Tuple::new(vec![
                Value::Int(id),
                name.into(),
                Value::Float(salary),
                Value::Int(dept),
            ]),
        )
        .unwrap();
    }
    for (id, name) in [(0, "engineering"), (1, "sales"), (2, "support")] {
        db.insert("dept", Tuple::new(vec![Value::Int(id), name.into()]))
            .unwrap();
    }

    // 3. Index the employee names with a B+-tree (the paper's §2 verdict:
    //    the B+-tree remains the access method of choice).
    db.create_index("emp", 1, IndexKind::BPlusTree).unwrap();

    // 4. The paper's first motivating query:
    //    retrieve (emp.salary) where emp.name = "Jones"
    let jones = db.lookup_eq("emp", 1, &"Jones".into()).unwrap();
    println!("Jones earns {}", jones[0].get(2));

    // 5. A predicate scan — emp.name = "J*":
    let js = db
        .select(
            "emp",
            &Predicate::StrPrefix {
                column: 1,
                prefix: "J".into(),
            },
        )
        .unwrap();
    println!("\nEmployees whose names begin with J:");
    for t in js.tuples() {
        println!("  {} ({})", t.get(1), t.get(2));
    }

    // 6. The same prefix query through the §4 planner: with a B+-tree on
    //    the name column it becomes an ordered-index range scan
    //    (["J", "J\u{10FFFF}"]) instead of a full-table filter.
    let prefix_spec = QuerySpec::single(TableRef::filtered(
        "emp",
        Predicate::StrPrefix {
            column: 1,
            prefix: "J".into(),
        },
    ));
    let prefix_outcome = db.query(&prefix_spec).unwrap();
    println!("\nPlanned J* query:\n{}", prefix_outcome.plan.plan);
    println!("rows: {}", prefix_outcome.rows.tuple_count());

    // 7. A planned, cost-metered join.
    let spec = QuerySpec {
        tables: vec![TableRef::plain("emp"), TableRef::plain("dept")],
        joins: vec![JoinEdge {
            left_table: 0,
            left_column: 3,
            right_table: 1,
            right_column: 0,
        }],
    };
    let outcome = db.query(&spec).unwrap();
    println!("\nPlan chosen by the §4 optimizer:\n{}", outcome.plan.plan);
    println!("rows: {}", outcome.rows.tuple_count());
    println!(
        "simulated cost at 1984 prices: {:.6} s ({} comparisons, {} hashes, {} I/Os)",
        outcome.simulated_seconds,
        outcome.measured.comparisons,
        outcome.measured.hashes,
        outcome.measured.total_ios()
    );
}
