//! The SQL wire front end, end to end: start an engine, put a
//! `mmdb-server` in front of it, and drive it over TCP with the client
//! API — CREATE TABLE, INSERT, a filtered SELECT, a two-table
//! equi-join, an explicit transaction, and a look at the server's own
//! metrics before a graceful shutdown.
//!
//! ```text
//! cargo run --example sql_server                # demo transcript
//! cargo run --example sql_server -- --smoke 64 400
//! ```
//!
//! `--smoke CONNS TXNS` is the CI mode: CONNS concurrent connections
//! split TXNS single-statement transactions between them, then the
//! example verifies the committed row count over a fresh connection
//! and exits nonzero on any failure.

use mmdb_server::{Client, Server, ServerConfig};
use mmdb_session::{CommitPolicy, Engine, EngineOptions};
use std::time::Duration;

fn run_statement(client: &mut Client, sql: &str) {
    match client.execute(sql) {
        Ok(result) => {
            if result.rows.is_empty() {
                println!("sql> {sql}\n     ok ({} row(s) affected)", result.affected);
            } else {
                println!("sql> {sql}");
                println!("     {}", result.columns.join(" | "));
                for row in &result.rows {
                    let cells: Vec<String> = row.iter().map(|v| format!("{v:?}")).collect();
                    println!("     {}", cells.join(" | "));
                }
            }
        }
        Err(e) => println!("sql> {sql}\n     error: {e}"),
    }
}

/// The demo transcript: one connection walking the whole surface.
fn demo(addr: std::net::SocketAddr) {
    let mut client = Client::connect(addr).expect("connect");
    for sql in [
        "CREATE TABLE emp (id INT, name TEXT, dept INT)",
        "CREATE TABLE dept (id INT, title TEXT)",
        "INSERT INTO emp VALUES (1, 'ann', 10), (2, 'bob', 20), (3, 'cat', 10)",
        "INSERT INTO dept VALUES (10, 'eng'), (20, 'ops')",
        "SELECT name FROM emp WHERE dept = 10",
        "SELECT emp.name, dept.title FROM emp JOIN dept ON emp.dept = dept.id \
         WHERE dept.title = 'eng'",
        "BEGIN",
        "UPDATE emp SET dept = 20 WHERE name = 'cat'",
        "COMMIT",
        "DELETE FROM emp WHERE dept = 20",
        "SELECT id, name FROM emp",
        "SELEKT oops", // errors come back as responses, not hangups
    ] {
        run_statement(&mut client, sql);
    }
}

/// The CI smoke mode: `conns` concurrent clients splitting `txns`
/// autocommitted INSERTs, verified by a final COUNT-by-SELECT.
fn smoke(addr: std::net::SocketAddr, conns: usize, txns: usize) {
    let mut client = Client::connect(addr).expect("connect");
    client
        .execute("CREATE TABLE smoke (id INT, who INT)")
        .expect("create");
    let per_conn = txns.div_ceil(conns);
    let total = per_conn * conns;
    let workers: Vec<_> = (0..conns)
        .map(|who| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).expect("worker connect");
                for i in 0..per_conn {
                    c.execute(&format!(
                        "INSERT INTO smoke VALUES ({}, {who})",
                        who * per_conn + i
                    ))
                    .expect("insert");
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("worker thread");
    }
    let rows = client.query("SELECT id FROM smoke").expect("count query");
    assert_eq!(
        rows.len(),
        total,
        "expected {total} committed rows, found {}",
        rows.len()
    );
    println!("smoke ok: {conns} connections committed {total} transactions");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke_params = match args.first().map(String::as_str) {
        Some("--smoke") => {
            let conns: usize = args
                .get(1)
                .and_then(|s| s.parse().ok())
                .expect("--smoke CONNS TXNS");
            let txns: usize = args
                .get(2)
                .and_then(|s| s.parse().ok())
                .expect("--smoke CONNS TXNS");
            Some((conns, txns))
        }
        Some(other) => panic!("unknown argument {other:?} (want --smoke CONNS TXNS)"),
        None => None,
    };

    let dir = std::env::temp_dir().join(format!("mmdb-sql-server-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let engine = Engine::start(
        EngineOptions::new(CommitPolicy::Group, &dir)
            .with_page_write_latency(Duration::from_micros(200))
            .with_flush_interval(Duration::from_micros(500)),
    )
    .expect("engine start");
    let handle = Server::start(
        &engine,
        ServerConfig {
            max_connections: smoke_params.map_or(16, |(conns, _)| conns + 8),
            ..ServerConfig::default()
        },
    )
    .expect("server start");
    println!("listening on {}", handle.addr());

    match smoke_params {
        Some((conns, txns)) => smoke(handle.addr(), conns, txns),
        None => demo(handle.addr()),
    }

    // The server's own metrics ride the engine's registry.
    let stats = engine.stats();
    println!(
        "served {} request(s) over {} connection(s)",
        stats.counter("mmdb_server_requests_total").unwrap_or(0),
        stats.counter("mmdb_server_connections_total").unwrap_or(0),
    );

    handle.shutdown().expect("server shutdown");
    engine.shutdown().expect("engine shutdown");
    std::fs::remove_dir_all(&dir).ok();
    println!("clean shutdown");
}
