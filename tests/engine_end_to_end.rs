//! End-to-end engine scenarios spanning catalog, indexes, planner,
//! executor and the cost meter.

use mmdb::{Database, EngineConfig, IndexKind};
use mmdb_planner::{JoinEdge, QuerySpec, TableRef};
use mmdb_types::{CmpOp, DataType, Predicate, Schema, Tuple, Value, WorkloadRng};

fn load_company(db: &mut Database, employees: usize, depts: i64) {
    db.create_table(
        "emp",
        Schema::of(&[
            ("id", DataType::Int),
            ("name", DataType::Str),
            ("salary", DataType::Float),
            ("dept", DataType::Int),
        ]),
    )
    .unwrap();
    db.create_table(
        "dept",
        Schema::of(&[("id", DataType::Int), ("name", DataType::Str)]),
    )
    .unwrap();
    let mut rng = WorkloadRng::seeded(42);
    db.insert_many("emp", rng.employees(employees, depts))
        .unwrap();
    for d in 0..depts {
        db.insert(
            "dept",
            Tuple::new(vec![Value::Int(d), Value::Str(format!("d{d}"))]),
        )
        .unwrap();
    }
}

#[test]
fn full_lifecycle_load_index_query_update_delete() {
    let mut db = Database::new();
    load_company(&mut db, 2_000, 20);
    db.create_index("emp", 0, IndexKind::BPlusTree).unwrap();
    db.create_index("emp", 3, IndexKind::Hash).unwrap();

    // Point lookup.
    let one = db.lookup_eq("emp", 0, &Value::Int(999)).unwrap();
    assert_eq!(one.len(), 1);

    // Planned join.
    let spec = QuerySpec {
        tables: vec![TableRef::plain("emp"), TableRef::plain("dept")],
        joins: vec![JoinEdge {
            left_table: 0,
            left_column: 3,
            right_table: 1,
            right_column: 0,
        }],
    };
    let joined = db.query(&spec).unwrap();
    assert_eq!(joined.rows.tuple_count(), 2_000);

    // Update through the table API, verify via index.
    let changed = db
        .table_mut("emp")
        .unwrap()
        .update_where(&Predicate::eq(3, 7i64), 3, Value::Int(19))
        .unwrap();
    assert!(changed > 0);
    assert!(db.lookup_eq("emp", 3, &Value::Int(7)).unwrap().is_empty());

    // Delete and re-query.
    let removed =
        db.table_mut("emp")
            .unwrap()
            .delete_where(&Predicate::cmp(0, CmpOp::Ge, 1_000i64));
    assert_eq!(removed, 1_000);
    let rejoined = db.query(&spec).unwrap();
    assert_eq!(rejoined.rows.tuple_count(), 1_000);
}

#[test]
fn query_answers_are_memory_invariant() {
    // The §3/§4 machinery must never change *answers*, only costs.
    let specs = |db: &Database| {
        let spec = QuerySpec {
            tables: vec![
                TableRef::filtered("emp", Predicate::cmp(2, CmpOp::Gt, 50_000.0)),
                TableRef::plain("dept"),
            ],
            joins: vec![JoinEdge {
                left_table: 0,
                left_column: 3,
                right_table: 1,
                right_column: 0,
            }],
        };
        let mut rows = db.query(&spec).unwrap().rows.into_tuples();
        rows.sort();
        rows
    };
    let mut ample = Database::new();
    load_company(&mut ample, 3_000, 15);
    let mut tight = Database::with_config(EngineConfig {
        mem_pages: 6,
        ..EngineConfig::default()
    });
    load_company(&mut tight, 3_000, 15);
    assert_eq!(specs(&ample), specs(&tight));
}

#[test]
fn aggregate_joins_and_projection_compose() {
    let mut db = Database::new();
    load_company(&mut db, 5_000, 25);
    // Average salary by department (§3.9's example) ...
    let by_dept = db
        .aggregate(
            "emp",
            3,
            &[
                mmdb_exec::aggregate::AggFunc::Count,
                mmdb_exec::aggregate::AggFunc::Avg(2),
            ],
        )
        .unwrap();
    assert_eq!(by_dept.tuple_count(), 25);
    let total: i64 = by_dept
        .tuples()
        .iter()
        .map(|t| t.get(1).as_int().unwrap())
        .sum();
    assert_eq!(total, 5_000);
    // ... and DISTINCT projection agrees on the group count.
    let distinct = db.project_distinct("emp", &[3]).unwrap();
    assert_eq!(distinct.tuple_count(), 25);
}

#[test]
fn planned_range_query_uses_the_ordered_index() {
    use mmdb_planner::{AccessPath, PhysicalPlan};
    let mut db = Database::new();
    load_company(&mut db, 2_000, 10);
    db.create_index("emp", 0, IndexKind::BPlusTree).unwrap();
    let spec = QuerySpec::single(TableRef::filtered(
        "emp",
        Predicate::Between {
            column: 0,
            lo: Value::Int(100),
            hi: Value::Int(199),
        },
    ));
    let outcome = db.query(&spec).unwrap();
    assert!(
        matches!(
            outcome.plan.plan,
            PhysicalPlan::Access(AccessPath::IndexRange { .. })
        ),
        "expected a range plan:\n{}",
        outcome.plan.plan
    );
    assert_eq!(outcome.rows.tuple_count(), 100);
    // Far fewer comparisons than a 2000-tuple scan.
    assert!(
        outcome.measured.comparisons < 500,
        "range scan should not touch every tuple: {:?}",
        outcome.measured
    );
}

#[test]
fn simulated_seconds_track_memory_pressure() {
    let run = |mem_pages: usize| {
        let mut db = Database::with_config(EngineConfig {
            mem_pages,
            ..EngineConfig::default()
        });
        db.create_table(
            "r",
            Schema::of(&[("k", DataType::Int), ("v", DataType::Int)]),
        )
        .unwrap();
        db.create_table(
            "s",
            Schema::of(&[("k", DataType::Int), ("v", DataType::Int)]),
        )
        .unwrap();
        let mut rng = WorkloadRng::seeded(3);
        db.insert_many("r", rng.keyed_tuples(4_000, 1_000)).unwrap();
        db.insert_many("s", rng.keyed_tuples(4_000, 1_000)).unwrap();
        let spec = QuerySpec {
            tables: vec![TableRef::plain("r"), TableRef::plain("s")],
            joins: vec![JoinEdge {
                left_table: 0,
                left_column: 0,
                right_table: 1,
                right_column: 0,
            }],
        };
        db.query(&spec).unwrap().simulated_seconds
    };
    let tight = run(10);
    let ample = run(10_000);
    assert!(
        tight > ample * 3.0,
        "starved join should cost much more: {tight} vs {ample}"
    );
}
