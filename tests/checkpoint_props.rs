//! Property tests for the §5.3 online fuzzy checkpointer.
//!
//! Two claims get randomized coverage here:
//!
//! 1. **Dirty-shard exactness** — the sweeper's dirty-shard table means
//!    a sweep rewrites precisely the shards mutated since the previous
//!    sweep settled (writes *and* rollbacks mark a shard dirty), and an
//!    idle sweep rewrites nothing. The test mirrors the engine's
//!    documented Fibonacci shard hash to predict the mutated set.
//! 2. **Recovery equivalence** — recovering from the newest complete
//!    checkpoint plus the live generation's suffix yields exactly the
//!    image a full-log replay of the same live generation produces.
//!    The oracle is built by copying only the live (`wal-d*.log`)
//!    files into a fresh directory, where recovery has no checkpoint
//!    to lean on.

use mmdb_session::{CommitPolicy, Engine, EngineOptions};
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::path::Path;
use std::time::Duration;

/// Key domain for both workloads: small enough to hit every shard and
/// to make whole-image comparison cheap.
const KEYS: u64 = 48;

/// The engine's shard placement (`crates/session/src/shard.rs`,
/// `shard_of`): Fibonacci hashing on the key, modulo the shard count.
/// Mirrored here so the test can predict which shards a workload
/// mutates; `shard_of_is_stable_and_in_range` in the session crate
/// pins the original, so a silent divergence fails loudly there first.
fn expected_shard(key: u64, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    ((key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) % shards as u64) as usize
}

fn engine_options(dir: &Path, shards: usize) -> EngineOptions {
    EngineOptions::new(CommitPolicy::Group, dir)
        .with_page_write_latency(Duration::from_micros(200))
        .with_flush_interval(Duration::from_micros(500))
        .with_lock_wait_timeout(Duration::from_secs(2))
        .with_shards(shards)
}

/// Sweeps until a pass rewrites nothing, returning the union of shard
/// indices rewritten along the way. Commit finalization (which removes
/// undo entries) can lag `wait_durable` by a daemon scheduling beat, so
/// a single sweep may find a shard dirty-but-unsettled and have to
/// revisit it; the union across passes is still exactly the set of
/// shards dirtied since the last settled sweep.
fn sweep_until_settled(engine: &Engine) -> Result<BTreeSet<usize>, TestCaseError> {
    let mut rewritten = BTreeSet::new();
    for _ in 0..200 {
        let stats = engine
            .checkpoint_now()
            .map_err(|e| TestCaseError::fail(format!("sweep failed: {e}")))?;
        if stats.rewritten.is_empty() {
            return Ok(rewritten);
        }
        rewritten.extend(stats.rewritten.iter().copied());
        std::thread::sleep(Duration::from_millis(2));
    }
    Err(TestCaseError::fail(
        "sweeps never settled: some shard stayed dirty for 200 passes with no traffic",
    ))
}

proptest! {
    /// A sweep after a quiet spell rewrites exactly the shards touched
    /// by the transactions since the previous settled sweep — committed
    /// and aborted alike (rollback restores the pre-image but still
    /// counts as mutation), and nothing else. An extra idle sweep at
    /// each step (implied by `sweep_until_settled`'s exit condition)
    /// confirms the cached images are reused verbatim.
    #[test]
    fn sweep_rewrites_exactly_the_mutated_shards(
        batches in proptest::collection::vec(
            (proptest::collection::vec((0u64..KEYS, -1_000i64..1_000), 1..10), any::<bool>()),
            1..6,
        ),
        shards in 1usize..9,
    ) {
        let dir = std::env::temp_dir().join(
            format!("mmdb-ckpt-dirty-{}-{shards}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let engine = Engine::start(engine_options(&dir, shards)).unwrap();
        let s = engine.session();

        // First sweeps cache every shard's (empty) image; from here on
        // only genuine mutation may cause rewrites.
        sweep_until_settled(&engine)?;

        for (writes, commit) in &batches {
            let t = s.begin().unwrap();
            for &(key, value) in writes {
                s.write(&t, key, value).unwrap();
            }
            if *commit {
                let ticket = s.commit(t).unwrap();
                s.wait_durable(&ticket).unwrap();
            } else {
                s.abort(t).unwrap();
            }
            let expected: BTreeSet<usize> = writes
                .iter()
                .map(|&(key, _)| expected_shard(key, shards))
                .collect();
            let rewritten = sweep_until_settled(&engine)?;
            prop_assert_eq!(
                rewritten,
                expected,
                "sweep after a {} txn rewrote the wrong shard set",
                if *commit { "committed" } else { "aborted" },
            );
        }
        engine.shutdown().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Crash after a random mix of committed/aborted transactions and
    /// interleaved sweeps, then recover twice: once from the directory
    /// as the crash left it (checkpoint generations present), and once
    /// from an oracle copy holding only the live `wal-d*.log` files
    /// (full-log replay, nothing to lean on). The images must agree on
    /// every key, and the checkpointed recovery may replay at most the
    /// newest image plus a suffix of what the oracle saw.
    #[test]
    fn recovery_from_checkpoint_matches_full_log_replay(
        txns in proptest::collection::vec(
            (proptest::collection::vec((0u64..KEYS, -1_000i64..1_000), 1..8), any::<bool>()),
            1..10,
        ),
        sweep_mask in 0u16..u16::MAX,
        shards in 1usize..9,
    ) {
        let dir = std::env::temp_dir().join(
            format!("mmdb-ckpt-replay-{}-{shards}", std::process::id()));
        let oracle_dir = std::env::temp_dir().join(
            format!("mmdb-ckpt-replay-oracle-{}-{shards}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&oracle_dir).ok();

        let engine = Engine::start(engine_options(&dir, shards)).unwrap();
        let s = engine.session();
        let mut last_sweep = None;
        for (i, (writes, commit)) in txns.iter().enumerate() {
            let t = s.begin().unwrap();
            for &(key, value) in writes {
                s.write(&t, key, value).unwrap();
            }
            if *commit {
                let ticket = s.commit(t).unwrap();
                s.wait_durable(&ticket).unwrap();
            } else {
                s.abort(t).unwrap();
            }
            if sweep_mask & (1 << (i % 16)) != 0 {
                last_sweep = Some(engine.checkpoint_now().unwrap());
            }
        }
        engine.crash().unwrap();

        // The oracle sees only the live generation: same log suffix,
        // no checkpoint images, so it must replay the whole history.
        std::fs::create_dir_all(&oracle_dir).unwrap();
        for entry in std::fs::read_dir(&dir).unwrap() {
            let entry = entry.unwrap();
            let name = entry.file_name();
            let name = name.to_string_lossy().into_owned();
            if name.starts_with("wal-d") {
                std::fs::copy(entry.path(), oracle_dir.join(&name)).unwrap();
            }
        }

        let (oracle, oracle_info) = Engine::recover(engine_options(&oracle_dir, shards)).unwrap();
        let (real, real_info) = Engine::recover(engine_options(&dir, shards)).unwrap();

        prop_assert!(oracle_info.checkpoint_start.is_none(),
            "oracle dir had only live files yet recovery found a checkpoint");
        if let Some(sweep) = &last_sweep {
            // Every sweep here ran to completion (the crash is after the
            // loop), so recovery must have used the newest one, and what
            // it replays is that sweep's image plus a suffix of the live
            // log the oracle replayed in full.
            prop_assert!(real_info.checkpoint_start.is_some(),
                "completed sweep(s) but recovery fell back to full replay");
            prop_assert!(
                real_info.log_bytes_replayed
                    <= sweep.log_bytes_written + oracle_info.log_bytes_replayed,
                "checkpointed recovery replayed {} log bytes, more than the {}-byte \
                 image plus the oracle's full {}-byte history",
                real_info.log_bytes_replayed, sweep.log_bytes_written,
                oracle_info.log_bytes_replayed);
        }
        for key in 0..KEYS {
            prop_assert_eq!(
                real.read(key).unwrap(),
                oracle.read(key).unwrap(),
                "recovered images diverge at key {} (sweeps ran: {})",
                key, last_sweep.is_some()
            );
        }
        // Suffix replay can only surface transactions the full replay
        // also saw as committed.
        let oracle_committed: BTreeSet<_> = oracle_info.committed.iter().copied().collect();
        for txn in &real_info.committed {
            prop_assert!(oracle_committed.contains(txn),
                "suffix replay surfaced {txn:?} the full replay never committed");
        }

        real.shutdown().unwrap();
        oracle.shutdown().unwrap();
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&oracle_dir).ok();
    }
}
