//! The empirical §3 joins must reproduce the analytic model's *shape*:
//! same winners, same crossovers, same degenerate behaviours.

use mmdb_analytic::join::{JoinAlgorithm, JoinScenario};
use mmdb_exec::join::{run_join, Algo, JoinSpec};
use mmdb_exec::{workload, ExecContext};
use mmdb_storage::CostSnapshot;
use mmdb_types::{RelationShape, SystemParams};

fn measured(algo: Algo, ratio: f64, scale: f64) -> (CostSnapshot, usize) {
    let params = SystemParams::table2();
    let shape = RelationShape::table2();
    let (r, s) = workload::table2_relations(shape, scale, 7).unwrap();
    let mem = ((ratio * r.page_count() as f64 * params.fudge).round() as usize).max(2);
    let ctx = ExecContext::new(mem, params.fudge);
    let out = run_join(algo, &r, &s, JoinSpec::new(0, 0), &ctx).unwrap();
    (ctx.meter.snapshot(), out.tuple_count())
}

fn seconds(algo: Algo, ratio: f64) -> f64 {
    measured(algo, ratio, 0.01)
        .0
        .seconds(&SystemParams::table2())
}

#[test]
fn all_algorithms_agree_on_the_answer() {
    let mut counts = Vec::new();
    for algo in [
        Algo::NestedLoops,
        Algo::SortMerge,
        Algo::SimpleHash,
        Algo::GraceHash,
        Algo::HybridHash,
    ] {
        counts.push(measured(algo, 0.3, 0.005).1);
    }
    assert!(counts.windows(2).all(|w| w[0] == w[1]), "{counts:?}");
    assert!(counts[0] > 0);
}

#[test]
fn hash_joins_do_no_io_at_ratio_one() {
    for algo in [Algo::SimpleHash, Algo::HybridHash] {
        let (snap, _) = measured(algo, 1.0, 0.01);
        assert_eq!(snap.total_ios(), 0, "{algo:?}");
    }
}

#[test]
fn simple_hash_blows_up_when_starved_like_the_model() {
    let starved = seconds(Algo::SimpleHash, 0.05);
    let ample = seconds(Algo::SimpleHash, 0.9);
    assert!(starved > 8.0 * ample, "measured {starved} vs {ample}");
    // The model predicts the same blow-up factor ballpark.
    let sc = |ratio| {
        JoinScenario::at_ratio(SystemParams::table2(), RelationShape::table2(), ratio)
            .cost(JoinAlgorithm::SimpleHash)
    };
    assert!(sc(0.05) > 8.0 * sc(0.9));
}

#[test]
fn hybrid_beats_grace_and_sort_merge_across_the_range() {
    // Ratios chosen above the paper's two-pass floor at this test scale
    // (sqrt(|S|·F) ≈ 11 of 120 pages ⇒ ratio ≳ 0.092); below it the §3.2
    // assumption breaks and the recursive overflow handling rightly costs
    // extra passes. The 1.15 slack covers partial-page flush overhead at
    // the reduced scale (negligible at the paper's 10 000-page scale).
    for ratio in [0.1, 0.2, 0.5, 0.8, 1.0] {
        let hybrid = seconds(Algo::HybridHash, ratio);
        let grace = seconds(Algo::GraceHash, ratio);
        let sm = seconds(Algo::SortMerge, ratio);
        assert!(
            hybrid <= grace * 1.15,
            "ratio {ratio}: hybrid {hybrid} vs grace {grace}"
        );
        assert!(
            hybrid < sm,
            "ratio {ratio}: hybrid {hybrid} vs sort-merge {sm}"
        );
    }
}

#[test]
fn hashing_beats_sort_merge_above_the_sqrt_floor() {
    // §6's headline: once |M| ≥ sqrt(|S|·F), hash-based join processing
    // wins. Measure right at the floor.
    let shape = RelationShape::table2();
    let scale = 0.01;
    let (r, s) = workload::table2_relations(shape, scale, 9).unwrap();
    let params = SystemParams::table2();
    let floor = ((s.page_count() as f64 * params.fudge).sqrt().ceil() as usize).max(2);
    let run = |algo| {
        let ctx = ExecContext::new(floor, params.fudge);
        run_join(algo, &r, &s, JoinSpec::new(0, 0), &ctx).unwrap();
        ctx.meter.seconds(&params)
    };
    let hybrid = run(Algo::HybridHash);
    let grace = run(Algo::GraceHash);
    let sm = run(Algo::SortMerge);
    assert!(
        hybrid < sm && grace < sm,
        "hybrid {hybrid}, grace {grace}, sm {sm}"
    );
}

#[test]
fn grace_io_is_memory_invariant_but_hybrid_io_shrinks() {
    let grace_lo = measured(Algo::GraceHash, 0.1, 0.01).0.total_ios();
    let grace_hi = measured(Algo::GraceHash, 0.9, 0.01).0.total_ios();
    let diff = grace_lo.abs_diff(grace_hi) as f64;
    assert!(diff < grace_lo as f64 * 0.4, "{grace_lo} vs {grace_hi}");
    let hybrid_lo = measured(Algo::HybridHash, 0.1, 0.01).0.total_ios();
    let hybrid_hi = measured(Algo::HybridHash, 0.9, 0.01).0.total_ios();
    assert!(hybrid_hi < hybrid_lo / 4, "{hybrid_lo} vs {hybrid_hi}");
}

#[test]
fn empirical_winner_matches_analytic_winner_at_most_ratios() {
    let params = SystemParams::table2();
    let shape = RelationShape::table2();
    let algos = [
        (Algo::SortMerge, JoinAlgorithm::SortMerge),
        (Algo::SimpleHash, JoinAlgorithm::SimpleHash),
        (Algo::GraceHash, JoinAlgorithm::GraceHash),
        (Algo::HybridHash, JoinAlgorithm::HybridHash),
    ];
    let mut agree = 0;
    let ratios = [0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9, 1.0];
    for &ratio in &ratios {
        let sc = JoinScenario::at_ratio(params, shape, ratio);
        let analytic_order: Vec<f64> = algos.iter().map(|(_, a)| sc.cost(*a)).collect();
        let measured_order: Vec<f64> = algos.iter().map(|(e, _)| seconds(*e, ratio)).collect();
        let amin = (0..4)
            .min_by(|&a, &b| analytic_order[a].total_cmp(&analytic_order[b]))
            .unwrap();
        let mmin = (0..4)
            .min_by(|&a, &b| measured_order[a].total_cmp(&measured_order[b]))
            .unwrap();
        // Accept near-ties: the winner matches, or the measured winner is
        // within 15% of the measured cost of the analytic winner.
        if amin == mmin || measured_order[amin] <= measured_order[mmin] * 1.15 {
            agree += 1;
        }
    }
    assert!(
        agree >= ratios.len() - 1,
        "winner agreement only {agree}/{}",
        ratios.len()
    );
}
