//! Larger combined-load scenarios: the engine under sustained mixed DML +
//! query traffic, and the transactional store under long crash/recover
//! cycles. These are the "does it hold up" tests a downstream adopter
//! would run first.

use mmdb::{CommitMode, Database, IndexKind, TransactionalStore};
use mmdb_planner::{JoinEdge, QuerySpec, TableRef};
use mmdb_types::{CmpOp, DataType, Predicate, Schema, Tuple, Value, WorkloadRng};

#[test]
fn sustained_dml_with_index_maintenance() {
    let mut db = Database::new();
    db.create_table(
        "t",
        Schema::of(&[("id", DataType::Int), ("grp", DataType::Int)]),
    )
    .unwrap();
    db.create_index("t", 0, IndexKind::BPlusTree).unwrap();
    db.create_index("t", 1, IndexKind::Hash).unwrap();
    let mut rng = WorkloadRng::seeded(60);
    let mut live: std::collections::BTreeMap<i64, i64> = Default::default();
    let mut next_id = 0i64;
    for round in 0..2_000 {
        match rng.index(10) {
            0..=5 => {
                let grp = rng.int_in(0, 16);
                db.insert("t", Tuple::new(vec![Value::Int(next_id), Value::Int(grp)]))
                    .unwrap();
                live.insert(next_id, grp);
                next_id += 1;
            }
            6..=7 => {
                if next_id > 0 {
                    let victim = rng.int_in(0, next_id);
                    let removed = db
                        .table_mut("t")
                        .unwrap()
                        .delete_where(&Predicate::eq(0, victim));
                    assert_eq!(removed, usize::from(live.remove(&victim).is_some()));
                }
            }
            _ => {
                if next_id > 0 {
                    let probe = rng.int_in(0, next_id);
                    let got = db.lookup_eq("t", 0, &Value::Int(probe)).unwrap();
                    match live.get(&probe) {
                        Some(grp) => {
                            assert_eq!(got.len(), 1, "round {round}");
                            assert_eq!(got[0].get(1), &Value::Int(*grp));
                        }
                        None => assert!(got.is_empty(), "round {round}"),
                    }
                }
            }
        }
    }
    // Final cross-checks: group index, range scan, and full count agree
    // with the oracle.
    assert_eq!(db.table("t").unwrap().len(), live.len());
    for grp in 0..16i64 {
        let via_index = db.lookup_eq("t", 1, &Value::Int(grp)).unwrap().len();
        let oracle = live.values().filter(|g| **g == grp).count();
        assert_eq!(via_index, oracle, "group {grp}");
    }
    let lo = next_id / 4;
    let hi = next_id / 2;
    let ranged = db
        .range_scan("t", 0, &Value::Int(lo), &Value::Int(hi))
        .unwrap();
    assert_eq!(
        ranged.len(),
        live.range(lo..=hi).count(),
        "range [{lo}, {hi}]"
    );
}

#[test]
fn repeated_crash_recover_cycles_accumulate_correctly() {
    let mut store = TransactionalStore::new(CommitMode::GroupCommit);
    let seed = store.begin();
    for a in 0..20u64 {
        store.write(&seed, a, 0).unwrap();
    }
    store.commit(seed).unwrap();
    store.flush();
    let mut expected: Vec<i64> = vec![0; 20];
    for cycle in 0..6 {
        // Commit a batch, leave one transaction in flight, crash, recover.
        for i in 0..30u64 {
            let key = (cycle * 7 + i) % 20;
            let t = store.begin();
            store.write(&t, key, expected[key as usize] + 1).unwrap();
            store.commit(t).unwrap();
            expected[key as usize] += 1;
        }
        store.flush();
        let doomed = store.begin();
        store.write(&doomed, 0, -1).unwrap();
        let (recovered, report) = TransactionalStore::recover(store.crash());
        store = recovered;
        assert!(report.losers.len() <= 1, "cycle {cycle}: {report:?}");
        for (k, v) in expected.iter().enumerate() {
            assert_eq!(store.read(k as u64), Some(*v), "cycle {cycle}, key {k}");
        }
    }
}

#[test]
fn query_results_survive_table_mutation_between_queries() {
    let mut db = Database::new();
    db.create_table(
        "orders",
        Schema::of(&[("id", DataType::Int), ("cust", DataType::Int)]),
    )
    .unwrap();
    db.create_table(
        "cust",
        Schema::of(&[("id", DataType::Int), ("tier", DataType::Int)]),
    )
    .unwrap();
    let mut rng = WorkloadRng::seeded(61);
    for c in 0..50i64 {
        db.insert("cust", Tuple::new(vec![Value::Int(c), Value::Int(c % 3)]))
            .unwrap();
    }
    let spec = QuerySpec {
        tables: vec![
            TableRef::plain("orders"),
            TableRef::filtered("cust", Predicate::cmp(1, CmpOp::Eq, 1i64)),
        ],
        joins: vec![JoinEdge {
            left_table: 0,
            left_column: 1,
            right_table: 1,
            right_column: 0,
        }],
    };
    let mut last = 0usize;
    for wave in 0..5 {
        for i in 0..200i64 {
            db.insert(
                "orders",
                Tuple::new(vec![
                    Value::Int(wave * 200 + i),
                    Value::Int(rng.int_in(0, 50)),
                ]),
            )
            .unwrap();
        }
        let outcome = db.query(&spec).unwrap();
        let oracle = db
            .table("orders")
            .unwrap()
            .scan()
            .filter(|t| t.get(1).as_int().unwrap() % 3 == 1)
            .count();
        assert_eq!(outcome.rows.tuple_count(), oracle, "wave {wave}");
        assert!(outcome.rows.tuple_count() >= last);
        last = outcome.rows.tuple_count();
    }
}
