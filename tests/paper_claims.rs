//! The paper's headline claims, each asserted against this
//! implementation. If one of these fails, the reproduction has drifted
//! from the paper.

use mmdb_analytic::access::random_break_even_fraction;
use mmdb_analytic::join::{JoinAlgorithm, JoinScenario};
use mmdb_analytic::recovery::{CommitPolicy, ThroughputModel};
use mmdb_recovery::sim::{SimConfig, ThroughputSim};
use mmdb_types::{AccessGeometry, RelationShape, SystemParams};

/// §2 / §6: "B+-trees are the preferred storage mechanism unless more
/// than 80-90% of the database fits in main memory."
#[test]
fn claim_avl_needs_80_to_90_percent_residency() {
    let g = AccessGeometry::standard();
    for z in [10.0, 20.0, 30.0] {
        for y in [0.75, 0.9, 1.0] {
            let h = random_break_even_fraction(&g, z, y);
            assert!(
                h >= 0.80,
                "Z={z}, Y={y}: break-even {h} below the paper's band"
            );
        }
    }
}

/// §3 / §6: "once the size of main memory exceeds the square root of the
/// size of the relations being processed ... the fastest algorithms for
/// the join ... are based on hashing."
#[test]
fn claim_hashing_wins_above_sqrt_memory() {
    let params = SystemParams::table2();
    for s_pages in [10_000u64, 50_000, 200_000] {
        let shape = RelationShape {
            r_pages: s_pages,
            s_pages,
            r_tuples_per_page: 40,
            s_tuples_per_page: 40,
        };
        let floor = (s_pages as f64 * params.fudge).sqrt();
        for mult in [1.0, 2.0, 10.0, 100.0] {
            let sc = JoinScenario {
                params,
                shape,
                mem_pages: floor * mult,
            };
            let best_hash = sc
                .cost(JoinAlgorithm::HybridHash)
                .min(sc.cost(JoinAlgorithm::GraceHash))
                .min(sc.cost(JoinAlgorithm::SimpleHash));
            assert!(
                best_hash < sc.cost(JoinAlgorithm::SortMerge),
                "|S|={s_pages}, |M|={floor}·{mult}"
            );
        }
    }
}

/// §3.1: "the Hybrid algorithm is preferable to all others over a large
/// range of parameter values."
#[test]
fn claim_hybrid_preferable_over_a_large_range() {
    let params = SystemParams::table2();
    let shape = RelationShape::table2();
    let mut hybrid_best = 0;
    let mut total = 0;
    for step in 1..=40 {
        let ratio = step as f64 / 40.0;
        let sc = JoinScenario::at_ratio(params, shape, ratio);
        let h = sc.cost(JoinAlgorithm::HybridHash);
        total += 1;
        // Best within 1 %: above ratio 0.5 hybrid and simple hash agree to
        // rounding (hybrid's in-memory fraction covers what simple hash's
        // single extra pass covers), and the paper itself notes the only
        // meaningful exception region (§3.8).
        if JoinAlgorithm::ALL
            .iter()
            .all(|a| h <= sc.cost(*a) * 1.01 + 1e-9)
        {
            hybrid_best += 1;
        }
    }
    assert!(
        hybrid_best * 100 >= total * 80,
        "hybrid best at only {hybrid_best}/{total} sample points"
    );
}

/// §3.8's footnoted wrinkle: simple hash appears to beat hybrid only in a
/// small region below ratio 0.5, an artifact of the IOrand accounting.
#[test]
fn claim_simple_hash_wrinkle_is_small_and_localized() {
    let params = SystemParams::table2();
    let shape = RelationShape::table2();
    for step in 1..=40 {
        let ratio = step as f64 / 40.0;
        let sc = JoinScenario::at_ratio(params, shape, ratio);
        let simple = sc.cost(JoinAlgorithm::SimpleHash);
        let hybrid = sc.cost(JoinAlgorithm::HybridHash);
        // A *meaningful* simple-hash advantage (> 1 %) may only appear in
        // the documented accounting region below 0.5; elsewhere the two
        // agree to rounding ("in practice hybrid hash will probably always
        // outperform simple hash", §3.8).
        if simple < hybrid * 0.99 {
            // Ratio 0.5 itself still has two output buffers — the paper's
            // single-buffer regime needs strictly |M| > |R|·F/2.
            assert!(
                (0.25..=0.5).contains(&ratio),
                "wrinkle outside the documented region at ratio {ratio}: simple {simple} vs hybrid {hybrid}"
            );
        }
    }
}

/// §5.2: 100 transactions per second with one synchronous log write per
/// transaction; ~1000 with ten-transaction group commit.
#[test]
fn claim_recovery_throughput_numbers() {
    let model = ThroughputModel::default();
    assert_eq!(model.throughput(CommitPolicy::Synchronous), 100.0);
    assert_eq!(model.throughput(CommitPolicy::GroupCommit), 1000.0);
    // And the discrete-event simulation agrees with the arithmetic.
    let sync = ThroughputSim::new(SimConfig::synchronous())
        .run_synchronous(1_000)
        .tps();
    let group = ThroughputSim::new(SimConfig::group_commit())
        .run_grouped(10_000)
        .tps();
    assert!((sync - 100.0).abs() < 2.0);
    assert!((group - 1_000.0).abs() < 25.0);
}

/// §5.4: "approximately half of the size of the log stores the old values
/// of modified data."
#[test]
fn claim_log_compression_halves_volume() {
    use mmdb_recovery::log::typical_transaction;
    use mmdb_types::TxnId;
    let recs = typical_transaction(TxnId(1), 0, 0, 1);
    let full: usize = recs.iter().map(|r| r.byte_size()).sum();
    let compressed: usize = recs.iter().map(|r| r.compressed_size()).sum();
    assert_eq!(full, 400);
    let ratio = compressed as f64 / full as f64;
    assert!((0.5..0.6).contains(&ratio), "ratio {ratio}");
}

/// §4: planning collapses — the chosen join method is hash-based whenever
/// memory is large, regardless of input sizes.
#[test]
fn claim_planner_always_picks_hashing_with_large_memory() {
    use mmdb_planner::{
        optimize, optimizer::PlanEnv, JoinEdge, JoinMethod, QuerySpec, TableRef, TableStats,
    };
    for (l, r) in [(1_000u64, 1_000u64), (10_000, 400_000), (400_000, 400_000)] {
        let spec = QuerySpec {
            tables: vec![TableRef::plain("a"), TableRef::plain("b")],
            joins: vec![JoinEdge {
                left_table: 0,
                left_column: 0,
                right_table: 1,
                right_column: 0,
            }],
        };
        let stats = vec![
            TableStats::uniform("a", l, 40, 2),
            TableStats::uniform("b", r, 40, 2),
        ];
        let planned = optimize(&spec, &stats, &PlanEnv::default()).unwrap();
        for m in planned.plan.methods() {
            assert!(
                matches!(m, JoinMethod::HybridHash | JoinMethod::SimpleHash),
                "non-hash method {m:?} for sizes ({l}, {r})"
            );
        }
    }
}
