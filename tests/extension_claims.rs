//! Assertions for the extension experiments (DESIGN.md §7): each extension
//! must actually demonstrate the paper passage it was built for.

use mmdb::mvcc::VersionedStore;
use mmdb_analytic::join::{tid, JoinAlgorithm, JoinScenario};
use mmdb_exec::join::hybrid::hybrid_hash_join_with_stats;
use mmdb_exec::join::JoinSpec;
use mmdb_exec::ExecContext;
use mmdb_planner::enumerate::{classical_plan_space, collapsed_plan_space};
use mmdb_storage::{BufferPool, CostMeter, IoKind, MemRelation, ReplacementPolicy, SimDisk};
use mmdb_types::{DataType, PageId, RelationShape, Schema, SystemParams, WorkloadRng, PAGE_SIZE};
use std::sync::Arc;

/// §3.3: recursive hybrid hash handles skewed partitions and respects the
/// memory grant for splittable keys.
#[test]
fn recursive_hybrid_handles_skew() {
    let mut rng = WorkloadRng::seeded(91);
    let schema = Schema::of(&[("k", DataType::Int), ("v", DataType::Int)]);
    let r =
        MemRelation::from_tuples(schema.clone(), 40, rng.zipf_tuples(5_000, 3_000, 1.1)).unwrap();
    let s = MemRelation::from_tuples(schema, 40, rng.zipf_tuples(5_000, 3_000, 1.1)).unwrap();
    let ctx = ExecContext::new(6, 1.2);
    let (out, stats) = hybrid_hash_join_with_stats(&r, &s, JoinSpec::new(0, 0), &ctx).unwrap();
    assert!(out.tuple_count() > 0);
    assert!(
        stats.recursive_partitionings > 0,
        "skew should trigger §3.3 recursion: {stats:?}"
    );
}

/// §3.2: the TID trade-off has the shape the paper describes.
#[test]
fn tid_crossover_shrinks_with_memory_and_grows_with_residency() {
    let params = SystemParams::table2();
    let shape = RelationShape::table2();
    let algo = JoinAlgorithm::HybridHash;
    let sc_small = JoinScenario::at_ratio(params, shape, 0.05);
    let sc_big = JoinScenario::at_ratio(params, shape, 0.9);
    // More memory shrinks the whole-tuple join's disadvantage, so the TID
    // win region shrinks with the memory ratio.
    let x_small = tid::crossover_result_size(&sc_small, algo, 0.0);
    let x_big = tid::crossover_result_size(&sc_big, algo, 0.0);
    assert!(x_small > x_big, "{x_small} vs {x_big}");
    // Residency extends the TID win region.
    let x_resident = tid::crossover_result_size(&sc_small, algo, 0.9);
    assert!(x_resident > x_small * 5.0);
}

/// §6 versioning: a snapshot reader is linearizable against an entire
/// stream of concurrent committed writes.
#[test]
fn mvcc_snapshot_isolation_under_write_storm() {
    let mut store = VersionedStore::new();
    let seed = store.begin_write();
    for k in 0..32u64 {
        store.write(&seed, k, 100).unwrap();
    }
    store.commit(seed).unwrap();
    let mut readers = Vec::new();
    for round in 0..200u64 {
        // Open a reader every 10 rounds; verify all open readers later.
        if round % 10 == 0 {
            readers.push((store.begin_read(), round));
        }
        let w = store.begin_write();
        // Zero-sum double update.
        let a = round % 32;
        let b = (round + 1) % 32;
        let va = store.read_own(&w, a).unwrap();
        let vb = store.read_own(&w, b).unwrap();
        store.write(&w, a, va - 1).unwrap();
        store.write(&w, b, vb + 1).unwrap();
        store.commit(w).unwrap();
    }
    assert_eq!(store.conflicts(), 0);
    for (r, _) in &readers {
        let total: i64 = (0..32).map(|k| store.read(r, k).unwrap()).sum();
        assert_eq!(total, 3_200, "snapshot at ts {} is torn", r.snapshot());
    }
    for (r, _) in readers {
        store.end_read(r);
    }
    assert!(store.gc() > 0, "history must be collectable");
}

/// §6 buffer management: on skewed references LRU beats the random policy
/// the §2 model assumes; on uniform references they tie.
#[test]
fn lru_beats_random_only_under_skew() {
    let run = |policy: ReplacementPolicy, zipf: Option<f64>| {
        let meter = Arc::new(CostMeter::new());
        let mut disk = SimDisk::new(meter);
        let ids: Vec<PageId> = (0..200)
            .map(|_| {
                let id = disk.allocate();
                disk.write(id, IoKind::Sequential, &vec![0u8; PAGE_SIZE])
                    .unwrap();
                id
            })
            .collect();
        let mut pool = BufferPool::new(60, policy);
        let mut rng = WorkloadRng::seeded(5);
        for _ in 0..4_000 {
            let p = match zipf {
                Some(s) => rng.zipf_index(200, s),
                None => rng.index(200),
            };
            pool.get(&mut disk, ids[p], IoKind::Random).unwrap();
        }
        pool.reset_stats();
        for _ in 0..12_000 {
            let p = match zipf {
                Some(s) => rng.zipf_index(200, s),
                None => rng.index(200),
            };
            pool.get(&mut disk, ids[p], IoKind::Random).unwrap();
        }
        pool.stats().fault_rate()
    };
    let uniform_random = run(ReplacementPolicy::Random { seed: 2 }, None);
    let uniform_lru = run(ReplacementPolicy::Lru, None);
    assert!(
        (uniform_random - uniform_lru).abs() < 0.04,
        "uniform: {uniform_random} vs {uniform_lru}"
    );
    let skew_random = run(ReplacementPolicy::Random { seed: 2 }, Some(1.0));
    let skew_lru = run(ReplacementPolicy::Lru, Some(1.0));
    assert!(
        skew_lru < skew_random - 0.02,
        "skewed: LRU {skew_lru} should beat random {skew_random}"
    );
}

/// §4 plan-space collapse: the counting functions behave.
#[test]
fn plan_space_collapse_is_combinatorial() {
    assert!(classical_plan_space(8, 4, 3) > 1_000_000_000_000u64);
    assert_eq!(collapsed_plan_space(8), 28);
    // Collapse factor grows monotonically with query size.
    let mut prev = 0.0;
    for n in 2..=7 {
        let factor = classical_plan_space(n, 4, 3) as f64 / collapsed_plan_space(n) as f64;
        assert!(factor > prev);
        prev = factor;
    }
}
