//! Golden test of the observability exposition: the session engine's
//! metric inventory is a stable surface. Every family the engine
//! registers must appear in `render_text()` with the right Prometheus
//! type, every sample line must parse, and the registry must be free of
//! hygiene violations — a rename, a dropped metric, or a kind change
//! fails here before any dashboard notices.

use mmdb_session::{CommitPolicy, Engine, EngineOptions};
use mmdb_storage::CostMeter;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mmdb-obs-expo-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn fast(policy: CommitPolicy, name: &str) -> EngineOptions {
    EngineOptions::new(policy, tmp_dir(name))
        .with_page_write_latency(Duration::from_micros(200))
        .with_flush_interval(Duration::from_micros(500))
}

/// The engine's metric inventory, `(family, prometheus type)`. This
/// list is the golden surface: adding a metric means adding a row here,
/// and renaming or dropping one fails the test.
const SESSION_FAMILIES: [(&str, &str); 19] = [
    ("mmdb_session_begins_total", "counter"),
    ("mmdb_session_commits_total", "counter"),
    ("mmdb_session_aborts_total", "counter"),
    ("mmdb_session_pages_written_total", "counter"),
    ("mmdb_session_deadlock_aborts_total", "counter"),
    ("mmdb_session_io_errors_total", "counter"),
    ("mmdb_session_io_retries_total", "counter"),
    ("mmdb_session_degraded_count", "gauge"),
    ("mmdb_session_lock_wait_us", "histogram"),
    ("mmdb_session_lock_hold_us", "histogram"),
    ("mmdb_session_commit_latency_us", "histogram"),
    ("mmdb_session_commit_batch_txns", "histogram"),
    ("mmdb_session_fsync_us", "histogram"),
    ("mmdb_session_durable_lag_lsn", "gauge"),
    ("mmdb_session_checkpoints_total", "counter"),
    ("mmdb_session_checkpoint_duration_us", "histogram"),
    ("mmdb_session_checkpoint_bytes", "gauge"),
    ("mmdb_session_checkpoint_lag_lsn", "gauge"),
    ("mmdb_session_checkpoint_rewritten_count", "gauge"),
];

/// Every sample line must be `name[{labels}] value` with a numeric
/// value; returns the parsed `(sample_name, value)` pairs.
fn parse_exposition(text: &str) -> Vec<(String, f64)> {
    let mut samples = Vec::new();
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("unparseable sample line {line:?}"));
        let value: f64 = value
            .parse()
            .unwrap_or_else(|e| panic!("non-numeric value in {line:?}: {e}"));
        assert!(
            name.starts_with("mmdb_"),
            "sample {name:?} escapes the mmdb_ namespace"
        );
        samples.push((name.to_string(), value));
    }
    samples
}

#[test]
fn engine_exposition_is_complete_and_parseable() {
    let opts = fast(CommitPolicy::Group, "golden");
    let dir = opts.log_dir.clone();
    let engine = Engine::start(opts).unwrap();
    let s = engine.session();
    // Enough traffic to populate every family: begins, commits, an
    // abort, lock holds, batches, pages, fsyncs.
    for k in 0..6 {
        let t = s.begin().unwrap();
        s.write(&t, k, k as i64).unwrap();
        s.commit_durable(t).unwrap();
    }
    let t = s.begin().unwrap();
    s.write(&t, 99, 1).unwrap();
    s.abort(t).unwrap();

    // Counters are recorded synchronously on the session threads, so
    // they are exact here; histogram recordings in the writers'
    // finalize loop are only ordered by shutdown (below).
    let stats = engine.stats();
    assert_eq!(stats.counter("mmdb_session_begins_total"), Some(7));
    assert_eq!(stats.counter("mmdb_session_commits_total"), Some(6));
    assert_eq!(stats.counter("mmdb_session_aborts_total"), Some(1));
    assert!(
        engine.registry().hygiene_violations().is_empty(),
        "hygiene violations: {:?}",
        engine.registry().hygiene_violations()
    );
    let metric_names = stats.metric_names();

    // The registry outlives the engine; rendering after shutdown sees
    // every recording the writer threads made.
    let registry = engine.registry();
    engine.shutdown().unwrap();
    let render = registry.render_text();

    // Golden inventory: each family present, right type, HELP+TYPE
    // exactly once.
    for (family, kind) in SESSION_FAMILIES {
        let type_line = format!("# TYPE {family} {kind}");
        assert_eq!(
            render.matches(&type_line).count(),
            1,
            "expected exactly one {type_line:?}"
        );
        assert_eq!(
            render.matches(&format!("# HELP {family} ")).count(),
            1,
            "expected exactly one HELP for {family}"
        );
    }
    // No families beyond the golden list (a new metric must be added
    // to SESSION_FAMILIES deliberately).
    let type_lines = render.lines().filter(|l| l.starts_with("# TYPE ")).count();
    assert_eq!(
        type_lines,
        SESSION_FAMILIES.len(),
        "exposition grew a family the golden list does not know:\n{render}"
    );

    let samples = parse_exposition(&render);
    assert!(!samples.is_empty());
    // Every registered sample name appears in the rendered text.
    for name in metric_names {
        assert!(
            samples
                .iter()
                .any(|(n, _)| n.starts_with(name.split('{').next().unwrap_or(&name))),
            "registered metric {name:?} missing from exposition"
        );
    }
    // Histogram conventions: a cumulative +Inf bucket, _sum and _count
    // per histogram sample, and _count equal to the +Inf bucket. With
    // the writers joined, all 6 durable commits have been recorded.
    let inf = samples
        .iter()
        .find(|(n, _)| n.starts_with("mmdb_session_commit_latency_us_bucket") && n.contains("+Inf"))
        .expect("+Inf bucket");
    let count = samples
        .iter()
        .find(|(n, _)| n == "mmdb_session_commit_latency_us_count")
        .expect("_count sample");
    assert_eq!(inf.1, count.1, "+Inf bucket must equal _count");
    assert_eq!(count.1, 6.0, "one sample per durable commit");

    std::fs::remove_dir_all(&dir).ok();
}

/// The storage cost meter bridges into the same registry and renders
/// alongside the session families — one exposition for the virtual
/// cost clock (Table 2) and the wall-clock engine.
#[test]
fn cost_meter_bridges_into_the_engine_registry() {
    let opts = fast(CommitPolicy::Group, "meter-bridge");
    let dir = opts.log_dir.clone();
    let engine = Engine::start(opts).unwrap();
    let meter = Arc::new(CostMeter::new());
    meter.register_into(&engine.registry());
    meter.charge_comparisons(17);
    meter.charge_seq_ios(3);

    let render = engine.render_metrics();
    assert!(render.contains("# TYPE mmdb_cost_comparisons_total counter"));
    let samples = parse_exposition(&render);
    assert!(samples
        .iter()
        .any(|(n, v)| n == "mmdb_cost_comparisons_total" && *v == 17.0));
    assert!(samples
        .iter()
        .any(|(n, v)| n == "mmdb_cost_seq_ios_total" && *v == 3.0));
    assert!(engine.registry().hygiene_violations().is_empty());

    engine.shutdown().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// The server's metric inventory, `(family, prometheus type)` — the
/// wire front end registers these on the engine's registry, so one
/// exposition covers both layers. Same golden rules as
/// [`SESSION_FAMILIES`].
const SERVER_FAMILIES: [(&str, &str); 13] = [
    ("mmdb_server_active_connections_count", "gauge"),
    ("mmdb_server_connections_total", "counter"),
    ("mmdb_server_requests_total", "counter"),
    ("mmdb_server_request_latency_us", "histogram"),
    ("mmdb_server_parse_errors_total", "counter"),
    ("mmdb_server_protocol_errors_total", "counter"),
    ("mmdb_server_refused_total", "counter"),
    ("mmdb_server_shed_total", "counter"),
    ("mmdb_server_retryable_errors_total", "counter"),
    ("mmdb_server_write_stalls_total", "counter"),
    ("mmdb_server_slow_client_disconnects_total", "counter"),
    ("mmdb_server_inflight_statements_count", "gauge"),
    ("mmdb_server_admission_wait_us", "histogram"),
];

/// Starting a server adds exactly the [`SERVER_FAMILIES`] to the
/// engine's exposition, labeled latency samples parse, and traffic
/// moves the counters the way the protocol says it should.
#[test]
fn server_families_join_the_engine_exposition() {
    use mmdb_server::{Client, Server, ServerConfig};

    let opts = fast(CommitPolicy::Group, "server-golden");
    let dir = opts.log_dir.clone();
    let engine = Engine::start(opts).unwrap();
    let handle = Server::start(&engine, ServerConfig::default()).unwrap();
    let mut c = Client::connect(handle.addr()).unwrap();
    c.execute("CREATE TABLE t (a INT)").unwrap();
    c.execute("INSERT INTO t VALUES (1), (2)").unwrap();
    c.execute("SELECT * FROM t").unwrap();
    assert!(c.execute("NOT SQL AT ALL").is_err());

    let stats = engine.stats();
    assert_eq!(stats.counter("mmdb_server_requests_total"), Some(4));
    assert_eq!(stats.counter("mmdb_server_parse_errors_total"), Some(1));
    assert_eq!(stats.counter("mmdb_server_connections_total"), Some(1));
    assert_eq!(stats.gauge("mmdb_server_active_connections_count"), Some(1));

    let render = engine.render_metrics();
    for (family, kind) in SERVER_FAMILIES {
        let type_line = format!("# TYPE {family} {kind}");
        assert_eq!(
            render.matches(&type_line).count(),
            1,
            "expected exactly one {type_line:?}"
        );
        assert_eq!(
            render.matches(&format!("# HELP {family} ")).count(),
            1,
            "expected exactly one HELP for {family}"
        );
    }
    // Every statement kind's latency family is pre-registered, labeled.
    for kind in mmdb_sql::ast::STATEMENT_KINDS {
        assert!(
            render.contains(&format!("stmt=\"{kind}\"")),
            "missing latency series for statement kind {kind}"
        );
    }
    // Exactly session + server families, nothing unlisted.
    let type_lines = render.lines().filter(|l| l.starts_with("# TYPE ")).count();
    assert_eq!(
        type_lines,
        SESSION_FAMILIES.len() + SERVER_FAMILIES.len(),
        "exposition grew a family the golden lists do not know:\n{render}"
    );
    let samples = parse_exposition(&render);
    let latency_count: f64 = samples
        .iter()
        .filter(|(n, _)| n.starts_with("mmdb_server_request_latency_us_count"))
        .map(|(_, v)| v)
        .sum();
    assert_eq!(
        latency_count, 3.0,
        "one latency sample per parsed statement"
    );
    assert!(engine.registry().hygiene_violations().is_empty());

    drop(c);
    handle.shutdown().unwrap();
    engine.shutdown().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// The client driver's metric inventory — registered only when a
/// [`mmdb_server::ClientConfig`] is handed a registry, so embedded
/// clients (tests, torture workers) can opt in without polluting the
/// server's exposition by default.
const CLIENT_FAMILIES: [(&str, &str); 3] = [
    ("mmdb_client_retries_total", "counter"),
    ("mmdb_client_reconnects_total", "counter"),
    ("mmdb_client_connection_lost_total", "counter"),
];

/// A client given the engine's registry adds exactly the
/// [`CLIENT_FAMILIES`], and a lost connection moves the counter.
#[test]
fn client_families_join_the_exposition_when_opted_in() {
    use mmdb_server::{Client, ClientConfig, Server, ServerConfig};

    let opts = fast(CommitPolicy::Group, "client-golden");
    let dir = opts.log_dir.clone();
    let engine = Engine::start(opts).unwrap();
    let handle = Server::start(&engine, ServerConfig::default()).unwrap();
    let config = ClientConfig {
        auto_retry: false,
        registry: Some(engine.registry()),
        ..ClientConfig::default()
    };
    let mut c = Client::connect_with(handle.addr(), config).unwrap();
    c.execute("CREATE TABLE t (a INT)").unwrap();

    // Tear the server down under the client: the next statement loses
    // the connection, and the opted-in counter must say so.
    handle.shutdown().unwrap();
    assert!(c.execute("SELECT a FROM t").is_err());

    let stats = engine.stats();
    assert!(
        stats
            .counter("mmdb_client_connection_lost_total")
            .unwrap_or(0)
            >= 1,
        "lost connection not counted"
    );

    let render = engine.render_metrics();
    for (family, kind) in CLIENT_FAMILIES {
        let type_line = format!("# TYPE {family} {kind}");
        assert_eq!(
            render.matches(&type_line).count(),
            1,
            "expected exactly one {type_line:?}"
        );
        assert_eq!(
            render.matches(&format!("# HELP {family} ")).count(),
            1,
            "expected exactly one HELP for {family}"
        );
    }
    // Exactly session + server + client families, nothing unlisted.
    let type_lines = render.lines().filter(|l| l.starts_with("# TYPE ")).count();
    assert_eq!(
        type_lines,
        SESSION_FAMILIES.len() + SERVER_FAMILIES.len() + CLIENT_FAMILIES.len(),
        "exposition grew a family the golden lists do not know:\n{render}"
    );
    assert!(engine.registry().hygiene_violations().is_empty());

    engine.shutdown().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// Recovery registers its own gauges on the recovered engine's fresh
/// registry: how many transactions replayed and how long replay took.
#[test]
fn recovered_engine_exposes_recovery_gauges() {
    let opts = fast(CommitPolicy::Group, "recover-gauges");
    let dir = opts.log_dir.clone();
    let engine = Engine::start(opts.clone()).unwrap();
    let s = engine.session();
    for k in 0..3 {
        let t = s.begin().unwrap();
        s.write(&t, k, 1).unwrap();
        s.commit_durable(t).unwrap();
    }
    engine.shutdown().unwrap();

    let (engine, info) = Engine::recover(opts).unwrap();
    assert_eq!(info.committed.len(), 3);
    let stats = engine.stats();
    assert_eq!(stats.gauge("mmdb_session_recovered_txns"), Some(3));
    assert!(
        stats.gauge("mmdb_session_recovery_replay_us").is_some(),
        "replay duration gauge missing"
    );
    let render = engine.render_metrics();
    assert!(render.contains("# TYPE mmdb_session_recovered_txns gauge"));
    engine.shutdown().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}
