//! Crash-torture integration tests (§5): a fixed seed sweep of the
//! fault-injection harness, plus directed tests of the fail-stop
//! contract — a dead log device must error every waiter promptly,
//! never hang one.
//!
//! The broad CI gate (`cargo xtask torture --seeds 500`) drives the
//! same harness through the standalone runner with a watchdog; this
//! file keeps a representative sweep in plain `cargo test`.

use mmdb_recovery::{Fault, FaultPlan};
use mmdb_session::torture;
use mmdb_session::{CommitPolicy, Engine, EngineOptions};
use mmdb_types::Error;
use std::path::PathBuf;
use std::sync::mpsc;
use std::time::Duration;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mmdb-torture-it-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Options with a log device that fails permanently from the first
/// write, and a fast retry budget so degradation is quick.
fn dead_device_options(name: &str, policy: CommitPolicy) -> EngineOptions {
    EngineOptions::new(policy, tmp_dir(name))
        .with_page_write_latency(Duration::ZERO)
        .with_flush_interval(Duration::from_micros(200))
        .with_fault_plans(vec![FaultPlan::none().fail_write(0, Fault::PERMANENT)])
        .with_io_retries(2)
        .with_io_retry_backoff(Duration::from_micros(100))
}

/// Runs `f` on a thread and panics if it has not finished within
/// `limit` — the no-hang assertion the §5.2 fail-stop design owes us.
fn within<T: Send + 'static>(
    limit: Duration,
    what: &str,
    f: impl FnOnce() -> T + Send + 'static,
) -> T {
    let (tx, rx) = mpsc::channel();
    let handle = std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    let out = rx
        .recv_timeout(limit)
        .unwrap_or_else(|_| panic!("{what} hung past {limit:?} on a failed log device"));
    let _ = handle.join();
    out
}

/// A fixed sweep of torture seeds: every scenario kind appears (the
/// harness covers all eight within 200 seeds; this range hits a mix),
/// every run recovers to the serial-oracle state, and recovery never
/// errors on corrupt or torn pages.
#[test]
fn seed_sweep_recovers_to_oracle_state() {
    let base = tmp_dir("sweep");
    let reports = torture::run_range(0, 24, &base).expect("torture sweep found a violation");
    assert_eq!(reports.len(), 24);
    // The sweep must actually exercise injected faults, not only clean
    // crashes.
    let scenarios: std::collections::BTreeSet<&str> =
        reports.iter().map(|r| r.scenario.as_str()).collect();
    assert!(
        scenarios.len() >= 4,
        "24 seeds should hit at least 4 distinct scenarios, got {scenarios:?}"
    );
    std::fs::remove_dir_all(&base).ok();
}

/// A committer waiting on a permanently failed device gets
/// [`Error::LogDeviceFailed`] promptly — the writer retries its bounded
/// budget, degrades, and errors every in-flight waiter (§5.2
/// fail-stop), rather than leaving them parked on the durability CV.
#[test]
fn waiting_committer_errors_promptly_when_device_dies() {
    let opts = dead_device_options("wait-durable", CommitPolicy::Group);
    let dir = opts.log_dir.clone();
    let engine = Engine::start(opts).unwrap();
    let session = engine.session();
    let err = within(Duration::from_secs(10), "wait_durable", move || {
        let txn = session.begin()?;
        session.write(&txn, 1, 10)?;
        let ticket = session.commit(txn)?;
        session.wait_durable(&ticket)
    })
    .expect_err("durability wait on a dead device must error");
    assert!(
        matches!(err, Error::LogDeviceFailed(_) | Error::Shutdown),
        "expected a device failure, got {err}"
    );
    // Future commits fail fast with the distinct degraded error.
    let session = engine.session();
    let late = within(Duration::from_secs(10), "post-degrade commit", move || {
        let txn = session.begin()?;
        session.write(&txn, 2, 20)?;
        session.commit(txn).map(|_| ())
    });
    assert!(
        matches!(late, Err(Error::LogDeviceFailed(_))),
        "post-degrade commit must fail fast with the device error, got {late:?}"
    );
    // The retries and the degradation are visible in the metrics.
    let stats = engine.stats();
    let counter = |name: &str| {
        stats
            .counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    };
    assert!(
        counter("mmdb_session_io_errors_total") >= 3,
        "every attempt counts an error"
    );
    assert!(
        counter("mmdb_session_io_retries_total") >= 2,
        "both retries count"
    );
    let degraded = stats
        .gauges
        .iter()
        .find(|(n, _)| n == "mmdb_session_degraded_count")
        .map(|(_, v)| *v)
        .unwrap_or(0);
    assert_eq!(degraded, 1, "exactly one device degraded the engine");
    engine.crash().ok();
    std::fs::remove_dir_all(&dir).ok();
}

/// [`Engine::flush`] on a degraded engine returns the device error
/// instead of blocking until every outstanding commit drains (§5.2
/// fail-stop: the drain will never happen).
#[test]
fn flush_returns_device_error_instead_of_blocking() {
    let opts = dead_device_options("flush", CommitPolicy::Synchronous);
    let dir = opts.log_dir.clone();
    let engine = Engine::start(opts).unwrap();
    let session = engine.session();
    // Synchronous commit rides the append through retries to the
    // degraded state on its own.
    let _ = within(Duration::from_secs(10), "sync commit", move || {
        let txn = session.begin()?;
        session.write(&txn, 1, 10)?;
        session.commit(txn).map(|_| ())
    });
    let (flushed, engine) = within(Duration::from_secs(10), "flush", move || {
        let result = engine.flush();
        (result, engine)
    });
    assert!(
        matches!(flushed, Err(Error::LogDeviceFailed(_))),
        "flush on a degraded engine must return the device error, got {flushed:?}"
    );
    engine.crash().ok();
    std::fs::remove_dir_all(&dir).ok();
}
