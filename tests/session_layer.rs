//! End-to-end tests of the wall-clock session layer (§5.2): group-commit
//! crash semantics, pre-commit dependency ordering across partitioned
//! log devices, and a property test checking concurrent sessions against
//! a single-threaded serial oracle.

use mmdb_recovery::wal::{read_log_file, WalDevice};
use mmdb_recovery::{LogRecord, Lsn};
use mmdb_session::{CommitPolicy, Engine, EngineOptions};
use mmdb_types::{Auditable, Error, TxnId};
use proptest::prelude::*;
use std::path::PathBuf;
use std::time::Duration;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mmdb-session-e2e-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Crash while the group-commit daemon is parked with a non-empty batch:
/// recovery restores exactly the durably-committed prefix, and the
/// commits the daemon never flushed are gone — they were never reported
/// durable, so no promise is broken.
#[test]
fn crash_with_parked_daemon_recovers_durable_prefix_only() {
    let dir = tmp_dir("parked");
    // A huge flush interval parks the daemon unless a flush forces a
    // page out; commits queue behind it exactly as §5.2 describes.
    let opts = EngineOptions::new(CommitPolicy::Group, &dir)
        .with_page_write_latency(Duration::from_micros(200))
        .with_flush_interval(Duration::from_secs(30));
    let engine = Engine::start(opts.clone()).unwrap();
    let s = engine.session();

    let t1 = s.begin().unwrap();
    s.write(&t1, 1, 10).unwrap();
    let ticket1 = s.commit(t1).unwrap();
    let t2 = s.begin().unwrap();
    s.write(&t2, 2, 20).unwrap();
    let ticket2 = s.commit(t2).unwrap();
    engine.flush().unwrap();
    assert!(engine.is_durable(&ticket1).unwrap());
    assert!(engine.is_durable(&ticket2).unwrap());

    // These commit records sit in the parked daemon's queue: the
    // sessions are pre-committed (locks gone) but not durable.
    let t3 = s.begin().unwrap();
    s.write(&t3, 1, 111).unwrap();
    s.write(&t3, 3, 30).unwrap();
    let ticket3 = s.commit(t3).unwrap();
    let t4 = s.begin().unwrap();
    s.write(&t4, 4, 40).unwrap();
    assert!(!engine.is_durable(&ticket3).unwrap());
    assert_eq!(
        engine.read(1).unwrap(),
        Some(111),
        "volatile image moved on"
    );

    engine.crash().unwrap();
    let (engine, info) = Engine::recover(opts).unwrap();
    assert_eq!(
        info.committed,
        vec![ticket1.txn, ticket2.txn],
        "exactly the durable prefix survives"
    );
    // t3 and t4 died in the parked daemon's queue: their records never
    // reached any device, so recovery does not even see them.
    assert!(!info.committed.contains(&ticket3.txn));
    assert!(!info.committed.contains(&t4.id()));
    assert_eq!(engine.read(1).unwrap(), Some(10), "t3's update rolled away");
    assert_eq!(engine.read(2).unwrap(), Some(20));
    assert_eq!(engine.read(3).unwrap(), None);
    assert_eq!(engine.read(4).unwrap(), None);
    engine.shutdown().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// §5.2 dependency write ordering, observed at the device level: with a
/// partitioned log whose device 0 is slow and device 1 fast, a dependent
/// transaction's commit page (bound for the fast device) is *held back*
/// until its dependency's page (stuck on the slow device) is written. A
/// crash in that window leaves neither on disk.
#[test]
fn dependent_commit_is_never_written_before_its_dependency() {
    let dir = tmp_dir("dep-order");
    let opts = EngineOptions::new(CommitPolicy::Partitioned { devices: 2 }, &dir)
        .with_device_latencies(vec![Duration::from_millis(600), Duration::from_millis(1)])
        .with_flush_interval(Duration::from_millis(15));
    let engine = Engine::start(opts.clone()).unwrap();
    let s = engine.session();

    // Transaction A writes key 7 and pre-commits; its page (seqno 0)
    // goes to slow device 0.
    let a = s.begin().unwrap();
    s.write_typical(&a, 7, 1).unwrap();
    let ticket_a = s.commit(a).unwrap();
    // Let the daemon's timeout cut A's page and dispatch it before B's
    // records enter the queue, so B's page is a separate, later one.
    std::thread::sleep(Duration::from_millis(40));

    // B takes A's released lock (pre-commit!), inheriting a commit
    // dependency on A, and pre-commits too; its page (seqno 1) goes to
    // fast device 1 — which must wait for device 0.
    let b = s.begin().unwrap();
    s.write_typical(&b, 7, 2).unwrap();
    let ticket_b = s.commit(b).unwrap();
    std::thread::sleep(Duration::from_millis(80));

    assert!(
        !engine.is_durable(&ticket_a).unwrap(),
        "A's page is still inside the slow device's write"
    );
    assert!(
        !engine.is_durable(&ticket_b).unwrap(),
        "B durable before A would break the dependency order"
    );

    // Crash while device 0 is mid-write: A's page is lost, and the
    // writer for device 1 was still holding B's page back.
    engine.crash().unwrap();
    let fast_records = read_log_file(&dir.join("wal-d1.log")).unwrap();
    assert!(
        !fast_records
            .iter()
            .any(|(_, r)| matches!(r, LogRecord::Commit { .. })),
        "no commit record ever reached the fast device ahead of its dependency"
    );
    let (engine, info) = Engine::recover(opts).unwrap();
    assert!(
        !info.committed.contains(&ticket_b.txn),
        "dependent B must not be recovered when dependency A is lost"
    );
    assert!(!info.committed.contains(&ticket_a.txn));
    assert_eq!(engine.read(7).unwrap(), None);
    engine.shutdown().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// The same dependency chain without a crash: when the dependent is
/// reported durable, its dependency must already be durable.
#[test]
fn dependency_becomes_durable_no_later_than_dependent() {
    let dir = tmp_dir("dep-wait");
    let opts = EngineOptions::new(CommitPolicy::Partitioned { devices: 2 }, &dir)
        .with_device_latencies(vec![Duration::from_millis(60), Duration::from_millis(1)])
        .with_flush_interval(Duration::from_millis(5));
    let engine = Engine::start(opts.clone()).unwrap();
    let s = engine.session();
    let a = s.begin().unwrap();
    s.write_typical(&a, 7, 1).unwrap();
    let ticket_a = s.commit(a).unwrap();
    std::thread::sleep(Duration::from_millis(15));
    let b = s.begin().unwrap();
    s.write_typical(&b, 7, 2).unwrap();
    let ticket_b = s.commit(b).unwrap();
    s.wait_durable(&ticket_b).unwrap();
    assert!(
        engine.is_durable(&ticket_a).unwrap(),
        "B durable implies A durable"
    );
    engine.shutdown().unwrap();
    // Both survive a restart.
    let (engine, info) = Engine::recover(opts).unwrap();
    assert!(info.committed.contains(&ticket_a.txn));
    assert!(info.committed.contains(&ticket_b.txn));
    assert_eq!(engine.read(7).unwrap(), Some(2));
    engine.shutdown().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// Regression: the compaction snapshot must survive the engine restart
/// that follows recovery. Recovery writes the snapshot and hands the
/// *same* open devices to the new engine — an earlier version reopened
/// (and truncated) the files, so the very next restart recovered an
/// empty store.
#[test]
fn repeated_recovery_preserves_committed_state() {
    let dir = tmp_dir("recover-twice");
    let opts = EngineOptions::new(CommitPolicy::Group, &dir)
        .with_page_write_latency(Duration::from_micros(200))
        .with_flush_interval(Duration::from_micros(500));
    let engine = Engine::start(opts.clone()).unwrap();
    let s = engine.session();
    let t = s.begin().unwrap();
    s.write(&t, 1, 10).unwrap();
    s.commit_durable(t).unwrap();
    engine.shutdown().unwrap();

    // First recovery compacts into a snapshot generation…
    let (engine, info) = Engine::recover(opts.clone()).unwrap();
    assert_eq!(info.committed.len(), 1);
    assert_eq!(engine.read(1).unwrap(), Some(10));
    // …and the recovered engine keeps committing on top of it.
    let s = engine.session();
    let t = s.begin().unwrap();
    s.write(&t, 2, 20).unwrap();
    s.commit_durable(t).unwrap();
    engine.shutdown().unwrap();

    // Crash/recover again: both the snapshotted and the post-recovery
    // commits must still be there (the original bug lost everything).
    let (engine, _) = Engine::recover(opts.clone()).unwrap();
    assert_eq!(engine.read(1).unwrap(), Some(10), "snapshot survived");
    assert_eq!(
        engine.read(2).unwrap(),
        Some(20),
        "post-recovery commit survived"
    );
    engine.crash().unwrap();
    let (engine, _) = Engine::recover(opts).unwrap();
    assert_eq!(engine.read(1).unwrap(), Some(10));
    assert_eq!(engine.read(2).unwrap(), Some(20));
    engine.shutdown().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// A crash *during* compaction — the new generation's snapshot never
/// finished (no transaction-0 commit record) — must fall back to the
/// intact previous generation instead of trusting the torn snapshot.
#[test]
fn torn_snapshot_generation_falls_back_to_previous() {
    let dir = tmp_dir("torn-snapshot");
    let opts = EngineOptions::new(CommitPolicy::Group, &dir)
        .with_page_write_latency(Duration::from_micros(200))
        .with_flush_interval(Duration::from_micros(500));
    let engine = Engine::start(opts.clone()).unwrap();
    let s = engine.session();
    let t = s.begin().unwrap();
    s.write(&t, 1, 10).unwrap();
    s.commit_durable(t).unwrap();
    engine.shutdown().unwrap();

    // Hand-craft what a recovery that died mid-snapshot leaves behind:
    // a generation-1 device file whose synthetic transaction 0 began
    // rewriting the image but never committed.
    let mut dev = WalDevice::create(dir.join("wal-gen1-d0.log"), 4096, Duration::ZERO).unwrap();
    dev.append_page(&[
        (Lsn(1), LogRecord::Begin { txn: TxnId(0) }),
        (
            Lsn(2),
            LogRecord::Update {
                txn: TxnId(0),
                key: 1,
                old: None,
                new: 999, // a value the real image never held
                padding: 0,
            },
        ),
    ])
    .unwrap();
    drop(dev);

    let (engine, info) = Engine::recover(opts.clone()).unwrap();
    assert_eq!(
        engine.read(1).unwrap(),
        Some(10),
        "recovery used the intact generation, not the torn snapshot"
    );
    assert_eq!(info.committed.len(), 1);
    engine.shutdown().unwrap();
    // The rewritten directory holds exactly one complete generation now.
    let (engine, _) = Engine::recover(opts).unwrap();
    assert_eq!(engine.read(1).unwrap(), Some(10));
    engine.shutdown().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// Cross-shard transfers from 16 threads must always terminate: every
/// conflict either waits its turn or is broken by the merged-edge
/// deadlock detector ([`mmdb_recovery::detect_deadlocks_in`] over the
/// per-shard waits-for graphs), never left to hang. The key pairs are
/// chosen from a small hot set spread over 8 shards so most transfers
/// cross shards and many collide head-on in both lock orders.
#[test]
fn cross_shard_transfers_from_16_threads_never_deadlock() {
    let dir = tmp_dir("deadlock-hammer");
    let opts = EngineOptions::new(CommitPolicy::Group, &dir)
        .with_page_write_latency(Duration::from_micros(100))
        .with_flush_interval(Duration::from_micros(300))
        .with_lock_wait_timeout(Duration::from_secs(5))
        .with_shards(8);
    let engine = Engine::start(opts).unwrap();
    const KEYS: u64 = 12;
    let s = engine.session();
    let t = s.begin().unwrap();
    for k in 0..KEYS {
        s.write(&t, k, 1_000).unwrap();
    }
    s.commit_durable(t).unwrap();

    let mut handles = Vec::new();
    for c in 0..16u64 {
        let s = engine.session();
        handles.push(std::thread::spawn(move || {
            let mut state = 0x9E37_79B9u64.wrapping_mul(c + 1);
            let mut committed = 0u64;
            for _ in 0..40 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let from = (state >> 33) % KEYS;
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let to = (state >> 33) % KEYS;
                if from == to {
                    continue;
                }
                match s.transfer(from, to, 1) {
                    Ok(_) => committed += 1,
                    Err(Error::TransactionAborted(_)) | Err(Error::LockConflict { .. }) => {}
                    Err(e) => panic!("unexpected transfer error: {e}"),
                }
            }
            committed
        }));
    }
    let committed: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(committed > 0, "the hammer must make forward progress");
    engine.flush().unwrap();
    let total: i64 = (0..KEYS)
        .map(|k| engine.read(k).unwrap().unwrap_or(0))
        .sum();
    assert_eq!(total, (KEYS as i64) * 1_000, "transfers conserve money");

    // The obs counters must agree with what the hammer saw: the seed
    // commit plus every successful transfer, and deadlock-victim aborts
    // (summed over the per-shard family) never exceeding total aborts.
    let stats = engine.stats();
    assert_eq!(
        stats.counter("mmdb_session_commits_total"),
        Some(committed + 1),
        "commit counter diverged from the driver's count"
    );
    let aborts = stats.counter("mmdb_session_aborts_total").unwrap();
    let deadlock_aborts = stats.counter_sum("mmdb_session_deadlock_aborts_total");
    assert!(
        deadlock_aborts <= aborts,
        "deadlock victims ({deadlock_aborts}) exceed total aborts ({aborts})"
    );
    engine.audit().unwrap();
    // Latency recording happens in the writers' finalize loop *after*
    // the durable watermark advances, so flush() alone doesn't order a
    // snapshot after the last batch's recordings — shutdown (which
    // joins the writer threads) does. The registry outlives the engine.
    let registry = engine.registry();
    engine.shutdown().unwrap();
    let stats = registry.snapshot();
    let latency = stats
        .histogram("mmdb_session_commit_latency_us")
        .expect("commit latency histogram");
    assert_eq!(
        latency.count,
        committed + 1,
        "every durable commit records exactly one begin-to-durable sample"
    );
    assert_eq!(stats.gauge("mmdb_session_durable_lag_lsn"), Some(0));
    std::fs::remove_dir_all(&dir).ok();
}

/// The log is shard-agnostic: state committed under one shard count must
/// recover bit-for-bit under a different one (the snapshot merges every
/// shard's slice of the image, and recovery redistributes by the *new*
/// hash layout).
#[test]
fn recovery_merges_all_shards_and_survives_a_shard_count_change() {
    let dir = tmp_dir("shard-change");
    let opts5 = EngineOptions::new(CommitPolicy::Group, &dir)
        .with_page_write_latency(Duration::from_micros(200))
        .with_flush_interval(Duration::from_micros(500))
        .with_shards(5);
    let engine = Engine::start(opts5.clone()).unwrap();
    let s = engine.session();
    // 64 keys land on every one of the 5 shards.
    for k in 0..64u64 {
        let t = s.begin().unwrap();
        s.write(&t, k, (k as i64) * 7 - 3).unwrap();
        s.commit_durable(t).unwrap();
    }
    engine.crash().unwrap();

    // Recover under 3 shards: every key must come back regardless of
    // which shard owned it before the crash.
    let opts3 = opts5.clone().with_shards(3);
    let (engine, info) = Engine::recover(opts3).unwrap();
    assert_eq!(info.committed.len(), 64);
    for k in 0..64u64 {
        assert_eq!(engine.read(k).unwrap(), Some((k as i64) * 7 - 3));
    }
    // The re-sharded engine keeps working and still passes its audit.
    let s = engine.session();
    let t = s.begin().unwrap();
    s.write(&t, 999, 1).unwrap();
    s.commit_durable(t).unwrap();
    engine.audit().unwrap();
    engine.shutdown().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// One client's worth of generated transactions: each is a list of
/// `key := value` writes.
type ClientScript = Vec<Vec<(u64, i64)>>;

fn client_strategy() -> impl Strategy<Value = ClientScript> {
    prop::collection::vec(prop::collection::vec((0u64..6, -100i64..100), 1..4), 1..5)
}

/// Like [`client_strategy`] but over 16 keys, so transactions span
/// several lock-manager shards.
fn sharded_client_strategy() -> impl Strategy<Value = ClientScript> {
    prop::collection::vec(prop::collection::vec((0u64..16, -100i64..100), 1..5), 1..5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Concurrent sessions against the serial oracle: whatever the
    /// interleaving, the final store equals the committed transactions'
    /// writes replayed in commit-LSN order (2PL with pre-commit
    /// serializes in precommit order, and commit LSNs are assigned at
    /// precommit under the state lock).
    #[test]
    fn concurrent_sessions_match_serial_oracle(
        scripts in prop::collection::vec(client_strategy(), 2..4),
        case in 0u64..u64::MAX,
    ) {
        let dir = tmp_dir(&format!("oracle-{case}"));
        let opts = EngineOptions::new(CommitPolicy::Group, &dir)
            .with_page_write_latency(Duration::from_micros(100))
            .with_flush_interval(Duration::from_micros(300))
            .with_lock_wait_timeout(Duration::from_millis(500));
        let engine = Engine::start(opts).unwrap();
        let mut handles = Vec::new();
        for script in scripts {
            let s = engine.session();
            handles.push(std::thread::spawn(move || {
                let mut committed: Vec<(u64, Vec<(u64, i64)>)> = Vec::new();
                for writes in script {
                    let txn = match s.begin() {
                        Ok(t) => t,
                        Err(_) => continue,
                    };
                    let mut ok = true;
                    for (key, value) in &writes {
                        match s.write(&txn, *key, *value) {
                            Ok(()) => {}
                            Err(Error::TransactionAborted(_)) => {
                                ok = false;
                                break;
                            }
                            Err(_) => {
                                let _ = s.abort(txn);
                                ok = false;
                                break;
                            }
                        }
                    }
                    if !ok {
                        continue;
                    }
                    if let Ok(ticket) = s.commit(txn) {
                        committed.push((ticket.lsn.0, writes));
                    }
                }
                committed
            }));
        }
        let mut committed: Vec<(u64, Vec<(u64, i64)>)> = Vec::new();
        for h in handles {
            committed.extend(h.join().expect("client thread panicked"));
        }
        engine.flush().unwrap();

        // Serial oracle: replay committed transactions in commit order.
        committed.sort_by_key(|(lsn, _)| *lsn);
        let mut model = std::collections::HashMap::new();
        for (_, writes) in &committed {
            for (key, value) in writes {
                model.insert(*key, *value);
            }
        }
        for key in 0u64..6 {
            prop_assert_eq!(
                engine.read(key).unwrap(),
                model.get(&key).copied(),
                "key {} diverged from the serial oracle", key
            );
        }
        engine.shutdown().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The sharded engine against the same serial oracle, for *any*
    /// shard count from the degenerate single shard up to 8: sharding
    /// changes which mutex guards a key and in what order a multi-key
    /// transaction locks its shards, but never the committed history.
    /// Keys range over 0..16 so multi-key transactions routinely span
    /// shards and exercise the ascending-index lock discipline.
    #[test]
    fn sharded_sessions_match_serial_oracle_for_any_shard_count(
        scripts in prop::collection::vec(sharded_client_strategy(), 2..4),
        shards in 1usize..9,
        case in 0u64..u64::MAX,
    ) {
        let dir = tmp_dir(&format!("shard-oracle-{case}"));
        let opts = EngineOptions::new(CommitPolicy::Group, &dir)
            .with_page_write_latency(Duration::from_micros(100))
            .with_flush_interval(Duration::from_micros(300))
            .with_lock_wait_timeout(Duration::from_millis(500))
            .with_shards(shards);
        let engine = Engine::start(opts).unwrap();
        let mut handles = Vec::new();
        for script in scripts {
            let s = engine.session();
            handles.push(std::thread::spawn(move || {
                let mut committed: Vec<(u64, Vec<(u64, i64)>)> = Vec::new();
                for writes in script {
                    let txn = match s.begin() {
                        Ok(t) => t,
                        Err(_) => continue,
                    };
                    let mut ok = true;
                    for (key, value) in &writes {
                        match s.write(&txn, *key, *value) {
                            Ok(()) => {}
                            Err(Error::TransactionAborted(_)) => {
                                ok = false;
                                break;
                            }
                            Err(_) => {
                                let _ = s.abort(txn);
                                ok = false;
                                break;
                            }
                        }
                    }
                    if !ok {
                        continue;
                    }
                    if let Ok(ticket) = s.commit(txn) {
                        committed.push((ticket.lsn.0, writes));
                    }
                }
                committed
            }));
        }
        let mut committed: Vec<(u64, Vec<(u64, i64)>)> = Vec::new();
        for h in handles {
            committed.extend(h.join().expect("client thread panicked"));
        }
        engine.flush().unwrap();

        committed.sort_by_key(|(lsn, _)| *lsn);
        let mut model = std::collections::HashMap::new();
        for (_, writes) in &committed {
            for (key, value) in writes {
                model.insert(*key, *value);
            }
        }
        for key in 0u64..16 {
            prop_assert_eq!(
                engine.read(key).unwrap(),
                model.get(&key).copied(),
                "key {} diverged from the serial oracle under {} shard(s)", key, shards
            );
        }
        engine.audit().unwrap();
        engine.shutdown().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}
