//! Property-based crash testing of the §5 recovery machinery: whatever
//! the workload, the commit mode, and the crash point, recovery restores
//! exactly the committed prefix.

use mmdb::{CommitMode, TransactionalStore};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    /// Transfer between two of 16 accounts and commit.
    Transfer { from: u8, to: u8, amount: i16 },
    /// Start a transaction, write, and abort it.
    AbortedWrite { key: u8, value: i16 },
    /// Force the log out.
    Flush,
    /// Sweep a checkpoint.
    Checkpoint,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..16, 0u8..16, any::<i16>()).prop_map(|(from, to, amount)| Op::Transfer {
            from,
            to,
            amount
        }),
        (0u8..16, any::<i16>()).prop_map(|(key, value)| Op::AbortedWrite { key, value }),
        Just(Op::Flush),
        Just(Op::Checkpoint),
    ]
}

fn mode_strategy() -> impl Strategy<Value = CommitMode> {
    prop_oneof![
        Just(CommitMode::Synchronous),
        Just(CommitMode::GroupCommit),
        Just(CommitMode::PartitionedLog { devices: 3 }),
        Just(CommitMode::StableMemory {
            capacity_bytes: 1 << 20
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn recovery_restores_exactly_the_committed_state(
        mode in mode_strategy(),
        ops in prop::collection::vec(op_strategy(), 1..60),
        final_flush in any::<bool>(),
    ) {
        let mut store = TransactionalStore::new(mode);
        // Oracle of committed state only.
        let mut oracle: std::collections::HashMap<u64, i64> =
            (0..16).map(|a| (a, 1_000)).collect();
        let seed = store.begin();
        for a in 0..16u64 {
            store.write(&seed, a, 1_000).unwrap();
        }
        store.commit(seed).unwrap();
        store.flush();
        let mut committed_txns = 1usize;

        for op in &ops {
            match op {
                Op::Transfer { from, to, amount } => {
                    let (from, to, amount) = (*from as u64, *to as u64, *amount as i64);
                    store.transfer(from, to, amount).unwrap();
                    *oracle.get_mut(&from).unwrap() -= amount;
                    *oracle.get_mut(&to).unwrap() += amount;
                    committed_txns += 1;
                }
                Op::AbortedWrite { key, value } => {
                    let t = store.begin();
                    store.write(&t, *key as u64, *value as i64).unwrap();
                    store.abort(t).unwrap();
                }
                Op::Flush => store.flush(),
                Op::Checkpoint => {
                    store.checkpoint(usize::MAX);
                }
            }
        }
        if final_flush {
            store.flush();
        }

        let (recovered, report) = TransactionalStore::recover(store.crash());

        // Invariant 1: committed-and-durable transactions all appear; no
        // phantom commits.
        prop_assert!(report.committed.len() <= committed_txns);
        if final_flush || matches!(mode, CommitMode::Synchronous | CommitMode::StableMemory { .. }) {
            prop_assert_eq!(report.committed.len(), committed_txns);
            // Invariant 2: with everything durable, the recovered state
            // equals the committed oracle exactly.
            for a in 0..16u64 {
                prop_assert_eq!(recovered.read(a), Some(oracle[&a]), "account {}", a);
            }
        }

        // Invariant 3: money is conserved in every case where the final
        // flush ran (transfers are zero-sum, aborts are undone).
        if final_flush {
            let total: i64 = (0..16).map(|a| recovered.read(a).unwrap_or(0)).sum();
            prop_assert_eq!(total, 16_000);
        }
    }

    #[test]
    fn crash_mid_stream_never_resurrects_uncommitted_data(
        mode in mode_strategy(),
        committed in 1u64..30,
    ) {
        let mut store = TransactionalStore::new(mode);
        let seed = store.begin();
        store.write(&seed, 0, 0).unwrap();
        store.commit(seed).unwrap();
        for i in 0..committed {
            let t = store.begin();
            store.write(&t, 1, i as i64).unwrap();
            store.commit(t).unwrap();
        }
        store.flush();
        // The doomed transaction writes a sentinel nothing else writes.
        let doomed = store.begin();
        store.write(&doomed, 2, 424_242).unwrap();
        store.checkpoint(usize::MAX); // fuzzy: may capture the dirty value
        let (recovered, _) = TransactionalStore::recover(store.crash());
        prop_assert_ne!(recovered.read(2), Some(424_242));
        prop_assert_eq!(recovered.read(1), Some(committed as i64 - 1));
    }
}
