//! Property-based audits: random mutation workloads against every
//! [`Auditable`] engine structure, with `audit()` (and the index trees'
//! `check_invariants`) run after each mutation batch.
//!
//! The index workloads deliberately lean delete-heavy: B+-tree
//! borrow/merge and AVL rebalance paths only fire when deletions shrink
//! nodes below their minimums, so uniform insert/delete mixes would leave
//! the most intricate code paths mostly cold.

use mmdb::VersionedStore;
use mmdb_index::{AvlTree, BPlusTree};
use mmdb_recovery::{CommitMode, LockManager, RecoveryManager};
use mmdb_session::{CommitPolicy, Engine, EngineOptions};
use mmdb_storage::{BufferPool, CostMeter, HeapFile, IoKind, ReplacementPolicy, SimDisk};
use mmdb_types::{Auditable, TxnId};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

/// Serializes the property tests in this binary. The sharded-engine
/// workload runs a real-time engine whose daemon threads rely on short
/// sleeps (flush interval, lock-wait deadlines); with the harness
/// running tests in parallel, the pure-CPU tree/storage workloads here
/// starve those threads on small CI runners and the engine test turns
/// load-flaky. One test at a time costs nothing on the 1–2 cores CI
/// gives us and removes the only source of cross-test scheduling
/// pressure.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    // A poisoned lock only means an earlier test failed; the guard is
    // pure scheduling, so later tests still run (and report their own
    // results) rather than cascading the first panic.
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

#[derive(Debug, Clone)]
enum TreeOp {
    Insert(u16),
    Remove(u16),
    Range(u16, u16),
}

fn tree_op() -> impl Strategy<Value = TreeOp> {
    // Deletions outweigh insertions 2:1 so trees repeatedly shrink through
    // the underflow/rebalance paths; the narrow key space forces overlap.
    prop_oneof![
        (0u16..512).prop_map(TreeOp::Insert),
        (0u16..512).prop_map(TreeOp::Remove),
        (0u16..512).prop_map(TreeOp::Remove),
        (0u16..512, 0u16..512).prop_map(|(a, b)| TreeOp::Range(a.min(b), a.max(b))),
    ]
}

proptest! {
    #[test]
    fn bptree_invariants_hold_under_random_workloads(
        ops in proptest::collection::vec(tree_op(), 1..400),
        branching in 3usize..8,
        leaf_capacity in 2usize..8,
    ) {
        let _serial = serial();
        let mut tree: BPlusTree<u16, u32> = BPlusTree::new(branching, leaf_capacity);
        let mut model: BTreeMap<u16, u32> = BTreeMap::new();
        for (i, op) in ops.iter().enumerate() {
            match op {
                TreeOp::Insert(k) => {
                    prop_assert_eq!(tree.insert(*k, i as u32), model.insert(*k, i as u32));
                }
                TreeOp::Remove(k) => {
                    prop_assert_eq!(tree.remove(k), model.remove(k));
                }
                TreeOp::Range(lo, hi) => {
                    let got: Vec<u16> = tree.range(lo, hi).iter().map(|(k, _)| **k).collect();
                    let want: Vec<u16> = model.range(lo..=hi).map(|(k, _)| *k).collect();
                    prop_assert_eq!(got, want);
                }
            }
            if let Err(v) = tree.audit() {
                return Err(TestCaseError::fail(format!("after op {i} ({op:?}): {v}")));
            }
        }
        prop_assert_eq!(tree.len(), model.len());
    }

    #[test]
    fn bptree_survives_draining_to_empty(
        keys in proptest::collection::btree_set(0u16..2_000, 1..300),
        branching in 3usize..8,
    ) {
        let _serial = serial();
        // Insert everything, then delete everything in an unrelated order:
        // the pure-shrink direction drives root collapse and every
        // merge/borrow combination.
        let mut tree: BPlusTree<u16, u16> = BPlusTree::new(branching, branching);
        for &k in &keys {
            tree.insert(k, k);
        }
        tree.audit().map_err(|v| TestCaseError::fail(v.to_string()))?;
        let mut doomed: Vec<u16> = keys.iter().copied().collect();
        // Deterministic but order-scrambling shuffle.
        doomed.sort_by_key(|k| (k.wrapping_mul(2_654_435_761u32 as u16), *k));
        for (i, k) in doomed.iter().enumerate() {
            prop_assert_eq!(tree.remove(k), Some(*k));
            if let Err(v) = tree.audit() {
                return Err(TestCaseError::fail(format!("after delete {i} of key {k}: {v}")));
            }
        }
        prop_assert!(tree.is_empty());
    }

    #[test]
    fn avl_invariants_hold_under_random_workloads(
        ops in proptest::collection::vec(tree_op(), 1..400),
    ) {
        let _serial = serial();
        let mut tree: AvlTree<u16, u32> = AvlTree::new();
        let mut model: BTreeMap<u16, u32> = BTreeMap::new();
        for (i, op) in ops.iter().enumerate() {
            match op {
                TreeOp::Insert(k) => {
                    prop_assert_eq!(tree.insert(*k, i as u32), model.insert(*k, i as u32));
                }
                TreeOp::Remove(k) => {
                    prop_assert_eq!(tree.remove(k), model.remove(k));
                }
                TreeOp::Range(lo, hi) => {
                    let got: Vec<u16> = tree.range(lo, hi).iter().map(|(k, _)| **k).collect();
                    let want: Vec<u16> = model.range(lo..=hi).map(|(k, _)| *k).collect();
                    prop_assert_eq!(got, want);
                }
            }
            if let Err(v) = tree.audit() {
                return Err(TestCaseError::fail(format!("after op {i} ({op:?}): {v}")));
            }
        }
        prop_assert_eq!(tree.len(), model.len());
    }

    #[test]
    fn buffer_pool_accounting_survives_pressure(
        accesses in proptest::collection::vec((0usize..24, 0u8..4), 1..200),
        capacity in 2usize..8,
        policy_pick in 0u8..3,
    ) {
        let _serial = serial();
        let policy = match policy_pick {
            0 => ReplacementPolicy::Lru,
            1 => ReplacementPolicy::Clock,
            _ => ReplacementPolicy::Random { seed: 42 },
        };
        let meter = Arc::new(CostMeter::new());
        let mut disk = SimDisk::new(meter);
        let ids: Vec<_> = (0..24).map(|_| disk.allocate()).collect();
        for &id in &ids {
            disk.write(id, IoKind::Sequential, &vec![0u8; mmdb_types::PAGE_SIZE]).unwrap();
        }
        let mut pool = BufferPool::new(capacity, policy);
        let mut pinned: Vec<mmdb_types::PageId> = Vec::new();
        for (i, &(page, kind)) in accesses.iter().enumerate() {
            let id = ids[page];
            match kind {
                0 => { pool.get(&mut disk, id, IoKind::Random).unwrap(); }
                1 => { pool.get_mut(&mut disk, id, IoKind::Random).unwrap()[0] = i as u8; }
                2 => {
                    // Pin at most one page so the pool can always evict.
                    if pinned.is_empty() {
                        pool.get(&mut disk, id, IoKind::Random).unwrap();
                        pool.pin(id).unwrap();
                        pinned.push(id);
                    }
                }
                _ => {
                    if let Some(id) = pinned.pop() {
                        pool.unpin(id).unwrap();
                    } else {
                        pool.flush_all(&mut disk).unwrap();
                    }
                }
            }
            if let Err(v) = pool.audit() {
                return Err(TestCaseError::fail(format!("after access {i}: {v}")));
            }
        }
    }

    #[test]
    fn heap_file_bookkeeping_matches_pages(
        ops in proptest::collection::vec((0u8..4, 0u16..200), 1..150),
    ) {
        let _serial = serial();
        let meter = Arc::new(CostMeter::new());
        let mut disk = SimDisk::new(meter);
        let mut pool = BufferPool::new(16, ReplacementPolicy::Lru);
        let mut hf = HeapFile::new();
        let mut tids = Vec::new();
        for (i, &(kind, key)) in ops.iter().enumerate() {
            let tuple = mmdb_types::Tuple::new(vec![
                mmdb_types::Value::Int(key as i64),
                mmdb_types::Value::Str(format!("row-{key}-{}", "x".repeat(key as usize % 64))),
            ]);
            match kind {
                0 | 1 => {
                    tids.push(hf.insert(&mut disk, &mut pool, &tuple).unwrap());
                }
                2 => {
                    if !tids.is_empty() {
                        let tid = tids.swap_remove(key as usize % tids.len());
                        hf.delete(&mut disk, &mut pool, tid).unwrap();
                    }
                }
                _ => {
                    if !tids.is_empty() {
                        let slot = key as usize % tids.len();
                        let tid = tids[slot];
                        tids[slot] = hf.update(&mut disk, &mut pool, tid, &tuple).unwrap();
                    }
                }
            }
            if let Err(v) = hf.audit_with(&mut disk, &mut pool) {
                return Err(TestCaseError::fail(format!("after op {i}: {v}")));
            }
        }
        assert_eq!(hf.tuple_count(), tids.len());
    }

    #[test]
    fn versioned_store_chains_stay_ordered(
        ops in proptest::collection::vec((0u8..5, 0u64..16, -100i64..100), 1..200),
    ) {
        let _serial = serial();
        let mut store = VersionedStore::new();
        let mut writers = Vec::new();
        let mut readers = Vec::new();
        for (i, &(kind, key, value)) in ops.iter().enumerate() {
            match kind {
                0 => writers.push(store.begin_write()),
                1 => {
                    if let Some(w) = writers.last() {
                        // Lock conflicts with another live writer are a
                        // legal outcome, not a test failure.
                        let _ = store.write(w, key, value);
                    }
                }
                2 => {
                    if !writers.is_empty() {
                        let w = writers.swap_remove(key as usize % writers.len());
                        if value < 0 {
                            store.abort(w).unwrap();
                        } else {
                            store.commit(w).unwrap();
                        }
                    }
                }
                3 => readers.push(store.begin_read()),
                _ => {
                    if !readers.is_empty() {
                        let r = readers.swap_remove(key as usize % readers.len());
                        store.end_read(r);
                    } else {
                        store.gc();
                    }
                }
            }
            if let Err(v) = store.audit() {
                return Err(TestCaseError::fail(format!("after op {i}: {v}")));
            }
        }
    }

    #[test]
    fn lock_manager_sets_stay_consistent(
        ops in proptest::collection::vec((0u8..5, 1u64..8, 0u64..12), 1..250),
    ) {
        let _serial = serial();
        let mut lm = LockManager::new();
        let mut precommitted: Vec<TxnId> = Vec::new();
        for (i, &(kind, txn, object)) in ops.iter().enumerate() {
            let txn = TxnId(txn);
            match kind {
                0 => lm.begin(txn),
                1 => {
                    if lm.is_active(txn) && !precommitted.contains(&txn) {
                        let _ = lm.acquire(txn, object);
                    }
                }
                2 => {
                    if lm.is_active(txn) && !precommitted.contains(&txn) {
                        let _ = lm.acquire_shared(txn, object);
                    }
                }
                3 => {
                    if lm.is_active(txn) && !precommitted.contains(&txn) {
                        lm.precommit(txn).unwrap();
                        precommitted.push(txn);
                    } else if let Some(p) = precommitted.pop() {
                        lm.finalize_commit(p);
                    }
                }
                _ => {
                    if lm.is_active(txn) && !precommitted.contains(&txn) {
                        lm.abort(txn);
                    }
                }
            }
            if let Err(v) = lm.audit() {
                return Err(TestCaseError::fail(format!("after op {i} ({kind}, txn {}, obj {object}): {v}", txn.0)));
            }
            let _ = lm.detect_deadlocks();
        }
    }

    #[test]
    fn recovery_manager_log_bookkeeping_holds(
        ops in proptest::collection::vec((0u8..5, 0u64..16, -500i64..500), 1..120),
        mode_pick in 0u8..4,
    ) {
        let _serial = serial();
        let mode = match mode_pick {
            0 => CommitMode::Synchronous,
            1 => CommitMode::GroupCommit,
            2 => CommitMode::PartitionedLog { devices: 3 },
            _ => CommitMode::StableMemory { capacity_bytes: 1 << 20 },
        };
        let mut m = RecoveryManager::new(mode);
        let mut open = Vec::new();
        for (i, &(kind, key, value)) in ops.iter().enumerate() {
            match kind {
                0 => open.push(m.begin()),
                1 => {
                    if let Some(t) = open.last() {
                        let _ = m.write(t, key, value); // lock conflicts are legal
                    }
                }
                2 => {
                    if !open.is_empty() {
                        let t = open.swap_remove(key as usize % open.len());
                        if value < 0 {
                            m.abort(t).unwrap();
                        } else {
                            m.commit(t).unwrap();
                        }
                    }
                }
                3 => { m.flush(); }
                _ => { m.checkpoint_sweep(4); }
            }
            if let Err(v) = m.audit() {
                return Err(TestCaseError::fail(format!("after op {i}: {v}")));
            }
        }
    }

    /// The sharded session engine under a random single-driver workload,
    /// audited after every operation: no key owned by a foreign shard,
    /// undo entries only for live transactions on shards they touched,
    /// empty lock tables once the transaction table quiesces — plus the
    /// queue/durability invariants the daemon always checked.
    #[test]
    fn sharded_engine_invariants_hold_under_random_workloads(
        ops in proptest::collection::vec((0u8..5, 0u64..24, -500i64..500), 1..60),
        shards in 1usize..9,
        case in 0u64..u64::MAX,
    ) {
        let _serial = serial();
        let dir = std::env::temp_dir().join(
            format!("mmdb-audit-shard-{}-{case}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let opts = EngineOptions::new(CommitPolicy::Group, &dir)
            .with_page_write_latency(Duration::from_micros(100))
            .with_flush_interval(Duration::from_micros(300))
            .with_lock_wait_timeout(Duration::from_millis(50))
            .with_shards(shards);
        let engine = Engine::start(opts).unwrap();
        let s = engine.session();
        let mut open = Vec::new();
        for (i, &(kind, key, value)) in ops.iter().enumerate() {
            match kind {
                0 => {
                    if let Ok(t) = s.begin() {
                        open.push(t);
                    }
                }
                1 | 2 => {
                    if let Some(t) = open.last() {
                        // A conflict or induced abort is a legal outcome,
                        // but the handle must not leak held locks.
                        if s.write(t, key, value).is_err() {
                            if let Some(t) = open.pop() {
                                let _ = s.abort(t);
                            }
                        }
                    }
                }
                3 => {
                    if !open.is_empty() {
                        let t = open.swap_remove(key as usize % open.len());
                        let _ = s.commit(t);
                    }
                }
                _ => {
                    if !open.is_empty() {
                        let t = open.swap_remove(key as usize % open.len());
                        let _ = s.abort(t);
                    }
                }
            }
            if let Err(v) = engine.audit() {
                return Err(TestCaseError::fail(format!(
                    "after op {i} under {shards} shard(s): {v}")));
            }
        }
        // Quiesce: finish every open transaction, then the audit's
        // lock-table-empty-after-quiesce check must hold.
        for t in open.drain(..) {
            let _ = s.abort(t);
        }
        engine.flush().unwrap();
        if let Err(v) = engine.audit() {
            return Err(TestCaseError::fail(format!(
                "after quiesce under {shards} shard(s): {v}")));
        }
        engine.shutdown().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}
