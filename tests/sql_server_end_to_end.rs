//! End-to-end tests of the SQL wire front end: a real TCP server over
//! a real engine, driven only through the client API — CRUD, joins,
//! explicit transactions, concurrent connections, and the full
//! crash → recover → reconnect cycle.

use mmdb_server::{Client, ClientConfig, ClientError, Server, ServerConfig};
use mmdb_session::{CommitPolicy, Engine, EngineOptions};
use mmdb_types::Value;
use std::path::PathBuf;
use std::time::Duration;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mmdb-sql-e2e-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn start(dir: &PathBuf) -> (Engine, mmdb_server::ServerHandle) {
    let engine = Engine::start(EngineOptions::new(CommitPolicy::Group, dir)).unwrap();
    let handle = Server::start(&engine, ServerConfig::default()).unwrap();
    (engine, handle)
}

#[test]
fn crud_and_join_over_tcp() {
    let dir = tmp_dir("crud");
    let (engine, handle) = start(&dir);
    let mut c = Client::connect(handle.addr()).unwrap();

    c.execute("CREATE TABLE emp (id INT, name TEXT, dept INT)")
        .unwrap();
    c.execute("CREATE TABLE dept (id INT, title TEXT)").unwrap();
    let r = c
        .execute("INSERT INTO emp VALUES (1, 'ann', 10), (2, 'bob', 20), (3, 'cat', 10)")
        .unwrap();
    assert_eq!(r.affected, 3);
    c.execute("INSERT INTO dept VALUES (10, 'eng'), (20, 'ops')")
        .unwrap();

    // Filtered select.
    let rows = c.query("SELECT name FROM emp WHERE dept = 10").unwrap();
    assert_eq!(rows.len(), 2);

    // Two-table equi-join with residual predicate.
    let r = c
        .execute(
            "SELECT emp.name, dept.title FROM emp JOIN dept ON emp.dept = dept.id \
             WHERE dept.title = 'eng'",
        )
        .unwrap();
    assert_eq!(r.columns, vec!["emp.name", "dept.title"]);
    let mut names: Vec<String> = r
        .rows
        .iter()
        .filter_map(|row| row.first())
        .filter_map(|v| v.as_str().map(str::to_string))
        .collect();
    names.sort();
    assert_eq!(names, vec!["ann", "cat"]);

    // Update and delete report affected counts.
    let r = c
        .execute("UPDATE emp SET dept = 20 WHERE name = 'cat'")
        .unwrap();
    assert_eq!(r.affected, 1);
    let r = c.execute("DELETE FROM emp WHERE dept = 20").unwrap();
    assert_eq!(r.affected, 2);
    let rows = c.query("SELECT id FROM emp").unwrap();
    assert_eq!(rows, vec![vec![Value::Int(1)]]);

    // Server-side errors arrive as error responses, not hangups — and
    // deterministic failures are marked non-retryable in-band.
    match c.execute("SELECT * FROM nope") {
        Err(ClientError::Server { msg, retryable }) => {
            assert!(msg.contains("nope"), "{msg}");
            assert!(!retryable, "a missing table is not a transient failure");
        }
        other => panic!("expected server error, got {other:?}"),
    }
    match c.execute("SELEKT 1") {
        Err(ClientError::Server { msg, retryable }) => {
            assert!(msg.contains("unknown statement"), "{msg}");
            assert!(!retryable, "a parse error is not a transient failure");
        }
        other => panic!("expected parse error, got {other:?}"),
    }
    // The connection is still usable after errors.
    assert_eq!(c.query("SELECT id FROM emp").unwrap().len(), 1);

    handle.shutdown().unwrap();
    engine.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn explicit_transactions_and_conflicts_over_tcp() {
    let dir = tmp_dir("txn");
    let (engine, handle) = start(&dir);
    let mut a = Client::connect(handle.addr()).unwrap();
    let mut b = Client::connect(handle.addr()).unwrap();

    a.execute("CREATE TABLE acct (id INT, bal INT)").unwrap();
    a.execute("INSERT INTO acct VALUES (1, 100), (2, 50)")
        .unwrap();

    // A transfers inside an explicit transaction; B sees the committed
    // result only after COMMIT returns (group commit made it durable).
    a.execute("BEGIN").unwrap();
    a.execute("UPDATE acct SET bal = bal - 30 WHERE id = 1")
        .unwrap();
    a.execute("UPDATE acct SET bal = bal + 30 WHERE id = 2")
        .unwrap();
    // B conflicts on the locked rows and is told so.
    assert!(b.execute("UPDATE acct SET bal = 0 WHERE id = 1").is_err());
    a.execute("COMMIT").unwrap();
    let rows = b.query("SELECT bal FROM acct WHERE id = 2").unwrap();
    assert_eq!(rows, vec![vec![Value::Int(80)]]);

    // ABORT really rolls back.
    b.execute("BEGIN").unwrap();
    b.execute("DELETE FROM acct WHERE id = 1").unwrap();
    b.execute("ABORT").unwrap();
    assert_eq!(b.query("SELECT id FROM acct").unwrap().len(), 2);

    // A dropped connection with an open transaction releases its locks.
    b.execute("BEGIN").unwrap();
    b.execute("UPDATE acct SET bal = 1 WHERE id = 1").unwrap();
    drop(b);
    for _ in 0..50 {
        if a.execute("UPDATE acct SET bal = bal + 1 WHERE id = 1")
            .is_ok()
        {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    let rows = a.query("SELECT bal FROM acct WHERE id = 1").unwrap();
    assert_eq!(rows, vec![vec![Value::Int(71)]]);

    handle.shutdown().unwrap();
    engine.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn catalog_and_rows_survive_crash_recover_reconnect() {
    let dir = tmp_dir("crash");
    let (engine, handle) = start(&dir);
    {
        let mut c = Client::connect(handle.addr()).unwrap();
        c.execute("CREATE TABLE kv (k INT, v TEXT)").unwrap();
        c.execute("BEGIN").unwrap();
        c.execute("INSERT INTO kv VALUES (1, 'one'), (2, 'two')")
            .unwrap();
        c.execute("COMMIT").unwrap();
        c.execute("UPDATE kv SET v = 'TWO' WHERE k = 2").unwrap();
        // Left uncommitted on purpose: must not survive the crash.
        c.execute("BEGIN").unwrap();
        c.execute("INSERT INTO kv VALUES (3, 'three')").unwrap();
    }
    handle.shutdown().unwrap();
    engine.crash().unwrap();

    let (engine, info) = Engine::recover(EngineOptions::new(CommitPolicy::Group, &dir)).unwrap();
    assert!(!info.committed.is_empty());
    let handle = Server::start(&engine, ServerConfig::default()).unwrap();
    let mut c = Client::connect(handle.addr()).unwrap();
    let mut rows = c.query("SELECT k, v FROM kv").unwrap();
    rows.sort();
    assert_eq!(
        rows,
        vec![
            vec![Value::Int(1), Value::Str("one".to_string())],
            vec![Value::Int(2), Value::Str("TWO".to_string())],
        ]
    );
    // The recovered catalog keeps serving writes.
    c.execute("INSERT INTO kv VALUES (4, 'four')").unwrap();
    assert_eq!(c.query("SELECT k FROM kv").unwrap().len(), 3);

    handle.shutdown().unwrap();
    engine.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn hung_server_trips_the_read_deadline_instead_of_blocking_forever() {
    // A listener that accepts (at the TCP level) but never answers: the
    // old client would block in read() indefinitely; the default-on
    // read deadline must surface a timeout in bounded time.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let config = ClientConfig {
        read_deadline: Duration::from_millis(300),
        auto_retry: false,
        ..ClientConfig::default()
    };
    let mut c = Client::connect_with(addr, config).unwrap();
    let started = std::time::Instant::now();
    match c.execute("SELECT a FROM t") {
        Err(ClientError::Timeout(_)) => {}
        other => panic!("expected a read-deadline timeout, got {other:?}"),
    }
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "timeout took {:?} — the deadline is not bounding the read",
        started.elapsed()
    );
    drop(listener);
}

#[test]
fn refused_connection_gets_an_in_band_retryable_error_and_is_counted() {
    let dir = tmp_dir("refuse");
    let engine = Engine::start(EngineOptions::new(CommitPolicy::Group, &dir)).unwrap();
    let config = ServerConfig {
        max_connections: 1,
        ..ServerConfig::default()
    };
    let handle = Server::start(&engine, config).unwrap();

    let mut a = Client::connect(handle.addr()).unwrap();
    a.execute("CREATE TABLE t (a INT)").unwrap();

    // The second connection is over capacity: the server must say so
    // in-band (a retryable error) rather than silently hanging up, and
    // must count the refusal.
    let refused = engine.registry().counter(
        "mmdb_server_refused_total",
        "Connections refused at the connection-count cap",
    );
    let before = refused.get();
    let config = ClientConfig {
        auto_retry: false,
        ..ClientConfig::default()
    };
    let mut b = Client::connect_with(handle.addr(), config).unwrap();
    match b.execute("SELECT a FROM t") {
        Err(ClientError::Server { msg, retryable }) => {
            assert!(msg.contains("capacity"), "{msg}");
            assert!(retryable, "a capacity refusal must invite a retry");
        }
        other => panic!("expected an in-band refusal, got {other:?}"),
    }
    assert!(
        refused.get() > before,
        "mmdb_server_refused_total did not move"
    );

    handle.shutdown().unwrap();
    engine.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn graceful_drain_with_an_open_transaction_recovers_clean() {
    let dir = tmp_dir("drain");
    let (engine, handle) = start(&dir);
    let mut c = Client::connect(handle.addr()).unwrap();
    c.execute("CREATE TABLE t (a INT, b INT)").unwrap();
    c.execute("INSERT INTO t VALUES (1, 10), (2, 20)").unwrap();
    // Leave a transaction open across the drain: its work must die with
    // the server, not leak into the recovered image.
    c.execute("BEGIN").unwrap();
    c.execute("UPDATE t SET b = 999 WHERE a = 1").unwrap();

    handle.shutdown().unwrap();
    drop(c);
    engine.crash().unwrap();

    let (engine, _info) = Engine::recover(EngineOptions::new(CommitPolicy::Group, &dir)).unwrap();
    let handle = Server::start(&engine, ServerConfig::default()).unwrap();
    let mut c = Client::connect(handle.addr()).unwrap();
    let mut rows = c.query("SELECT a, b FROM t").unwrap();
    rows.sort();
    assert_eq!(
        rows,
        vec![
            vec![Value::Int(1), Value::Int(10)],
            vec![Value::Int(2), Value::Int(20)],
        ],
        "the drained-but-uncommitted update leaked into recovery"
    );
    // The recovered stack still serves writes.
    c.execute("UPDATE t SET b = 11 WHERE a = 1").unwrap();
    assert_eq!(
        c.query("SELECT b FROM t WHERE a = 1").unwrap(),
        vec![vec![Value::Int(11)]]
    );

    handle.shutdown().unwrap();
    engine.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn overload_sheds_reads_in_band_and_queued_writes_on_deadline() {
    let dir = tmp_dir("shed");
    let engine = Engine::start(
        EngineOptions::new(CommitPolicy::Group, &dir)
            .with_lock_wait_timeout(Duration::from_secs(2)),
    )
    .unwrap();
    let config = ServerConfig {
        max_inflight_statements: 1,
        admission_queue: 0,
        admission_deadline: Duration::from_millis(50),
        ..ServerConfig::default()
    };
    let handle = Server::start(&engine, config).unwrap();

    let mut a = Client::connect(handle.addr()).unwrap();
    a.execute("CREATE TABLE t (a INT, b INT)").unwrap();
    a.execute("INSERT INTO t VALUES (1, 10)").unwrap();
    // A holds a row lock inside an open transaction; in-transaction
    // statements bypass admission, so this never counts against the
    // inflight capacity.
    a.execute("BEGIN").unwrap();
    a.execute("UPDATE t SET b = 11 WHERE a = 1").unwrap();

    // B's autocommit write takes the single execution slot and blocks
    // on the row lock inside the engine.
    let addr = handle.addr();
    let blocked = std::thread::spawn(move || {
        let config = ClientConfig {
            auto_retry: false,
            ..ClientConfig::default()
        };
        let mut b = Client::connect_with(addr, config).unwrap();
        b.execute("UPDATE t SET b = 12 WHERE a = 1")
    });
    std::thread::sleep(Duration::from_millis(300));

    let shed = engine.registry().counter(
        "mmdb_server_shed_total",
        "Statements shed by admission control before running",
    );
    let before = shed.get();
    let config = ClientConfig {
        auto_retry: false,
        ..ClientConfig::default()
    };
    // Reads shed immediately at capacity...
    let mut r = Client::connect_with(handle.addr(), config.clone()).unwrap();
    match r.execute("SELECT a FROM t") {
        Err(ClientError::Server { msg, retryable }) => {
            assert!(msg.contains("overloaded"), "{msg}");
            assert!(retryable, "a shed statement must invite a retry");
        }
        other => panic!("expected the read to be shed, got {other:?}"),
    }
    // ...and writes beyond the queue bound are shed too.
    let mut w = Client::connect_with(handle.addr(), config).unwrap();
    match w.execute("UPDATE t SET b = 13 WHERE a = 1") {
        Err(ClientError::Server { msg, retryable }) => {
            assert!(msg.contains("overloaded"), "{msg}");
            assert!(retryable, "a shed statement must invite a retry");
        }
        other => panic!("expected the write to be shed, got {other:?}"),
    }
    assert!(
        shed.get() >= before + 2,
        "mmdb_server_shed_total did not move"
    );

    // Releasing the lock lets the queued write through: shedding
    // refused new work without starving work already admitted.
    a.execute("ABORT").unwrap();
    let result = blocked
        .join()
        .unwrap()
        .expect("the admitted write must finish");
    assert_eq!(result.affected, 1);

    handle.shutdown().unwrap();
    engine.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_connections_commit_disjoint_rows() {
    let dir = tmp_dir("fanout");
    let (engine, handle) = start(&dir);
    let mut c = Client::connect(handle.addr()).unwrap();
    c.execute("CREATE TABLE t (id INT, who INT)").unwrap();

    let addr = handle.addr();
    let threads: Vec<_> = (0..8)
        .map(|who| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                for i in 0..10 {
                    c.execute(&format!("INSERT INTO t VALUES ({}, {who})", who * 100 + i))
                        .unwrap();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    assert_eq!(c.query("SELECT id FROM t").unwrap().len(), 80);

    handle.shutdown().unwrap();
    engine.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
