//! Shared helpers for the mmdb-suite integration tests and examples.
//!
//! The substantive code lives in the workspace crates; this library only
//! exists so the root package can host `tests/` and `examples/`.
