//! §5 — throughput limits of commit policies for memory-resident databases.
//!
//! The paper's arithmetic: a "typical" transaction writes 400 bytes of log
//! (40 bytes begin/end + 360 bytes old/new values, after Gray's banking
//! example); one 4096-byte log page takes 10 ms to write without a seek.
//!
//! * **Synchronous commit**: one log write per transaction —
//!   `1 s / 10 ms = 100` transactions per second.
//! * **Group commit**: all transactions whose commit records share a log
//!   page commit with a single write — `floor(4096/400) = 10` per group,
//!   so ~1000 tps.
//! * **Partitioned log** over `k` devices: up to `k` concurrent page
//!   writes, so ~`k × 1000` tps, bounded by the commit-group dependency
//!   lattice (modelled here by an efficiency factor).
//! * **Stable memory**: commits are immediate; steady-state throughput is
//!   still bounded by the drain rate to disk, but stripping old values of
//!   committed transactions (§5.4) roughly halves the bytes drained.

use mmdb_types::cast::f64_from_u64;

/// A commit policy whose §5 throughput bound we model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitPolicy {
    /// One synchronous log write per transaction (§5.2 opening).
    Synchronous,
    /// Group commit: one write per full commit-record page.
    GroupCommit,
    /// Group commit over `devices` parallel log devices with topological
    /// ordering of dependent commit groups.
    PartitionedLog {
        /// Number of log devices.
        devices: u32,
    },
    /// Battery-backed stable memory holding the log tail (§5.4); commits
    /// are immediate, drain is asynchronous, and only new values of
    /// committed transactions reach disk.
    StableMemory {
        /// Number of disk log devices draining the stable buffer.
        devices: u32,
    },
}

/// The §5 throughput model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputModel {
    /// Log page size in bytes (4096 in the paper).
    pub page_bytes: u64,
    /// Time to write one log page, milliseconds (10 in the paper).
    pub page_write_ms: f64,
    /// Full log bytes per transaction (400 in the paper).
    pub txn_log_bytes: u64,
    /// Of which old-value bytes removable by §5.4 compression (180).
    pub old_value_bytes: u64,
    /// Fraction of ideal parallel speedup retained by a partitioned log
    /// once dependency ordering stalls are accounted for (≤ 1).
    pub partition_efficiency: f64,
}

impl Default for ThroughputModel {
    fn default() -> Self {
        ThroughputModel {
            page_bytes: 4096,
            page_write_ms: 10.0,
            txn_log_bytes: 400,
            // The paper: ~360 bytes of old/new values, half of which are
            // old values needed only for undo.
            old_value_bytes: 180,
            partition_efficiency: 0.9,
        }
    }
}

impl ThroughputModel {
    /// Transactions whose commit records fit one log page.
    pub fn group_size(&self) -> u64 {
        (self.page_bytes / self.txn_log_bytes).max(1)
    }

    /// Log-page writes per second on one device.
    pub fn page_writes_per_second(&self) -> f64 {
        1000.0 / self.page_write_ms
    }

    /// Committed transactions per second under `policy`.
    pub fn throughput(&self, policy: CommitPolicy) -> f64 {
        match policy {
            CommitPolicy::Synchronous => self.page_writes_per_second(),
            CommitPolicy::GroupCommit => {
                self.page_writes_per_second() * f64_from_u64(self.group_size())
            }
            CommitPolicy::PartitionedLog { devices } => {
                self.page_writes_per_second()
                    * f64_from_u64(self.group_size())
                    * f64::from(devices)
                    * self.partition_efficiency
            }
            CommitPolicy::StableMemory { devices } => {
                // Drain-bound: only `txn_log_bytes - old_value_bytes` per
                // transaction reach disk, written a full page at a time
                // across `devices` with no ordering bookkeeping (§5.4).
                let disk_bytes = f64_from_u64(self.txn_log_bytes - self.old_value_bytes);
                let txns_per_page = f64_from_u64(self.page_bytes) / disk_bytes;
                self.page_writes_per_second() * txns_per_page * f64::from(devices)
            }
        }
    }

    /// §5.4 compression ratio: disk-log bytes after stripping old values of
    /// committed transactions, as a fraction of the full log.
    pub fn compression_ratio(&self) -> f64 {
        f64_from_u64(self.txn_log_bytes - self.old_value_bytes) / f64_from_u64(self.txn_log_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_headline_numbers() {
        let m = ThroughputModel::default();
        // "the system could commit at most 100 transactions per second"
        assert_eq!(m.throughput(CommitPolicy::Synchronous), 100.0);
        // "up to ten transactions per commit group ... 1000 transactions
        // per second"
        assert_eq!(m.group_size(), 10);
        assert_eq!(m.throughput(CommitPolicy::GroupCommit), 1000.0);
    }

    #[test]
    fn partitioned_log_scales_with_devices() {
        let m = ThroughputModel::default();
        let t1 = m.throughput(CommitPolicy::PartitionedLog { devices: 1 });
        let t4 = m.throughput(CommitPolicy::PartitionedLog { devices: 4 });
        assert!((t4 / t1 - 4.0).abs() < 1e-9);
        // Ordering bookkeeping costs something relative to ideal.
        assert!(t1 < m.throughput(CommitPolicy::GroupCommit));
    }

    #[test]
    fn stable_memory_beats_group_commit_via_compression() {
        let m = ThroughputModel::default();
        let group = m.throughput(CommitPolicy::GroupCommit);
        let stable = m.throughput(CommitPolicy::StableMemory { devices: 1 });
        assert!(
            stable > group * 1.5,
            "stable {stable} should beat group {group} by the compression factor"
        );
    }

    #[test]
    fn compression_roughly_halves_the_log() {
        let m = ThroughputModel::default();
        let r = m.compression_ratio();
        assert!(
            (0.5..0.6).contains(&r),
            "§5.4 says about half the log stores old values; ratio = {r}"
        );
    }

    #[test]
    fn degenerate_huge_transactions_still_commit() {
        let m = ThroughputModel {
            txn_log_bytes: 10_000,
            old_value_bytes: 4_000,
            ..ThroughputModel::default()
        };
        assert_eq!(m.group_size(), 1, "oversized txns get singleton groups");
        assert_eq!(m.throughput(CommitPolicy::GroupCommit), 100.0);
    }

    #[test]
    fn policy_ordering_matches_section5() {
        // sync < partitioned(1) <= group < stable(1) < stable(2)
        let m = ThroughputModel::default();
        let sync = m.throughput(CommitPolicy::Synchronous);
        let group = m.throughput(CommitPolicy::GroupCommit);
        let part1 = m.throughput(CommitPolicy::PartitionedLog { devices: 1 });
        let stable1 = m.throughput(CommitPolicy::StableMemory { devices: 1 });
        let stable2 = m.throughput(CommitPolicy::StableMemory { devices: 2 });
        assert!(sync < part1);
        assert!(part1 <= group);
        assert!(group < stable1);
        assert!(stable1 < stable2);
    }
}
