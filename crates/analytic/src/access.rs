//! §2 — access methods for memory-resident databases.
//!
//! The paper compares an AVL tree against a B+-tree under the objective
//!
//! ```text
//! cost = Z · |page reads| + |comparisons|
//! ```
//!
//! with `Z` the relative price of a page fault (realistically 10–30) and
//! `Y ≤ 1` the relative price of an AVL comparison versus a B+-tree
//! comparison (AVL nodes need no within-page search). Under random
//! replacement with `|M|` of the structure's `S` pages resident, each of
//! the `C` node inspections faults with probability `(1 − |M|/S)`.
//!
//! **Table 1** of the paper reports, for a grid of `(Z, Y)`, the minimum
//! memory fraction `H = |M|/S` at which the AVL tree becomes competitive;
//! [`table1`] regenerates it.

use mmdb_types::cast::f64_from_u64;
use mmdb_types::AccessGeometry;

/// Clamped miss probability `1 − resident/total`.
fn miss(resident_pages: f64, total_pages: f64) -> f64 {
    (1.0 - resident_pages / total_pages).clamp(0.0, 1.0)
}

/// Cost of one random key lookup in the AVL tree (§2):
/// `Z · C · (1 − |M|/S) + Y · C` with `C = log2(||R||) + 0.25`.
///
/// `m_pages` is the memory available to the structure, in pages.
pub fn avl_random_cost(g: &AccessGeometry, z: f64, y: f64, m_pages: f64) -> f64 {
    let c = g.avl_comparisons();
    let s = f64_from_u64(g.avl_pages());
    z * c * miss(m_pages, s) + y * c
}

/// Cost of one random key lookup in the B+-tree (§2):
/// `Z · (height + 1) · (1 − |M|/S') + C'` with `C' = log2(||R||)`.
pub fn btree_random_cost(g: &AccessGeometry, z: f64, m_pages: f64) -> f64 {
    let c = g.btree_comparisons();
    let s = f64_from_u64(g.btree_pages());
    let height = f64_from_u64(g.btree_height());
    z * (height + 1.0) * miss(m_pages, s) + c
}

/// Cost of reading `n` tuples sequentially from the AVL tree after
/// positioning. Each in-order successor step inspects about one node, and
/// without clustering each node visit is a potential fault (§2):
/// `Z · n · (1 − |M|/S) + Y · n`.
pub fn avl_sequential_cost(g: &AccessGeometry, z: f64, y: f64, m_pages: f64, n: u64) -> f64 {
    let s = f64_from_u64(g.avl_pages());
    let n = f64_from_u64(n);
    z * n * miss(m_pages, s) + y * n
}

/// Cost of reading `n` tuples sequentially from the B+-tree leaves after
/// positioning: tuples are clustered, so only `n / leaf-capacity` page
/// reads are needed, plus one comparison per tuple:
/// `Z · (n/L) · (1 − |M|/S') + n`.
pub fn btree_sequential_cost(g: &AccessGeometry, z: f64, m_pages: f64, n: u64) -> f64 {
    let s = f64_from_u64(g.btree_pages());
    let leaf_cap = f64_from_u64(g.btree_leaf_capacity());
    let n = f64_from_u64(n);
    z * (n / leaf_cap) * miss(m_pages, s) + n
}

/// Solves for the break-even memory fraction `H = |M|/S` (of the **AVL**
/// structure size) above which the AVL tree is the cheaper structure for
/// random lookups. Returns a value in `[0, 1]`; `1.0` means the AVL tree
/// needs to be entirely memory-resident, `0.0` that it always wins.
///
/// Both structures are granted the same `|M|` pages of memory, so the
/// B+-tree's resident fraction is `H' = |M|/S' = H · S/S'` (≈ `0.69·H`
/// when tuples are much wider than pointers, as the paper notes).
pub fn random_break_even_fraction(g: &AccessGeometry, z: f64, y: f64) -> f64 {
    break_even(g, |g, m| {
        btree_random_cost(g, z, m) - avl_random_cost(g, z, y, m)
    })
}

/// Break-even memory fraction `H = |M|/S` for sequential access
/// (inequality (2) of the paper), reading `n` tuples.
pub fn sequential_break_even_fraction(g: &AccessGeometry, z: f64, y: f64, n: u64) -> f64 {
    break_even(g, |g, m| {
        btree_sequential_cost(g, z, m, n) - avl_sequential_cost(g, z, y, m, n)
    })
}

/// Finds the smallest `H ∈ [0,1]` such that `diff(m = H·S) ≥ 0` — i.e. the
/// point where the AVL tree stops losing. The cost difference is monotone
/// in `m`, so bisection suffices.
fn break_even(g: &AccessGeometry, diff: impl Fn(&AccessGeometry, f64) -> f64) -> f64 {
    let s = f64_from_u64(g.avl_pages());
    if diff(g, 0.0) >= 0.0 {
        return 0.0;
    }
    if diff(g, s) < 0.0 {
        return 1.0;
    }
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    for _ in 0..64 {
        let mid = 0.5 * (lo + hi);
        if diff(g, mid * s) >= 0.0 {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    hi
}

/// One row of the regenerated Table 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table1Row {
    /// `Z` — page-read weight.
    pub z: f64,
    /// `Y` — AVL-comparison discount.
    pub y: f64,
    /// Minimum `H = |M|/S` for the AVL tree to win a random lookup.
    pub min_fraction: f64,
}

/// Regenerates Table 1: break-even fractions over a `(Z, Y)` grid.
pub fn table1(g: &AccessGeometry, zs: &[f64], ys: &[f64]) -> Vec<Table1Row> {
    let mut rows = Vec::with_capacity(zs.len() * ys.len());
    for &z in zs {
        for &y in ys {
            rows.push(Table1Row {
                z,
                y,
                min_fraction: random_break_even_fraction(g, z, y),
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g() -> AccessGeometry {
        AccessGeometry::standard()
    }

    #[test]
    fn fully_resident_avl_always_wins_with_cheaper_comparisons() {
        // |M| = S: no AVL faults; AVL cost = Y·C < C' cost of B+-tree once
        // Y < 1 (B+ still pays its own faults or at least C').
        let g = g();
        let s = g.avl_pages() as f64;
        for z in [1.0, 10.0, 30.0] {
            let avl = avl_random_cost(&g, z, 0.9, s);
            let bt = btree_random_cost(&g, z, s);
            assert!(avl < bt, "z={z}: avl {avl} !< btree {bt}");
        }
    }

    #[test]
    fn no_memory_btree_wins_big() {
        // |M| = 0: AVL faults C ≈ 20 times, B+-tree height+1 = 3 times.
        let g = g();
        let avl = avl_random_cost(&g, 20.0, 1.0, 0.0);
        let bt = btree_random_cost(&g, 20.0, 0.0);
        assert!(bt < avl / 4.0, "btree {bt} should crush avl {avl}");
    }

    #[test]
    fn break_even_is_high_fraction_for_realistic_z() {
        // The paper's headline: AVL competitive only when 80–90 %+ of the
        // structure is resident, for realistic Z in 10..30.
        let g = g();
        for z in [10.0, 20.0, 30.0] {
            let h = random_break_even_fraction(&g, z, 0.9);
            assert!(h > 0.8, "z={z}: break-even fraction {h} unexpectedly low");
            assert!(h <= 1.0);
        }
    }

    #[test]
    fn break_even_decreases_with_cheaper_faults() {
        let g = g();
        let h_cheap = random_break_even_fraction(&g, 2.0, 0.9);
        let h_dear = random_break_even_fraction(&g, 30.0, 0.9);
        assert!(
            h_cheap <= h_dear,
            "cheaper faults should let AVL win earlier: {h_cheap} vs {h_dear}"
        );
    }

    #[test]
    fn break_even_decreases_with_cheaper_avl_comparisons() {
        let g = g();
        let h_discounted = random_break_even_fraction(&g, 20.0, 0.5);
        let h_equal = random_break_even_fraction(&g, 20.0, 1.0);
        assert!(h_discounted <= h_equal);
    }

    #[test]
    fn equal_comparison_price_requires_full_residency() {
        // With Y = 1 the AVL tree has no CPU advantage and more pages to
        // fault on, so it needs essentially all of memory.
        let g = g();
        let h = random_break_even_fraction(&g, 20.0, 1.0);
        assert!(h > 0.95, "got {h}");
    }

    #[test]
    fn break_even_at_point_costs_cross() {
        let g = g();
        let (z, y) = (15.0, 0.9);
        let h = random_break_even_fraction(&g, z, y);
        let s = g.avl_pages() as f64;
        let just_below = ((h - 0.01) * s).max(0.0);
        let just_above = ((h + 0.01) * s).min(s);
        assert!(btree_random_cost(&g, z, just_below) <= avl_random_cost(&g, z, y, just_below));
        assert!(btree_random_cost(&g, z, just_above) >= avl_random_cost(&g, z, y, just_above));
    }

    #[test]
    fn sequential_break_even_also_high() {
        // §2's closing claim: the sequential case behaves like the random
        // case — H' break-evens are similarly high.
        let g = g();
        for n in [100, 10_000] {
            let h = sequential_break_even_fraction(&g, 20.0, 0.9, n);
            assert!(h > 0.8, "n={n}: got {h}");
        }
    }

    #[test]
    fn sequential_btree_benefits_from_clustering() {
        // At zero residency, B+-tree sequential access does ~n/28 page
        // reads versus the AVL tree's ~n.
        let g = g();
        let avl = avl_sequential_cost(&g, 20.0, 1.0, 0.0, 1_000);
        let bt = btree_sequential_cost(&g, 20.0, 0.0, 1_000);
        assert!(bt < avl / 5.0);
    }

    #[test]
    fn table1_grid_shape_and_monotonicity() {
        let g = g();
        let zs = [5.0, 10.0, 20.0, 30.0];
        let ys = [0.5, 0.75, 0.9, 1.0];
        let rows = table1(&g, &zs, &ys);
        assert_eq!(rows.len(), 16);
        // When the AVL comparison discount is real (Y < 1), dearer faults
        // push the break-even fraction up. (At Y = 1 the direction flips:
        // the AVL's fixed extra 0.25 comparisons matter less as Z grows.)
        for y in [0.5, 0.75, 0.9] {
            let frs: Vec<f64> = rows
                .iter()
                .filter(|r| r.y == y)
                .map(|r| r.min_fraction)
                .collect();
            for w in frs.windows(2) {
                assert!(w[0] <= w[1] + 1e-12, "not monotone in Z for y={y}");
            }
        }
        // For fixed Z, a smaller discount (larger Y) never helps the AVL.
        for z in zs {
            let frs: Vec<f64> = rows
                .iter()
                .filter(|r| r.z == z)
                .map(|r| r.min_fraction)
                .collect();
            for w in frs.windows(2) {
                assert!(w[0] <= w[1] + 1e-12, "not monotone in Y for z={z}");
            }
        }
        for r in &rows {
            assert!((0.0..=1.0).contains(&r.min_fraction));
        }
    }

    #[test]
    fn miss_probability_clamps() {
        assert_eq!(miss(200.0, 100.0), 0.0);
        assert_eq!(miss(0.0, 100.0), 1.0);
    }
}
