#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! The closed-form cost models of DeWitt et al., SIGMOD 1984.
//!
//! Three families of models, one per paper section:
//!
//! * [`access`] — §2: AVL vs B+-tree random and sequential access under the
//!   objective `cost = Z · |page reads| + |comparisons|` (Table 1).
//! * [`join`] — §3: analytic costs of the sort-merge, simple-hash,
//!   GRACE-hash and hybrid-hash join algorithms (Figure 1, Table 3).
//! * [`recovery`] — §5: transaction-throughput limits of commit policies.
//!
//! These are *models*, pure arithmetic: they never execute anything. The
//! `mmdb-exec` crate implements the same algorithms for real; the benchmark
//! harnesses overlay both to show the executable system reproduces the
//! analytic shapes.

pub mod access;
pub mod join;
pub mod recovery;

pub use access::{
    avl_random_cost, avl_sequential_cost, btree_random_cost, btree_sequential_cost,
    random_break_even_fraction, sequential_break_even_fraction, table1, Table1Row,
};
pub use join::{
    figure1, grace_hash_cost, hybrid_hash_cost, min_memory_pages, simple_hash_cost,
    sort_merge_cost, Figure1Point, JoinAlgorithm, JoinScenario,
};
pub use recovery::{CommitPolicy, ThroughputModel};
