//! §3 — analytic costs of the four join algorithms.
//!
//! All four formulas follow the paper's conventions: the initial read of R
//! and S and the final write of the join result are ignored (identical for
//! every algorithm), CPU and I/O never overlap, and the two-pass
//! assumption `sqrt(|S|·F) ≤ |M|` holds. `R` is the smaller relation.
//!
//! The horizontal axis of **Figure 1** is `|M| / (|R|·F)`; [`figure1`]
//! regenerates all four curves over that axis.

use mmdb_types::cast::{f64_from_u64, u64_from_f64};
use mmdb_types::{RelationShape, SystemParams};

/// Which join algorithm a cost or result refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinAlgorithm {
    /// §3.4 standard sort-merge.
    SortMerge,
    /// §3.5 multipass simple hash.
    SimpleHash,
    /// §3.6 GRACE hash (hashing used in phase 2, per the paper).
    GraceHash,
    /// §3.7 the paper's new hybrid hash.
    HybridHash,
}

impl JoinAlgorithm {
    /// All four, in the paper's presentation order.
    pub const ALL: [JoinAlgorithm; 4] = [
        JoinAlgorithm::SortMerge,
        JoinAlgorithm::SimpleHash,
        JoinAlgorithm::GraceHash,
        JoinAlgorithm::HybridHash,
    ];

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            JoinAlgorithm::SortMerge => "sort-merge",
            JoinAlgorithm::SimpleHash => "simple-hash",
            JoinAlgorithm::GraceHash => "grace-hash",
            JoinAlgorithm::HybridHash => "hybrid-hash",
        }
    }
}

/// A fully specified join scenario: machine parameters, relation shapes,
/// and the memory grant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JoinScenario {
    /// Table 2 machine parameters.
    pub params: SystemParams,
    /// Relation shapes.
    pub shape: RelationShape,
    /// `|M|` — pages of main memory granted to the join.
    pub mem_pages: f64,
}

impl JoinScenario {
    /// A scenario at a given `|M|/(|R|·F)` ratio (Figure 1's x-axis).
    pub fn at_ratio(params: SystemParams, shape: RelationShape, ratio: f64) -> Self {
        JoinScenario {
            params,
            shape,
            mem_pages: ratio * f64_from_u64(shape.r_pages) * params.fudge,
        }
    }

    /// The x-axis position of this scenario.
    pub fn ratio(&self) -> f64 {
        self.mem_pages / (f64_from_u64(self.shape.r_pages) * self.params.fudge)
    }

    /// Costs this scenario under the given algorithm.
    pub fn cost(&self, algo: JoinAlgorithm) -> f64 {
        match algo {
            JoinAlgorithm::SortMerge => sort_merge_cost(self),
            JoinAlgorithm::SimpleHash => simple_hash_cost(self),
            JoinAlgorithm::GraceHash => grace_hash_cost(self),
            JoinAlgorithm::HybridHash => hybrid_hash_cost(self),
        }
    }
}

/// The two-pass threshold: `sqrt(|S|·F)` pages (§3.2). Below this memory
/// grant the formulas stop holding.
pub fn min_memory_pages(shape: &RelationShape, fudge: f64) -> f64 {
    (f64_from_u64(shape.s_pages) * fudge).sqrt()
}

fn log2_at_least_1(x: f64) -> f64 {
    x.max(2.0).log2()
}

/// §3.4 sort-merge join cost in seconds.
///
/// * Run formation: each tuple is inserted into a priority queue holding
///   `{M}` tuples — `log2({M})` comparisons+swaps per insertion.
/// * I/O: every page of both relations is written to a run (sequentially)
///   and read back for the merge (randomly, since the merge interleaves
///   reads across runs). When `|M| ≥ |S|·F` the sort happens entirely in
///   memory and the I/O term vanishes — the paper's "improves to
///   approximately 900 seconds" beyond ratio 1.0.
/// * Final merge: tuples re-enter a priority queue over the runs, with
///   `|X|·F/(2·|M|)` runs per relation (average run length `2·|M|/F`).
/// * Merge-join: one comparison per tuple of either relation.
pub fn sort_merge_cost(sc: &JoinScenario) -> f64 {
    let p = &sc.params;
    let sh = &sc.shape;
    let m = sc.mem_pages;
    let (r_pages, s_pages) = (f64_from_u64(sh.r_pages), f64_from_u64(sh.s_pages));
    let (r_t, s_t) = (f64_from_u64(sh.r_tuples()), f64_from_u64(sh.s_tuples()));

    // Tuples the in-memory priority queue can hold for each relation.
    let mq_r = (m * f64_from_u64(sh.r_tuples_per_page) / p.fudge).min(r_t);
    let mq_s = (m * f64_from_u64(sh.s_tuples_per_page) / p.fudge).min(s_t);

    let run_formation =
        (r_t * log2_at_least_1(mq_r) + s_t * log2_at_least_1(mq_s)) * (p.comp() + p.swap());

    let fully_in_memory = m >= s_pages * p.fudge && m >= r_pages * p.fudge;
    let io = if fully_in_memory {
        0.0
    } else {
        (r_pages + s_pages) * (p.io_seq() + p.io_rand())
    };

    let runs_r = (r_pages * p.fudge / (2.0 * m)).max(1.0);
    let runs_s = (s_pages * p.fudge / (2.0 * m)).max(1.0);
    let final_merge = if fully_in_memory {
        0.0
    } else {
        (r_t * runs_r.max(1.0).log2().max(0.0) + s_t * runs_s.max(1.0).log2().max(0.0))
            * (p.comp() + p.swap())
    };

    let merge_join = (r_t + s_t) * p.comp();

    run_formation + io + final_merge + merge_join
}

/// §3.5 multipass simple-hash join cost in seconds.
///
/// With `A = ceil(|R|·F/|M|)` passes and an in-memory hash table absorbing
/// `|M|/F` pages of R per pass, pass `i` passes over the tuples not yet
/// absorbed; passed-over tuples are re-hashed, moved, written out and read
/// back (two sequential I/Os per passed-over page).
pub fn simple_hash_cost(sc: &JoinScenario) -> f64 {
    let p = &sc.params;
    let sh = &sc.shape;
    let m = sc.mem_pages;
    let r_pages = f64_from_u64(sh.r_pages);
    let (r_t, s_t) = (f64_from_u64(sh.r_tuples()), f64_from_u64(sh.s_tuples()));

    // Base work performed exactly once per tuple.
    let build = r_t * (p.hash() + p.mv());
    let probe = s_t * (p.hash() + p.fudge * p.comp());

    let passes = (r_pages * p.fudge / m).ceil().max(1.0);
    // Fraction of R absorbed per pass.
    let frac_per_pass = (m / (p.fudge * r_pages)).min(1.0);

    let mut passed_r_tuples = 0.0;
    let mut passed_s_tuples = 0.0;
    for i in 1..u64_from_f64(passes) {
        let remaining = (1.0 - f64_from_u64(i) * frac_per_pass).max(0.0);
        passed_r_tuples += r_t * remaining;
        passed_s_tuples += s_t * remaining;
    }

    let cpu_passed = (passed_r_tuples + passed_s_tuples) * (p.hash() + p.mv());
    let passed_pages = passed_r_tuples / f64_from_u64(sh.r_tuples_per_page)
        + passed_s_tuples / f64_from_u64(sh.s_tuples_per_page);
    let io_passed = passed_pages * 2.0 * p.io_seq();

    build + probe + cpu_passed + io_passed
}

/// §3.6 GRACE-hash join cost in seconds.
///
/// Phase 1 scans both relations, hashing every tuple into one of `|M|`
/// output buffers that are flushed to disk (random writes — the buffers
/// fill in hash order, not disk order). Phase 2 reads each partition back
/// sequentially, builds a hash table for `R_i`, and probes it with `S_i`.
pub fn grace_hash_cost(sc: &JoinScenario) -> f64 {
    let p = &sc.params;
    let sh = &sc.shape;
    let (r_pages, s_pages) = (f64_from_u64(sh.r_pages), f64_from_u64(sh.s_pages));
    let (r_t, s_t) = (f64_from_u64(sh.r_tuples()), f64_from_u64(sh.s_tuples()));

    let partition = (r_t + s_t) * (p.hash() + p.mv());
    let write = (r_pages + s_pages) * p.io_rand();
    let read_back = (r_pages + s_pages) * p.io_seq();
    let build_probe = (r_t + s_t) * p.hash() + r_t * p.mv() + s_t * p.fudge * p.comp();

    partition + write + read_back + build_probe
}

/// Number of disk partitions `B` the hybrid-hash join needs (§3.7): zero
/// when R's hash table fits entirely in memory, otherwise enough that each
/// of the `B` partitions fits, given that `B` output-buffer pages are
/// reserved.
pub fn hybrid_partitions(shape: &RelationShape, fudge: f64, mem_pages: f64) -> f64 {
    let r_f = f64_from_u64(shape.r_pages) * fudge;
    if mem_pages >= r_f {
        0.0
    } else {
        ((r_f - mem_pages) / (mem_pages - 1.0).max(1.0))
            .ceil()
            .max(1.0)
    }
}

/// Fraction `q = |R0|/|R|` of R whose hash table stays in memory during
/// the hybrid-hash partitioning phase.
pub fn hybrid_in_memory_fraction(shape: &RelationShape, fudge: f64, mem_pages: f64) -> f64 {
    let b = hybrid_partitions(shape, fudge, mem_pages);
    if b == 0.0 {
        return 1.0;
    }
    let r0_pages = ((mem_pages - b) / fudge).max(0.0);
    (r0_pages / f64_from_u64(shape.r_pages)).clamp(0.0, 1.0)
}

/// §3.7 hybrid-hash join cost in seconds, exactly the paper's formula:
///
/// ```text
///   (||R|| + ||S||) · hash                 partition R and S
/// + (||R|| + ||S||) · (1−q) · move         move tuples to output buffers
/// + (|R| + |S|) · (1−q) · IOw              write from output buffers
/// + (||R|| + ||S||) · (1−q) · hash         build/probe hash tables, phase 2
/// + ||S|| · F · comp                       probe for each tuple of S
/// + ||R|| · move                           move tuples into R's hash tables
/// + (|R| + |S|) · (1−q) · IOseq            read sets back into memory
/// ```
///
/// where `IOw = IOrand`, except that with a single output buffer
/// (`B = 1`, i.e. `|M| > |R|·F/2`) writes are sequential — the paper's
/// footnoted substitution that produces the Figure 1 discontinuity at 0.5.
pub fn hybrid_hash_cost(sc: &JoinScenario) -> f64 {
    let p = &sc.params;
    let sh = &sc.shape;
    let (r_pages, s_pages) = (f64_from_u64(sh.r_pages), f64_from_u64(sh.s_pages));
    let (r_t, s_t) = (f64_from_u64(sh.r_tuples()), f64_from_u64(sh.s_tuples()));

    let b = hybrid_partitions(sh, p.fudge, sc.mem_pages);
    let q = hybrid_in_memory_fraction(sh, p.fudge, sc.mem_pages);
    let io_write = if b <= 1.0 { p.io_seq() } else { p.io_rand() };

    (r_t + s_t) * p.hash()
        + (r_t + s_t) * (1.0 - q) * p.mv()
        + (r_pages + s_pages) * (1.0 - q) * io_write
        + (r_t + s_t) * (1.0 - q) * p.hash()
        + s_t * p.fudge * p.comp()
        + r_t * p.mv()
        + (r_pages + s_pages) * (1.0 - q) * p.io_seq()
}

/// §3.2's TID-vs-whole-tuple analysis.
///
/// "If only TIDs or TID-Key pairs are used, there is a significant space
/// savings since fewer bytes need to be manipulated. On the other hand,
/// every time a pair of joined tuples is output, the original tuples must
/// be retrieved ... the cost of the random accesses to retrieve the
/// tuples can exceed the savings of using TIDs if the join produces a
/// large number of tuples." The paper folds the choice into parameter
/// values; these helpers make the trade-off explicit.
pub mod tid {
    use super::{JoinAlgorithm, JoinScenario};
    use mmdb_types::SystemParams;

    /// Parameters for the TID-key-pair variant: moving an (8+8)-byte pair
    /// is far cheaper than moving a ~100-byte tuple, and TID structures
    /// pack ~6× more entries per page, shrinking spill I/O accordingly.
    pub fn tid_params(p: &SystemParams) -> SystemParams {
        SystemParams {
            move_us: p.move_us / 6.0,
            swap_us: p.swap_us / 6.0,
            ..*p
        }
    }

    /// Cost of the join itself when manipulating TID-key pairs: the base
    /// formula under TID prices, with relation sizes shrunk by the pair
    /// packing factor (6× more pairs per page).
    pub fn tid_join_cost(sc: &JoinScenario, algo: JoinAlgorithm) -> f64 {
        let packed = JoinScenario {
            params: tid_params(&sc.params),
            shape: mmdb_types::RelationShape {
                r_pages: (sc.shape.r_pages / 6).max(1),
                s_pages: (sc.shape.s_pages / 6).max(1),
                r_tuples_per_page: sc.shape.r_tuples_per_page * 6,
                s_tuples_per_page: sc.shape.s_tuples_per_page * 6,
            },
            mem_pages: sc.mem_pages,
        };
        packed.cost(algo)
    }

    /// Cost of fetching the original tuples for `result_tuples` output
    /// pairs: two random accesses per pair, discounted by the fraction of
    /// the base relations resident in memory.
    pub fn fetch_cost(p: &SystemParams, result_tuples: f64, resident_fraction: f64) -> f64 {
        result_tuples * 2.0 * (1.0 - resident_fraction).clamp(0.0, 1.0) * p.io_rand()
    }

    /// Total TID-variant cost: join on pairs + result fetches.
    pub fn total_cost(
        sc: &JoinScenario,
        algo: JoinAlgorithm,
        result_tuples: f64,
        resident_fraction: f64,
    ) -> f64 {
        tid_join_cost(sc, algo) + fetch_cost(&sc.params, result_tuples, resident_fraction)
    }

    /// Result cardinality at which the whole-tuple variant catches up:
    /// below this many output tuples, TID-key pairs win.
    pub fn crossover_result_size(
        sc: &JoinScenario,
        algo: JoinAlgorithm,
        resident_fraction: f64,
    ) -> f64 {
        let whole = sc.cost(algo);
        let tid_base = tid_join_cost(sc, algo);
        let per_tuple = 2.0 * (1.0 - resident_fraction).clamp(0.0, 1.0) * sc.params.io_rand();
        if per_tuple <= 0.0 {
            return f64::INFINITY; // fully resident: TIDs always win
        }
        ((whole - tid_base) / per_tuple).max(0.0)
    }
}

/// One sampled point of the regenerated Figure 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Figure1Point {
    /// x — `|M| / (|R|·F)`.
    pub ratio: f64,
    /// Seconds for each algorithm, indexed like [`JoinAlgorithm::ALL`].
    pub seconds: [f64; 4],
}

impl Figure1Point {
    /// Seconds for one algorithm.
    pub fn of(&self, algo: JoinAlgorithm) -> f64 {
        let idx = JoinAlgorithm::ALL
            .iter()
            .position(|a| *a == algo)
            .expect("algo in ALL");
        self.seconds[idx]
    }
}

/// Regenerates Figure 1: all four cost curves sampled at `ratios`.
pub fn figure1(params: SystemParams, shape: RelationShape, ratios: &[f64]) -> Vec<Figure1Point> {
    ratios
        .iter()
        .map(|&ratio| {
            let sc = JoinScenario::at_ratio(params, shape, ratio);
            let mut seconds = [0.0; 4];
            for (i, algo) in JoinAlgorithm::ALL.iter().enumerate() {
                seconds[i] = sc.cost(*algo);
            }
            Figure1Point { ratio, seconds }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use JoinAlgorithm::*;

    fn table2_scenario(ratio: f64) -> JoinScenario {
        JoinScenario::at_ratio(SystemParams::table2(), RelationShape::table2(), ratio)
    }

    #[test]
    fn min_memory_matches_papers_example() {
        // §3.2: with F = 1.2 and |S| = 800 000 pages, |M| need only be
        // 1 000 pages (actually sqrt(960 000) ≈ 980).
        let shape = RelationShape {
            s_pages: 800_000,
            ..RelationShape::table2()
        };
        let m = min_memory_pages(&shape, 1.2);
        assert!((m - 979.79).abs() < 1.0, "got {m}");
        // The Figure 1 x-axis floor: sqrt(12 000)/12 000 ≈ 0.009.
        let shape2 = RelationShape::table2();
        let floor = min_memory_pages(&shape2, 1.2) / (shape2.r_pages as f64 * 1.2);
        assert!((floor - 0.009).abs() < 0.001, "got {floor}");
    }

    #[test]
    fn sort_merge_in_memory_is_about_900_seconds() {
        // The paper: above ratio 1.0 sort-merge improves to ~900 s.
        let sc = table2_scenario(1.05);
        let cost = sort_merge_cost(&sc);
        assert!(
            (850.0..1000.0).contains(&cost),
            "in-memory sort-merge = {cost}, expected ≈ 900 s"
        );
    }

    #[test]
    fn sort_merge_is_roughly_flat_and_expensive_below_ratio_1() {
        for ratio in [0.05, 0.2, 0.5, 0.9] {
            let cost = sort_merge_cost(&table2_scenario(ratio));
            assert!(
                (1400.0..1800.0).contains(&cost),
                "ratio {ratio}: sort-merge = {cost}"
            );
        }
    }

    #[test]
    fn all_hash_algorithms_agree_when_r_fits_in_memory() {
        // At ratio 1.0, simple and hybrid do no extra passes; both reduce
        // to a pure in-memory hash join of the same cost (~17 s).
        let sc = table2_scenario(1.0);
        let simple = simple_hash_cost(&sc);
        let hybrid = hybrid_hash_cost(&sc);
        assert!((simple - hybrid).abs() < 1.0, "{simple} vs {hybrid}");
        assert!((10.0..25.0).contains(&simple), "got {simple}");
    }

    #[test]
    fn grace_is_flat_across_memory() {
        let lo = grace_hash_cost(&table2_scenario(0.02));
        let hi = grace_hash_cost(&table2_scenario(0.9));
        assert!((lo - hi).abs() < 1e-9, "GRACE depends only on |R|,|S|");
        assert!((600.0..900.0).contains(&lo), "got {lo}");
    }

    #[test]
    fn simple_hash_blows_up_at_low_memory() {
        let at_low = simple_hash_cost(&table2_scenario(0.05));
        let at_high = simple_hash_cost(&table2_scenario(0.9));
        assert!(
            at_low > 10.0 * at_high,
            "multipass penalty missing: {at_low} vs {at_high}"
        );
        assert!(at_low > 1500.0, "got {at_low}");
    }

    #[test]
    fn hybrid_discontinuity_at_half() {
        // Crossing |M| = |R|F/2 changes the output-buffer count from one to
        // two, switching write pricing from IOseq to IOrand (§3.8).
        let just_above = hybrid_hash_cost(&table2_scenario(0.51));
        let just_below = hybrid_hash_cost(&table2_scenario(0.49));
        assert!(
            just_below > just_above + 50.0,
            "discontinuity missing: below={just_below}, above={just_above}"
        );
    }

    #[test]
    fn simple_beats_hybrid_only_in_the_small_io_accounting_region() {
        // §3.8: simple hash wins a small region just below 0.5 purely
        // because of the IOrand accounting.
        let sc = table2_scenario(0.45);
        assert!(simple_hash_cost(&sc) < hybrid_hash_cost(&sc));
        // ... but hybrid wins broadly elsewhere.
        for ratio in [0.05, 0.1, 0.2, 0.3, 0.6, 0.8, 1.0] {
            let sc = table2_scenario(ratio);
            assert!(
                hybrid_hash_cost(&sc) <= simple_hash_cost(&sc) + 1.0,
                "ratio {ratio}"
            );
        }
    }

    #[test]
    fn hybrid_dominates_grace_and_sort_merge_everywhere() {
        for ratio in [0.02, 0.05, 0.1, 0.25, 0.5, 0.75, 1.0] {
            let sc = table2_scenario(ratio);
            let hybrid = hybrid_hash_cost(&sc);
            assert!(hybrid <= grace_hash_cost(&sc) + 1.0, "ratio {ratio}");
            assert!(hybrid <= sort_merge_cost(&sc), "ratio {ratio}");
        }
    }

    #[test]
    fn hash_beats_sort_merge_once_memory_exceeds_sqrt() {
        // §6's headline conclusion, checked at the two-pass floor itself.
        let shape = RelationShape::table2();
        let floor = min_memory_pages(&shape, 1.2);
        let sc = JoinScenario {
            params: SystemParams::table2(),
            shape,
            mem_pages: floor,
        };
        assert!(hybrid_hash_cost(&sc) < sort_merge_cost(&sc));
        assert!(grace_hash_cost(&sc) < sort_merge_cost(&sc));
    }

    #[test]
    fn figure1_series_is_complete_and_positive() {
        let ratios: Vec<f64> = (1..=20).map(|i| i as f64 / 20.0).collect();
        let pts = figure1(SystemParams::table2(), RelationShape::table2(), &ratios);
        assert_eq!(pts.len(), 20);
        for pt in &pts {
            for a in JoinAlgorithm::ALL {
                assert!(pt.of(a) > 0.0);
            }
        }
    }

    #[test]
    fn scenario_ratio_roundtrips() {
        let sc = table2_scenario(0.37);
        assert!((sc.ratio() - 0.37).abs() < 1e-12);
    }

    #[test]
    fn hybrid_partition_arithmetic() {
        let shape = RelationShape::table2();
        // Fits fully: no partitions, q = 1.
        assert_eq!(hybrid_partitions(&shape, 1.2, 12_000.0), 0.0);
        assert_eq!(hybrid_in_memory_fraction(&shape, 1.2, 12_000.0), 1.0);
        // Exactly half: one partition.
        assert_eq!(hybrid_partitions(&shape, 1.2, 6_001.0), 1.0);
        // q decreases with memory.
        let q_big = hybrid_in_memory_fraction(&shape, 1.2, 6_000.0);
        let q_small = hybrid_in_memory_fraction(&shape, 1.2, 1_200.0);
        assert!(q_big > q_small);
        assert!((0.0..=1.0).contains(&q_small));
    }

    #[test]
    fn tid_variant_wins_small_results_loses_large_ones() {
        // §3.2: TIDs save manipulation cost but pay random fetches per
        // output tuple.
        let sc = table2_scenario(0.2);
        let small = tid::total_cost(&sc, HybridHash, 1_000.0, 0.0);
        let whole = sc.cost(HybridHash);
        assert!(small < whole, "tiny result: TID {small} vs whole {whole}");
        let huge = tid::total_cost(&sc, HybridHash, 1e7, 0.0);
        assert!(huge > whole, "huge result: TID {huge} vs whole {whole}");
        // The crossover sits between those result sizes.
        let x = tid::crossover_result_size(&sc, HybridHash, 0.0);
        assert!((1_000.0..1e7).contains(&x), "crossover {x}");
    }

    #[test]
    fn tid_variant_always_wins_when_base_tuples_are_resident() {
        let sc = table2_scenario(0.2);
        assert_eq!(
            tid::crossover_result_size(&sc, HybridHash, 1.0),
            f64::INFINITY
        );
        assert!(tid::total_cost(&sc, HybridHash, 1e9, 1.0) < sc.cost(HybridHash));
    }

    #[test]
    fn tid_fetch_cost_scales_with_result_and_misses() {
        let p = SystemParams::table2();
        assert_eq!(tid::fetch_cost(&p, 0.0, 0.0), 0.0);
        let full_miss = tid::fetch_cost(&p, 1_000.0, 0.0);
        let half_miss = tid::fetch_cost(&p, 1_000.0, 0.5);
        assert!((full_miss - 2.0 * 1_000.0 * 0.025).abs() < 1e-9);
        assert!((half_miss - full_miss / 2.0).abs() < 1e-9);
    }

    #[test]
    fn algorithm_names() {
        assert_eq!(SortMerge.name(), "sort-merge");
        assert_eq!(HybridHash.name(), "hybrid-hash");
        assert_eq!(JoinAlgorithm::ALL.len(), 4);
    }
}
