//! Bounded admission control for statement execution: refuse new work
//! before starving work already in flight.
//!
//! The policy (§5.2's "don't thrash under load", applied to the wire):
//!
//! * Statements **inside an open transaction** always run. They hold
//!   locks; stalling them stalls everyone else, so shedding them would
//!   convert overload into livelock.
//! * **Autocommit writes** queue (bounded) for a free execution slot,
//!   up to a deadline. A full queue or an expired deadline sheds them
//!   with a retryable error — the statement did not run.
//! * **Autocommit reads** shed immediately at capacity: they are the
//!   cheapest work to retry and the least harmful to refuse, so they
//!   go first (shed reads before writes, writes before in-flight).
//!
//! Shedding is always an in-band *retryable* response, never a dropped
//! connection: the client's retry taxonomy depends on knowing the
//! statement definitively did not apply.

use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// How the shedding policy classifies a statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitClass {
    /// Part of an open explicit transaction: never shed.
    InTxn,
    /// Autocommit mutation: queues up to the deadline.
    Write,
    /// Autocommit read: shed immediately at capacity.
    Read,
}

/// Why a statement was shed instead of run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shed {
    /// The wait queue (or, for reads, the execution capacity) is full.
    QueueFull,
    /// The statement waited its whole admission deadline.
    DeadlineExpired,
    /// The admission lock was poisoned by a panic elsewhere.
    Poisoned,
}

impl Shed {
    /// The in-band message sent to the client.
    pub fn message(self) -> &'static str {
        match self {
            Shed::QueueFull => "server overloaded: admission queue full",
            Shed::DeadlineExpired => "server overloaded: admission deadline expired",
            Shed::Poisoned => "server admission state poisoned",
        }
    }
}

/// Counters guarded by the admission lock.
#[derive(Debug, Default)]
struct Gate {
    /// Statements currently executing under a permit.
    inflight: usize,
    /// Writers blocked waiting for a slot.
    waiting: usize,
}

/// The bounded admission gate: at most `max_inflight` statements
/// execute at once, at most `max_queue` writers wait, and no writer
/// waits past `deadline`.
#[derive(Debug)]
pub struct Admission {
    gate: Mutex<Gate>,
    cv: Condvar,
    max_inflight: usize,
    max_queue: usize,
    deadline: Duration,
}

impl Admission {
    /// A gate admitting `max_inflight` concurrent statements with a
    /// wait queue of `max_queue` writers, each waiting at most
    /// `deadline`.
    pub fn new(max_inflight: usize, max_queue: usize, deadline: Duration) -> Admission {
        Admission {
            gate: Mutex::new(Gate::default()),
            cv: Condvar::new(),
            max_inflight: max_inflight.max(1),
            max_queue,
            deadline,
        }
    }

    /// Admits or sheds one statement. On `Ok`, the returned permit
    /// holds an execution slot until dropped.
    pub fn admit(&self, class: AdmitClass) -> Result<Permit<'_>, Shed> {
        // In-transaction statements bypass the gate entirely: they are
        // not counted, because blocking a lock holder to shed load
        // inverts the policy's whole point.
        if class == AdmitClass::InTxn {
            return Ok(Permit {
                admission: self,
                counted: false,
            });
        }
        let mut gate = match self.gate.lock() {
            Ok(g) => g,
            Err(_) => return Err(Shed::Poisoned),
        };
        if gate.inflight < self.max_inflight {
            gate.inflight += 1;
            return Ok(Permit {
                admission: self,
                counted: true,
            });
        }
        if class == AdmitClass::Read {
            // Reads shed before writes: cheapest to retry.
            return Err(Shed::QueueFull);
        }
        if gate.waiting >= self.max_queue {
            return Err(Shed::QueueFull);
        }
        gate.waiting += 1;
        let start = Instant::now();
        loop {
            let remaining = match self.deadline.checked_sub(start.elapsed()) {
                Some(r) if !r.is_zero() => r,
                _ => {
                    gate.waiting -= 1;
                    return Err(Shed::DeadlineExpired);
                }
            };
            gate = match self.cv.wait_timeout(gate, remaining) {
                Ok((g, _)) => g,
                Err(_) => return Err(Shed::Poisoned),
            };
            if gate.inflight < self.max_inflight {
                gate.waiting -= 1;
                gate.inflight += 1;
                return Ok(Permit {
                    admission: self,
                    counted: true,
                });
            }
        }
    }

    /// Statements currently executing under a permit.
    pub fn inflight(&self) -> usize {
        match self.gate.lock() {
            Ok(g) => g.inflight,
            Err(_) => 0,
        }
    }
}

/// An execution slot; dropping it frees the slot and wakes one waiter.
#[derive(Debug)]
pub struct Permit<'a> {
    admission: &'a Admission,
    counted: bool,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        if !self.counted {
            return;
        }
        match self.admission.gate.lock() {
            Ok(mut gate) => {
                gate.inflight = gate.inflight.saturating_sub(1);
            }
            Err(_) => return,
        }
        self.admission.cv.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn in_txn_bypasses_capacity() {
        let adm = Admission::new(1, 0, Duration::from_millis(10));
        let _held = adm.admit(AdmitClass::Write).unwrap();
        assert_eq!(adm.inflight(), 1);
        // At capacity, but a lock holder still runs — uncounted.
        let txn = adm.admit(AdmitClass::InTxn).unwrap();
        assert_eq!(adm.inflight(), 1);
        drop(txn);
        assert_eq!(adm.inflight(), 1);
    }

    #[test]
    fn reads_shed_immediately_writes_queue_to_deadline() {
        let adm = Admission::new(1, 4, Duration::from_millis(20));
        let held = adm.admit(AdmitClass::Read).unwrap();
        assert_eq!(adm.admit(AdmitClass::Read).unwrap_err(), Shed::QueueFull);
        let started = Instant::now();
        assert_eq!(
            adm.admit(AdmitClass::Write).unwrap_err(),
            Shed::DeadlineExpired
        );
        assert!(started.elapsed() >= Duration::from_millis(20));
        drop(held);
        assert!(adm.admit(AdmitClass::Write).is_ok());
    }

    #[test]
    fn queue_overflow_sheds_writes() {
        let adm = Arc::new(Admission::new(1, 0, Duration::from_millis(50)));
        let _held = adm.admit(AdmitClass::Write).unwrap();
        assert_eq!(adm.admit(AdmitClass::Write).unwrap_err(), Shed::QueueFull);
    }

    #[test]
    fn dropped_permit_wakes_a_waiting_writer() {
        let adm = Arc::new(Admission::new(1, 4, Duration::from_secs(5)));
        let held = adm.admit(AdmitClass::Write).unwrap();
        let a = Arc::clone(&adm);
        let waiter = std::thread::spawn(move || a.admit(AdmitClass::Write).map(|_| ()).is_ok());
        std::thread::sleep(Duration::from_millis(20));
        drop(held);
        assert!(waiter.join().unwrap_or(false), "waiter should be admitted");
        assert_eq!(adm.inflight(), 0);
    }
}
