//! The TCP server: bounded accept loop, one SQL session per
//! connection, graceful drain on shutdown.
//!
//! Concurrency is thread-per-connection — the same model the engine's
//! own sessions use (§5.2 assumes a process per terminal; OS threads
//! are the modern spelling). The server itself holds *no* locks: the
//! accept thread owns the connection handles, shutdown is one shared
//! atomic flag, and everything else (catalog, store, metrics) is
//! synchronized by the layers that own it. Connections poll their
//! socket with a short read timeout so a shutdown request is noticed
//! within [`POLL_INTERVAL`] even on an idle connection, while a
//! request already in flight always runs to completion and gets its
//! response — that is the drain.

use crate::admission::{Admission, AdmitClass};
use crate::proto::{self, FrameRead};
use crate::transport::Transport;
use mmdb_obs::{Counter, Gauge, Histogram, Registry};
use mmdb_session::Engine;
use mmdb_sql::ast::STATEMENT_KINDS;
use mmdb_sql::parser::parse;
use mmdb_sql::{ErrorClass, SqlDb, SqlError, StatementKind};
use mmdb_types::error::{Error, Result};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often blocked reads wake up to recheck the shutdown flag.
pub const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// Tunables for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (see
    /// [`ServerHandle::addr`] for the result).
    pub addr: String,
    /// Connections beyond this are refused with an error response.
    pub max_connections: usize,
    /// A connection idle longer than this is closed.
    pub idle_timeout: Duration,
    /// Socket write timeout for a single response write attempt; a
    /// timed-out attempt counts one write stall against
    /// [`ServerConfig::write_stall_budget`].
    pub write_timeout: Duration,
    /// Statements executing concurrently before admission control
    /// starts shedding (in-transaction statements are exempt).
    pub max_inflight_statements: usize,
    /// Autocommit writes allowed to wait for an execution slot; beyond
    /// this they are shed with a retryable error.
    pub admission_queue: usize,
    /// Longest an autocommit write waits for admission before being
    /// shed with a retryable error.
    pub admission_deadline: Duration,
    /// Cumulative time a connection's response writes may spend
    /// stalled before the client is declared slow and disconnected.
    pub write_stall_budget: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            max_connections: 256,
            idle_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_millis(500),
            max_inflight_statements: 128,
            admission_queue: 256,
            admission_deadline: Duration::from_secs(2),
            write_stall_budget: Duration::from_secs(2),
        }
    }
}

/// Server-side metric handles, all registered on the engine's registry
/// so `render_metrics()` exposes engine and server families together.
struct Metrics {
    active: Arc<Gauge>,
    connections: Arc<Counter>,
    requests: Arc<Counter>,
    parse_errors: Arc<Counter>,
    protocol_errors: Arc<Counter>,
    refused: Arc<Counter>,
    shed: Arc<Counter>,
    retryable_errors: Arc<Counter>,
    write_stalls: Arc<Counter>,
    slow_client_disconnects: Arc<Counter>,
    inflight: Arc<Gauge>,
    admission_wait: Arc<Histogram>,
    latency: Vec<(StatementKind, Arc<Histogram>)>,
}

impl Metrics {
    fn register(registry: &Registry) -> Metrics {
        let mut latency = Vec::with_capacity(STATEMENT_KINDS.len());
        for kind in STATEMENT_KINDS {
            latency.push((
                kind,
                registry.histogram_labeled(
                    "mmdb_server_request_latency_us",
                    "Wall time from request frame decoded to response encoded",
                    Some(("stmt", kind.to_string())),
                ),
            ));
        }
        Metrics {
            active: registry.gauge(
                "mmdb_server_active_connections_count",
                "Connections currently open",
            ),
            connections: registry.counter(
                "mmdb_server_connections_total",
                "Connections ever accepted (including refused-at-capacity)",
            ),
            requests: registry.counter("mmdb_server_requests_total", "Request frames received"),
            parse_errors: registry.counter(
                "mmdb_server_parse_errors_total",
                "Requests rejected by the SQL parser",
            ),
            protocol_errors: registry.counter(
                "mmdb_server_protocol_errors_total",
                "Connections dropped for framing or transport errors",
            ),
            refused: registry.counter(
                "mmdb_server_refused_total",
                "Connections refused at the connection-count cap",
            ),
            shed: registry.counter(
                "mmdb_server_shed_total",
                "Statements shed by admission control before running",
            ),
            retryable_errors: registry.counter(
                "mmdb_server_retryable_errors_total",
                "Error responses classified retryable (sheds, lock conflicts, shutdown)",
            ),
            write_stalls: registry.counter(
                "mmdb_server_write_stalls_total",
                "Response write attempts that stalled on a slow client",
            ),
            slow_client_disconnects: registry.counter(
                "mmdb_server_slow_client_disconnects_total",
                "Connections dropped for exhausting the write-stall budget",
            ),
            inflight: registry.gauge(
                "mmdb_server_inflight_statements_count",
                "Statements currently executing",
            ),
            admission_wait: registry.histogram(
                "mmdb_server_admission_wait_us",
                "Time from statement arrival to admission (or shed)",
            ),
            latency,
        }
    }

    fn latency_for(&self, kind: StatementKind) -> Option<&Arc<Histogram>> {
        self.latency
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, h)| h)
    }
}

/// The SQL-over-TCP server. Construct with [`Server::start`]; the
/// returned [`ServerHandle`] owns the listener thread.
pub struct Server;

impl Server {
    /// Opens the SQL layer over `engine` and starts accepting
    /// connections per `config`.
    pub fn start(engine: &Engine, config: ServerConfig) -> Result<ServerHandle> {
        let db = SqlDb::open(engine)?;
        let metrics = Arc::new(Metrics::register(&engine.registry()));
        let admission = Arc::new(Admission::new(
            config.max_inflight_statements,
            config.admission_queue,
            config.admission_deadline,
        ));
        let listener =
            TcpListener::bind(&config.addr).map_err(|e| Error::Io(format!("bind: {e}")))?;
        let addr = listener
            .local_addr()
            .map_err(|e| Error::Io(format!("local_addr: {e}")))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| Error::Io(format!("set_nonblocking: {e}")))?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let accept = std::thread::Builder::new()
            .name("mmdb-server-accept".to_string())
            .spawn(move || accept_loop(listener, db, metrics, admission, flag, config))
            .map_err(|e| Error::Io(format!("spawn accept thread: {e}")))?;
        Ok(ServerHandle {
            addr,
            shutdown,
            accept: Some(accept),
        })
    }
}

/// Handle to a running server: its bound address and the shutdown
/// switch. Dropping the handle also shuts the server down.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, lets in-flight requests finish, joins every
    /// connection thread, and returns once the listener thread exits.
    pub fn shutdown(mut self) -> Result<()> {
        self.stop()
    }

    fn stop(&mut self) -> Result<()> {
        // ordering: the flag is a pure on/off signal; every observer
        // re-polls it, so relaxed visibility latency only delays (never
        // loses) the shutdown.
        self.shutdown.store(true, Ordering::Relaxed);
        match self.accept.take() {
            Some(handle) => handle
                .join()
                .map_err(|_| Error::Internal("server accept thread panicked".to_string())),
            None => Ok(()),
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        let _ = self.stop();
    }
}

fn accept_loop(
    listener: TcpListener,
    db: SqlDb,
    metrics: Arc<Metrics>,
    admission: Arc<Admission>,
    shutdown: Arc<AtomicBool>,
    config: ServerConfig,
) {
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    loop {
        // ordering: shutdown flag, see ServerHandle::stop.
        if shutdown.load(Ordering::Relaxed) {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                metrics.connections.inc();
                // The accepted socket inherits no non-blocking mode on
                // all platforms we care about, but be explicit.
                if stream.set_nonblocking(false).is_err() {
                    metrics.protocol_errors.inc();
                    continue;
                }
                if metrics.active.get() >= config.max_connections as i64 {
                    refuse(stream, &metrics);
                    continue;
                }
                metrics.active.add(1);
                let session = db.session();
                let m = Arc::clone(&metrics);
                let adm = Arc::clone(&admission);
                let flag = Arc::clone(&shutdown);
                let cfg = config.clone();
                let spawned = std::thread::Builder::new()
                    .name("mmdb-server-conn".to_string())
                    .spawn(move || {
                        serve_connection(stream, session, &m, &adm, &flag, &cfg);
                        m.active.add(-1);
                    });
                match spawned {
                    Ok(handle) => conns.push(handle),
                    Err(_) => metrics.active.add(-1),
                }
                conns.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                conns.retain(|h| !h.is_finished());
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => {
                metrics.protocol_errors.inc();
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
    // Drain: connection threads notice the flag at their next poll and
    // exit after finishing whatever request is in flight.
    for handle in conns {
        let _ = handle.join();
    }
}

/// Tells an over-capacity client why it is being dropped. The refusal
/// is counted either way; a client that cannot even be told (its
/// socket is already broken) additionally counts a protocol error, so
/// refused connections never vanish from the ledger.
fn refuse(mut stream: TcpStream, metrics: &Metrics) {
    metrics.refused.inc();
    metrics.retryable_errors.inc();
    if stream
        .set_write_timeout(Some(Duration::from_secs(1)))
        .is_err()
        || proto::write_frame(&mut stream, &proto::encode_retryable("server at capacity")).is_err()
    {
        metrics.protocol_errors.inc();
    }
}

fn serve_connection<T: Transport>(
    mut stream: T,
    mut session: mmdb_sql::SqlSession,
    metrics: &Metrics,
    admission: &Admission,
    shutdown: &AtomicBool,
    config: &ServerConfig,
) {
    if stream.set_read_timeout(Some(POLL_INTERVAL)).is_err()
        || stream
            .set_write_timeout(Some(config.write_timeout))
            .is_err()
    {
        metrics.protocol_errors.inc();
        return;
    }
    let _ = stream.set_nodelay(true);
    let mut idle_since = Instant::now();
    // Slow-client accounting: response writes share one per-connection
    // stall budget; a client that keeps the server blocked in write()
    // for the whole budget is disconnected rather than allowed to pin
    // a server thread (and whatever locks its session holds).
    let mut stall_budget = config.write_stall_budget;
    loop {
        match proto::read_frame(&mut stream) {
            Ok(FrameRead::Idle) => {
                // ordering: shutdown flag, see ServerHandle::stop.
                if shutdown.load(Ordering::Relaxed) {
                    break;
                }
                if idle_since.elapsed() >= config.idle_timeout {
                    break;
                }
            }
            Ok(FrameRead::Eof) => break,
            Ok(FrameRead::Frame(payload)) => {
                idle_since = Instant::now();
                metrics.requests.inc();
                let response = handle_request(&payload, &mut session, metrics, admission);
                match proto::write_frame_stalled(&mut stream, &response, stall_budget) {
                    Ok(stalls) => {
                        metrics.write_stalls.add(stalls.stalls);
                        stall_budget = stall_budget.saturating_sub(stalls.stalled);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::TimedOut => {
                        metrics.write_stalls.inc();
                        metrics.slow_client_disconnects.inc();
                        break;
                    }
                    Err(_) => {
                        metrics.protocol_errors.inc();
                        break;
                    }
                }
            }
            Err(_) => {
                metrics.protocol_errors.inc();
                break;
            }
        }
    }
    // SqlSession::drop aborts any transaction the client left open.
}

fn handle_request(
    payload: &[u8],
    session: &mut mmdb_sql::SqlSession,
    metrics: &Metrics,
    admission: &Admission,
) -> Vec<u8> {
    let sql = match std::str::from_utf8(payload) {
        Ok(s) => s,
        Err(_) => {
            metrics.protocol_errors.inc();
            return proto::encode_err("request is not UTF-8");
        }
    };
    let stmt = match parse(sql) {
        Ok(stmt) => stmt,
        Err(e) => {
            metrics.parse_errors.inc();
            return proto::encode_err(&e.to_string());
        }
    };
    let kind = stmt.kind();
    // Shedding policy: in-flight transactions always run (they hold
    // locks), autocommit reads shed first, autocommit writes queue up
    // to the admission deadline. A shed is an in-band retryable error —
    // the statement definitively did not run.
    let class = if session.in_transaction() {
        AdmitClass::InTxn
    } else if kind == "select" {
        AdmitClass::Read
    } else {
        AdmitClass::Write
    };
    let arrived = Instant::now();
    let permit = admission.admit(class);
    metrics
        .admission_wait
        .record(arrived.elapsed().as_micros() as u64);
    let _permit = match permit {
        Ok(p) => p,
        Err(shed) => {
            metrics.shed.inc();
            metrics.retryable_errors.inc();
            return proto::encode_retryable(shed.message());
        }
    };
    metrics.inflight.add(1);
    let started = Instant::now();
    let outcome = session.run(&stmt);
    if let Some(hist) = metrics.latency_for(kind) {
        hist.record(started.elapsed().as_micros() as u64);
    }
    metrics.inflight.add(-1);
    match outcome {
        Ok(result) => match proto::encode_ok(&result) {
            Ok(frame) => cap_frame(frame),
            Err(e) => proto::encode_err(&e.to_string()),
        },
        Err(SqlError::Parse(e)) => {
            metrics.parse_errors.inc();
            proto::encode_err(&e.to_string())
        }
        Err(e) => match e.class() {
            ErrorClass::Retryable => {
                metrics.retryable_errors.inc();
                proto::encode_retryable(&e.to_string())
            }
            ErrorClass::Fatal => proto::encode_err(&e.to_string()),
        },
    }
}

/// Substitutes an in-band error for a response too large to frame, so
/// an oversized `SELECT` gets an error answer instead of a write-side
/// failure that drops the connection (and with it the client's open
/// transaction). Only genuine socket errors should break the serve
/// loop.
fn cap_frame(frame: Vec<u8>) -> Vec<u8> {
    if frame.len() > proto::MAX_FRAME_BYTES {
        proto::encode_err(&format!(
            "result too large: {} bytes exceeds the {} byte frame cap; narrow the query",
            frame.len(),
            proto::MAX_FRAME_BYTES
        ))
    } else {
        frame
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oversized_frames_become_error_responses() {
        let small = vec![0u8; 16];
        assert_eq!(cap_frame(small.clone()), small);
        let capped = cap_frame(vec![0u8; proto::MAX_FRAME_BYTES + 1]);
        assert!(capped.len() <= proto::MAX_FRAME_BYTES);
        match proto::decode_response(&capped).unwrap() {
            Err(we) => {
                assert!(we.msg.contains("result too large"), "{}", we.msg);
                assert!(!we.retryable, "an oversized result is not transient");
            }
            Ok(r) => panic!("expected an error response, got {r:?}"),
        }
    }
}
