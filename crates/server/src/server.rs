//! The TCP server: bounded accept loop, one SQL session per
//! connection, graceful drain on shutdown.
//!
//! Concurrency is thread-per-connection — the same model the engine's
//! own sessions use (§5.2 assumes a process per terminal; OS threads
//! are the modern spelling). The server itself holds *no* locks: the
//! accept thread owns the connection handles, shutdown is one shared
//! atomic flag, and everything else (catalog, store, metrics) is
//! synchronized by the layers that own it. Connections poll their
//! socket with a short read timeout so a shutdown request is noticed
//! within [`POLL_INTERVAL`] even on an idle connection, while a
//! request already in flight always runs to completion and gets its
//! response — that is the drain.

use crate::proto::{self, FrameRead};
use mmdb_obs::{Counter, Gauge, Histogram, Registry};
use mmdb_session::Engine;
use mmdb_sql::ast::STATEMENT_KINDS;
use mmdb_sql::parser::parse;
use mmdb_sql::{SqlDb, SqlError, StatementKind};
use mmdb_types::error::{Error, Result};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often blocked reads wake up to recheck the shutdown flag.
pub const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// Tunables for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (see
    /// [`ServerHandle::addr`] for the result).
    pub addr: String,
    /// Connections beyond this are refused with an error response.
    pub max_connections: usize,
    /// A connection idle longer than this is closed.
    pub idle_timeout: Duration,
    /// Socket write timeout for responses.
    pub write_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            max_connections: 256,
            idle_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(10),
        }
    }
}

/// Server-side metric handles, all registered on the engine's registry
/// so `render_metrics()` exposes engine and server families together.
struct Metrics {
    active: Arc<Gauge>,
    connections: Arc<Counter>,
    requests: Arc<Counter>,
    parse_errors: Arc<Counter>,
    protocol_errors: Arc<Counter>,
    latency: Vec<(StatementKind, Arc<Histogram>)>,
}

impl Metrics {
    fn register(registry: &Registry) -> Metrics {
        let mut latency = Vec::with_capacity(STATEMENT_KINDS.len());
        for kind in STATEMENT_KINDS {
            latency.push((
                kind,
                registry.histogram_labeled(
                    "mmdb_server_request_latency_us",
                    "Wall time from request frame decoded to response encoded",
                    Some(("stmt", kind.to_string())),
                ),
            ));
        }
        Metrics {
            active: registry.gauge(
                "mmdb_server_active_connections_count",
                "Connections currently open",
            ),
            connections: registry.counter(
                "mmdb_server_connections_total",
                "Connections ever accepted (including refused-at-capacity)",
            ),
            requests: registry.counter("mmdb_server_requests_total", "Request frames received"),
            parse_errors: registry.counter(
                "mmdb_server_parse_errors_total",
                "Requests rejected by the SQL parser",
            ),
            protocol_errors: registry.counter(
                "mmdb_server_protocol_errors_total",
                "Connections dropped for framing or transport errors",
            ),
            latency,
        }
    }

    fn latency_for(&self, kind: StatementKind) -> Option<&Arc<Histogram>> {
        self.latency
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, h)| h)
    }
}

/// The SQL-over-TCP server. Construct with [`Server::start`]; the
/// returned [`ServerHandle`] owns the listener thread.
pub struct Server;

impl Server {
    /// Opens the SQL layer over `engine` and starts accepting
    /// connections per `config`.
    pub fn start(engine: &Engine, config: ServerConfig) -> Result<ServerHandle> {
        let db = SqlDb::open(engine)?;
        let metrics = Arc::new(Metrics::register(&engine.registry()));
        let listener =
            TcpListener::bind(&config.addr).map_err(|e| Error::Io(format!("bind: {e}")))?;
        let addr = listener
            .local_addr()
            .map_err(|e| Error::Io(format!("local_addr: {e}")))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| Error::Io(format!("set_nonblocking: {e}")))?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let accept = std::thread::Builder::new()
            .name("mmdb-server-accept".to_string())
            .spawn(move || accept_loop(listener, db, metrics, flag, config))
            .map_err(|e| Error::Io(format!("spawn accept thread: {e}")))?;
        Ok(ServerHandle {
            addr,
            shutdown,
            accept: Some(accept),
        })
    }
}

/// Handle to a running server: its bound address and the shutdown
/// switch. Dropping the handle also shuts the server down.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, lets in-flight requests finish, joins every
    /// connection thread, and returns once the listener thread exits.
    pub fn shutdown(mut self) -> Result<()> {
        self.stop()
    }

    fn stop(&mut self) -> Result<()> {
        // ordering: the flag is a pure on/off signal; every observer
        // re-polls it, so relaxed visibility latency only delays (never
        // loses) the shutdown.
        self.shutdown.store(true, Ordering::Relaxed);
        match self.accept.take() {
            Some(handle) => handle
                .join()
                .map_err(|_| Error::Internal("server accept thread panicked".to_string())),
            None => Ok(()),
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        let _ = self.stop();
    }
}

fn accept_loop(
    listener: TcpListener,
    db: SqlDb,
    metrics: Arc<Metrics>,
    shutdown: Arc<AtomicBool>,
    config: ServerConfig,
) {
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    loop {
        // ordering: shutdown flag, see ServerHandle::stop.
        if shutdown.load(Ordering::Relaxed) {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                metrics.connections.inc();
                // The accepted socket inherits no non-blocking mode on
                // all platforms we care about, but be explicit.
                if stream.set_nonblocking(false).is_err() {
                    metrics.protocol_errors.inc();
                    continue;
                }
                if metrics.active.get() >= config.max_connections as i64 {
                    refuse(stream);
                    continue;
                }
                metrics.active.add(1);
                let session = db.session();
                let m = Arc::clone(&metrics);
                let flag = Arc::clone(&shutdown);
                let cfg = config.clone();
                let spawned = std::thread::Builder::new()
                    .name("mmdb-server-conn".to_string())
                    .spawn(move || {
                        serve_connection(stream, session, &m, &flag, &cfg);
                        m.active.add(-1);
                    });
                match spawned {
                    Ok(handle) => conns.push(handle),
                    Err(_) => metrics.active.add(-1),
                }
                conns.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                conns.retain(|h| !h.is_finished());
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => {
                metrics.protocol_errors.inc();
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
    // Drain: connection threads notice the flag at their next poll and
    // exit after finishing whatever request is in flight.
    for handle in conns {
        let _ = handle.join();
    }
}

/// Tells an over-capacity client why it is being dropped.
fn refuse(mut stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let _ = proto::write_frame(&mut stream, &proto::encode_err("server at capacity"));
}

fn serve_connection(
    mut stream: TcpStream,
    mut session: mmdb_sql::SqlSession,
    metrics: &Metrics,
    shutdown: &AtomicBool,
    config: &ServerConfig,
) {
    if stream.set_read_timeout(Some(POLL_INTERVAL)).is_err()
        || stream
            .set_write_timeout(Some(config.write_timeout))
            .is_err()
    {
        metrics.protocol_errors.inc();
        return;
    }
    let _ = stream.set_nodelay(true);
    let mut idle_since = Instant::now();
    loop {
        match proto::read_frame(&mut stream) {
            Ok(FrameRead::Idle) => {
                // ordering: shutdown flag, see ServerHandle::stop.
                if shutdown.load(Ordering::Relaxed) {
                    break;
                }
                if idle_since.elapsed() >= config.idle_timeout {
                    break;
                }
            }
            Ok(FrameRead::Eof) => break,
            Ok(FrameRead::Frame(payload)) => {
                idle_since = Instant::now();
                metrics.requests.inc();
                let response = handle_request(&payload, &mut session, metrics);
                if proto::write_frame(&mut stream, &response).is_err() {
                    metrics.protocol_errors.inc();
                    break;
                }
            }
            Err(_) => {
                metrics.protocol_errors.inc();
                break;
            }
        }
    }
    // SqlSession::drop aborts any transaction the client left open.
}

fn handle_request(
    payload: &[u8],
    session: &mut mmdb_sql::SqlSession,
    metrics: &Metrics,
) -> Vec<u8> {
    let sql = match std::str::from_utf8(payload) {
        Ok(s) => s,
        Err(_) => {
            metrics.protocol_errors.inc();
            return proto::encode_err("request is not UTF-8");
        }
    };
    let stmt = match parse(sql) {
        Ok(stmt) => stmt,
        Err(e) => {
            metrics.parse_errors.inc();
            return proto::encode_err(&e.to_string());
        }
    };
    let kind = stmt.kind();
    let started = Instant::now();
    let outcome = session.run(&stmt);
    if let Some(hist) = metrics.latency_for(kind) {
        hist.record(started.elapsed().as_micros() as u64);
    }
    match outcome {
        Ok(result) => match proto::encode_ok(&result) {
            Ok(frame) => cap_frame(frame),
            Err(e) => proto::encode_err(&e.to_string()),
        },
        Err(SqlError::Parse(e)) => {
            metrics.parse_errors.inc();
            proto::encode_err(&e.to_string())
        }
        Err(e) => proto::encode_err(&e.to_string()),
    }
}

/// Substitutes an in-band error for a response too large to frame, so
/// an oversized `SELECT` gets an error answer instead of a write-side
/// failure that drops the connection (and with it the client's open
/// transaction). Only genuine socket errors should break the serve
/// loop.
fn cap_frame(frame: Vec<u8>) -> Vec<u8> {
    if frame.len() > proto::MAX_FRAME_BYTES {
        proto::encode_err(&format!(
            "result too large: {} bytes exceeds the {} byte frame cap; narrow the query",
            frame.len(),
            proto::MAX_FRAME_BYTES
        ))
    } else {
        frame
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oversized_frames_become_error_responses() {
        let small = vec![0u8; 16];
        assert_eq!(cap_frame(small.clone()), small);
        let capped = cap_frame(vec![0u8; proto::MAX_FRAME_BYTES + 1]);
        assert!(capped.len() <= proto::MAX_FRAME_BYTES);
        match proto::decode_response(&capped).unwrap() {
            Err(msg) => assert!(msg.contains("result too large"), "{msg}"),
            Ok(r) => panic!("expected an error response, got {r:?}"),
        }
    }
}
