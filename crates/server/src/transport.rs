//! Pluggable byte transport with deterministic network fault injection.
//!
//! [`Transport`] is the minimal surface the server's connection loop
//! and the client driver need from a socket: `Read + Write` plus the
//! two timeout knobs. `TcpStream` implements it directly, so the real
//! wire path is unchanged; [`ChaosTransport`] wraps any transport and
//! injects a seeded [`NetFaultPlan`] — the network-path mirror of the
//! log layer's `FaultyBackend`. Faults are counted in *transport
//! operations* (individual `read`/`write` calls), which is exactly the
//! granularity the framing layer exercises: a frame is at least two
//! writes (length prefix, payload), so a torn or duplicated write op
//! lands mid-frame, where it hurts.
//!
//! Every fault is deterministic given the plan: the torture harness
//! derives one plan per dialed connection from its seeded RNG, so a
//! failing seed replays the same teardown byte-for-byte.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// What the wire path needs from a socket: blocking reads and writes
/// plus the two timeout knobs the poll loops depend on.
pub trait Transport: Read + Write + Send {
    /// Sets the read timeout for subsequent reads.
    fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()>;
    /// Sets the write timeout for subsequent writes.
    fn set_write_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()>;
    /// Disables (or re-enables) Nagle batching where the transport has
    /// such a concept; a no-op elsewhere.
    fn set_nodelay(&mut self, on: bool) -> io::Result<()>;
}

impl Transport for TcpStream {
    fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        TcpStream::set_read_timeout(self, timeout)
    }
    fn set_write_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        TcpStream::set_write_timeout(self, timeout)
    }
    fn set_nodelay(&mut self, on: bool) -> io::Result<()> {
        TcpStream::set_nodelay(self, on)
    }
}

/// A deterministic fault schedule for one connection. Counters are
/// 1-based: `drop_at(1)` kills the very first transport operation.
/// [`NetFaultPlan::default`] injects nothing.
#[derive(Debug, Clone, Default)]
pub struct NetFaultPlan {
    /// Kill the connection at the Nth combined read/write operation.
    drop_at: Option<u64>,
    /// Tear the Nth write: deliver only the first `keep` bytes of it,
    /// then kill the connection.
    torn_at: Option<(u64, usize)>,
    /// Sleep this long before every `every`th read.
    stall_read: Option<(u64, Duration)>,
    /// Sleep this long before every `every`th write.
    stall_write: Option<(u64, Duration)>,
    /// Deliver the Nth write twice back-to-back (desyncs the framing —
    /// the length prefix and payload are separate writes, so a
    /// duplicated op can never form a clean duplicate statement).
    dup_at: Option<u64>,
    /// Swallow the Nth write and deliver its bytes immediately before
    /// the next write (delayed delivery; `flush` does *not* release
    /// the held bytes).
    delay_at: Option<u64>,
}

impl NetFaultPlan {
    /// A plan injecting nothing (alias of `default`, for symmetry with
    /// the log layer's `FaultPlan::none`).
    pub fn none() -> NetFaultPlan {
        NetFaultPlan::default()
    }

    /// Kill the connection at the `n`th combined transport operation.
    pub fn drop_at(mut self, n: u64) -> NetFaultPlan {
        self.drop_at = Some(n.max(1));
        self
    }

    /// Tear the `n`th write after `keep` bytes, then kill the
    /// connection.
    pub fn torn_write(mut self, n: u64, keep: usize) -> NetFaultPlan {
        self.torn_at = Some((n.max(1), keep));
        self
    }

    /// Stall every `every`th read by `pause`.
    pub fn stall_reads(mut self, every: u64, pause: Duration) -> NetFaultPlan {
        self.stall_read = Some((every.max(1), pause));
        self
    }

    /// Stall every `every`th write by `pause`.
    pub fn stall_writes(mut self, every: u64, pause: Duration) -> NetFaultPlan {
        self.stall_write = Some((every.max(1), pause));
        self
    }

    /// Deliver the `n`th write twice.
    pub fn dup_write(mut self, n: u64) -> NetFaultPlan {
        self.dup_at = Some(n.max(1));
        self
    }

    /// Hold the `n`th write's bytes until the write after it.
    pub fn delay_write(mut self, n: u64) -> NetFaultPlan {
        self.delay_at = Some(n.max(1));
        self
    }

    /// True when this plan injects nothing.
    pub fn is_none(&self) -> bool {
        self.drop_at.is_none()
            && self.torn_at.is_none()
            && self.stall_read.is_none()
            && self.stall_write.is_none()
            && self.dup_at.is_none()
            && self.delay_at.is_none()
    }
}

/// A [`Transport`] that injects its [`NetFaultPlan`] into an inner
/// transport. Once a drop or torn-write fault fires, the transport is
/// dead: every further operation fails the way a closed socket would.
pub struct ChaosTransport<T: Transport> {
    inner: T,
    plan: NetFaultPlan,
    reads: u64,
    writes: u64,
    ops: u64,
    dead: bool,
    delayed: Vec<u8>,
}

impl<T: Transport> ChaosTransport<T> {
    /// Wraps `inner`, injecting `plan`.
    pub fn new(inner: T, plan: NetFaultPlan) -> ChaosTransport<T> {
        ChaosTransport {
            inner,
            plan,
            reads: 0,
            writes: 0,
            ops: 0,
            dead: false,
            delayed: Vec::new(),
        }
    }

    /// True once a drop or torn-write fault has fired.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    fn killed(&mut self, kind: io::ErrorKind, what: &str) -> io::Error {
        self.dead = true;
        io::Error::new(kind, format!("chaos: {what}"))
    }
}

impl<T: Transport> Read for ChaosTransport<T> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.dead {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "chaos: connection already dropped",
            ));
        }
        self.ops += 1;
        self.reads += 1;
        if self.plan.drop_at.is_some_and(|n| self.ops >= n) {
            return Err(self.killed(io::ErrorKind::ConnectionReset, "connection dropped on read"));
        }
        if let Some((every, pause)) = self.plan.stall_read {
            if self.reads % every == 0 {
                std::thread::sleep(pause);
            }
        }
        self.inner.read(buf)
    }
}

impl<T: Transport> Write for ChaosTransport<T> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.dead {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "chaos: connection already dropped",
            ));
        }
        self.ops += 1;
        self.writes += 1;
        if self.plan.drop_at.is_some_and(|n| self.ops >= n) {
            return Err(self.killed(io::ErrorKind::BrokenPipe, "connection dropped on write"));
        }
        if let Some((every, pause)) = self.plan.stall_write {
            if self.writes % every == 0 {
                std::thread::sleep(pause);
            }
        }
        if let Some((n, keep)) = self.plan.torn_at {
            if self.writes == n {
                let prefix = buf.get(..keep.min(buf.len())).unwrap_or(buf);
                let _ = self.inner.write(prefix);
                let _ = self.inner.flush();
                return Err(self.killed(io::ErrorKind::BrokenPipe, "write torn mid-frame"));
            }
        }
        if self.plan.delay_at.is_some_and(|n| self.writes == n) {
            self.delayed.extend_from_slice(buf);
            return Ok(buf.len());
        }
        if !self.delayed.is_empty() {
            let held = std::mem::take(&mut self.delayed);
            self.inner.write_all(&held)?;
        }
        self.inner.write_all(buf)?;
        if self.plan.dup_at.is_some_and(|n| self.writes == n) {
            self.inner.write_all(buf)?;
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.dead {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "chaos: connection already dropped",
            ));
        }
        // Deliberately does NOT release delayed bytes — that is the
        // delay fault: the bytes surface on the next write op.
        self.inner.flush()
    }
}

impl<T: Transport> Transport for ChaosTransport<T> {
    fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.inner.set_read_timeout(timeout)
    }
    fn set_write_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.inner.set_write_timeout(timeout)
    }
    fn set_nodelay(&mut self, on: bool) -> io::Result<()> {
        self.inner.set_nodelay(on)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto;

    /// An in-memory transport: reads come from a script, writes land
    /// in a buffer.
    struct Mem {
        rx: io::Cursor<Vec<u8>>,
        tx: Vec<u8>,
    }

    impl Mem {
        fn new(rx: Vec<u8>) -> Mem {
            Mem {
                rx: io::Cursor::new(rx),
                tx: Vec::new(),
            }
        }
    }

    impl Read for Mem {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            self.rx.read(buf)
        }
    }
    impl Write for Mem {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.tx.write(buf)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }
    impl Transport for Mem {
        fn set_read_timeout(&mut self, _: Option<Duration>) -> io::Result<()> {
            Ok(())
        }
        fn set_write_timeout(&mut self, _: Option<Duration>) -> io::Result<()> {
            Ok(())
        }
        fn set_nodelay(&mut self, _: bool) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn no_plan_is_transparent() {
        let mut wire = Vec::new();
        proto::write_frame(&mut wire, b"SELECT 1").unwrap();
        let mut t = ChaosTransport::new(Mem::new(wire), NetFaultPlan::none());
        assert!(NetFaultPlan::none().is_none());
        match proto::read_frame(&mut t).unwrap() {
            proto::FrameRead::Frame(p) => assert_eq!(p, b"SELECT 1"),
            other => panic!("{other:?}"),
        }
        proto::write_frame(&mut t, b"ok").unwrap();
        let mut rt = io::Cursor::new(t.inner.tx);
        match proto::read_frame(&mut rt).unwrap() {
            proto::FrameRead::Frame(p) => assert_eq!(p, b"ok"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn drop_at_kills_the_connection_permanently() {
        let mut t = ChaosTransport::new(Mem::new(vec![0u8; 64]), NetFaultPlan::none().drop_at(2));
        let mut buf = [0u8; 4];
        assert!(t.read(&mut buf).is_ok());
        let e = t.read(&mut buf).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::ConnectionReset);
        assert!(t.is_dead());
        // Dead is forever: writes fail too.
        assert_eq!(t.write(b"x").unwrap_err().kind(), io::ErrorKind::BrokenPipe);
        assert!(t.flush().is_err());
    }

    #[test]
    fn torn_write_delivers_a_prefix_then_dies() {
        let mut t =
            ChaosTransport::new(Mem::new(Vec::new()), NetFaultPlan::none().torn_write(2, 3));
        // Write 1 (a frame's length prefix) goes through; write 2 (the
        // payload) is torn after 3 bytes.
        assert!(t.write(&8u32.to_le_bytes()).is_ok());
        let e = t.write(b"SELECT 1").unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::BrokenPipe);
        assert_eq!(t.inner.tx, [8, 0, 0, 0, b'S', b'E', b'L']);
        assert!(t.is_dead());
    }

    #[test]
    fn dup_write_desyncs_the_stream() {
        let mut t = ChaosTransport::new(Mem::new(Vec::new()), NetFaultPlan::none().dup_write(1));
        proto::write_frame(&mut t, b"ab").unwrap();
        // The duplicated length prefix means a reader decodes garbage,
        // never a clean duplicate frame.
        assert_eq!(t.inner.tx, [2, 0, 0, 0, 2, 0, 0, 0, b'a', b'b']);
    }

    #[test]
    fn delayed_write_surfaces_on_the_next_op_not_on_flush() {
        let mut t = ChaosTransport::new(Mem::new(Vec::new()), NetFaultPlan::none().delay_write(1));
        assert!(t.write(&2u32.to_le_bytes()).is_ok());
        t.flush().unwrap();
        assert!(t.inner.tx.is_empty(), "flush must not release held bytes");
        assert!(t.write(b"ab").is_ok());
        // Delivered in order once the next write happens: the stream
        // heals and a reader sees one intact frame.
        let mut rt = io::Cursor::new(t.inner.tx);
        match proto::read_frame(&mut rt).unwrap() {
            proto::FrameRead::Frame(p) => assert_eq!(p, b"ab"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn stalls_inject_latency_without_corruption() {
        let mut wire = Vec::new();
        proto::write_frame(&mut wire, b"SELECT 1").unwrap();
        let plan = NetFaultPlan::none()
            .stall_reads(1, Duration::from_millis(1))
            .stall_writes(1, Duration::from_millis(1));
        let mut t = ChaosTransport::new(Mem::new(wire), plan);
        let started = std::time::Instant::now();
        match proto::read_frame(&mut t).unwrap() {
            proto::FrameRead::Frame(p) => assert_eq!(p, b"SELECT 1"),
            other => panic!("{other:?}"),
        }
        proto::write_frame(&mut t, b"ok").unwrap();
        assert!(started.elapsed() >= Duration::from_millis(2));
    }
}
