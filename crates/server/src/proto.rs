//! The wire protocol: length-prefixed frames and result encoding.
//!
//! Every message is one frame: a `u32` little-endian payload length
//! followed by the payload, capped at [`MAX_FRAME_BYTES`]. A request
//! payload is UTF-8 SQL text. A response payload starts with one
//! status byte:
//!
//! ```text
//! 0x00  OK         u16 ncols, per column u16 name-len + name bytes,
//!                  u32 nrows, per row ncols tagged values
//!                  (see mmdb_sql::codec), u64 affected
//! 0x01  ERROR      UTF-8 message to end of frame (fatal: retrying the
//!                  same statement cannot succeed)
//! 0x02  RETRYABLE  UTF-8 message to end of frame (transient: shed by
//!                  admission control, deadlock victim, shutdown race —
//!                  the same statement may succeed if retried)
//! ```
//!
//! Reads distinguish three outcomes so the server can poll: a full
//! [`FrameRead::Frame`], a clean [`FrameRead::Eof`] before any byte of
//! a frame, or [`FrameRead::Idle`] when a read timeout expired before
//! any byte arrived (keep-alive poll; the caller rechecks shutdown).
//! *Inside* a frame, per-read socket timeouts are retried until
//! [`MID_FRAME_TIMEOUT`] — the server polls its socket every 50 ms for
//! shutdown, and one slow TCP segment must not kill the connection —
//! after which (or on EOF) the frame is a hard protocol error.

use mmdb_sql::codec;
use mmdb_sql::QueryResult;
use mmdb_types::error::{Error, Result};
use std::io::{self, Read, Write};
use std::time::{Duration, Instant};

/// Largest frame either side will send or accept (16 MiB).
pub const MAX_FRAME_BYTES: usize = 16 * 1024 * 1024;

/// How long a started frame may take to arrive in full. Per-read
/// timeouts inside a frame (the short shutdown-poll interval on the
/// server) are retried until this much wall time has passed since the
/// frame's first byte.
pub const MID_FRAME_TIMEOUT: Duration = Duration::from_secs(5);

/// An in-band error response: the server's message plus whether the
/// failure is transient. `retryable` is the wire form of
/// [`mmdb_sql::session::ErrorClass`]: a shed statement, a deadlock
/// victim, or a shutdown race may succeed if re-sent; a parse or
/// semantic error never will.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// The server's error message.
    pub msg: String,
    /// True when re-sending the same statement may succeed.
    pub retryable: bool,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

/// Outcome of one framed read.
#[derive(Debug)]
pub enum FrameRead {
    /// A complete frame payload.
    Frame(Vec<u8>),
    /// The peer closed the connection between frames.
    Eof,
    /// A read timeout expired before any byte of a frame arrived.
    Idle,
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Fills `buf` completely. `got` bytes are already present. A read
/// timeout is retried — the caller's socket may be using a short
/// shutdown-poll timeout — until `deadline`, after which it becomes a
/// hard error; EOF mid-buffer is always an error.
fn fill(r: &mut impl Read, buf: &mut [u8], mut got: usize, deadline: Instant) -> io::Result<()> {
    while got < buf.len() {
        let dst = buf.get_mut(got..).ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "fill cursor out of range")
        })?;
        match r.read(dst) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                ))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if is_timeout(&e) => {
                if Instant::now() >= deadline {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "timed out mid-frame",
                    ));
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Reads one frame (see [`FrameRead`] for the non-frame outcomes),
/// allowing [`MID_FRAME_TIMEOUT`] for a started frame to finish.
pub fn read_frame(r: &mut impl Read) -> io::Result<FrameRead> {
    read_frame_within(r, MID_FRAME_TIMEOUT)
}

/// [`read_frame`] with an explicit mid-frame budget, measured from the
/// frame's first byte (tests shrink it; timeouts *before* the first
/// byte still surface as [`FrameRead::Idle`]).
pub fn read_frame_within(r: &mut impl Read, mid_frame: Duration) -> io::Result<FrameRead> {
    let mut len_buf = [0u8; 4];
    // The first byte decides between Eof/Idle and a real frame.
    let first = loop {
        let mut one = [0u8; 1];
        match r.read(&mut one) {
            Ok(0) => return Ok(FrameRead::Eof),
            Ok(_) => break one,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if is_timeout(&e) => return Ok(FrameRead::Idle),
            Err(e) => return Err(e),
        }
    };
    if let Some(slot) = len_buf.first_mut() {
        *slot = match first.first() {
            Some(b) => *b,
            None => 0,
        };
    }
    let deadline = Instant::now() + mid_frame;
    fill(r, &mut len_buf, 1, deadline)?;
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME_BYTES} byte cap"),
        ));
    }
    let mut payload = vec![0u8; len];
    fill(r, &mut payload, 0, deadline)?;
    Ok(FrameRead::Frame(payload))
}

/// Writes one frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds the cap", payload.len()),
        ));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Slow-receiver accounting from [`write_frame_stalled`]: how many
/// write attempts hit the socket's write timeout and how much wall
/// time they spent blocked.
#[derive(Debug, Default, Clone, Copy)]
pub struct WriteStalls {
    /// Write attempts that returned `WouldBlock`/`TimedOut`.
    pub stalls: u64,
    /// Total wall time spent in write attempts that timed out.
    pub stalled: Duration,
}

/// Writes a buffer completely, tracking the offset by hand (a plain
/// `write_all` loses its position on the first timeout) and charging
/// every timed-out attempt's wall time against `budget`. Exhausting
/// the budget is a hard `TimedOut` error — the caller treats the peer
/// as a slow client and disconnects it.
fn write_all_stalled(
    w: &mut impl Write,
    buf: &[u8],
    acct: &mut WriteStalls,
    budget: Duration,
) -> io::Result<()> {
    let mut at = 0usize;
    while at < buf.len() {
        let src = buf.get(at..).ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "write cursor out of range")
        })?;
        let attempt = Instant::now();
        match w.write(src) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "connection refused further bytes mid-frame",
                ))
            }
            Ok(n) => at += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if is_timeout(&e) => {
                acct.stalls += 1;
                // A zero-latency timeout still burns budget, so this
                // loop always terminates.
                acct.stalled += attempt.elapsed().max(Duration::from_micros(1));
                if acct.stalled >= budget {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "write stalled past the slow-client budget",
                    ));
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// [`write_frame`] with write-stall accounting for slow-client
/// detection: each write attempt runs under the socket's (short) write
/// timeout, timed-out attempts accumulate into the returned
/// [`WriteStalls`], and a cumulative stall beyond `budget` fails with
/// `TimedOut`. The caller carries the budget *across* responses by
/// passing the remainder on the next call.
pub fn write_frame_stalled(
    w: &mut impl Write,
    payload: &[u8],
    budget: Duration,
) -> io::Result<WriteStalls> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds the cap", payload.len()),
        ));
    }
    let mut acct = WriteStalls::default();
    write_all_stalled(w, &(payload.len() as u32).to_le_bytes(), &mut acct, budget)?;
    write_all_stalled(w, payload, &mut acct, budget)?;
    loop {
        let attempt = Instant::now();
        match w.flush() {
            Ok(()) => return Ok(acct),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if is_timeout(&e) => {
                acct.stalls += 1;
                // A zero-latency timeout still burns budget, so this
                // loop always terminates.
                acct.stalled += attempt.elapsed().max(Duration::from_micros(1));
                if acct.stalled >= budget {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "flush stalled past the slow-client budget",
                    ));
                }
            }
            Err(e) => return Err(e),
        }
    }
}

/// Encodes a successful result.
pub fn encode_ok(result: &QueryResult) -> Result<Vec<u8>> {
    let mut out = vec![0u8];
    if result.columns.len() > u16::MAX as usize {
        return Err(Error::TupleTooLarge(result.columns.len()));
    }
    out.extend_from_slice(&(result.columns.len() as u16).to_le_bytes());
    for name in &result.columns {
        if name.len() > u16::MAX as usize {
            return Err(Error::TupleTooLarge(name.len()));
        }
        out.extend_from_slice(&(name.len() as u16).to_le_bytes());
        out.extend_from_slice(name.as_bytes());
    }
    if result.rows.len() > u32::MAX as usize {
        return Err(Error::TupleTooLarge(result.rows.len()));
    }
    out.extend_from_slice(&(result.rows.len() as u32).to_le_bytes());
    for row in &result.rows {
        if row.len() != result.columns.len() {
            return Err(Error::Internal("result row arity mismatch".to_string()));
        }
        for v in row {
            codec::encode_value_into(&mut out, v)?;
        }
    }
    out.extend_from_slice(&result.affected.to_le_bytes());
    Ok(out)
}

/// Encodes a fatal error response carrying `msg` (status byte `0x01`):
/// re-sending the same statement cannot succeed.
pub fn encode_err(msg: &str) -> Vec<u8> {
    let mut out = vec![1u8];
    out.extend_from_slice(msg.as_bytes());
    out
}

/// Encodes a retryable error response carrying `msg` (status byte
/// `0x02`): the failure is transient — shed by admission control, a
/// deadlock victim, a shutdown race — and the same statement may
/// succeed if re-sent.
pub fn encode_retryable(msg: &str) -> Vec<u8> {
    let mut out = vec![2u8];
    out.extend_from_slice(msg.as_bytes());
    out
}

fn take<'a>(frame: &'a [u8], pos: &mut usize, n: usize) -> Result<&'a [u8]> {
    let end = pos
        .checked_add(n)
        .ok_or_else(|| Error::Io("response length overflow".to_string()))?;
    let s = frame
        .get(*pos..end)
        .ok_or_else(|| Error::Io("truncated response frame".to_string()))?;
    *pos = end;
    Ok(s)
}

fn take_u16(frame: &[u8], pos: &mut usize) -> Result<u16> {
    let s = take(frame, pos, 2)?;
    let mut b = [0u8; 2];
    for (dst, src) in b.iter_mut().zip(s) {
        *dst = *src;
    }
    Ok(u16::from_le_bytes(b))
}

fn take_u32(frame: &[u8], pos: &mut usize) -> Result<u32> {
    let s = take(frame, pos, 4)?;
    let mut b = [0u8; 4];
    for (dst, src) in b.iter_mut().zip(s) {
        *dst = *src;
    }
    Ok(u32::from_le_bytes(b))
}

fn take_u64(frame: &[u8], pos: &mut usize) -> Result<u64> {
    let s = take(frame, pos, 8)?;
    let mut b = [0u8; 8];
    for (dst, src) in b.iter_mut().zip(s) {
        *dst = *src;
    }
    Ok(u64::from_le_bytes(b))
}

/// Decodes a response frame. The outer `Result` is a protocol failure
/// (malformed frame); the inner one is the server's answer — either a
/// [`QueryResult`] or an in-band [`WireError`] carrying the server's
/// message and its retryable-vs-fatal classification.
pub fn decode_response(frame: &[u8]) -> Result<std::result::Result<QueryResult, WireError>> {
    let mut pos = 0usize;
    let status = *take(frame, &mut pos, 1)?
        .first()
        .ok_or_else(|| Error::Io("empty response frame".to_string()))?;
    match status {
        1 | 2 => {
            let msg = frame.get(pos..).unwrap_or_default();
            let msg = String::from_utf8_lossy(msg).into_owned();
            Ok(Err(WireError {
                msg,
                retryable: status == 2,
            }))
        }
        0 => {
            let ncols = take_u16(frame, &mut pos)? as usize;
            let mut columns = Vec::with_capacity(ncols);
            for _ in 0..ncols {
                let len = take_u16(frame, &mut pos)? as usize;
                let name = take(frame, &mut pos, len)?;
                columns.push(String::from_utf8_lossy(name).into_owned());
            }
            let nrows = take_u32(frame, &mut pos)? as usize;
            let mut rows = Vec::with_capacity(nrows.min(1 << 20));
            for _ in 0..nrows {
                rows.push(codec::decode_values_at(frame, &mut pos, ncols)?);
            }
            let affected = take_u64(frame, &mut pos)?;
            if pos != frame.len() {
                return Err(Error::Io("trailing bytes in response frame".to_string()));
            }
            Ok(Ok(QueryResult {
                columns,
                rows,
                affected,
            }))
        }
        other => Err(Error::Io(format!("unknown response status byte {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmdb_types::value::Value;

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"SELECT 1").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = io::Cursor::new(buf);
        match read_frame(&mut r).unwrap() {
            FrameRead::Frame(p) => assert_eq!(p, b"SELECT 1"),
            other => panic!("{other:?}"),
        }
        match read_frame(&mut r).unwrap() {
            FrameRead::Frame(p) => assert!(p.is_empty()),
            other => panic!("{other:?}"),
        }
        assert!(matches!(read_frame(&mut r).unwrap(), FrameRead::Eof));
    }

    /// A reader that replays a script of timeouts and data chunks,
    /// then EOF — a socket with stalls between TCP segments.
    struct Stutter {
        events: std::collections::VecDeque<Option<u8>>,
    }

    impl Stutter {
        fn new(bytes: &[u8], timeouts_between: usize) -> Self {
            let mut events = std::collections::VecDeque::new();
            for b in bytes {
                events.push_back(Some(*b));
                for _ in 0..timeouts_between {
                    events.push_back(None);
                }
            }
            Stutter { events }
        }
    }

    impl Read for Stutter {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            match self.events.pop_front() {
                None => Ok(0),
                Some(None) => Err(io::Error::new(io::ErrorKind::WouldBlock, "stall")),
                Some(Some(b)) => match buf.first_mut() {
                    Some(slot) => {
                        *slot = b;
                        Ok(1)
                    }
                    None => Ok(0),
                },
            }
        }
    }

    #[test]
    fn mid_frame_stalls_are_retried_to_the_deadline() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"SELECT 1").unwrap();
        // Stalls between every byte — inside the length prefix and the
        // payload — must not fail the read while the deadline holds.
        let mut r = Stutter::new(&wire, 3);
        match read_frame(&mut r).unwrap() {
            FrameRead::Frame(p) => assert_eq!(p, b"SELECT 1"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn mid_frame_deadline_expiry_is_an_error() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"SELECT 1").unwrap();
        let mut r = Stutter::new(&wire, 1);
        // A zero budget expires at the first stall after the first byte.
        let e = read_frame_within(&mut r, Duration::ZERO).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::TimedOut);
        // A stall before any byte is still just Idle, not an error.
        let mut idle = Stutter {
            events: [None].into_iter().collect(),
        };
        assert!(matches!(
            read_frame_within(&mut idle, Duration::ZERO).unwrap(),
            FrameRead::Idle
        ));
    }

    #[test]
    fn truncated_frame_is_an_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        buf.truncate(buf.len() - 2);
        let mut r = io::Cursor::new(buf);
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn oversized_length_is_rejected() {
        let mut buf = (u32::MAX).to_le_bytes().to_vec();
        buf.extend_from_slice(&[0; 8]);
        let mut r = io::Cursor::new(buf);
        assert!(read_frame(&mut r).is_err());
        let big = vec![0u8; MAX_FRAME_BYTES + 1];
        assert!(write_frame(&mut Vec::new(), &big).is_err());
    }

    #[test]
    fn response_roundtrip() {
        let result = QueryResult {
            columns: vec!["id".to_string(), "name".to_string()],
            rows: vec![
                vec![Value::Int(1), Value::Str("ann".to_string())],
                vec![Value::Int(2), Value::Null],
            ],
            affected: 0,
        };
        let frame = encode_ok(&result).unwrap();
        assert_eq!(decode_response(&frame).unwrap().unwrap(), result);

        let frame = encode_err("no such table");
        let err = decode_response(&frame).unwrap().unwrap_err();
        assert_eq!(err.msg, "no such table");
        assert!(!err.retryable);

        let frame = encode_retryable("overloaded");
        let err = decode_response(&frame).unwrap().unwrap_err();
        assert_eq!(err.msg, "overloaded");
        assert!(err.retryable);
    }

    /// A writer that refuses the first `stalls` write attempts with a
    /// timeout, then accepts one byte per call — a receiver whose
    /// window keeps filling up.
    struct Choky {
        stalls: usize,
        accepted: Vec<u8>,
    }

    impl Write for Choky {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.stalls > 0 {
                self.stalls -= 1;
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "window full"));
            }
            match buf.first() {
                Some(b) => {
                    self.accepted.push(*b);
                    Ok(1)
                }
                None => Ok(0),
            }
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn stalled_writes_are_accounted_and_complete_within_budget() {
        let mut w = Choky {
            stalls: 3,
            accepted: Vec::new(),
        };
        let acct = write_frame_stalled(&mut w, b"hi", Duration::from_secs(5)).unwrap();
        assert_eq!(acct.stalls, 3);
        assert!(acct.stalled > Duration::ZERO);
        // The frame arrived intact despite the per-byte dribble.
        let mut r = io::Cursor::new(w.accepted);
        match read_frame(&mut r).unwrap() {
            FrameRead::Frame(p) => assert_eq!(p, b"hi"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn exhausted_stall_budget_is_a_timeout() {
        let mut w = Choky {
            stalls: 1_000_000,
            accepted: Vec::new(),
        };
        let e = write_frame_stalled(&mut w, b"hi", Duration::from_micros(10)).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::TimedOut);
    }

    #[test]
    fn corrupt_responses_error_cleanly() {
        let result = QueryResult {
            columns: vec!["id".to_string()],
            rows: vec![vec![Value::Int(1)]],
            affected: 0,
        };
        let frame = encode_ok(&result).unwrap();
        for cut in 1..frame.len() {
            assert!(decode_response(&frame[..cut]).is_err(), "cut {cut}");
        }
        assert!(decode_response(&[9, 0, 0]).is_err());
        assert!(decode_response(&[]).is_err());
    }
}
