//! Full-stack seeded chaos torture: SQL over TCP under network faults
//! and engine crashes, checked against the recovered image.
//!
//! The log-layer harness (`mmdb_session::torture`) proves the engine
//! survives device failure; this one extends the same discipline up
//! the wire. One `u64` seed derives a [`ServerChaosScenario`], a
//! per-connection [`NetFaultPlan`] stream, and a concurrent transfer
//! workload driven purely through [`Client`] — parse → plan → engine →
//! WAL and back. The run then drains, crashes the engine, recovers
//! fault-free, and checks through a *clean* connection:
//!
//! * **Acked implies recovered.** Every `COMMIT` the client saw
//!   succeed is in the recovered ledger.
//! * **No phantom commits.** Every recovered ledger marker belongs to
//!   a transaction the client committed or one whose `COMMIT` answer
//!   was lost in flight ("unknown" — never retried).
//! * **No silent duplication.** Each transaction inserts one unique
//!   ledger marker; a retry that re-applied committed work would show
//!   up as a duplicate marker. This is the wire-level proof that the
//!   client's retry taxonomy never resubmits non-idempotent work.
//! * **Conservation and exactness.** Accounts start at zero and every
//!   transfer is zero-sum, so recovered balances must sum to zero —
//!   and must equal exactly the balances implied by the recovered
//!   ledger markers' transfer deltas.
//! * **The failure surface is honest.** A connection that dies with a
//!   transaction open must surface as
//!   [`ClientError::ConnectionLost`]` { in_txn: true }` — never as a
//!   shape a naive caller would blindly retry.
//! * **Nobody hangs.** Every deadline is finite; the xtask watchdog
//!   bounds the whole sweep.
//!
//! Run as `cargo xtask torture --server --seeds N`.

use crate::client::{Client, ClientConfig, ClientError, Dialer};
use crate::server::{Server, ServerConfig};
use crate::transport::{ChaosTransport, NetFaultPlan, Transport};
use mmdb_session::torture::{Lcg, TortureReport};
use mmdb_session::{CommitPolicy, Engine, EngineOptions};
use mmdb_types::{Error, Result};
use std::collections::{BTreeMap, BTreeSet};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Accounts the workload transfers between (ids `0..KEYS`).
const KEYS: i64 = 6;

/// The network/overload failure a seed injects into its run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerChaosScenario {
    /// No faults: the baseline the chaotic seeds must not regress.
    CleanWire,
    /// Connections die at a random transport operation.
    DropWire,
    /// Writes tear mid-frame, then the connection dies.
    TornWire,
    /// Reads and writes stall briefly — latency, not loss.
    StallWire,
    /// A write is delivered twice, desynchronizing the framing.
    DupWire,
    /// A write is withheld until the following write.
    DelayWire,
    /// Tiny admission capacity: most statements shed, retries carry.
    Overload,
    /// The engine crashes mid-traffic, recovers, and a new server
    /// takes over on a new port; clients re-dial through the chaos.
    MidRunCrash,
}

impl ServerChaosScenario {
    fn from(rng: &mut Lcg) -> ServerChaosScenario {
        match rng.below(8) {
            0 => ServerChaosScenario::CleanWire,
            1 => ServerChaosScenario::DropWire,
            2 => ServerChaosScenario::TornWire,
            3 => ServerChaosScenario::StallWire,
            4 => ServerChaosScenario::DupWire,
            5 => ServerChaosScenario::DelayWire,
            6 => ServerChaosScenario::Overload,
            _ => ServerChaosScenario::MidRunCrash,
        }
    }

    /// Stable name for reports and artifact directories.
    pub fn name(self) -> &'static str {
        match self {
            ServerChaosScenario::CleanWire => "clean-wire",
            ServerChaosScenario::DropWire => "drop-wire",
            ServerChaosScenario::TornWire => "torn-wire",
            ServerChaosScenario::StallWire => "stall-wire",
            ServerChaosScenario::DupWire => "dup-wire",
            ServerChaosScenario::DelayWire => "delay-wire",
            ServerChaosScenario::Overload => "overload",
            ServerChaosScenario::MidRunCrash => "mid-run-crash",
        }
    }

    /// The fault plan for one freshly dialed connection. Half the
    /// connections dial clean so chaotic seeds still make progress.
    fn draw_plan(self, rng: &mut Lcg) -> NetFaultPlan {
        if rng.below(2) == 0 {
            return NetFaultPlan::none();
        }
        match self {
            ServerChaosScenario::CleanWire
            | ServerChaosScenario::Overload
            | ServerChaosScenario::MidRunCrash => NetFaultPlan::none(),
            ServerChaosScenario::DropWire => NetFaultPlan::none().drop_at(4 + rng.below(60)),
            ServerChaosScenario::TornWire => {
                NetFaultPlan::none().torn_write(1 + rng.below(16), rng.below(6) as usize)
            }
            ServerChaosScenario::StallWire => NetFaultPlan::none()
                .stall_reads(1 + rng.below(4), Duration::from_millis(1 + rng.below(6)))
                .stall_writes(1 + rng.below(4), Duration::from_millis(1 + rng.below(6))),
            ServerChaosScenario::DupWire => NetFaultPlan::none().dup_write(1 + rng.below(16)),
            ServerChaosScenario::DelayWire => NetFaultPlan::none().delay_write(1 + rng.below(16)),
        }
    }
}

/// What one transfer ultimately came to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Outcome {
    /// `COMMIT` returned OK: this transaction must be recovered.
    Acked,
    /// The `COMMIT` answer was lost (or ambiguous): the transaction
    /// may or may not have committed. It is never retried.
    Unknown,
    /// Definitively aborted (and retries exhausted): it must *not*
    /// appear in the recovered ledger.
    Failed,
}

/// One transfer the workload attempted, keyed by its ledger marker.
#[derive(Debug, Clone)]
struct Transfer {
    marker: i64,
    from: i64,
    to: i64,
    amount: i64,
    outcome: Outcome,
}

/// How one attempt of a transfer transaction ended.
enum Attempt {
    /// COMMIT answered OK.
    Committed,
    /// The commit's fate is unknowable from here: never retried.
    Unknown,
    /// Definitively rolled back: safe to retry the same marker.
    Aborted,
    /// The client surfaced a failure shape its contract forbids.
    Violation(String),
}

fn violation(seed: u64, msg: String) -> Error {
    Error::Internal(format!("server-chaos seed {seed}: {msg}"))
}

/// The currently serving address, shared with every dialer so a
/// mid-run crash can repoint them at the successor server.
fn current_addr(slot: &AtomicU64) -> SocketAddr {
    // ordering: the port is an independent word updated once per
    // server generation; a stale read just means one more refused
    // dial, which the dialer retry loop absorbs.
    SocketAddr::from(([127, 0, 0, 1], slot.load(Ordering::Relaxed) as u16))
}

fn make_dialer(slot: Arc<AtomicU64>, scenario: ServerChaosScenario, dial_seed: u64) -> Dialer {
    let mut rng = Lcg::new(dial_seed);
    Box::new(move || {
        let addr = current_addr(&slot);
        let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(2))?;
        let plan = scenario.draw_plan(&mut rng);
        Ok(Box::new(ChaosTransport::new(stream, plan)) as Box<dyn Transport>)
    })
}

fn chaos_client_config(seed: u64, client: u64) -> ClientConfig {
    ClientConfig {
        connect_timeout: Duration::from_secs(2),
        read_deadline: Duration::from_secs(2),
        write_timeout: Duration::from_secs(2),
        max_retries: 2,
        backoff_base: Duration::from_millis(2),
        backoff_cap: Duration::from_millis(20),
        retry_seed: seed ^ client.wrapping_mul(0x0DD_BA11),
        auto_retry: true,
        registry: None,
    }
}

/// Builds a chaos client, retrying the eager dial while a mid-run
/// crash swaps servers. `None` once the retry budget is exhausted.
fn connect_chaos(
    slot: &Arc<AtomicU64>,
    scenario: ServerChaosScenario,
    seed: u64,
    client: u64,
    generation: &mut u64,
) -> Option<Client> {
    for _ in 0..100 {
        *generation = generation.wrapping_add(1);
        let dialer = make_dialer(
            Arc::clone(slot),
            scenario,
            seed ^ client.wrapping_mul(0x00C0_FFEE) ^ generation.wrapping_mul(0x1_0000_0001),
        );
        match Client::from_dialer(dialer, chaos_client_config(seed, client)) {
            Ok(c) => return Some(c),
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
    None
}

/// Classifies a failure of a statement sent *inside* the transaction
/// (after BEGIN succeeded, before COMMIT). In every tolerated shape
/// the transaction is definitively rolled back: an in-band error means
/// the server aborted it, and a torn connection kills the server
/// session (whose drop aborts it). The forbidden shapes are the ones a
/// naive caller would auto-retry.
fn classify_mid_txn(e: &ClientError) -> Attempt {
    match e {
        ClientError::Server { .. } => Attempt::Aborted,
        ClientError::ConnectionLost { in_txn: true, .. } => Attempt::Aborted,
        ClientError::Timeout(_) => Attempt::Aborted,
        ClientError::Protocol(_) => Attempt::Aborted,
        ClientError::ConnectionLost { in_txn: false, .. } => Attempt::Violation(format!(
            "mid-transaction failure reported as ConnectionLost {{ in_txn: false }}: {e}"
        )),
        ClientError::Io(_) => Attempt::Violation(format!(
            "mid-transaction failure reported as a bare dial error: {e}"
        )),
    }
}

/// Runs one transfer transaction through `client`. Any statement may
/// fail at any moment; the returned [`Attempt`] is the fate.
fn attempt_transfer(client: &mut Client, t: &Transfer) -> Attempt {
    // BEGIN is sent outside any transaction: every failure there means
    // nothing started — plain abort, no special shapes required.
    if client.execute("BEGIN").is_err() {
        return Attempt::Aborted;
    }
    let body = [
        format!(
            "UPDATE acct SET bal = bal - {} WHERE id = {}",
            t.amount, t.from
        ),
        format!(
            "UPDATE acct SET bal = bal + {} WHERE id = {}",
            t.amount, t.to
        ),
        format!(
            "INSERT INTO ledger VALUES ({}, {}, {})",
            t.marker, t.from, t.to
        ),
    ];
    for sql in &body {
        if let Err(e) = client.execute(sql) {
            return classify_mid_txn(&e);
        }
        if !client.in_transaction() {
            // Defensive: the client believes the transaction is gone
            // even though the statement answered OK — treat as aborted
            // rather than committing a half-transfer.
            return Attempt::Aborted;
        }
    }
    match client.execute("COMMIT") {
        Ok(_) => Attempt::Committed,
        // An in-band COMMIT failure is ambiguous at this layer (the
        // engine may have aborted, or only the ack path failed), so
        // the harness refuses to retry: conservative Unknown.
        Err(ClientError::Server { .. }) => Attempt::Unknown,
        // The answer was lost with the connection: Unknown, never
        // retried — this is the oracle's bait for unsafe retry logic.
        Err(ClientError::ConnectionLost { .. })
        | Err(ClientError::Timeout(_))
        | Err(ClientError::Protocol(_)) => Attempt::Unknown,
        Err(e @ ClientError::Io(_)) => classify_mid_txn(&e),
    }
}

/// One client thread's workload: `txns` transfers, each retried at
/// most once and only when the previous attempt definitively aborted.
fn run_chaos_client(
    slot: Arc<AtomicU64>,
    scenario: ServerChaosScenario,
    seed: u64,
    client_id: u64,
    txns: u64,
) -> std::result::Result<Vec<Transfer>, String> {
    let mut rng = Lcg::new((seed ^ client_id.wrapping_mul(0x00C0_FFEE)) | 1);
    let mut generation = 0u64;
    let mut client = connect_chaos(&slot, scenario, seed, client_id, &mut generation);
    let mut transfers = Vec::with_capacity(txns as usize);
    for s in 0..txns {
        let from = rng.below(KEYS as u64) as i64;
        let to = (from + 1 + rng.below(KEYS as u64 - 1) as i64) % KEYS;
        let mut t = Transfer {
            marker: (client_id as i64) * 10_000 + s as i64,
            from,
            to,
            amount: 1 + rng.below(9) as i64,
            outcome: Outcome::Failed,
        };
        // Warm-up autocommit read: exercises the read-shedding path and
        // the client's safe SELECT auto-retry; every outcome tolerated.
        if let Some(c) = client.as_mut() {
            let _ = c.execute(&format!("SELECT bal FROM acct WHERE id = {from}"));
        }
        for _attempt in 0..2 {
            let c = match client.as_mut() {
                Some(c) => c,
                None => {
                    client = connect_chaos(&slot, scenario, seed, client_id, &mut generation);
                    match client.as_mut() {
                        Some(c) => c,
                        None => break,
                    }
                }
            };
            match attempt_transfer(c, &t) {
                Attempt::Violation(msg) => return Err(msg),
                Attempt::Committed => {
                    t.outcome = Outcome::Acked;
                    break;
                }
                Attempt::Unknown => {
                    t.outcome = Outcome::Unknown;
                    break;
                }
                Attempt::Aborted => {
                    // Definitely rolled back: loop retries the same
                    // marker exactly once.
                }
            }
        }
        transfers.push(t);
    }
    Ok(transfers)
}

/// Picks the engine/commit shape for a seed.
fn engine_options(rng: &mut Lcg, log_dir: &Path) -> EngineOptions {
    let policy = if rng.below(3) == 0 {
        CommitPolicy::Synchronous
    } else {
        CommitPolicy::Group
    };
    EngineOptions::new(policy, log_dir)
        .with_page_write_latency(Duration::from_micros(rng.below(200)))
        .with_flush_interval(Duration::from_micros(200))
        .with_lock_wait_timeout(Duration::from_millis(30))
        .with_shards(1 + rng.below(4) as usize)
        .with_io_retry_backoff(Duration::from_micros(100))
}

fn server_config(scenario: ServerChaosScenario) -> ServerConfig {
    let mut cfg = ServerConfig {
        idle_timeout: Duration::from_secs(10),
        ..ServerConfig::default()
    };
    if scenario == ServerChaosScenario::Overload {
        cfg.max_inflight_statements = 1;
        cfg.admission_queue = 1;
        cfg.admission_deadline = Duration::from_millis(25);
    }
    cfg
}

/// Runs SQL on a plain (chaos-free) client, mapping failure into a
/// seed violation — the verification connection must just work.
fn must(client: &mut Client, sql: &str, seed: u64) -> Result<mmdb_sql::QueryResult> {
    client
        .execute(sql)
        .map_err(|e| violation(seed, format!("verification statement {sql:?} failed: {e}")))
}

fn int_at(row: &[mmdb_types::Value], idx: usize) -> Option<i64> {
    row.get(idx).and_then(|v| v.as_int())
}

/// Phase 1+2: serve traffic under chaos (optionally crashing the
/// engine mid-run), then drain. Returns the engine for the final
/// crash/recover plus every client's transfer record.
fn run_workload(
    seed: u64,
    scenario: ServerChaosScenario,
    options: &EngineOptions,
    rng: &mut Lcg,
) -> Result<(Engine, Vec<Transfer>)> {
    let engine = Engine::start(options.clone())?;
    let cfg = server_config(scenario);
    let handle = Server::start(&engine, cfg.clone())?;
    let slot = Arc::new(AtomicU64::new(u64::from(handle.addr().port())));

    // Schema + zeroed accounts through a plain client.
    {
        let mut init = Client::connect(handle.addr())
            .map_err(|e| violation(seed, format!("init connect failed: {e}")))?;
        must(&mut init, "CREATE TABLE acct (id INT, bal INT)", seed)?;
        let rows: Vec<String> = (0..KEYS).map(|id| format!("({id}, 0)")).collect();
        must(
            &mut init,
            &format!("INSERT INTO acct VALUES {}", rows.join(", ")),
            seed,
        )?;
        must(
            &mut init,
            "CREATE TABLE ledger (marker INT, src INT, dst INT)",
            seed,
        )?;
    }

    let clients = 2 + rng.below(2);
    let txns_per_client = 3 + rng.below(5);
    let crash_after = Duration::from_millis(10 + rng.below(60));

    let mut joins = Vec::new();
    for client_id in 0..clients {
        let slot_c = Arc::clone(&slot);
        let join = std::thread::Builder::new()
            .name(format!("server-chaos-client-{client_id}"))
            .spawn(move || run_chaos_client(slot_c, scenario, seed, client_id, txns_per_client))
            .map_err(|e| Error::Io(format!("spawn chaos client: {e}")))?;
        joins.push(join);
    }

    // Mid-run crash: drain the server, crash the engine, recover, and
    // repoint the dialers at the successor. Clients ride it out via
    // reconnects; their open transactions die honestly.
    let (engine, handle) = if scenario == ServerChaosScenario::MidRunCrash {
        std::thread::sleep(crash_after);
        handle.shutdown()?;
        engine.crash()?;
        let (engine2, _info) = Engine::recover(options.clone())?;
        let handle2 = Server::start(&engine2, cfg)?;
        // ordering: see current_addr — dialers tolerate staleness.
        slot.store(u64::from(handle2.addr().port()), Ordering::Relaxed);
        (engine2, handle2)
    } else {
        (engine, handle)
    };

    let mut transfers = Vec::new();
    for join in joins {
        let client_transfers = join
            .join()
            .map_err(|_| violation(seed, "chaos client thread panicked".to_string()))?
            .map_err(|msg| violation(seed, msg))?;
        transfers.extend(client_transfers);
    }

    // Drain: every in-flight request finishes and is answered.
    handle.shutdown()?;
    Ok((engine, transfers))
}

/// Runs one full seeded server-chaos iteration in `log_dir` (created
/// fresh; kept by the caller on `Err` as the failure artifact). See
/// the module docs for the properties checked.
pub fn run_server_seed(seed: u64, log_dir: &Path) -> Result<TortureReport> {
    std::fs::remove_dir_all(log_dir).ok();
    let mut rng = Lcg::new(seed ^ 0x5E12_7EC4_A05C_0D1E);
    let scenario = ServerChaosScenario::from(&mut rng);
    let options = engine_options(&mut rng, log_dir);
    let policy = format!("{:?}", options.policy);

    let (engine, transfers) = run_workload(seed, scenario, &options, &mut rng)?;

    // Dump the workload's view of every transfer next to the log: on a
    // failing seed the directory is kept, and the oracle's verdict is
    // only interpretable against what each client thought happened.
    let dump: String = transfers
        .iter()
        .map(|t| {
            format!(
                "marker {} from {} to {} amount {} outcome {:?}\n",
                t.marker, t.from, t.to, t.amount, t.outcome
            )
        })
        .collect();
    std::fs::write(log_dir.join("transfers.txt"), dump).ok();

    // Final failure + fault-free recovery.
    engine.crash()?;
    let (engine, info) = Engine::recover(options.clone())?;
    let recovered_txns = info.committed.len();

    // Verify through a fresh server and a plain client.
    let handle = Server::start(&engine, ServerConfig::default())?;
    let mut check = Client::connect(handle.addr())
        .map_err(|e| violation(seed, format!("verify connect failed: {e}")))?;

    let ledger = must(&mut check, "SELECT marker, src, dst FROM ledger", seed)?;
    let mut recovered_markers: BTreeSet<i64> = BTreeSet::new();
    for row in &ledger.rows {
        let marker = int_at(row, 0)
            .ok_or_else(|| violation(seed, "ledger row without integer marker".to_string()))?;
        if !recovered_markers.insert(marker) {
            return Err(violation(
                seed,
                format!("duplicate ledger marker {marker}: non-idempotent work was re-applied"),
            ));
        }
    }

    let by_marker: BTreeMap<i64, &Transfer> = transfers.iter().map(|t| (t.marker, t)).collect();

    // Acked ⊆ recovered.
    for t in &transfers {
        if t.outcome == Outcome::Acked && !recovered_markers.contains(&t.marker) {
            return Err(violation(
                seed,
                format!("acked transfer marker {} missing after recovery", t.marker),
            ));
        }
    }
    // Recovered ⊆ acked ∪ unknown.
    for marker in &recovered_markers {
        match by_marker.get(marker) {
            Some(t) if t.outcome != Outcome::Failed => {}
            Some(t) => {
                return Err(violation(
                    seed,
                    format!(
                        "marker {} recovered but its transfer was definitively aborted ({:?})",
                        t.marker, t.outcome
                    ),
                ))
            }
            None => {
                return Err(violation(
                    seed,
                    format!("marker {marker} recovered but never attempted"),
                ))
            }
        }
    }

    // Exact balances from the recovered ledger's transfer deltas.
    let mut expected: BTreeMap<i64, i64> = (0..KEYS).map(|id| (id, 0)).collect();
    for marker in &recovered_markers {
        if let Some(t) = by_marker.get(marker) {
            if let Some(b) = expected.get_mut(&t.from) {
                *b -= t.amount;
            }
            if let Some(b) = expected.get_mut(&t.to) {
                *b += t.amount;
            }
        }
    }
    let balances = must(&mut check, "SELECT id, bal FROM acct", seed)?;
    let mut actual: BTreeMap<i64, i64> = BTreeMap::new();
    for row in &balances.rows {
        match (int_at(row, 0), int_at(row, 1)) {
            (Some(id), Some(bal)) => {
                actual.insert(id, bal);
            }
            _ => {
                return Err(violation(
                    seed,
                    "acct row without integer columns".to_string(),
                ))
            }
        }
    }
    if actual != expected {
        return Err(violation(
            seed,
            format!("recovered balances {actual:?} != ledger-implied {expected:?}"),
        ));
    }
    let sum: i64 = actual.values().sum();
    if sum != 0 {
        return Err(violation(seed, format!("balances sum to {sum}, not zero")));
    }

    // Liveness probe: the recovered stack still serves writes.
    must(&mut check, "INSERT INTO ledger VALUES (-1, -1, -1)", seed)?;
    let probe = must(
        &mut check,
        "SELECT marker FROM ledger WHERE marker = -1",
        seed,
    )?;
    if probe.rows.len() != 1 {
        return Err(violation(seed, "liveness probe row missing".to_string()));
    }

    handle.shutdown()?;
    engine.shutdown()?;

    let acked = transfers
        .iter()
        .filter(|t| t.outcome == Outcome::Acked)
        .count();
    let committed = transfers
        .iter()
        .filter(|t| t.outcome != Outcome::Failed)
        .count();
    Ok(TortureReport {
        seed,
        scenario: format!("server-{}", scenario.name()),
        policy,
        committed,
        acked,
        recovered: recovered_txns,
        corrupt_pages_dropped: 0,
        degraded: false,
    })
}

/// Sweeps `count` seeds from `first`, one directory per seed, stopping
/// at the first violation. A passing seed's directory is removed; a
/// failing seed's is kept as the artifact (its path is in the error).
pub fn run_server_range(first: u64, count: u64, base_dir: &Path) -> Result<Vec<TortureReport>> {
    let mut reports = Vec::with_capacity(count as usize);
    for seed in first..first.saturating_add(count) {
        let log_dir = seed_dir(base_dir, seed);
        match run_server_seed(seed, &log_dir) {
            Ok(report) => {
                std::fs::remove_dir_all(&log_dir).ok();
                reports.push(report);
            }
            Err(e) => {
                return Err(Error::Internal(format!(
                    "{e} [artifacts: {}]",
                    log_dir.display()
                )));
            }
        }
    }
    Ok(reports)
}

/// The per-seed log directory under `base_dir`.
pub fn seed_dir(base_dir: &Path, seed: u64) -> PathBuf {
    base_dir.join(format!("server-seed-{seed}"))
}
