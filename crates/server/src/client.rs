//! The client driver: connect with deadlines, send SQL, decode
//! results, and retry — but only when retrying cannot duplicate work.
//!
//! Three failure surfaces are kept distinct because the safe reaction
//! differs for each:
//!
//! * [`ClientError::Server`] — the server answered in-band; it says
//!   whether the statement is worth resubmitting (`retryable`, from
//!   [`mmdb_sql::ErrorClass`]). A retryable server error means the
//!   statement definitively did *not* apply.
//! * [`ClientError::ConnectionLost`] / [`ClientError::Timeout`] — the
//!   answer is unknown: the statement may or may not have committed.
//!   Only idempotent reads auto-retry here. If a transaction was open,
//!   the error is `ConnectionLost { in_txn: true }` and nothing
//!   auto-retries — the caller owns the decision.
//! * [`ClientError::Io`] — dialing failed; no request ever reached a
//!   server, so anything may retry.
//!
//! Retries back off exponentially with seeded jitter (the torture
//! harness seeds it so failing runs replay), and every read carries a
//! deadline: a hung server surfaces as [`ClientError::Timeout`]
//! instead of blocking forever.

use crate::proto::{self, FrameRead};
use crate::transport::Transport;
use mmdb_obs::{Counter, Registry};
use mmdb_session::torture::Lcg;
use mmdb_sql::QueryResult;
use mmdb_types::value::Value;
use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

/// Anything a client call can fail with.
#[derive(Debug)]
pub enum ClientError {
    /// Dialing failed: no request reached a server, so any statement
    /// is safe to resubmit.
    Io(String),
    /// The server answered with an in-band error response.
    Server {
        /// The server's error message.
        msg: String,
        /// Whether the server classified the failure as transient
        /// (deadlock victim, capacity shed, shutdown race).
        retryable: bool,
    },
    /// The server's bytes did not decode as the protocol; the
    /// connection is dropped because framing may be desynchronized.
    Protocol(String),
    /// The connection died (or was dropped) after a request may have
    /// been sent — the statement's fate is unknown.
    ConnectionLost {
        /// True when an explicit transaction was open on this
        /// connection: its locks and writes are gone with the server
        /// session, and nothing was or will be auto-retried.
        in_txn: bool,
        /// What the transport reported.
        detail: String,
    },
    /// No response arrived within the read deadline; the connection is
    /// dropped and the statement's fate is unknown.
    Timeout(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(m) => write!(f, "io error: {m}"),
            ClientError::Server { msg, retryable } => {
                let class = if *retryable { "retryable" } else { "fatal" };
                write!(f, "server error ({class}): {msg}")
            }
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::ConnectionLost { in_txn, detail } => {
                write!(f, "connection lost (in_txn={in_txn}): {detail}")
            }
            ClientError::Timeout(m) => write!(f, "timeout: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// Tunables for [`Client`] connections and retry behavior.
#[derive(Clone)]
pub struct ClientConfig {
    /// Deadline for establishing a TCP connection.
    pub connect_timeout: Duration,
    /// Deadline for a response to arrive once a request is sent; also
    /// bounds how long an idle `execute` waits on a hung server.
    pub read_deadline: Duration,
    /// Socket write timeout for requests.
    pub write_timeout: Duration,
    /// Auto-retry attempts beyond the first try.
    pub max_retries: u32,
    /// First backoff pause; doubles each attempt.
    pub backoff_base: Duration,
    /// Ceiling on a single backoff pause.
    pub backoff_cap: Duration,
    /// Seed for backoff jitter, so torture runs replay exactly.
    pub retry_seed: u64,
    /// Master switch: when false, every failure surfaces immediately.
    pub auto_retry: bool,
    /// When set, the client registers `mmdb_client_*` counters here.
    pub registry: Option<Arc<Registry>>,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_secs(5),
            read_deadline: Duration::from_secs(10),
            write_timeout: Duration::from_secs(5),
            max_retries: 3,
            backoff_base: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(200),
            retry_seed: 0,
            auto_retry: true,
            registry: None,
        }
    }
}

impl std::fmt::Debug for ClientConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClientConfig")
            .field("connect_timeout", &self.connect_timeout)
            .field("read_deadline", &self.read_deadline)
            .field("write_timeout", &self.write_timeout)
            .field("max_retries", &self.max_retries)
            .field("auto_retry", &self.auto_retry)
            .finish_non_exhaustive()
    }
}

/// Client-side retry observability, registered only when the caller
/// hands the config a registry.
struct ClientMetrics {
    retries: Arc<Counter>,
    reconnects: Arc<Counter>,
    lost: Arc<Counter>,
}

impl ClientMetrics {
    fn register(registry: &Registry) -> ClientMetrics {
        ClientMetrics {
            retries: registry.counter(
                "mmdb_client_retries_total",
                "Statements auto-resubmitted after a retryable failure",
            ),
            reconnects: registry.counter(
                "mmdb_client_reconnects_total",
                "Connections re-dialed after the first",
            ),
            lost: registry.counter(
                "mmdb_client_connection_lost_total",
                "Connections dropped mid-use (timeout, EOF, transport error)",
            ),
        }
    }
}

/// How a dialer hands the client a fresh connection.
pub type Dialer = Box<dyn FnMut() -> io::Result<Box<dyn Transport>> + Send>;

/// A blocking connection to a [`crate::Server`]. One request is in
/// flight at a time: [`execute`](Client::execute) writes a frame and
/// waits (bounded by the read deadline) for the response frame,
/// transparently reconnecting and retrying where that cannot
/// duplicate work.
pub struct Client {
    config: ClientConfig,
    dial: Dialer,
    transport: Option<Box<dyn Transport>>,
    in_txn: bool,
    ever_connected: bool,
    rng: Lcg,
    metrics: Option<ClientMetrics>,
}

impl Client {
    /// Connects to a server with default deadlines and retry policy.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Client, ClientError> {
        Client::connect_with(addr, ClientConfig::default())
    }

    /// Connects to a server with explicit configuration.
    pub fn connect_with<A: ToSocketAddrs>(
        addr: A,
        config: ClientConfig,
    ) -> Result<Client, ClientError> {
        let addrs: Vec<SocketAddr> = addr
            .to_socket_addrs()
            .map_err(|e| ClientError::Io(format!("resolve: {e}")))?
            .collect();
        if addrs.is_empty() {
            return Err(ClientError::Io("address resolved to nothing".to_string()));
        }
        let timeout = config.connect_timeout;
        let dial: Dialer = Box::new(move || {
            let mut last = io::Error::new(io::ErrorKind::AddrNotAvailable, "no address to dial");
            for a in &addrs {
                match TcpStream::connect_timeout(a, timeout) {
                    Ok(s) => return Ok(Box::new(s) as Box<dyn Transport>),
                    Err(e) => last = e,
                }
            }
            Err(last)
        });
        Client::from_dialer(dial, config)
    }

    /// Builds a client over an arbitrary dialer — the chaos-torture
    /// harness injects [`crate::transport::ChaosTransport`] here. The
    /// first connection is established eagerly so a dead server fails
    /// fast.
    pub fn from_dialer(dial: Dialer, config: ClientConfig) -> Result<Client, ClientError> {
        let metrics = config.registry.as_deref().map(ClientMetrics::register);
        let rng = Lcg::new(config.retry_seed ^ 0xC11E_27B0_0757_0FF5);
        let mut client = Client {
            config,
            dial,
            transport: None,
            in_txn: false,
            ever_connected: false,
            rng,
            metrics,
        };
        client.ensure_connected()?;
        Ok(client)
    }

    /// True while this client believes an explicit transaction is open
    /// on the connection (tracked from the statements it sends).
    pub fn in_transaction(&self) -> bool {
        self.in_txn
    }

    /// Runs one statement and returns its full result, auto-retrying
    /// only when a retry cannot duplicate applied work (see the module
    /// docs for the taxonomy).
    pub fn execute(&mut self, sql: &str) -> Result<QueryResult, ClientError> {
        let mut attempt = 0u32;
        loop {
            let sent_in_txn = self.in_txn;
            match self.execute_once(sql) {
                Ok(result) => {
                    self.track_success(sql);
                    return Ok(result);
                }
                Err(e) => {
                    self.track_failure(sql, &e);
                    let may = self.config.auto_retry
                        && attempt < self.config.max_retries
                        && retry_is_safe(&e, sql, sent_in_txn);
                    if !may {
                        return Err(e);
                    }
                    attempt += 1;
                    if let Some(m) = &self.metrics {
                        m.retries.inc();
                    }
                    self.backoff(attempt);
                }
            }
        }
    }

    /// Runs one statement and returns just its rows.
    pub fn query(&mut self, sql: &str) -> Result<Vec<Vec<Value>>, ClientError> {
        Ok(self.execute(sql)?.rows)
    }

    /// One request/response exchange, no retries. Any transport-level
    /// failure tears the connection down (a later re-`execute` redials)
    /// and reports whether a transaction died with it.
    fn execute_once(&mut self, sql: &str) -> Result<QueryResult, ClientError> {
        self.ensure_connected()?;
        let Some(transport) = self.transport.as_mut() else {
            return Err(ClientError::Io("not connected".to_string()));
        };
        if let Err(e) = proto::write_frame(transport, sql.as_bytes()) {
            return Err(self.lose_connection(format!("send: {e}")));
        }
        let Some(transport) = self.transport.as_mut() else {
            return Err(ClientError::Io("not connected".to_string()));
        };
        match proto::read_frame(transport) {
            // The socket read timeout is the read deadline, so a single
            // Idle means the deadline expired with no response started.
            Ok(FrameRead::Idle) => {
                let was_in_txn = self.in_txn;
                let lost = self.lose_connection(format!(
                    "no response within the read deadline ({:?})",
                    self.config.read_deadline
                ));
                if was_in_txn {
                    Err(lost)
                } else {
                    Err(ClientError::Timeout(format!(
                        "no response within {:?}",
                        self.config.read_deadline
                    )))
                }
            }
            Ok(FrameRead::Eof) => {
                Err(self.lose_connection("server closed the connection".to_string()))
            }
            Ok(FrameRead::Frame(payload)) => match proto::decode_response(&payload) {
                Ok(Ok(result)) => Ok(result),
                Ok(Err(we)) => Err(ClientError::Server {
                    msg: we.msg,
                    retryable: we.retryable,
                }),
                Err(e) => {
                    // Framing may be desynchronized: drop the
                    // connection, but surface the decode failure.
                    let _ = self.lose_connection(format!("decode: {e}"));
                    Err(ClientError::Protocol(e.to_string()))
                }
            },
            Err(e) => Err(self.lose_connection(format!("receive: {e}"))),
        }
    }

    /// Dials if there is no live connection. Errors map to
    /// [`ClientError::Io`]: nothing was sent, so callers may retry
    /// freely.
    fn ensure_connected(&mut self) -> Result<(), ClientError> {
        if self.transport.is_some() {
            return Ok(());
        }
        let mut transport = (self.dial)().map_err(|e| ClientError::Io(format!("connect: {e}")))?;
        transport
            .set_read_timeout(Some(self.config.read_deadline))
            .and_then(|()| transport.set_write_timeout(Some(self.config.write_timeout)))
            .map_err(|e| ClientError::Io(format!("configure socket: {e}")))?;
        let _ = transport.set_nodelay(true);
        if self.ever_connected {
            if let Some(m) = &self.metrics {
                m.reconnects.inc();
            }
        }
        self.ever_connected = true;
        self.transport = Some(transport);
        Ok(())
    }

    /// Tears down the connection and reports what died with it. The
    /// server session (and any open transaction) is gone, so the
    /// client's transaction flag resets — a reconnect starts clean.
    fn lose_connection(&mut self, detail: String) -> ClientError {
        self.transport = None;
        let in_txn = std::mem::take(&mut self.in_txn);
        if let Some(m) = &self.metrics {
            m.lost.inc();
        }
        ClientError::ConnectionLost { in_txn, detail }
    }

    /// Tracks explicit-transaction state from a successful statement.
    fn track_success(&mut self, sql: &str) {
        match statement_kind(sql) {
            Some("begin") => self.in_txn = true,
            Some("commit" | "abort") => self.in_txn = false,
            _ => {}
        }
    }

    /// Tracks transaction state from a failed statement: a mutation or
    /// COMMIT/ABORT that fails in-band inside an explicit transaction
    /// means the server aborted the whole transaction (the message says
    /// so); SELECT and parse failures leave it open. Transport-level
    /// failures already reset the flag in [`Self::lose_connection`].
    fn track_failure(&mut self, sql: &str, err: &ClientError) {
        if !matches!(err, ClientError::Server { .. }) {
            return;
        }
        if matches!(
            statement_kind(sql),
            Some("insert" | "update" | "delete" | "create_table" | "commit" | "abort")
        ) {
            self.in_txn = false;
        }
    }

    /// Exponential backoff with seeded jitter: pause in
    /// `[cap/2, cap)` of the attempt's doubled base.
    fn backoff(&mut self, attempt: u32) {
        let doubled = self
            .config
            .backoff_base
            .saturating_mul(1u32 << attempt.min(16).saturating_sub(1));
        let cap = doubled.min(self.config.backoff_cap);
        let jitter_us = self.rng.below((cap.as_micros() as u64 / 2).max(1));
        std::thread::sleep(cap / 2 + Duration::from_micros(jitter_us));
    }
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("connected", &self.transport.is_some())
            .field("in_txn", &self.in_txn)
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

/// The statement kind label, when the text parses client-side.
fn statement_kind(sql: &str) -> Option<mmdb_sql::StatementKind> {
    mmdb_sql::parse(sql).ok().map(|s| s.kind())
}

/// Whether auto-retrying `sql` after `err` can be done without risking
/// duplicate applied work.
fn retry_is_safe(err: &ClientError, sql: &str, sent_in_txn: bool) -> bool {
    // Inside an explicit transaction the statement is one step of a
    // larger unit; the client cannot replay the unit, so nothing
    // auto-retries.
    if sent_in_txn {
        return false;
    }
    match err {
        // Dialing failed: the request never existed.
        ClientError::Io(_) => true,
        // The server said the statement did not apply and is transient.
        ClientError::Server { retryable, .. } => *retryable,
        // Fate unknown: only an idempotent read is safe to resend.
        ClientError::ConnectionLost { in_txn: false, .. } | ClientError::Timeout(_) => {
            statement_kind(sql) == Some("select")
        }
        // A transaction died with the connection: the caller decides.
        ClientError::ConnectionLost { in_txn: true, .. } => false,
        ClientError::Protocol(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lost(in_txn: bool) -> ClientError {
        ClientError::ConnectionLost {
            in_txn,
            detail: "test".to_string(),
        }
    }

    #[test]
    fn retry_taxonomy_is_exactly_the_documented_policy() {
        // Dial failures retry anything.
        assert!(retry_is_safe(
            &ClientError::Io("x".into()),
            "INSERT INTO t VALUES (1)",
            false
        ));
        // In-band retryable errors retry anything (statement did not apply).
        let retryable = ClientError::Server {
            msg: "shed".into(),
            retryable: true,
        };
        assert!(retry_is_safe(&retryable, "UPDATE t SET a = 1", false));
        let fatal = ClientError::Server {
            msg: "no such table".into(),
            retryable: false,
        };
        assert!(!retry_is_safe(&fatal, "SELECT * FROM t", false));
        // Unknown fate: only SELECT retries.
        assert!(retry_is_safe(&lost(false), "SELECT * FROM t", false));
        assert!(!retry_is_safe(
            &lost(false),
            "INSERT INTO t VALUES (1)",
            false
        ));
        assert!(retry_is_safe(
            &ClientError::Timeout("t".into()),
            "SELECT a FROM t",
            false
        ));
        assert!(!retry_is_safe(
            &ClientError::Timeout("t".into()),
            "DELETE FROM t",
            false
        ));
        // A dead transaction never auto-retries, and nothing sent
        // inside a transaction does either.
        assert!(!retry_is_safe(&lost(true), "SELECT * FROM t", false));
        assert!(!retry_is_safe(
            &ClientError::Io("x".into()),
            "SELECT * FROM t",
            true
        ));
        assert!(!retry_is_safe(
            &ClientError::Protocol("p".into()),
            "SELECT * FROM t",
            false
        ));
    }

    #[test]
    fn statement_kinds_classify_for_retry() {
        assert_eq!(statement_kind("SELECT a FROM t"), Some("select"));
        assert_eq!(statement_kind("BEGIN"), Some("begin"));
        assert_eq!(statement_kind("definitely not sql"), None);
    }
}
