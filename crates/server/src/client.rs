//! The client driver: connect, send SQL, decode results.

use crate::proto::{self, FrameRead};
use mmdb_sql::QueryResult;
use mmdb_types::value::Value;
use std::net::{TcpStream, ToSocketAddrs};

/// Anything a client call can fail with.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, send, receive).
    Io(String),
    /// The server answered with an error response.
    Server(String),
    /// The server's bytes did not decode as the protocol.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(m) => write!(f, "io error: {m}"),
            ClientError::Server(m) => write!(f, "server error: {m}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// A blocking connection to an [`crate::Server`]. One request is in
/// flight at a time: [`execute`](Client::execute) writes a frame and
/// waits for the response frame.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr).map_err(|e| ClientError::Io(e.to_string()))?;
        let _ = stream.set_nodelay(true);
        Ok(Client { stream })
    }

    /// Runs one statement and returns its full result.
    pub fn execute(&mut self, sql: &str) -> Result<QueryResult, ClientError> {
        proto::write_frame(&mut self.stream, sql.as_bytes())
            .map_err(|e| ClientError::Io(e.to_string()))?;
        loop {
            match proto::read_frame(&mut self.stream) {
                // No read timeout is set, so Idle can only mean a
                // transient wakeup; keep waiting.
                Ok(FrameRead::Idle) => {}
                Ok(FrameRead::Eof) => {
                    return Err(ClientError::Io("server closed the connection".to_string()))
                }
                Ok(FrameRead::Frame(payload)) => {
                    return match proto::decode_response(&payload) {
                        Ok(Ok(result)) => Ok(result),
                        Ok(Err(msg)) => Err(ClientError::Server(msg)),
                        Err(e) => Err(ClientError::Protocol(e.to_string())),
                    }
                }
                Err(e) => return Err(ClientError::Io(e.to_string())),
            }
        }
    }

    /// Runs one statement and returns just its rows.
    pub fn query(&mut self, sql: &str) -> Result<Vec<Vec<Value>>, ClientError> {
        Ok(self.execute(sql)?.rows)
    }
}
