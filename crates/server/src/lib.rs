#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Wire front end for the session engine (§5.2 made multi-user).
//!
//! [`Server`] listens on a TCP socket and runs one [`mmdb_sql`]
//! session per connection; [`client::Client`] is the matching driver.
//! The protocol is deliberately small — length-prefixed frames
//! carrying UTF-8 SQL one way and a tagged result encoding the other
//! (see [`proto`]) — because the engine underneath already does the
//! hard parts: group commit batches the log writes of concurrent
//! connections, and per-shard locks serialize their conflicts.

pub mod admission;
pub mod client;
pub mod proto;
pub mod server;
pub mod torture;
pub mod transport;

pub use client::{Client, ClientConfig, ClientError, Dialer};
pub use server::{Server, ServerConfig, ServerHandle};
pub use transport::{ChaosTransport, NetFaultPlan, Transport};
