#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Offline stand-in for the `rand` crate.
//!
//! The build container has no crates.io access, so the workspace vendors
//! the *subset* of the `rand 0.8` API it actually uses: a seedable
//! deterministic generator ([`rngs::StdRng`]), uniform range sampling
//! ([`Rng::gen_range`]) and uniform scalar sampling ([`Rng::gen`]).
//! The generator is SplitMix64 — statistically strong enough for the
//! workload generation and replacement-policy simulation this workspace
//! does, and exactly reproducible run-to-run, which is all the engine's
//! experiments require. It is **not** the same stream as upstream
//! `StdRng` and is not cryptographically secure.

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Constructing a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator; the same seed always yields the same stream.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Scalar types that can be drawn uniformly from a generator.
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range. Panics on an empty range, like
    /// upstream `rand`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

// Unbiased-enough uniform draw in [0, span) via the 128-bit multiply trick.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128 as u64;
                let off = uniform_below(rng, span);
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Full-width range: any word is uniform.
                    return rng.next_u64() as $t;
                }
                let off = uniform_below(rng, span as u64);
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// High-level sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one uniform scalar of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's deterministic generator: SplitMix64.
    ///
    /// Named `StdRng` so call sites match the upstream `rand` API, but the
    /// stream differs from upstream's ChaCha-based `StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_are_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(-5i64..17);
            assert!((-5..17).contains(&v));
            let u = r.gen_range(0usize..=3);
            assert!(u <= 3);
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut r = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn small_ranges_hit_every_value() {
        let mut r = StdRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[r.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
