//! Log records.
//!
//! Records carry explicit byte sizes matching the paper's §5.1 accounting:
//! a "typical" transaction writes ~400 bytes — 40 for begin/end and 360
//! for old/new values. Update records store both old and new values so
//! the §5.4 compression (dropping old values of committed transactions)
//! is measurable byte-for-byte.

use bytes::{Buf, BufMut};
use mmdb_types::{Error, Result, TxnId};

/// A log sequence number: position of a record in the (merged) log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Lsn(pub u64);

/// A write-ahead-log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogRecord {
    /// Transaction start (20 bytes in the paper's accounting).
    Begin {
        /// Transaction.
        txn: TxnId,
    },
    /// An update: old value for undo, new value for redo.
    Update {
        /// Transaction.
        txn: TxnId,
        /// Updated key.
        key: u64,
        /// Pre-image (`None` for an insert).
        old: Option<i64>,
        /// Post-image.
        new: i64,
        /// Extra payload bytes charged to this record, so workloads can
        /// match the paper's 360-byte old/new-value volume exactly.
        padding: u32,
    },
    /// Commit record (20 bytes).
    Commit {
        /// Transaction.
        txn: TxnId,
    },
    /// Abort record.
    Abort {
        /// Transaction.
        txn: TxnId,
    },
    /// §5.3 online-checkpoint marker, written inside the synthetic
    /// snapshot transaction (id 0) of a checkpoint log generation. It
    /// frames what the snapshot covers: replay may start at `start`
    /// (every committed update below it is baked into the snapshot's
    /// update records), and `next_txn` is a floor for transaction-id
    /// allocation so ids used only before `start` are never reissued.
    Checkpoint {
        /// First LSN of the live-log suffix recovery must still replay.
        start: Lsn,
        /// Transaction-id allocator value captured when the sweep began.
        next_txn: u64,
    },
}

const TAG_BEGIN: u8 = 1;
const TAG_UPDATE: u8 = 2;
const TAG_COMMIT: u8 = 3;
const TAG_ABORT: u8 = 4;
const TAG_CHECKPOINT: u8 = 5;

impl LogRecord {
    /// The transaction this record belongs to. A checkpoint marker
    /// belongs to the synthetic snapshot transaction (id 0).
    pub fn txn(&self) -> TxnId {
        match self {
            LogRecord::Begin { txn }
            | LogRecord::Update { txn, .. }
            | LogRecord::Commit { txn }
            | LogRecord::Abort { txn } => *txn,
            LogRecord::Checkpoint { .. } => TxnId(0),
        }
    }

    /// Bytes this record occupies in a log page, matching §5.1: begin and
    /// commit are 20 bytes each; an update is a 24-byte header plus 8
    /// bytes of old value, 8 of new, and its padding.
    pub fn byte_size(&self) -> usize {
        match self {
            LogRecord::Begin { .. } | LogRecord::Commit { .. } | LogRecord::Abort { .. } => 20,
            LogRecord::Update { old, padding, .. } => {
                24 + 8 + if old.is_some() { 8 } else { 0 } + *padding as usize
            }
            // Tag byte rounded into the same 20-byte frame as begin/commit
            // plus the two u64 fields it actually carries.
            LogRecord::Checkpoint { .. } => 20 + 16,
        }
    }

    /// Byte size after §5.4 compression: old values stripped (the 8-byte
    /// pre-image plus half of the padding, which models old-value bytes).
    pub fn compressed_size(&self) -> usize {
        match self {
            LogRecord::Update { padding, .. } => 24 + 8 + (*padding as usize) / 2,
            other => other.byte_size(),
        }
    }

    /// Serializes the record.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            LogRecord::Begin { txn } => {
                out.put_u8(TAG_BEGIN);
                out.put_u64_le(txn.0);
            }
            LogRecord::Update {
                txn,
                key,
                old,
                new,
                padding,
            } => {
                out.put_u8(TAG_UPDATE);
                out.put_u64_le(txn.0);
                out.put_u64_le(*key);
                match old {
                    Some(v) => {
                        out.put_u8(1);
                        out.put_i64_le(*v);
                    }
                    None => out.put_u8(0),
                }
                out.put_i64_le(*new);
                out.put_u32_le(*padding);
            }
            LogRecord::Commit { txn } => {
                out.put_u8(TAG_COMMIT);
                out.put_u64_le(txn.0);
            }
            LogRecord::Abort { txn } => {
                out.put_u8(TAG_ABORT);
                out.put_u64_le(txn.0);
            }
            LogRecord::Checkpoint { start, next_txn } => {
                out.put_u8(TAG_CHECKPOINT);
                out.put_u64_le(start.0);
                out.put_u64_le(*next_txn);
            }
        }
    }

    /// Deserializes one record from the front of `buf`.
    pub fn decode(buf: &mut &[u8]) -> Result<LogRecord> {
        if buf.remaining() < 9 {
            return Err(Error::CorruptLog("truncated record header".into()));
        }
        let tag = buf.get_u8();
        if tag == TAG_CHECKPOINT {
            if buf.remaining() < 16 {
                return Err(Error::CorruptLog("truncated checkpoint marker".into()));
            }
            let start = Lsn(buf.get_u64_le());
            let next_txn = buf.get_u64_le();
            return Ok(LogRecord::Checkpoint { start, next_txn });
        }
        let txn = TxnId(buf.get_u64_le());
        match tag {
            TAG_BEGIN => Ok(LogRecord::Begin { txn }),
            TAG_COMMIT => Ok(LogRecord::Commit { txn }),
            TAG_ABORT => Ok(LogRecord::Abort { txn }),
            TAG_UPDATE => {
                if buf.remaining() < 8 + 1 {
                    return Err(Error::CorruptLog("truncated update".into()));
                }
                let key = buf.get_u64_le();
                let has_old = buf.get_u8() == 1;
                let old = if has_old {
                    if buf.remaining() < 8 {
                        return Err(Error::CorruptLog("truncated old value".into()));
                    }
                    Some(buf.get_i64_le())
                } else {
                    None
                };
                if buf.remaining() < 12 {
                    return Err(Error::CorruptLog("truncated new value".into()));
                }
                let new = buf.get_i64_le();
                let padding = buf.get_u32_le();
                Ok(LogRecord::Update {
                    txn,
                    key,
                    old,
                    new,
                    padding,
                })
            }
            other => Err(Error::CorruptLog(format!("unknown record tag {other}"))),
        }
    }
}

/// Builds the paper's "typical" banking transaction log: begin + one
/// update padded so the whole transaction occupies exactly 400 bytes +
/// commit.
pub fn typical_transaction(txn: TxnId, key: u64, old: i64, new: i64) -> Vec<LogRecord> {
    let update = LogRecord::Update {
        txn,
        key,
        old: Some(old),
        new,
        // begin(20) + commit(20) + header(24) + old(8) + new(8) + padding
        // = 400  =>  padding = 320.
        padding: 320,
    };
    vec![LogRecord::Begin { txn }, update, LogRecord::Commit { txn }]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typical_transaction_is_400_bytes() {
        let recs = typical_transaction(TxnId(1), 7, 100, 200);
        let total: usize = recs.iter().map(|r| r.byte_size()).sum();
        assert_eq!(total, 400, "§5.1's typical transaction");
    }

    #[test]
    fn compression_roughly_halves_update_volume() {
        let recs = typical_transaction(TxnId(1), 7, 100, 200);
        let full: usize = recs.iter().map(|r| r.byte_size()).sum();
        let compressed: usize = recs.iter().map(|r| r.compressed_size()).sum();
        let ratio = compressed as f64 / full as f64;
        assert!(
            (0.5..0.65).contains(&ratio),
            "§5.4: about half the log stores old values; ratio {ratio}"
        );
    }

    #[test]
    fn encode_decode_roundtrip() {
        let records = vec![
            LogRecord::Begin { txn: TxnId(9) },
            LogRecord::Update {
                txn: TxnId(9),
                key: 123,
                old: Some(-5),
                new: 6,
                padding: 17,
            },
            LogRecord::Update {
                txn: TxnId(9),
                key: 4,
                old: None,
                new: 0,
                padding: 0,
            },
            LogRecord::Commit { txn: TxnId(9) },
            LogRecord::Abort { txn: TxnId(10) },
            LogRecord::Checkpoint {
                start: Lsn(77),
                next_txn: 42,
            },
        ];
        let mut buf = Vec::new();
        for r in &records {
            r.encode(&mut buf);
        }
        let mut view = buf.as_slice();
        for r in &records {
            assert_eq!(&LogRecord::decode(&mut view).unwrap(), r);
        }
        assert!(view.is_empty());
    }

    #[test]
    fn decode_rejects_garbage() {
        let mut empty: &[u8] = &[];
        assert!(LogRecord::decode(&mut empty).is_err());
        let bad = [99u8, 0, 0, 0, 0, 0, 0, 0, 0];
        let mut view = &bad[..];
        assert!(LogRecord::decode(&mut view).is_err());
    }

    #[test]
    fn txn_accessor() {
        assert_eq!(LogRecord::Begin { txn: TxnId(3) }.txn(), TxnId(3));
    }
}
