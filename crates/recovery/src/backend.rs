//! Log storage backends and deterministic fault injection (§5).
//!
//! §5 of the paper is about surviving failure: pre-committed
//! transactions, partitioned logs, and restart recovery that tolerates
//! reordered and torn pages. A log path that has never *seen* a fault
//! proves none of that, so the wall-clock [`crate::wal::WalDevice`]
//! writes through this trait instead of calling the file directly:
//!
//! * [`FileBackend`] is the real thing — `write_all`, `sync_data`, and
//!   `set_len` on an append-only file.
//! * [`FaultyBackend`] wraps a [`FileBackend`] and executes a
//!   deterministic [`FaultPlan`]: fail the Nth write or sync with an
//!   injected I/O error (optionally transient — fail K times, then
//!   recover), tear a write after `keep` bytes (the §5.2 half-written
//!   page), flip one bit of a "successful" write (silent media
//!   corruption the v2 page checksum must catch at recovery), or stall
//!   an op (a device that is slow rather than dead).
//!
//! Plans are plain data — no clocks, no RNG — so the same plan replays
//! the same failure byte-for-byte; the torture harness derives plans
//! from a seed and every failure it finds is reproducible from that
//! seed alone.

use mmdb_types::{Error, Result};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// The raw storage operations a wall-clock log device performs, in the
/// order `append_page` issues them: buffered bytes out (`write_all`),
/// durability barrier (`sync`), and rewind after a failed append
/// (`truncate`). §5.2's "durable once the page write completes" is
/// exactly "`write_all` then `sync` both returned `Ok`".
pub trait LogBackend: Send + std::fmt::Debug {
    /// Appends `buf` at the current end of the log.
    fn write_all(&mut self, buf: &[u8]) -> Result<()>;
    /// Durability barrier: everything written so far is on stable
    /// storage when this returns `Ok` (§5.2's page-write completion).
    fn sync(&mut self) -> Result<()>;
    /// Truncates the log to `len` bytes — how a device discards a torn
    /// partial append before retrying it.
    fn truncate(&mut self, len: u64) -> Result<()>;
    /// Reads the whole log back, appending to `out`; returns bytes read.
    fn read_to_end(&mut self, out: &mut Vec<u8>) -> Result<usize>;
}

/// The real file-backed log: create-truncate on open, append-only
/// writes, `sync_data` as the §5.2 durability barrier.
#[derive(Debug)]
pub struct FileBackend {
    file: File,
    path: PathBuf,
}

impl FileBackend {
    /// Creates (truncating) the backing file at `path`.
    pub fn create(path: impl Into<PathBuf>) -> Result<FileBackend> {
        let path = path.into();
        let file = OpenOptions::new()
            .create(true)
            .read(true)
            .write(true)
            .truncate(true)
            .open(&path)
            .map_err(|e| Error::Io(format!("create {}: {e}", path.display())))?;
        Ok(FileBackend { file, path })
    }

    /// The backing file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl LogBackend for FileBackend {
    fn write_all(&mut self, buf: &[u8]) -> Result<()> {
        self.file
            .write_all(buf)
            .map_err(|e| Error::Io(format!("write {}: {e}", self.path.display())))
    }

    fn sync(&mut self) -> Result<()> {
        self.file
            .sync_data()
            .map_err(|e| Error::Io(format!("sync {}: {e}", self.path.display())))
    }

    fn truncate(&mut self, len: u64) -> Result<()> {
        self.file
            .set_len(len)
            .map_err(|e| Error::Io(format!("truncate {}: {e}", self.path.display())))?;
        // `set_len` does not move the cursor: without the seek, the next
        // append would land at the old offset and zero-fill the gap.
        self.file
            .seek(SeekFrom::Start(len))
            .map_err(|e| Error::Io(format!("seek {}: {e}", self.path.display())))?;
        Ok(())
    }

    fn read_to_end(&mut self, out: &mut Vec<u8>) -> Result<usize> {
        self.file
            .read_to_end(out)
            .map_err(|e| Error::Io(format!("read {}: {e}", self.path.display())))
    }
}

/// What an injected fault does to the op it fires on (§5 failure
/// modes, each mapped to a real-world cause).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// The write fails outright with an injected I/O error; nothing of
    /// the buffer reaches the file (EIO before any byte lands).
    FailWrite,
    /// The sync fails with an injected I/O error; the preceding write's
    /// durability is unknown — exactly the fsync-failure ambiguity.
    FailSync,
    /// The write persists only the first `keep` bytes of the buffer and
    /// then fails: a torn page, §5.2's half-written log page as an
    /// *error* the writer can see (a crash is the same tear unseen).
    TornWrite {
        /// Bytes of the buffer that do reach the file.
        keep: usize,
    },
    /// The write "succeeds" but one bit of the buffer is flipped at
    /// byte `offset` (mod buffer length): silent media corruption the
    /// v2 page checksum must catch at recovery time.
    BitFlip {
        /// Byte whose low bit flips, taken modulo the buffer length.
        offset: usize,
    },
    /// The op stalls for the given duration, then succeeds — a device
    /// that is slow, not dead (latency injection).
    Stall {
        /// How long the op sleeps before proceeding.
        delay: Duration,
    },
}

impl FaultKind {
    /// Whether this fault targets write ops (`true`) or sync ops.
    fn targets_write(&self) -> bool {
        !matches!(self, FaultKind::FailSync)
    }
}

/// One scheduled fault: fire on ops numbered `at` and later (0-based,
/// counted separately for writes and syncs), at most `times` times —
/// `times: 1` is a one-shot, a small `times` models a transient
/// fail-K-times-then-recover device, and [`Fault::PERMANENT`] never
/// recovers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fault {
    /// First op index (write-count or sync-count, per the kind) to hit.
    pub at: u64,
    /// How many ops this fault fires on before burning out.
    pub times: u32,
    /// What happens to each hit op.
    pub kind: FaultKind,
}

impl Fault {
    /// A `times` value that never burns out within one process: the
    /// device stays broken, forcing the engine's fail-stop path.
    pub const PERMANENT: u32 = u32::MAX;
}

/// A deterministic schedule of faults for one device. Plain data: the
/// same plan against the same op sequence reproduces the same failure,
/// which is what makes a torture-harness seed replayable.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The scheduled faults; the first live entry matching an op wins.
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan (every op passes through).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// True when the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Adds a fault failing write ops from index `at`, `times` times.
    pub fn fail_write(mut self, at: u64, times: u32) -> FaultPlan {
        self.faults.push(Fault {
            at,
            times,
            kind: FaultKind::FailWrite,
        });
        self
    }

    /// Adds a fault failing sync ops from index `at`, `times` times.
    pub fn fail_sync(mut self, at: u64, times: u32) -> FaultPlan {
        self.faults.push(Fault {
            at,
            times,
            kind: FaultKind::FailSync,
        });
        self
    }

    /// Adds a one-shot torn write at write index `at`, keeping `keep`
    /// bytes of the buffer.
    pub fn torn_write(mut self, at: u64, keep: usize) -> FaultPlan {
        self.faults.push(Fault {
            at,
            times: 1,
            kind: FaultKind::TornWrite { keep },
        });
        self
    }

    /// Adds a one-shot bit flip at write index `at`, byte `offset`.
    pub fn bit_flip(mut self, at: u64, offset: usize) -> FaultPlan {
        self.faults.push(Fault {
            at,
            times: 1,
            kind: FaultKind::BitFlip { offset },
        });
        self
    }

    /// Adds a stall of `delay` on write ops from index `at`, `times`
    /// times.
    pub fn stall_write(mut self, at: u64, times: u32, delay: Duration) -> FaultPlan {
        self.faults.push(Fault {
            at,
            times,
            kind: FaultKind::Stall { delay },
        });
        self
    }
}

/// Book-keeping for one scheduled fault: how often it has fired.
#[derive(Debug)]
struct ArmedFault {
    fault: Fault,
    fired: u32,
}

/// A [`LogBackend`] that executes a [`FaultPlan`] against an inner
/// [`FileBackend`] — the injection point §5's failure semantics are
/// tested through. Ops the plan does not name pass straight through.
#[derive(Debug)]
pub struct FaultyBackend {
    inner: FileBackend,
    armed: Vec<ArmedFault>,
    writes: u64,
    syncs: u64,
}

impl FaultyBackend {
    /// Wraps `inner` with the given plan.
    pub fn new(inner: FileBackend, plan: FaultPlan) -> FaultyBackend {
        FaultyBackend {
            inner,
            armed: plan
                .faults
                .into_iter()
                .map(|fault| ArmedFault { fault, fired: 0 })
                .collect(),
            writes: 0,
            syncs: 0,
        }
    }

    /// Creates (truncating) a faulty file-backed log at `path`.
    pub fn create(path: impl Into<PathBuf>, plan: FaultPlan) -> Result<FaultyBackend> {
        Ok(FaultyBackend::new(FileBackend::create(path)?, plan))
    }

    /// The first live fault matching this op, marked fired. `write` is
    /// true for write ops; `op` is that kind's 0-based op counter.
    fn take_fault(&mut self, write: bool, op: u64) -> Option<FaultKind> {
        for armed in &mut self.armed {
            let live = armed.fired < armed.fault.times;
            if live && armed.fault.kind.targets_write() == write && op >= armed.fault.at {
                armed.fired = armed.fired.saturating_add(1);
                return Some(armed.fault.kind.clone());
            }
        }
        None
    }
}

impl LogBackend for FaultyBackend {
    fn write_all(&mut self, buf: &[u8]) -> Result<()> {
        let op = self.writes;
        self.writes += 1;
        match self.take_fault(true, op) {
            None => self.inner.write_all(buf),
            Some(FaultKind::FailWrite) | Some(FaultKind::FailSync) => Err(Error::Io(format!(
                "injected write failure at write {op} on {}",
                self.inner.path().display()
            ))),
            Some(FaultKind::TornWrite { keep }) => {
                let keep = keep.min(buf.len());
                let kept = buf.get(..keep).unwrap_or_default();
                self.inner.write_all(kept)?;
                Err(Error::Io(format!(
                    "injected torn write at write {op} ({keep} of {} bytes) on {}",
                    buf.len(),
                    self.inner.path().display()
                )))
            }
            Some(FaultKind::BitFlip { offset }) => {
                let mut corrupt = buf.to_vec();
                if let Some(byte) = {
                    let at = offset.checked_rem(corrupt.len()).unwrap_or(0);
                    corrupt.get_mut(at)
                } {
                    *byte ^= 1;
                }
                self.inner.write_all(&corrupt)
            }
            Some(FaultKind::Stall { delay }) => {
                std::thread::sleep(delay);
                self.inner.write_all(buf)
            }
        }
    }

    fn sync(&mut self) -> Result<()> {
        let op = self.syncs;
        self.syncs += 1;
        match self.take_fault(false, op) {
            None => self.inner.sync(),
            Some(_) => Err(Error::Io(format!(
                "injected sync failure at sync {op} on {}",
                self.inner.path().display()
            ))),
        }
    }

    fn truncate(&mut self, len: u64) -> Result<()> {
        // Truncation is the recovery-side rewind; faulting it would only
        // re-test the write path, so it passes through.
        self.inner.truncate(len)
    }

    fn read_to_end(&mut self, out: &mut Vec<u8>) -> Result<usize> {
        self.inner.read_to_end(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mmdb-backend-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn file_bytes(path: &Path) -> Vec<u8> {
        std::fs::read(path).unwrap()
    }

    #[test]
    fn file_backend_roundtrips() {
        let path = tmp("file.log");
        let mut b = FileBackend::create(&path).unwrap();
        b.write_all(b"hello").unwrap();
        b.sync().unwrap();
        assert_eq!(file_bytes(&path), b"hello");
        b.truncate(2).unwrap();
        assert_eq!(file_bytes(&path), b"he");
    }

    #[test]
    fn fail_write_is_transient_then_recovers() {
        let path = tmp("transient.log");
        let plan = FaultPlan::none().fail_write(1, 2);
        let mut b = FaultyBackend::create(&path, plan).unwrap();
        b.write_all(b"a").unwrap(); // write 0: clean
        assert!(b.write_all(b"b").is_err()); // write 1: fault 1/2
        assert!(b.write_all(b"b").is_err()); // write 2: fault 2/2
        b.write_all(b"b").unwrap(); // write 3: recovered
        assert_eq!(file_bytes(&path), b"ab");
    }

    #[test]
    fn permanent_write_failure_never_recovers() {
        let path = tmp("permanent.log");
        let plan = FaultPlan::none().fail_write(0, Fault::PERMANENT);
        let mut b = FaultyBackend::create(&path, plan).unwrap();
        for _ in 0..10 {
            assert!(b.write_all(b"x").is_err());
        }
        assert!(file_bytes(&path).is_empty());
    }

    #[test]
    fn torn_write_keeps_a_prefix_and_fails() {
        let path = tmp("torn.log");
        let plan = FaultPlan::none().torn_write(0, 3);
        let mut b = FaultyBackend::create(&path, plan).unwrap();
        assert!(b.write_all(b"abcdef").is_err());
        assert_eq!(file_bytes(&path), b"abc", "only the torn prefix landed");
        b.write_all(b"gh").unwrap(); // one-shot: next write is clean
        assert_eq!(file_bytes(&path), b"abcgh");
    }

    #[test]
    fn bit_flip_succeeds_but_corrupts() {
        let path = tmp("flip.log");
        let plan = FaultPlan::none().bit_flip(0, 2);
        let mut b = FaultyBackend::create(&path, plan).unwrap();
        b.write_all(&[0u8, 0, 0, 0]).unwrap();
        assert_eq!(file_bytes(&path), [0u8, 0, 1, 0], "bit 0 of byte 2 flipped");
    }

    #[test]
    fn sync_faults_hit_syncs_not_writes() {
        let path = tmp("sync.log");
        let plan = FaultPlan::none().fail_sync(0, 1);
        let mut b = FaultyBackend::create(&path, plan).unwrap();
        b.write_all(b"ok").unwrap();
        assert!(b.sync().is_err());
        b.sync().unwrap();
    }

    #[test]
    fn read_to_end_reads_back_written_bytes() {
        let path = tmp("readback.log");
        let mut b = FaultyBackend::create(&path, FaultPlan::none()).unwrap();
        b.write_all(b"payload").unwrap();
        b.sync().unwrap();
        let mut out = Vec::new();
        // A fresh backend reads from offset 0.
        let mut reader = FileBackend::create(tmp("scratch.log")).unwrap();
        reader.read_to_end(&mut out).unwrap();
        assert!(out.is_empty());
        drop(reader);
        assert_eq!(file_bytes(&path), b"payload");
    }
}
