//! Discrete-event throughput simulation (§5.2).
//!
//! Streams of the paper's "typical" 400-byte transactions arrive
//! back-to-back; the simulator measures committed transactions per second
//! of *virtual* time under each commit policy. The paper's arithmetic —
//! 100 tps synchronous, ~1000 tps with ten-transaction commit groups,
//! ~k× that with k log devices, more with stable-memory compression —
//! falls out of the simulation rather than being assumed.

use crate::device::{LogDevice, Micros};

/// Simulation configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Bytes of log per transaction (400 in the paper).
    pub txn_log_bytes: usize,
    /// Log page size (4096).
    pub page_bytes: usize,
    /// Page write time, µs (10 000).
    pub page_write_us: Micros,
    /// Number of log devices.
    pub devices: usize,
    /// Stable memory: commit on append, drain compressed.
    pub stable_memory: bool,
    /// Fraction of each transaction's log bytes surviving §5.4
    /// compression (≈ 0.55 for the paper's 400-byte transaction with 180
    /// old-value bytes).
    pub compression_ratio: f64,
    /// Maximum transactions whose commit records share one log write —
    /// the §5.2 commit-group size. Synchronous commit is the degenerate
    /// group of one; grouped policies default to a full page's worth
    /// (ten 400-byte transactions per 4096-byte page). This field is what
    /// distinguishes [`SimConfig::synchronous`] from
    /// [`SimConfig::group_commit`] at the configuration level.
    pub commit_group_txns: usize,
}

impl SimConfig {
    /// §5.2 synchronous commit: a commit group of exactly one.
    pub fn synchronous() -> Self {
        SimConfig {
            txn_log_bytes: 400,
            page_bytes: 4096,
            page_write_us: 10_000,
            devices: 1,
            stable_memory: false,
            compression_ratio: 1.0,
            commit_group_txns: 1,
        }
    }

    /// §5.2 group commit on one device: commit groups as large as a log
    /// page allows.
    pub fn group_commit() -> Self {
        let mut c = SimConfig::synchronous();
        c.commit_group_txns = c.page_capacity();
        c
    }

    /// §5.2 partitioned log over `k` devices (grouped commits on each).
    pub fn partitioned(k: usize) -> Self {
        SimConfig {
            devices: k.max(1),
            ..SimConfig::group_commit()
        }
    }

    /// §5.4 stable memory with new-values-only compression, draining to
    /// `k` devices.
    pub fn stable(k: usize) -> Self {
        let mut c = SimConfig {
            devices: k.max(1),
            stable_memory: true,
            compression_ratio: 220.0 / 400.0,
            ..SimConfig::group_commit()
        };
        // Compression packs more transactions into each drained page.
        c.commit_group_txns = c.page_capacity();
        c
    }

    /// Transactions whose (possibly compressed) log fits one page — the
    /// natural commit-group ceiling for this configuration.
    pub fn page_capacity(&self) -> usize {
        let effective = if self.stable_memory {
            (self.txn_log_bytes as f64 * self.compression_ratio).ceil() as usize
        } else {
            self.txn_log_bytes
        };
        (self.page_bytes / effective.max(1)).max(1)
    }
}

/// Result of a simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimResult {
    /// Transactions committed.
    pub committed: u64,
    /// Virtual time elapsed, µs.
    pub elapsed_us: Micros,
    /// Log pages written across devices.
    pub pages_written: usize,
}

impl SimResult {
    /// Committed transactions per virtual second.
    pub fn tps(&self) -> f64 {
        if self.elapsed_us == 0 {
            return 0.0;
        }
        self.committed as f64 * 1e6 / self.elapsed_us as f64
    }
}

/// The throughput simulator.
#[derive(Debug)]
pub struct ThroughputSim {
    config: SimConfig,
}

impl ThroughputSim {
    /// A simulator for the given configuration.
    pub fn new(config: SimConfig) -> Self {
        ThroughputSim { config }
    }

    /// Runs `n` transactions through a **synchronous** commit discipline:
    /// each transaction's (partial) page is written before the next may
    /// proceed, exactly one transaction per write.
    pub fn run_synchronous(&self, n: u64) -> SimResult {
        let c = &self.config;
        let mut device = LogDevice::new(c.page_bytes, c.page_write_us);
        let mut now: Micros = 0;
        for _ in 0..n {
            now = device.write_page(Vec::new(), now);
        }
        SimResult {
            committed: n,
            elapsed_us: now,
            pages_written: device.pages_written(),
        }
    }

    /// Runs `n` transactions with **group commit** over the configured
    /// devices: transactions fill the log buffer; whenever a page's worth
    /// of log accumulates it is written to the next device round-robin
    /// (dependent-group ordering is a no-op here because all writes take
    /// the same time and are submitted in log order, which preserves the
    /// §5.2 invariant — see the manager's tests for the general case).
    /// With `stable_memory`, commits are immediate and the drain writes
    /// compressed bytes; throughput is drain-bound in the steady state,
    /// so the simulation still charges every page write.
    pub fn run_grouped(&self, n: u64) -> SimResult {
        let c = &self.config;
        let mut devices: Vec<LogDevice> = (0..c.devices)
            .map(|_| LogDevice::new(c.page_bytes, c.page_write_us))
            .collect();
        let effective_bytes = if c.stable_memory {
            (c.txn_log_bytes as f64 * c.compression_ratio).ceil() as usize
        } else {
            c.txn_log_bytes
        };
        let per_page = (c.page_bytes / effective_bytes)
            .max(1)
            .min(c.commit_group_txns.max(1)) as u64;
        let mut remaining = n;
        let mut now: Micros = 0;
        let mut next_dev = 0usize;
        let mut last_done: Micros = 0;
        while remaining > 0 {
            let batch = remaining.min(per_page);
            remaining -= batch;
            // Submit to the next device; the log buffer fills instantly
            // relative to the 10 ms write (arrival is not the bottleneck).
            let n_devices = devices.len();
            let dev = &mut devices[next_dev];
            next_dev = (next_dev + 1) % n_devices;
            let submit_at = now;
            let done = dev.write_page(Vec::new(), submit_at);
            last_done = last_done.max(done);
            // Virtual time advances only when every device is busy.
            now = devices.iter().map(|d| d.busy_until()).min().unwrap_or(done);
        }
        SimResult {
            committed: n,
            elapsed_us: last_done,
            pages_written: devices.iter().map(|d| d.pages_written()).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synchronous_is_100_tps() {
        let sim = ThroughputSim::new(SimConfig::synchronous());
        let r = sim.run_synchronous(1_000);
        assert!((r.tps() - 100.0).abs() < 1.0, "tps {}", r.tps());
        assert_eq!(r.pages_written, 1_000);
    }

    #[test]
    fn group_commit_is_1000_tps() {
        let sim = ThroughputSim::new(SimConfig::group_commit());
        let r = sim.run_grouped(10_000);
        assert!(
            (r.tps() - 1_000.0).abs() < 20.0,
            "§5.2: ten 400-byte txns per 4096-byte page at 100 pages/s; tps {}",
            r.tps()
        );
        assert_eq!(r.pages_written, 1_000);
    }

    #[test]
    fn partitioned_log_scales_linearly() {
        let t1 = ThroughputSim::new(SimConfig::partitioned(1))
            .run_grouped(10_000)
            .tps();
        let t2 = ThroughputSim::new(SimConfig::partitioned(2))
            .run_grouped(10_000)
            .tps();
        let t4 = ThroughputSim::new(SimConfig::partitioned(4))
            .run_grouped(10_000)
            .tps();
        assert!((t2 / t1 - 2.0).abs() < 0.1, "t2/t1 = {}", t2 / t1);
        assert!((t4 / t1 - 4.0).abs() < 0.2, "t4/t1 = {}", t4 / t1);
    }

    #[test]
    fn stable_memory_compression_raises_throughput() {
        let group = ThroughputSim::new(SimConfig::group_commit())
            .run_grouped(10_000)
            .tps();
        let stable = ThroughputSim::new(SimConfig::stable(1))
            .run_grouped(10_000)
            .tps();
        // 220 compressed bytes per txn: floor(4096/220) = 18 per page
        // → ~1800 tps.
        assert!(
            stable > group * 1.5,
            "stable {stable} vs group {group}: compression should raise drain throughput"
        );
        assert!((stable - 1_800.0).abs() < 100.0, "tps {stable}");
    }

    #[test]
    fn headline_numbers_match_the_paper() {
        // The §5.2 arithmetic, reproduced by simulation rather than
        // assumed: 100 committed txn/s synchronous, ~1000 with group
        // commit (the analytic crate's model is cross-checked against
        // these in the bench harness).
        let sim_sync = ThroughputSim::new(SimConfig::synchronous())
            .run_synchronous(2_000)
            .tps();
        let sim_group = ThroughputSim::new(SimConfig::group_commit())
            .run_grouped(20_000)
            .tps();
        assert!((sim_sync - 100.0).abs() < 2.0);
        assert!((sim_group - 1_000.0).abs() < 25.0);
    }

    #[test]
    fn policies_differ_at_the_config_level() {
        // `group_commit()` used to be an exact alias of `synchronous()`;
        // the commit-group size now distinguishes them explicitly.
        assert_ne!(SimConfig::synchronous(), SimConfig::group_commit());
        assert_eq!(SimConfig::synchronous().commit_group_txns, 1);
        assert_eq!(SimConfig::group_commit().commit_group_txns, 10);
        assert_eq!(SimConfig::partitioned(4).commit_group_txns, 10);
        assert_eq!(SimConfig::stable(1).commit_group_txns, 18);
    }

    #[test]
    fn grouped_run_with_unit_group_degenerates_to_synchronous() {
        // A commit group of one forces one page write per transaction,
        // so the grouped engine reproduces the synchronous 100 tps.
        let r = ThroughputSim::new(SimConfig::synchronous()).run_grouped(1_000);
        assert!((r.tps() - 100.0).abs() < 1.0, "tps {}", r.tps());
        assert_eq!(r.pages_written, 1_000);
    }

    #[test]
    fn tiny_runs_do_not_divide_by_zero() {
        let sim = ThroughputSim::new(SimConfig::synchronous());
        let r = sim.run_synchronous(0);
        assert_eq!(r.tps(), 0.0);
    }
}
