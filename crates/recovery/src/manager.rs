//! The recovery manager: a memory-resident KV database with write-ahead
//! logging, pre-committed transactions, group commit, partitioned logs,
//! stable memory, fuzzy checkpointing, crash, and restart recovery.
//!
//! This is the §5 machinery assembled: transactions update an in-memory
//! image under exclusive locks; log records flow through the chosen
//! [`CommitMode`]; a crash discards everything volatile and recovery
//! rebuilds the image from the disk snapshot plus the durable log.

use crate::checkpoint::{page_of, Snapshot};
use crate::device::{LogDevice, Micros};
use crate::lock::LockManager;
use crate::log::{LogRecord, Lsn};
use crate::stable::StableMemory;
use mmdb_types::{AuditViolation, Auditable, Error, Result, TxnId};
use std::collections::{HashMap, HashSet};

/// How commit durability is achieved (§5.2/§5.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitMode {
    /// One synchronous log write per transaction.
    Synchronous,
    /// Commit records share log pages; one write commits the group.
    GroupCommit,
    /// Group commit over several log devices with commit-group dependency
    /// ordering (a dependent group is never submitted so as to become
    /// durable before its dependencies).
    PartitionedLog {
        /// Number of log devices.
        devices: usize,
    },
    /// Battery-backed stable memory holds the log tail; transactions
    /// commit on append; pages drain to disk compressed (§5.4).
    StableMemory {
        /// Stable region capacity in bytes.
        capacity_bytes: usize,
    },
}

/// Handle to an open transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxnHandle(pub TxnId);

/// What a crash preserves.
#[derive(Debug)]
pub struct CrashImage {
    mode: CommitMode,
    snapshot: Snapshot,
    durable_log: Vec<(Lsn, LogRecord)>,
    stable: Option<StableMemory>,
}

/// What recovery observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Transactions whose effects survived.
    pub committed: Vec<TxnId>,
    /// Transactions rolled back (no durable commit record).
    pub losers: Vec<TxnId>,
    /// Log records examined in total.
    pub records_scanned: usize,
    /// Records the §5.5 dirty-page table allowed redo to skip.
    pub records_skipped_by_dirty_table: usize,
}

/// The §5 recovery manager.
#[derive(Debug)]
pub struct RecoveryManager {
    mode: CommitMode,
    db: HashMap<u64, i64>,
    snapshot: Snapshot,
    locks: LockManager,
    devices: Vec<LogDevice>,
    next_device: usize,
    buffer: Vec<(Lsn, LogRecord)>,
    buffer_bytes: usize,
    buffer_commits: Vec<(TxnId, HashSet<TxnId>)>,
    stable: Option<StableMemory>,
    now: Micros,
    next_txn: u64,
    next_lsn: u64,
    undo: HashMap<TxnId, Vec<(u64, Option<i64>)>>,
    commit_durable_at: HashMap<TxnId, Micros>,
    dirty_first_update: HashMap<u64, Lsn>,
    drained_committed: HashSet<TxnId>,
}

impl RecoveryManager {
    /// A fresh, empty database under the given commit mode.
    pub fn new(mode: CommitMode) -> Self {
        let device_count = match mode {
            CommitMode::PartitionedLog { devices } => devices.max(1),
            _ => 1,
        };
        RecoveryManager {
            mode,
            db: HashMap::new(),
            snapshot: Snapshot::new(),
            locks: LockManager::new(),
            devices: (0..device_count).map(|_| LogDevice::paper()).collect(),
            next_device: 0,
            buffer: Vec::new(),
            buffer_bytes: 0,
            buffer_commits: Vec::new(),
            stable: match mode {
                CommitMode::StableMemory { capacity_bytes } => {
                    Some(StableMemory::new(capacity_bytes))
                }
                _ => None,
            },
            now: 0,
            next_txn: 1,
            next_lsn: 1,
            undo: HashMap::new(),
            commit_durable_at: HashMap::new(),
            dirty_first_update: HashMap::new(),
            drained_committed: HashSet::new(),
        }
    }

    /// Current virtual time (µs).
    pub fn now(&self) -> Micros {
        self.now
    }

    /// Advances virtual time (modelling user think time between requests).
    pub fn advance(&mut self, us: Micros) {
        self.now += us;
    }

    /// Reads a key from the in-memory image.
    pub fn read(&self, key: u64) -> Option<i64> {
        self.db.get(&key).copied()
    }

    /// Number of keys resident.
    pub fn len(&self) -> usize {
        self.db.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.db.is_empty()
    }

    /// Starts a transaction.
    pub fn begin(&mut self) -> TxnHandle {
        let txn = TxnId(self.next_txn);
        self.next_txn += 1;
        self.locks.begin(txn);
        self.undo.insert(txn, Vec::new());
        self.append_record(LogRecord::Begin { txn });
        TxnHandle(txn)
    }

    fn next_lsn(&mut self) -> Lsn {
        let l = Lsn(self.next_lsn);
        self.next_lsn += 1;
        l
    }

    fn append_record(&mut self, rec: LogRecord) -> Lsn {
        let lsn = self.next_lsn();
        if let Some(stable) = self.stable.as_mut() {
            if !stable.append(lsn, rec.clone()) {
                // Region full: drain committed records to disk, then retry.
                self.drain_stable();
                let stable = self.stable.as_mut().expect("stable mode");
                if !stable.append(lsn, rec.clone()) {
                    // Still full (all records belong to in-doubt txns):
                    // model the paper's back-pressure by forcing a page of
                    // raw (uncompressed) tail out. Simplest sound fallback:
                    // grow is forbidden, so panic loudly — workloads in
                    // this repo size the region adequately.
                    panic!("stable memory exhausted by uncommitted transactions");
                }
            }
        } else {
            let size = rec.byte_size();
            if self.buffer_bytes + size > self.devices[0].page_bytes() {
                self.flush_page();
            }
            self.buffer_bytes += size;
            self.buffer.push((lsn, rec));
        }
        lsn
    }

    /// Writes `key = value` under `txn`.
    pub fn write(&mut self, txn: &TxnHandle, key: u64, value: i64) -> Result<()> {
        if !self.locks.is_active(txn.0) {
            return Err(Error::InvalidTransaction(txn.0 .0));
        }
        self.locks.acquire(txn.0, key)?;
        let old = self.db.get(&key).copied();
        let lsn = self.append_record(LogRecord::Update {
            txn: txn.0,
            key,
            old,
            new: value,
            padding: 0,
        });
        // §5.5 dirty-page bookkeeping: first update since last checkpoint.
        let page = page_of(key);
        if let Some(stable) = self.stable.as_mut() {
            stable.note_page_update(page, lsn);
        }
        self.dirty_first_update.entry(page).or_insert(lsn);
        self.undo
            .get_mut(&txn.0)
            .expect("active txn has an undo list")
            .push((key, old));
        self.db.insert(key, value);
        Ok(())
    }

    /// Writes a "typical" §5.1 banking update: same as [`Self::write`]
    /// but padded so the whole transaction logs 400 bytes.
    pub fn write_typical(&mut self, txn: &TxnHandle, key: u64, value: i64) -> Result<()> {
        if !self.locks.is_active(txn.0) {
            return Err(Error::InvalidTransaction(txn.0 .0));
        }
        self.locks.acquire(txn.0, key)?;
        let old = self.db.get(&key).copied();
        let lsn = self.append_record(LogRecord::Update {
            txn: txn.0,
            key,
            old,
            new: value,
            padding: 320,
        });
        let page = page_of(key);
        if let Some(stable) = self.stable.as_mut() {
            stable.note_page_update(page, lsn);
        }
        self.dirty_first_update.entry(page).or_insert(lsn);
        self.undo
            .get_mut(&txn.0)
            .expect("active txn has an undo list")
            .push((key, old));
        self.db.insert(key, value);
        Ok(())
    }

    /// Aborts a transaction: undoes its in-memory updates (reverse order),
    /// logs the abort, and releases its locks.
    pub fn abort(&mut self, txn: TxnHandle) -> Result<()> {
        let undo = self
            .undo
            .remove(&txn.0)
            .ok_or(Error::InvalidTransaction(txn.0 .0))?;
        for (key, old) in undo.into_iter().rev() {
            match old {
                Some(v) => {
                    self.db.insert(key, v);
                }
                None => {
                    self.db.remove(&key);
                }
            }
        }
        self.append_record(LogRecord::Abort { txn: txn.0 });
        self.locks.abort(txn.0);
        Ok(())
    }

    /// Pre-commits and, depending on the mode, completes the commit:
    /// the commit record is logged, locks are released immediately
    /// (dependents may read the dirty data), and the call returns the
    /// virtual time at which the transaction is durably committed —
    /// already known in every mode because device completion times are
    /// deterministic.
    pub fn commit(&mut self, txn: TxnHandle) -> Result<Micros> {
        let t = self.commit_inner(txn)?;
        // Debug builds audit the lock table and log bookkeeping at every
        // commit point: a violation here is an engine bug, caught at the
        // moment §5.2's ordering guarantees are supposed to hold.
        #[cfg(debug_assertions)]
        {
            self.locks.audit()?;
            self.audit()?;
        }
        Ok(t)
    }

    fn commit_inner(&mut self, txn: TxnHandle) -> Result<Micros> {
        if !self.locks.is_active(txn.0) {
            return Err(Error::InvalidTransaction(txn.0 .0));
        }
        self.undo.remove(&txn.0);
        let deps = self.locks.precommit(txn.0)?;
        self.append_record(LogRecord::Commit { txn: txn.0 });

        if self.stable.is_some() {
            // §5.4: "transactions commit as soon as they write their
            // commit records into the in-memory log".
            let t = self.now;
            self.commit_durable_at.insert(txn.0, t);
            self.locks.finalize_commit(txn.0);
            return Ok(t);
        }

        self.buffer_commits.push((txn.0, deps));
        match self.mode {
            CommitMode::Synchronous => {
                let t = self.flush_page().expect("buffer holds the commit record");
                self.now = t; // the transaction waits for its log write
                Ok(t)
            }
            _ => {
                // Group commit: durable when the page fills (or is forced).
                // If the page just filled inside append_record the commit
                // time is already known.
                Ok(self
                    .commit_durable_at
                    .get(&txn.0)
                    .copied()
                    .unwrap_or(Micros::MAX))
            }
        }
    }

    /// Forces the buffered log page out (group-commit timeout). Returns
    /// the durability time, or `None` if nothing was buffered.
    pub fn flush(&mut self) -> Option<Micros> {
        if self.stable.is_some() {
            return self.drain_stable();
        }
        self.flush_page()
    }

    fn flush_page(&mut self) -> Option<Micros> {
        if self.buffer.is_empty() {
            return None;
        }
        let records = std::mem::take(&mut self.buffer);
        let commits = std::mem::take(&mut self.buffer_commits);
        self.buffer_bytes = 0;
        // Commit-group dependency ordering: never become durable before a
        // dependency does (§5.2's topological lattice).
        let mut not_before = self.now;
        for (_, deps) in &commits {
            for d in deps {
                if let Some(t) = self.commit_durable_at.get(d) {
                    not_before = not_before.max(*t);
                }
            }
        }
        let dev = self.next_device;
        self.next_device = (self.next_device + 1) % self.devices.len();
        let done = self.devices[dev].write_page(records, not_before);
        for (txn, _) in commits {
            self.commit_durable_at.insert(txn, done);
            self.locks.finalize_commit(txn);
        }
        Some(done)
    }

    /// Drains committed, compressed log records from stable memory to the
    /// log device. The drain only runs when forced (region full, or an
    /// explicit flush), at which point the caller genuinely has to wait
    /// for space — so the virtual clock advances to the final write's
    /// completion (back-pressure, §5.4: "the number of transactions
    /// processed per second is still limited by how fast we can empty
    /// buffer pages"). Returns the last completion time, if anything
    /// drained.
    fn drain_stable(&mut self) -> Option<Micros> {
        let committed: HashSet<TxnId> = self.commit_durable_at.keys().copied().collect();
        let page_bytes = self.devices[0].page_bytes();
        let mut last_done = None;
        loop {
            let stable = self.stable.as_mut().expect("stable mode");
            let (drained, bytes) = stable.drain_committed(page_bytes, |t| committed.contains(&t));
            if drained.is_empty() {
                break;
            }
            debug_assert!(bytes <= page_bytes);
            for (_, rec) in &drained {
                self.drained_committed.insert(rec.txn());
            }
            last_done = Some(self.devices[0].write_page(drained, self.now));
        }
        if let Some(done) = last_done {
            self.now = self.now.max(done);
        }
        last_done
    }

    /// Whether `txn` is durably committed at the current virtual time.
    pub fn is_durably_committed(&self, txn: TxnId) -> bool {
        self.commit_durable_at
            .get(&txn)
            .map(|t| *t <= self.now)
            .unwrap_or(false)
    }

    /// Waits (advances the clock) until `txn`'s commit record is on disk.
    pub fn wait_for(&mut self, txn: TxnId) -> Result<Micros> {
        let t = *self
            .commit_durable_at
            .get(&txn)
            .ok_or(Error::InvalidTransaction(txn.0))?;
        if t == Micros::MAX {
            return Err(Error::Internal(
                "commit record still buffered; call flush() first".into(),
            ));
        }
        self.now = self.now.max(t);
        Ok(t)
    }

    /// §5.3: sweeps up to `max_pages` dirty data pages to the disk
    /// snapshot (fuzzy — pages may hold uncommitted data). Returns how
    /// many pages were written.
    ///
    /// Write-ahead rule: the log records covering a page's changes must be
    /// durable before the page itself reaches disk — otherwise recovery
    /// could find uncommitted data in the snapshot with no old values to
    /// undo it. The sweep therefore forces the log first and waits for it.
    pub fn checkpoint_sweep(&mut self, max_pages: usize) -> usize {
        if self.stable.is_none() {
            if let Some(done) = self.flush_page() {
                self.now = self.now.max(done);
            }
        }
        let mut pages: Vec<u64> = self.dirty_first_update.keys().copied().collect();
        pages.sort_unstable();
        pages.truncate(max_pages);
        let as_of = Lsn(self.next_lsn - 1);
        for page in &pages {
            let contents: HashMap<u64, i64> = self
                .db
                .iter()
                .filter(|(k, _)| page_of(**k) == *page)
                .map(|(k, v)| (*k, *v))
                .collect();
            self.snapshot.write_page(*page, contents, as_of);
            self.dirty_first_update.remove(page);
            if let Some(stable) = self.stable.as_mut() {
                stable.page_checkpointed(*page);
            }
        }
        pages.len()
    }

    /// Log pages written so far across all devices.
    pub fn log_pages_written(&self) -> usize {
        self.devices.iter().map(|d| d.pages_written()).sum()
    }

    /// Crashes at the current virtual time: volatile state (the in-memory
    /// image, the unflushed log buffer, the lock table) is lost; the disk
    /// snapshot, durable log pages, and stable memory survive.
    pub fn crash(self) -> CrashImage {
        let mut durable: Vec<(Lsn, LogRecord)> = self
            .devices
            .iter()
            .flat_map(|d| d.durable_records(self.now))
            .collect();
        durable.sort_by_key(|(lsn, _)| *lsn);
        CrashImage {
            mode: self.mode,
            snapshot: self.snapshot,
            durable_log: durable,
            stable: self.stable,
        }
    }

    /// Restart recovery: reload the snapshot, merge the durable log
    /// fragments with the stable-memory tail, redo committed transactions
    /// and undo losers whose updates leaked into the fuzzy snapshot.
    pub fn recover(image: CrashImage) -> (RecoveryManager, RecoveryReport) {
        let mut records = image.durable_log;
        if let Some(stable) = &image.stable {
            records.extend(stable.buffered().iter().cloned());
        }
        records.sort_by_key(|(lsn, _)| *lsn);
        records.dedup_by_key(|(lsn, _)| *lsn);

        let winners: HashSet<TxnId> = records
            .iter()
            .filter_map(|(_, r)| match r {
                LogRecord::Commit { txn } => Some(*txn),
                _ => None,
            })
            .collect();
        let mut seen: HashSet<TxnId> = HashSet::new();
        for (_, r) in &records {
            seen.insert(r.txn());
        }
        let losers: HashSet<TxnId> = seen.difference(&winners).copied().collect();

        // §5.5: the dirty-page table bounds where redo must start. With
        // stable memory present, an *empty* table means every committed
        // update is already reflected in the snapshot — no redo at all;
        // without stable memory the table did not survive, so redo scans
        // from the beginning.
        let redo_start = match &image.stable {
            Some(s) => s.recovery_start().unwrap_or(Lsn(u64::MAX)),
            None => Lsn(0),
        };
        let mut skipped = 0usize;

        let mut db = image.snapshot.materialize();
        // Redo committed updates newer than their page's snapshot.
        for (lsn, rec) in &records {
            if let LogRecord::Update { txn, key, new, .. } = rec {
                if !winners.contains(txn) {
                    continue;
                }
                if *lsn < redo_start {
                    skipped += 1;
                    continue;
                }
                if *lsn > image.snapshot.page_lsn(page_of(*key)) {
                    db.insert(*key, *new);
                }
            }
        }
        // Undo loser updates the fuzzy snapshot captured, newest first.
        // An *aborted* transaction was already undone in memory when its
        // abort record was logged, so a page checkpointed after the abort
        // holds the undone state — re-applying old values there would
        // clobber later committed writes. Its dirty data can only hide in
        // snapshots taken before the abort.
        let abort_lsns: std::collections::HashMap<TxnId, Lsn> = records
            .iter()
            .filter_map(|(lsn, r)| match r {
                LogRecord::Abort { txn } => Some((*txn, *lsn)),
                _ => None,
            })
            .collect();
        for (lsn, rec) in records.iter().rev() {
            if let LogRecord::Update { txn, key, old, .. } = rec {
                if winners.contains(txn) {
                    continue;
                }
                let page_lsn = image.snapshot.page_lsn(page_of(*key));
                let undone_before_snapshot = abort_lsns
                    .get(txn)
                    .map(|abort| *abort <= page_lsn)
                    .unwrap_or(false);
                if *lsn <= page_lsn && !undone_before_snapshot {
                    match old {
                        Some(v) => {
                            db.insert(*key, *v);
                        }
                        None => {
                            db.remove(key);
                        }
                    }
                }
            }
        }

        let max_lsn = records.last().map(|(l, _)| l.0).unwrap_or(0);
        let max_txn = seen.iter().map(|t| t.0).max().unwrap_or(0);
        let mut committed: Vec<TxnId> = winners.iter().copied().collect();
        committed.sort();
        let mut lost: Vec<TxnId> = losers.iter().copied().collect();
        lost.sort();
        let report = RecoveryReport {
            committed,
            losers: lost,
            records_scanned: records.len(),
            records_skipped_by_dirty_table: skipped,
        };

        let mut mgr = RecoveryManager::new(image.mode);
        mgr.db = db;
        mgr.snapshot = image.snapshot;
        mgr.next_lsn = max_lsn + 1;
        mgr.next_txn = max_txn + 1;
        // Recovered stable memory is drained of history; the dirty-page
        // table restarts empty (everything just got reconciled).
        (mgr, report)
    }
}

impl Auditable for RecoveryManager {
    /// Verifies the log-manager bookkeeping behind the §5.2 safety
    /// argument: LSNs in the volatile buffer strictly ascend and stay
    /// below the allocator; the buffered byte count matches the records;
    /// every buffered commit still awaits durability and its record is in
    /// the same buffer; every dependency of a pending commit is known
    /// (already durable or pending alongside) so the dependent's commit
    /// record can always be ordered after its dependencies'; and undo
    /// lists exist exactly for live transactions.
    fn audit(&self) -> std::result::Result<(), AuditViolation> {
        const C: &str = "RecoveryManager";
        AuditViolation::ensure(self.next_lsn >= 1, C, "lsn-allocator", || {
            format!("next LSN is {}", self.next_lsn)
        })?;
        let mut bytes = 0usize;
        for pair in self.buffer.windows(2) {
            AuditViolation::ensure(pair[0].0 < pair[1].0, C, "lsn-monotonic", || {
                format!(
                    "buffered log out of order: LSN {} then {}",
                    pair[0].0 .0, pair[1].0 .0
                )
            })?;
        }
        for (lsn, rec) in &self.buffer {
            bytes += rec.byte_size();
            AuditViolation::ensure(lsn.0 < self.next_lsn, C, "lsn-monotonic", || {
                format!(
                    "buffered LSN {} not below allocator {}",
                    lsn.0, self.next_lsn
                )
            })?;
        }
        AuditViolation::ensure(bytes == self.buffer_bytes, C, "buffer-bytes", || {
            format!(
                "buffer holds {bytes} bytes of records, bookkeeping says {}",
                self.buffer_bytes
            )
        })?;
        if self.stable.is_some() {
            AuditViolation::ensure(
                self.buffer.is_empty() && self.buffer_commits.is_empty(),
                C,
                "stable-mode-buffer",
                || "stable-memory mode must not buffer log pages volatilely".into(),
            )?;
        }
        let buffered_commits: HashSet<TxnId> = self
            .buffer
            .iter()
            .filter_map(|(_, r)| match r {
                LogRecord::Commit { txn } => Some(*txn),
                _ => None,
            })
            .collect();
        let pending: HashSet<TxnId> = self.buffer_commits.iter().map(|(t, _)| *t).collect();
        for (txn, deps) in &self.buffer_commits {
            AuditViolation::ensure(txn.0 < self.next_txn, C, "txn-ids", || {
                format!(
                    "pending commit of txn {} beyond allocator {}",
                    txn.0, self.next_txn
                )
            })?;
            AuditViolation::ensure(
                buffered_commits.contains(txn),
                C,
                "commit-record-buffered",
                || {
                    format!(
                        "txn {} awaits durability but its commit record left the buffer",
                        txn.0
                    )
                },
            )?;
            AuditViolation::ensure(
                !self.commit_durable_at.contains_key(txn),
                C,
                "commit-once",
                || {
                    format!(
                        "txn {} is both pending and already durably scheduled",
                        txn.0
                    )
                },
            )?;
            for dep in deps {
                AuditViolation::ensure(
                    self.commit_durable_at.contains_key(dep) || pending.contains(dep),
                    C,
                    "dependent-commit-ordering",
                    || {
                        format!(
                            "txn {} depends on txn {}, whose commit is neither durable nor pending",
                            txn.0, dep.0
                        )
                    },
                )?;
            }
        }
        for txn in self.undo.keys() {
            AuditViolation::ensure(self.locks.is_active(*txn), C, "undo-liveness", || {
                format!("undo list for txn {} which the lock manager dropped", txn.0)
            })?;
            AuditViolation::ensure(
                !self.commit_durable_at.contains_key(txn),
                C,
                "undo-liveness",
                || format!("committed txn {} still has an undo list", txn.0),
            )?;
        }
        for (page, lsn) in &self.dirty_first_update {
            AuditViolation::ensure(lsn.0 < self.next_lsn, C, "dirty-page-table", || {
                format!(
                    "dirty page {page} first-update LSN {} not below allocator {}",
                    lsn.0, self.next_lsn
                )
            })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn committed_then_crashed(mode: CommitMode) -> (RecoveryManager, RecoveryReport) {
        let mut m = RecoveryManager::new(mode);
        let t1 = m.begin();
        m.write(&t1, 1, 100).unwrap();
        m.write(&t1, 2, 200).unwrap();
        m.commit(t1).unwrap();
        m.flush();
        let t2 = m.begin();
        m.write(&t2, 3, 300).unwrap();
        // t2 never commits, but its update records do reach the log.
        m.flush();
        m.now = Micros::MAX / 2; // let every submitted write complete
        RecoveryManager::recover(m.crash())
    }

    #[test]
    fn committed_survive_uncommitted_roll_back_sync() {
        let (m, report) = committed_then_crashed(CommitMode::Synchronous);
        assert_eq!(m.read(1), Some(100));
        assert_eq!(m.read(2), Some(200));
        assert_eq!(m.read(3), None, "uncommitted write must vanish");
        assert_eq!(report.committed, vec![TxnId(1)]);
        assert_eq!(report.losers, vec![TxnId(2)]);
    }

    #[test]
    fn committed_survive_group_commit() {
        let (m, report) = committed_then_crashed(CommitMode::GroupCommit);
        assert_eq!(m.read(1), Some(100));
        assert_eq!(m.read(3), None);
        assert_eq!(report.committed, vec![TxnId(1)]);
    }

    #[test]
    fn committed_survive_partitioned() {
        let (m, _) = committed_then_crashed(CommitMode::PartitionedLog { devices: 4 });
        assert_eq!(m.read(1), Some(100));
        assert_eq!(m.read(3), None);
    }

    #[test]
    fn committed_survive_stable_memory() {
        let (m, _) = committed_then_crashed(CommitMode::StableMemory {
            capacity_bytes: 1 << 20,
        });
        assert_eq!(m.read(1), Some(100));
        assert_eq!(m.read(2), Some(200));
        assert_eq!(m.read(3), None);
    }

    #[test]
    fn unflushed_group_commit_is_lost() {
        let mut m = RecoveryManager::new(CommitMode::GroupCommit);
        let t1 = m.begin();
        m.write(&t1, 1, 100).unwrap();
        m.commit(t1).unwrap();
        // No flush: the commit record sits in the volatile buffer.
        let (m2, report) = RecoveryManager::recover(m.crash());
        assert_eq!(m2.read(1), None, "un-flushed commit must not survive");
        assert!(report.committed.is_empty());
    }

    #[test]
    fn stable_memory_commit_survives_without_any_disk_write() {
        let mut m = RecoveryManager::new(CommitMode::StableMemory {
            capacity_bytes: 1 << 20,
        });
        let t1 = m.begin();
        m.write(&t1, 7, 70).unwrap();
        let t = m.commit(t1).unwrap();
        assert_eq!(t, m.now(), "commit is immediate in stable memory");
        assert_eq!(m.log_pages_written(), 0);
        let (m2, report) = RecoveryManager::recover(m.crash());
        assert_eq!(m2.read(7), Some(70));
        assert_eq!(report.committed, vec![TxnId(1)]);
    }

    #[test]
    fn sync_commit_takes_a_page_write() {
        let mut m = RecoveryManager::new(CommitMode::Synchronous);
        let t1 = m.begin();
        m.write(&t1, 1, 1).unwrap();
        let done = m.commit(t1).unwrap();
        assert_eq!(done, 10_000, "one 10 ms page write");
        assert!(m.is_durably_committed(TxnId(1)));
    }

    #[test]
    fn group_commit_amortizes_the_write() {
        let mut m = RecoveryManager::new(CommitMode::GroupCommit);
        let mut txns = Vec::new();
        for i in 0..9 {
            let t = m.begin();
            m.write_typical(&t, i, i as i64).unwrap();
            m.commit(t).unwrap();
            txns.push(t.0);
        }
        m.flush();
        for t in &txns {
            m.wait_for(*t).unwrap();
        }
        // ~9 typical transactions (400 B each ≈ 3600 B) of log: with a
        // little page-boundary slop this is one or two page writes, not
        // nine.
        assert!(
            m.log_pages_written() <= 2,
            "pages written: {}",
            m.log_pages_written()
        );
    }

    #[test]
    fn abort_undoes_in_memory_state() {
        let mut m = RecoveryManager::new(CommitMode::GroupCommit);
        let t0 = m.begin();
        m.write(&t0, 5, 50).unwrap();
        m.commit(t0).unwrap();
        m.flush();
        let t1 = m.begin();
        m.write(&t1, 5, 99).unwrap();
        m.write(&t1, 6, 60).unwrap();
        assert_eq!(m.read(5), Some(99));
        m.abort(t1).unwrap();
        assert_eq!(m.read(5), Some(50), "old value restored");
        assert_eq!(m.read(6), None);
        // The lock is free again.
        let t2 = m.begin();
        m.write(&t2, 5, 51).unwrap();
    }

    #[test]
    fn dependent_transaction_reads_dirty_data_and_orders_after() {
        // T1 pre-commits (group commit, record buffered); T2 reads T1's
        // dirty write and commits. T2's durable time must be ≥ T1's.
        let mut m = RecoveryManager::new(CommitMode::PartitionedLog { devices: 2 });
        let t1 = m.begin();
        m.write(&t1, 1, 10).unwrap();
        m.commit(t1).unwrap();
        m.flush(); // T1's group goes to device 0
        let t1_durable = *m.commit_durable_at.get(&TxnId(1)).unwrap();
        let t2 = m.begin();
        assert_eq!(m.read(1), Some(10), "dirty read of pre-committed data");
        m.write(&t2, 1, 20).unwrap();
        m.commit(t2).unwrap();
        m.flush(); // T2's group goes to device 1 (idle!), but must wait
        let t2_durable = *m.commit_durable_at.get(&TxnId(2)).unwrap();
        assert!(
            t2_durable >= t1_durable,
            "dependent commit {t2_durable} before dependency {t1_durable}"
        );
    }

    #[test]
    fn checkpoint_bounds_recovery_and_fuzzy_pages_are_undone() {
        let mut m = RecoveryManager::new(CommitMode::StableMemory {
            capacity_bytes: 1 << 20,
        });
        // Committed base state.
        let t1 = m.begin();
        for k in 0..10 {
            m.write(&t1, k, 1_000 + k as i64).unwrap();
        }
        m.commit(t1).unwrap();
        // An in-flight transaction dirties key 3...
        let t2 = m.begin();
        m.write(&t2, 3, -3).unwrap();
        // ...and a fuzzy checkpoint captures the dirty value.
        let swept = m.checkpoint_sweep(100);
        assert!(swept >= 1);
        // Crash with T2 unresolved.
        let (m2, report) = RecoveryManager::recover(m.crash());
        assert_eq!(
            m2.read(3),
            Some(1_003),
            "fuzzy snapshot's uncommitted value must be undone"
        );
        assert!(report.losers.contains(&TxnId(2)));
        for k in 0..10u64 {
            if k != 3 {
                assert_eq!(m2.read(k), Some(1_000 + k as i64));
            }
        }
    }

    #[test]
    fn dirty_page_table_skips_old_log_during_redo() {
        let mut m = RecoveryManager::new(CommitMode::StableMemory {
            capacity_bytes: 1 << 20,
        });
        // Phase 1: lots of committed history, then checkpoint everything.
        for round in 0..20 {
            let t = m.begin();
            m.write(&t, round % 5, round as i64).unwrap();
            m.commit(t).unwrap();
        }
        m.checkpoint_sweep(100);
        // Phase 2: one more committed write after the checkpoint.
        let t = m.begin();
        m.write(&t, 100, 42).unwrap();
        m.commit(t).unwrap();
        let (m2, report) = RecoveryManager::recover(m.crash());
        assert_eq!(m2.read(100), Some(42));
        assert_eq!(m2.read(4), Some(19), "pre-checkpoint state intact");
        assert!(
            report.records_skipped_by_dirty_table > 0,
            "§5.5 optimization should skip pre-checkpoint records: {report:?}"
        );
    }

    #[test]
    fn stable_drain_writes_compressed_pages() {
        let mut m = RecoveryManager::new(CommitMode::StableMemory {
            capacity_bytes: 4_000,
        });
        // ~20 typical transactions = 8 000 bytes of raw log; the region
        // holds 4 000, so draining must kick in, writing compressed pages.
        for i in 0..20u64 {
            let t = m.begin();
            m.write_typical(&t, i, i as i64).unwrap();
            m.commit(t).unwrap();
        }
        m.flush();
        assert!(m.log_pages_written() >= 1);
        // Everything still recovers.
        m.now = Micros::MAX / 2;
        let (m2, report) = RecoveryManager::recover(m.crash());
        assert_eq!(report.committed.len(), 20);
        for i in 0..20u64 {
            assert_eq!(m2.read(i), Some(i as i64));
        }
    }

    #[test]
    fn write_conflicts_surface_as_lock_errors() {
        let mut m = RecoveryManager::new(CommitMode::GroupCommit);
        let t1 = m.begin();
        let t2 = m.begin();
        m.write(&t1, 9, 1).unwrap();
        let err = m.write(&t2, 9, 2).unwrap_err();
        assert!(matches!(err, Error::LockConflict { .. }));
        // After t1 pre-commits, t2 may proceed.
        m.commit(t1).unwrap();
        m.write(&t2, 9, 2).unwrap();
    }

    #[test]
    fn operations_on_dead_transactions_fail() {
        let mut m = RecoveryManager::new(CommitMode::Synchronous);
        let t = m.begin();
        m.commit(t).unwrap();
        assert!(m.write(&t, 1, 1).is_err());
        assert!(m.commit(t).is_err());
        assert!(m.abort(t).is_err());
    }

    #[test]
    fn recovery_of_empty_database() {
        let m = RecoveryManager::new(CommitMode::Synchronous);
        let (m2, report) = RecoveryManager::recover(m.crash());
        assert!(m2.is_empty());
        assert!(report.committed.is_empty());
        assert_eq!(report.records_scanned, 0);
    }

    #[test]
    fn new_manager_continues_transaction_ids() {
        let mut m = RecoveryManager::new(CommitMode::Synchronous);
        let t1 = m.begin();
        m.write(&t1, 1, 1).unwrap();
        m.commit(t1).unwrap();
        let (mut m2, _) = RecoveryManager::recover(m.crash());
        let t2 = m2.begin();
        assert!(t2.0 .0 > t1.0 .0, "txn ids must not be reused");
    }
}
