//! Battery-backed stable memory (§5.4, §5.5).
//!
//! A small region of main memory survives power failure. The paper uses it
//! for two things:
//!
//! * an **in-memory log tail** — "a reliable disk output queue for log
//!   data": transactions commit the moment their commit record enters the
//!   region; pages drain to disk asynchronously, and §5.4's compression
//!   strips old values of committed transactions before they reach disk;
//! * the **dirty-page table** of §5.5 — for each updated page, the log
//!   record id of the first update since its last checkpoint, whose
//!   minimum tells recovery where to start reading the log.

use crate::log::{LogRecord, Lsn};
use std::collections::HashMap;

/// The stable region.
#[derive(Debug, Default)]
pub struct StableMemory {
    log_tail: Vec<(Lsn, LogRecord)>,
    bytes_used: usize,
    capacity_bytes: usize,
    dirty_pages: HashMap<u64, Lsn>,
}

impl StableMemory {
    /// A region of `capacity_bytes` for the log tail (the paper assumes
    /// stable memory is "too expensive to be used for all of real
    /// memory").
    pub fn new(capacity_bytes: usize) -> Self {
        StableMemory {
            log_tail: Vec::new(),
            bytes_used: 0,
            capacity_bytes,
            dirty_pages: HashMap::new(),
        }
    }

    /// Bytes of log currently buffered.
    pub fn bytes_used(&self) -> usize {
        self.bytes_used
    }

    /// Whether a record of `size` bytes fits.
    pub fn fits(&self, size: usize) -> bool {
        self.bytes_used + size <= self.capacity_bytes
    }

    /// Appends a log record; returns false (and drops nothing) when the
    /// region is full — the caller must drain first.
    pub fn append(&mut self, lsn: Lsn, record: LogRecord) -> bool {
        let size = record.byte_size();
        if !self.fits(size) {
            return false;
        }
        self.bytes_used += size;
        self.log_tail.push((lsn, record));
        true
    }

    /// Records buffered, oldest first (crash recovery reads these — the
    /// region survives).
    pub fn buffered(&self) -> &[(Lsn, LogRecord)] {
        &self.log_tail
    }

    /// Drains up to `max_bytes` of **compressed** log for writing to disk
    /// (§5.4: only new values of committed transactions are written; the
    /// caller passes a committed-set predicate). Old-value-only records of
    /// transactions still in doubt stay buffered. Returns the drained
    /// records and their compressed byte volume.
    pub fn drain_committed(
        &mut self,
        max_bytes: usize,
        is_committed: impl Fn(mmdb_types::TxnId) -> bool,
    ) -> (Vec<(Lsn, LogRecord)>, usize) {
        let mut drained = Vec::new();
        let mut bytes = 0usize;
        let mut keep = Vec::new();
        for (lsn, rec) in std::mem::take(&mut self.log_tail) {
            let committed = is_committed(rec.txn());
            if committed && bytes + rec.compressed_size() <= max_bytes {
                bytes += rec.compressed_size();
                self.bytes_used = self.bytes_used.saturating_sub(rec.byte_size());
                drained.push((lsn, rec));
            } else {
                keep.push((lsn, rec));
            }
        }
        self.log_tail = keep;
        (drained, bytes)
    }

    /// §5.5: notes that `page` was updated by the log record `lsn` if it
    /// has no recorded first-update yet.
    pub fn note_page_update(&mut self, page: u64, lsn: Lsn) {
        self.dirty_pages.entry(page).or_insert(lsn);
    }

    /// §5.5: the page was checkpointed — its update status resets; the
    /// next update will re-enter the table.
    pub fn page_checkpointed(&mut self, page: u64) {
        self.dirty_pages.remove(&page);
    }

    /// The oldest first-update LSN across dirty pages: where recovery must
    /// start reading the log. `None` means no page is dirty — recovery
    /// needs no redo at all.
    pub fn recovery_start(&self) -> Option<Lsn> {
        self.dirty_pages.values().min().copied()
    }

    /// Number of pages currently marked dirty.
    pub fn dirty_page_count(&self) -> usize {
        self.dirty_pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmdb_types::TxnId;

    fn upd(txn: u64, key: u64) -> LogRecord {
        LogRecord::Update {
            txn: TxnId(txn),
            key,
            old: Some(0),
            new: 1,
            padding: 100,
        }
    }

    #[test]
    fn append_until_full() {
        let mut s = StableMemory::new(300);
        assert!(s.append(Lsn(1), upd(1, 1))); // 140 bytes
        assert!(s.append(Lsn(2), upd(1, 2)));
        assert!(!s.append(Lsn(3), upd(1, 3)), "281+140 > 300");
        assert_eq!(s.buffered().len(), 2);
    }

    #[test]
    fn drain_strips_old_values_of_committed_only() {
        let mut s = StableMemory::new(10_000);
        s.append(Lsn(1), upd(1, 1));
        s.append(Lsn(2), upd(2, 2));
        // Only txn 1 is committed.
        let (drained, bytes) = s.drain_committed(usize::MAX, |t| t == TxnId(1));
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].0, Lsn(1));
        assert_eq!(bytes, upd(1, 1).compressed_size());
        assert!(bytes < upd(1, 1).byte_size(), "compression happened");
        // The uncommitted record stays.
        assert_eq!(s.buffered().len(), 1);
        assert_eq!(s.buffered()[0].0, Lsn(2));
    }

    #[test]
    fn drain_respects_byte_budget() {
        let mut s = StableMemory::new(10_000);
        for i in 0..10 {
            s.append(Lsn(i), upd(1, i));
        }
        let one = upd(1, 0).compressed_size();
        let (drained, bytes) = s.drain_committed(one * 3, |_| true);
        assert_eq!(drained.len(), 3);
        assert_eq!(bytes, one * 3);
        assert_eq!(s.buffered().len(), 7);
    }

    #[test]
    fn freed_space_is_reusable() {
        let mut s = StableMemory::new(300);
        s.append(Lsn(1), upd(1, 1));
        s.append(Lsn(2), upd(1, 2));
        assert!(!s.fits(140));
        s.drain_committed(usize::MAX, |_| true);
        assert!(s.fits(140));
        assert!(s.append(Lsn(3), upd(2, 3)));
    }

    #[test]
    fn dirty_page_table_tracks_first_update() {
        let mut s = StableMemory::new(100);
        s.note_page_update(7, Lsn(30));
        s.note_page_update(7, Lsn(40)); // not the first — ignored
        s.note_page_update(3, Lsn(25));
        assert_eq!(s.recovery_start(), Some(Lsn(25)));
        assert_eq!(s.dirty_page_count(), 2);
        // Checkpointing page 3 moves the recovery start forward.
        s.page_checkpointed(3);
        assert_eq!(s.recovery_start(), Some(Lsn(30)));
        // After its checkpoint, a page's next update re-enters the table.
        s.note_page_update(3, Lsn(90));
        assert_eq!(s.recovery_start(), Some(Lsn(30)));
        s.page_checkpointed(7);
        assert_eq!(s.recovery_start(), Some(Lsn(90)));
        s.page_checkpointed(3);
        assert_eq!(s.recovery_start(), None);
    }
}
