//! Wall-clock log devices (§5.2 on real hardware).
//!
//! The [`crate::device`] module models a log device in *virtual* time for
//! the discrete-event simulator; this module is the same abstraction
//! backed by a real append-only file, for the multi-threaded session
//! layer that reproduces the §5.2 arithmetic with OS threads and a wall
//! clock. A device writes page-framed batches of log records and calls
//! `fsync` after each page, so "durable" means exactly what it means in
//! the paper: the page write completed. An optional configured latency
//! lets experiments model the paper's 10 ms page write on hardware whose
//! real fsync is far faster — the group-commit daemon sleeps for it
//! before each page write, which is also where a crash can lose a
//! submitted-but-unwritten page.
//!
//! The device writes through the [`crate::backend::LogBackend`] trait, so
//! tests and the torture harness can swap the real file for a
//! [`crate::backend::FaultyBackend`] executing a deterministic fault
//! plan. A failed append rewinds the file to the last good frame before
//! returning, so a retried page never lands after torn garbage.
//!
//! On-disk format, per page (v2): a 16-byte header — magic `"MMW2"`,
//! record count, payload bytes, and a CRC32 over count‖len‖payload —
//! followed by `count` records, each an 8-byte LSN and the [`LogRecord`]
//! encoding from [`crate::log`]. v1 frames (12-byte header, no checksum,
//! magic `"MMWL"`) remain readable. Reading applies the §5.2
//! contiguous-prefix rule uniformly: the first page that is torn,
//! checksum-bad, or malformed truncates the log *at that page* — earlier
//! pages survive, the rest is dropped and reported, and recovery never
//! fails because one page went bad.

use crate::backend::{FileBackend, LogBackend};
use crate::log::{LogRecord, Lsn};
use mmdb_types::{Error, Result};
use std::fs::File;
use std::io::Read;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Magic number opening every v1 page frame ("MMWL"); no checksum.
const PAGE_MAGIC_V1: u32 = 0x4D4D_574C;

/// Magic number opening every v2 page frame ("MMW2"); CRC32-guarded.
const PAGE_MAGIC_V2: u32 = 0x4D4D_5732;

/// Size of the v1 page-frame header in bytes (magic, count, len).
const HEADER_BYTES_V1: usize = 12;

/// Size of the v2 page-frame header in bytes (magic, count, len, crc).
const HEADER_BYTES_V2: usize = 16;

/// CRC32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) lookup table,
/// built at compile time so the checksum needs no runtime init and no
/// external crate.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC32 (IEEE) of `bytes` — the per-page checksum guarding v2 frames
/// against the silent corruption a bare magic number cannot catch.
/// Public so tests and the torture harness can craft or verify frames.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for b in bytes {
        let idx = ((crc ^ *b as u32) & 0xFF) as usize;
        crc = (crc >> 8) ^ CRC32_TABLE.get(idx).copied().unwrap_or(0);
    }
    !crc
}

/// A wall-clock log device: an append-only file written one page frame at
/// a time, synced after every page (§5.2's unit of durability).
#[derive(Debug)]
pub struct WalDevice {
    backend: Box<dyn LogBackend>,
    path: PathBuf,
    page_bytes: usize,
    write_latency: Duration,
    pages_written: usize,
    bytes_written: u64,
}

impl WalDevice {
    /// Creates (truncating) a device file at `path` over the real
    /// [`FileBackend`]. `page_bytes` is the capacity callers should pack
    /// per page (the device itself accepts any batch); `write_latency` is
    /// the modeled per-page write time the daemon sleeps before each
    /// write (zero for raw hardware speed).
    pub fn create(
        path: impl Into<PathBuf>,
        page_bytes: usize,
        write_latency: Duration,
    ) -> Result<WalDevice> {
        let path = path.into();
        let backend = FileBackend::create(&path)?;
        Ok(WalDevice::with_backend(
            Box::new(backend),
            path,
            page_bytes,
            write_latency,
        ))
    }

    /// Wraps an already-open backend (real or fault-injecting) as a
    /// device. `path` is carried for reporting only; the backend owns the
    /// actual storage.
    pub fn with_backend(
        backend: Box<dyn LogBackend>,
        path: impl Into<PathBuf>,
        page_bytes: usize,
        write_latency: Duration,
    ) -> WalDevice {
        WalDevice {
            backend,
            path: path.into(),
            page_bytes: page_bytes.max(1),
            write_latency,
            pages_written: 0,
            bytes_written: 0,
        }
    }

    /// Page capacity in bytes callers should honor when batching.
    pub fn page_bytes(&self) -> usize {
        self.page_bytes
    }

    /// The modeled per-page write time (the §5.2 10 ms, scaled down for
    /// fast experiments). The caller sleeps for it; the device does not,
    /// so a crash flag can be checked between the sleep and the write.
    pub fn write_latency(&self) -> Duration {
        self.write_latency
    }

    /// The device file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one v2 page frame of records and syncs it to disk. After
    /// this returns `Ok`, the records are durable — they survive a crash
    /// (§5.2). On *any* failure the device rewinds the file to the end of
    /// the last good frame (best effort) so a retried append starts from
    /// a clean boundary instead of landing after a torn partial frame.
    pub fn append_page(&mut self, records: &[(Lsn, LogRecord)]) -> Result<()> {
        let frame = encode_frame(records, self.page_bytes);
        let result = self
            .backend
            .write_all(&frame)
            .and_then(|()| self.backend.sync());
        match result {
            Ok(()) => {
                self.pages_written += 1;
                self.bytes_written += frame.len() as u64;
                Ok(())
            }
            Err(e) => {
                // Discard whatever partial frame may have landed; if the
                // rewind itself fails the recovery-time prefix rule still
                // drops the torn page, so the original error wins.
                let _ = self.backend.truncate(self.bytes_written);
                Err(e)
            }
        }
    }

    /// Pages durably written so far.
    pub fn pages_written(&self) -> usize {
        self.pages_written
    }

    /// Bytes durably written so far (frames included).
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }
}

/// Builds the v2 on-disk frame for one page of records.
fn encode_frame(records: &[(Lsn, LogRecord)], page_bytes: usize) -> Vec<u8> {
    let mut payload = Vec::with_capacity(page_bytes);
    for (lsn, rec) in records {
        payload.extend_from_slice(&lsn.0.to_le_bytes());
        rec.encode(&mut payload);
    }
    // Page frames are a few KiB; u32 header fields never saturate in
    // practice, and the saturating helpers keep the cast checked.
    let count = mmdb_types::cast::u32_from_usize(records.len());
    let bytes = mmdb_types::cast::u32_from_usize(payload.len());
    let mut frame = Vec::with_capacity(HEADER_BYTES_V2 + payload.len());
    frame.extend_from_slice(&PAGE_MAGIC_V2.to_le_bytes());
    frame.extend_from_slice(&count.to_le_bytes());
    frame.extend_from_slice(&bytes.to_le_bytes());
    let mut crc = crc32(&count.to_le_bytes());
    crc = crc32_continue(crc, &bytes.to_le_bytes());
    crc = crc32_continue(crc, &payload);
    frame.extend_from_slice(&crc.to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

/// Continues a CRC32 over more bytes (`crc` is a finished [`crc32`]
/// value; the pre/post inversion is undone and redone around the update).
fn crc32_continue(crc: u32, bytes: &[u8]) -> u32 {
    let mut crc = !crc;
    for b in bytes {
        let idx = ((crc ^ *b as u32) & 0xFF) as usize;
        crc = (crc >> 8) ^ CRC32_TABLE.get(idx).copied().unwrap_or(0);
    }
    !crc
}

/// What [`read_log_file_report`] found in one device file: the records of
/// the good contiguous prefix, plus how much was cut off and why.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LogFileReport {
    /// Records of every page before the first bad/torn page, in order.
    pub records: Vec<(Lsn, LogRecord)>,
    /// 1 if the scan stopped at a *corrupt* page (bad magic, checksum
    /// mismatch, malformed record) rather than clean EOF or a torn tail.
    /// Per-file this is 0 or 1 — everything after the first bad page is
    /// dropped unexamined — and recovery sums it across files.
    pub corrupt_pages_dropped: usize,
    /// Bytes from the truncation point to end of file (0 on clean EOF).
    pub bytes_dropped: u64,
    /// Frame bytes checksummed and decoded into `records` — the replay
    /// work this read actually performed (headers included).
    pub bytes_replayed: u64,
    /// Complete pages stepped over without checksum or decode because
    /// every record in them precedes the caller's replay floor (§5.3:
    /// data already baked into a checkpoint image).
    pub pages_skipped: usize,
    /// Frame bytes of those skipped pages.
    pub bytes_skipped: u64,
}

/// Why a page frame failed to parse — all folded into the same
/// truncate-at-this-page outcome, but distinguished for reporting.
enum PageFailure {
    /// The file ends mid-frame: a crash tore the final write (§5.2's
    /// half-written page). Expected after any crash; not corruption.
    Torn,
    /// The frame is structurally bad: wrong magic, checksum mismatch, or
    /// a record that does not decode. Media damage or a software bug.
    Corrupt,
}

/// Reads every complete page frame from a device file, in append order,
/// applying the §5.2 contiguous-prefix rule uniformly: the first page
/// that is torn, checksum-bad, or otherwise malformed truncates the log
/// at that page. Earlier pages survive, the remainder is dropped and
/// reported — never an error. Both v1 (unchecksummed) and v2 frames are
/// accepted, so logs written before the CRC upgrade still replay. Only a
/// genuine I/O failure (file unreadable) returns `Err`.
pub fn read_log_file_report(path: &Path) -> Result<LogFileReport> {
    read_log_file_report_from(path, Lsn(0))
}

/// [`read_log_file_report`] with a §5.3 replay floor: complete pages
/// whose every record precedes `floor` are stepped over without being
/// checksummed or decoded, bounding replay work by the log *suffix*
/// instead of total history. The engine writes each page's records with
/// consecutive LSNs, so the page's range is `[first, first + count - 1]`
/// and the first LSN sits at a fixed offset after the header; a skipped
/// page's contents are already covered by the checkpoint image that
/// supplied `floor`, so an undetected flipped bit inside one cannot
/// change the recovered state. `Lsn(0)` skips nothing.
pub fn read_log_file_report_from(path: &Path, floor: Lsn) -> Result<LogFileReport> {
    let mut file =
        File::open(path).map_err(|e| Error::Io(format!("open {}: {e}", path.display())))?;
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)
        .map_err(|e| Error::Io(format!("read {}: {e}", path.display())))?;
    let mut report = LogFileReport::default();
    let mut at = 0usize;
    while at < bytes.len() {
        if let Some(frame_len) = skippable_frame(&bytes, at, floor) {
            report.pages_skipped += 1;
            report.bytes_skipped += frame_len as u64;
            at += frame_len;
            continue;
        }
        match parse_frame(&bytes, at) {
            Ok((records, frame_len)) => {
                report.records.extend(records);
                report.bytes_replayed += frame_len as u64;
                at += frame_len;
            }
            Err(failure) => {
                if matches!(failure, PageFailure::Corrupt) {
                    report.corrupt_pages_dropped = 1;
                }
                report.bytes_dropped = (bytes.len() - at) as u64;
                break;
            }
        }
    }
    Ok(report)
}

/// If the frame at `at` is complete and every record in it precedes
/// `floor`, returns its total length so the caller can step over it
/// without checksum or decode work. Any doubt — short frame, bad magic,
/// zero records, LSN range touching the floor — returns `None` and the
/// caller takes the full parse path.
fn skippable_frame(bytes: &[u8], at: usize, floor: Lsn) -> Option<usize> {
    if floor.0 == 0 {
        return None;
    }
    let magic = u32::from_le_bytes(four(bytes.get(at..at + 4)?));
    let header_bytes = match magic {
        PAGE_MAGIC_V1 => HEADER_BYTES_V1,
        PAGE_MAGIC_V2 => HEADER_BYTES_V2,
        _ => return None,
    };
    let header = bytes.get(at..at + header_bytes)?;
    let count = u32::from_le_bytes(four(header.get(4..8)?)) as u64;
    let len = u32::from_le_bytes(four(header.get(8..12)?)) as usize;
    // The whole frame must be present: a torn or truncated tail goes
    // through the parse path so it is reported as such.
    let payload = bytes.get(at + header_bytes..at + header_bytes + len)?;
    if count == 0 {
        return None;
    }
    let first = u64::from_le_bytes(eight(payload.get(..8)?));
    let last = first.checked_add(count - 1)?;
    (last < floor.0).then_some(header_bytes + len)
}

/// Parses one frame starting at `at`, returning its records and total
/// encoded length, or the reason the prefix ends here.
fn parse_frame(
    bytes: &[u8],
    at: usize,
) -> std::result::Result<(Vec<(Lsn, LogRecord)>, usize), PageFailure> {
    let magic_bytes = bytes.get(at..at + 4).ok_or(PageFailure::Torn)?;
    let magic = u32::from_le_bytes(four(magic_bytes));
    let header_bytes = match magic {
        PAGE_MAGIC_V1 => HEADER_BYTES_V1,
        PAGE_MAGIC_V2 => HEADER_BYTES_V2,
        _ => return Err(PageFailure::Corrupt),
    };
    let header = bytes.get(at..at + header_bytes).ok_or(PageFailure::Torn)?;
    let count_bytes = header.get(4..8).ok_or(PageFailure::Torn)?;
    let len_bytes = header.get(8..12).ok_or(PageFailure::Torn)?;
    let count = u32::from_le_bytes(four(count_bytes));
    let len = u32::from_le_bytes(four(len_bytes)) as usize;
    let payload = bytes
        .get(at + header_bytes..at + header_bytes + len)
        .ok_or(PageFailure::Torn)?;
    if magic == PAGE_MAGIC_V2 {
        let stored = u32::from_le_bytes(four(header.get(12..16).ok_or(PageFailure::Torn)?));
        let mut crc = crc32(count_bytes);
        crc = crc32_continue(crc, len_bytes);
        crc = crc32_continue(crc, payload);
        if crc != stored {
            return Err(PageFailure::Corrupt);
        }
    }
    let mut rest = payload;
    let mut records = Vec::with_capacity(count as usize);
    for _ in 0..count {
        // A record cut short *inside* a complete frame is corruption (the
        // header promised `count` records), folded into the same
        // truncate-here outcome as a bad checksum.
        let lsn_bytes = rest.get(..8).ok_or(PageFailure::Corrupt)?;
        let mut lsn8 = [0u8; 8];
        lsn8.copy_from_slice(lsn_bytes);
        rest = rest.get(8..).unwrap_or(&[]);
        let rec = LogRecord::decode(&mut rest).map_err(|_| PageFailure::Corrupt)?;
        records.push((Lsn(u64::from_le_bytes(lsn8)), rec));
    }
    Ok((records, header_bytes + len))
}

/// Copies four bytes out of a slice known to hold at least four (callers
/// bound-check first; short input yields zeros rather than a panic).
fn four(slice: &[u8]) -> [u8; 4] {
    let mut out = [0u8; 4];
    if let Some(src) = slice.get(..4) {
        out.copy_from_slice(src);
    }
    out
}

/// Copies eight bytes out of a slice known to hold at least eight, with
/// the same zero-fill fallback as [`four`].
fn eight(slice: &[u8]) -> [u8; 8] {
    let mut out = [0u8; 8];
    if let Some(src) = slice.get(..8) {
        out.copy_from_slice(src);
    }
    out
}

/// Reads the good contiguous prefix of a device file — the records of
/// [`read_log_file_report`] without the damage accounting, for callers
/// that only need the data.
pub fn read_log_file(path: &Path) -> Result<Vec<(Lsn, LogRecord)>> {
    Ok(read_log_file_report(path)?.records)
}

/// Reads and merges every `*.log` device file in `dir` by LSN,
/// deduplicating records that reached more than one device. This is the
/// restart-recovery view of a partitioned log (§5.2): fragments from `k`
/// devices joined back into one sequence.
pub fn read_log_dir(dir: &Path) -> Result<Vec<(Lsn, LogRecord)>> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| Error::Io(format!("read {}: {e}", dir.display())))?;
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "log"))
        .collect();
    paths.sort();
    let mut all = Vec::new();
    for p in &paths {
        all.extend(read_log_file(p)?);
    }
    all.sort_by_key(|(lsn, _)| *lsn);
    all.dedup_by_key(|(lsn, _)| *lsn);
    Ok(all)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{FaultPlan, FaultyBackend};
    use mmdb_types::TxnId;
    use std::fs::OpenOptions;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mmdb-wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn typical(txn: u64, key: u64) -> Vec<(Lsn, LogRecord)> {
        crate::log::typical_transaction(TxnId(txn), key, 0, 1)
            .into_iter()
            .enumerate()
            .map(|(i, r)| (Lsn(txn * 10 + i as u64), r))
            .collect()
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE CRC32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        // Incremental == one-shot.
        let whole = crc32(b"hello world");
        let part = crc32_continue(crc32(b"hello "), b"world");
        assert_eq!(whole, part);
    }

    #[test]
    fn roundtrip_pages() {
        let path = tmp("roundtrip.log");
        let mut dev = WalDevice::create(&path, 4096, Duration::ZERO).unwrap();
        let p1 = typical(1, 7);
        let p2 = typical(2, 8);
        dev.append_page(&p1).unwrap();
        dev.append_page(&p2).unwrap();
        assert_eq!(dev.pages_written(), 2);
        let report = read_log_file_report(&path).unwrap();
        let want: Vec<_> = p1.into_iter().chain(p2).collect();
        assert_eq!(report.records, want);
        assert_eq!(report.corrupt_pages_dropped, 0);
        assert_eq!(report.bytes_dropped, 0);
    }

    #[test]
    fn v1_frames_still_readable() {
        // Hand-encode a v1 (unchecksummed, 12-byte header) frame and mix
        // it with a v2 frame: both must replay.
        let path = tmp("v1compat.log");
        let p1 = typical(1, 7);
        let mut payload = Vec::new();
        for (lsn, rec) in &p1 {
            payload.extend_from_slice(&lsn.0.to_le_bytes());
            rec.encode(&mut payload);
        }
        let mut frame = Vec::new();
        frame.extend_from_slice(&PAGE_MAGIC_V1.to_le_bytes());
        frame.extend_from_slice(&(p1.len() as u32).to_le_bytes());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&payload);
        std::fs::write(&path, &frame).unwrap();
        // Append a v2 frame after the v1 one.
        let p2 = typical(2, 8);
        let mut file = OpenOptions::new().append(true).open(&path).unwrap();
        use std::io::Write;
        file.write_all(&encode_frame(&p2, 4096)).unwrap();
        drop(file);
        let read = read_log_file(&path).unwrap();
        let want: Vec<_> = p1.into_iter().chain(p2).collect();
        assert_eq!(read, want);
    }

    #[test]
    fn torn_tail_is_dropped_earlier_pages_survive() {
        let path = tmp("torn.log");
        let mut dev = WalDevice::create(&path, 4096, Duration::ZERO).unwrap();
        let p1 = typical(1, 7);
        dev.append_page(&p1).unwrap();
        dev.append_page(&typical(2, 8)).unwrap();
        // Truncate into the middle of the second frame: a crash mid-write.
        let full = std::fs::metadata(&path).unwrap().len();
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(full - 10).unwrap();
        let report = read_log_file_report(&path).unwrap();
        assert_eq!(report.records, p1, "only the complete first page survives");
        assert_eq!(
            report.corrupt_pages_dropped, 0,
            "a torn tail is not corruption"
        );
        // Everything from the start of the torn frame to EOF is dropped.
        let truncated = std::fs::metadata(&path).unwrap().len();
        let first_frame = encode_frame(&p1, 4096).len() as u64;
        assert_eq!(report.bytes_dropped, truncated - first_frame);
    }

    #[test]
    fn dir_merge_sorts_by_lsn() {
        let dir = std::env::temp_dir().join(format!("mmdb-wal-merge-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut d0 = WalDevice::create(dir.join("wal-dev0.log"), 4096, Duration::ZERO).unwrap();
        let mut d1 = WalDevice::create(dir.join("wal-dev1.log"), 4096, Duration::ZERO).unwrap();
        let p1 = typical(1, 1);
        let p2 = typical(2, 2);
        d1.append_page(&p2).unwrap();
        d0.append_page(&p1).unwrap();
        let merged = read_log_dir(&dir).unwrap();
        let want: Vec<_> = p1.into_iter().chain(p2).collect();
        assert_eq!(merged, want);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_magic_truncates_instead_of_erroring() {
        // A good page followed by garbage: the prefix survives, the
        // garbage is reported as one dropped corrupt page — not an error.
        let path = tmp("corrupt.log");
        let mut dev = WalDevice::create(&path, 4096, Duration::ZERO).unwrap();
        let p1 = typical(1, 7);
        dev.append_page(&p1).unwrap();
        let mut file = OpenOptions::new().append(true).open(&path).unwrap();
        use std::io::Write;
        file.write_all(&[0u8; 64]).unwrap();
        drop(file);
        let report = read_log_file_report(&path).unwrap();
        assert_eq!(report.records, p1);
        assert_eq!(report.corrupt_pages_dropped, 1);
        assert_eq!(report.bytes_dropped, 64);
        // All-garbage file: empty prefix, still not an error.
        let path2 = tmp("corrupt2.log");
        std::fs::write(&path2, [0xAAu8; 64]).unwrap();
        let report2 = read_log_file_report(&path2).unwrap();
        assert!(report2.records.is_empty());
        assert_eq!(report2.corrupt_pages_dropped, 1);
    }

    #[test]
    fn bit_flip_in_payload_fails_checksum_and_truncates() {
        let path = tmp("flip.log");
        let plan = FaultPlan::none().bit_flip(1, 40);
        let backend = FaultyBackend::create(&path, plan).unwrap();
        let mut dev = WalDevice::with_backend(Box::new(backend), &path, 4096, Duration::ZERO);
        let p1 = typical(1, 7);
        let p2 = typical(2, 8);
        let p3 = typical(3, 9);
        dev.append_page(&p1).unwrap();
        dev.append_page(&p2).unwrap(); // silently corrupted by the flip
        dev.append_page(&p3).unwrap();
        let report = read_log_file_report(&path).unwrap();
        assert_eq!(
            report.records, p1,
            "the flipped page and everything after it are dropped"
        );
        assert_eq!(report.corrupt_pages_dropped, 1);
        assert!(report.bytes_dropped > 0);
    }

    #[test]
    fn lsn_cut_short_inside_complete_frame_truncates() {
        // Forge a v2 frame whose header promises more records than the
        // payload holds (checksum valid, so only record parsing trips):
        // the old code returned Err(CorruptLog), the prefix rule drops it.
        let path = tmp("cutshort.log");
        let p1 = typical(1, 7);
        let mut dev = WalDevice::create(&path, 4096, Duration::ZERO).unwrap();
        dev.append_page(&p1).unwrap();
        let payload = [1u8, 2, 3]; // 3 bytes: not even one 8-byte LSN
        let count = 5u32;
        let len = payload.len() as u32;
        let mut crc = crc32(&count.to_le_bytes());
        crc = crc32_continue(crc, &len.to_le_bytes());
        crc = crc32_continue(crc, &payload);
        let mut frame = Vec::new();
        frame.extend_from_slice(&PAGE_MAGIC_V2.to_le_bytes());
        frame.extend_from_slice(&count.to_le_bytes());
        frame.extend_from_slice(&len.to_le_bytes());
        frame.extend_from_slice(&crc.to_le_bytes());
        frame.extend_from_slice(&payload);
        let mut file = OpenOptions::new().append(true).open(&path).unwrap();
        use std::io::Write;
        file.write_all(&frame).unwrap();
        drop(file);
        let report = read_log_file_report(&path).unwrap();
        assert_eq!(report.records, p1);
        assert_eq!(report.corrupt_pages_dropped, 1);
    }

    #[test]
    fn replay_floor_skips_whole_pages_without_decoding() {
        // Three pages of consecutive LSNs 1..=9; a floor of 7 must step
        // over the first two pages entirely and decode only the third.
        let path = tmp("floor.log");
        let mut dev = WalDevice::create(&path, 4096, Duration::ZERO).unwrap();
        let recs: Vec<(Lsn, LogRecord)> = (1..=9u64)
            .map(|l| (Lsn(l), LogRecord::Commit { txn: TxnId(l) }))
            .collect();
        dev.append_page(&recs[0..3]).unwrap();
        dev.append_page(&recs[3..6]).unwrap();
        dev.append_page(&recs[6..9]).unwrap();
        let report = read_log_file_report_from(&path, Lsn(7)).unwrap();
        assert_eq!(report.records, recs[6..9]);
        assert_eq!(report.pages_skipped, 2);
        assert!(report.bytes_skipped > 0);
        assert!(report.bytes_replayed > 0);
        assert_eq!(report.corrupt_pages_dropped, 0);
        // A page straddling the floor is decoded, not skipped.
        let straddle = read_log_file_report_from(&path, Lsn(5)).unwrap();
        assert_eq!(straddle.records, recs[3..9]);
        assert_eq!(straddle.pages_skipped, 1);
        // Floor 0 is the plain full read.
        let full = read_log_file_report_from(&path, Lsn(0)).unwrap();
        assert_eq!(full.records, recs);
        assert_eq!(full.pages_skipped, 0);
    }

    #[test]
    fn corrupt_page_below_floor_is_still_skipped_torn_tail_still_reported() {
        // A bit flip inside a page wholly below the floor must not abort
        // the suffix replay: the page is stepped over unexamined (its
        // contents are covered by the checkpoint image).
        let path = tmp("floor-corrupt.log");
        let mut dev = WalDevice::create(&path, 4096, Duration::ZERO).unwrap();
        let recs: Vec<(Lsn, LogRecord)> = (1..=6u64)
            .map(|l| (Lsn(l), LogRecord::Commit { txn: TxnId(l) }))
            .collect();
        dev.append_page(&recs[0..3]).unwrap();
        dev.append_page(&recs[3..6]).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a payload byte of the FIRST page, past its first LSN.
        bytes[HEADER_BYTES_V2 + 10] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let full = read_log_file_report(&path).unwrap();
        assert!(full.records.is_empty(), "full read truncates at the flip");
        assert_eq!(full.corrupt_pages_dropped, 1);
        let suffix = read_log_file_report_from(&path, Lsn(4)).unwrap();
        assert_eq!(suffix.records, recs[3..6], "suffix read survives it");
        assert_eq!(suffix.pages_skipped, 1);
        assert_eq!(suffix.corrupt_pages_dropped, 0);
    }

    #[test]
    fn failed_append_rewinds_so_retry_lands_clean() {
        // A torn write leaves a partial frame; the device truncates it
        // away, so the retried page starts at a clean boundary and the
        // whole log replays.
        let path = tmp("rewind.log");
        let plan = FaultPlan::none().torn_write(1, 7);
        let backend = FaultyBackend::create(&path, plan).unwrap();
        let mut dev = WalDevice::with_backend(Box::new(backend), &path, 4096, Duration::ZERO);
        let p1 = typical(1, 7);
        let p2 = typical(2, 8);
        dev.append_page(&p1).unwrap();
        assert!(dev.append_page(&p2).is_err(), "torn write surfaces");
        dev.append_page(&p2).unwrap();
        let report = read_log_file_report(&path).unwrap();
        let want: Vec<_> = p1.into_iter().chain(p2).collect();
        assert_eq!(report.records, want);
        assert_eq!(report.corrupt_pages_dropped, 0);
        assert_eq!(report.bytes_dropped, 0);
        assert_eq!(dev.pages_written(), 2, "only successful appends count");
    }
}
