//! Wall-clock log devices (§5.2 on real hardware).
//!
//! The [`crate::device`] module models a log device in *virtual* time for
//! the discrete-event simulator; this module is the same abstraction
//! backed by a real append-only file, for the multi-threaded session
//! layer that reproduces the §5.2 arithmetic with OS threads and a wall
//! clock. A device writes page-framed batches of log records and calls
//! `fsync` after each page, so "durable" means exactly what it means in
//! the paper: the page write completed. An optional configured latency
//! lets experiments model the paper's 10 ms page write on hardware whose
//! real fsync is far faster — the group-commit daemon sleeps for it
//! before each page write, which is also where a crash can lose a
//! submitted-but-unwritten page.
//!
//! On-disk format, per page: a 12-byte header (magic, record count,
//! payload bytes) followed by `count` records, each an 8-byte LSN and the
//! [`LogRecord`] encoding from [`crate::log`]. Reading tolerates a torn
//! final page — a crash mid-write loses that page, never an earlier one.

use crate::log::{LogRecord, Lsn};
use mmdb_types::{Error, Result};
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Magic number opening every page frame ("MMWL").
const PAGE_MAGIC: u32 = 0x4D4D_574C;

/// Size of the page-frame header in bytes.
const HEADER_BYTES: usize = 12;

/// A wall-clock log device: an append-only file written one page frame at
/// a time, synced after every page (§5.2's unit of durability).
#[derive(Debug)]
pub struct WalDevice {
    file: File,
    path: PathBuf,
    page_bytes: usize,
    write_latency: Duration,
    pages_written: usize,
    bytes_written: u64,
}

impl WalDevice {
    /// Creates (truncating) a device file at `path`. `page_bytes` is the
    /// capacity callers should pack per page (the device itself accepts
    /// any batch); `write_latency` is the modeled per-page write time the
    /// daemon sleeps before each write (zero for raw hardware speed).
    pub fn create(
        path: impl Into<PathBuf>,
        page_bytes: usize,
        write_latency: Duration,
    ) -> Result<WalDevice> {
        let path = path.into();
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&path)
            .map_err(|e| Error::Io(format!("create {}: {e}", path.display())))?;
        Ok(WalDevice {
            file,
            path,
            page_bytes: page_bytes.max(1),
            write_latency,
            pages_written: 0,
            bytes_written: 0,
        })
    }

    /// Page capacity in bytes callers should honor when batching.
    pub fn page_bytes(&self) -> usize {
        self.page_bytes
    }

    /// The modeled per-page write time (the §5.2 10 ms, scaled down for
    /// fast experiments). The caller sleeps for it; the device does not,
    /// so a crash flag can be checked between the sleep and the write.
    pub fn write_latency(&self) -> Duration {
        self.write_latency
    }

    /// The device file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one page frame of records and syncs it to disk. After this
    /// returns, the records are durable — they survive a crash (§5.2).
    pub fn append_page(&mut self, records: &[(Lsn, LogRecord)]) -> Result<()> {
        let mut payload = Vec::with_capacity(self.page_bytes);
        for (lsn, rec) in records {
            payload.extend_from_slice(&lsn.0.to_le_bytes());
            rec.encode(&mut payload);
        }
        // Page frames are a few KiB; u32 header fields never saturate in
        // practice, and the saturating helpers keep the cast checked.
        let count = mmdb_types::cast::u32_from_usize(records.len());
        let bytes = mmdb_types::cast::u32_from_usize(payload.len());
        let mut frame = Vec::with_capacity(HEADER_BYTES + payload.len());
        frame.extend_from_slice(&PAGE_MAGIC.to_le_bytes());
        frame.extend_from_slice(&count.to_le_bytes());
        frame.extend_from_slice(&bytes.to_le_bytes());
        frame.extend_from_slice(&payload);
        self.file
            .write_all(&frame)
            .map_err(|e| Error::Io(format!("write {}: {e}", self.path.display())))?;
        self.file
            .sync_data()
            .map_err(|e| Error::Io(format!("sync {}: {e}", self.path.display())))?;
        self.pages_written += 1;
        self.bytes_written += frame.len() as u64;
        Ok(())
    }

    /// Pages durably written so far.
    pub fn pages_written(&self) -> usize {
        self.pages_written
    }

    /// Bytes durably written so far (frames included).
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }
}

/// Reads every complete page frame from a device file, in append order.
/// A torn final frame — header or payload cut short by a crash — is
/// dropped silently, exactly as a half-written log page is lost in §5.2;
/// corruption *before* the tail is an error.
pub fn read_log_file(path: &Path) -> Result<Vec<(Lsn, LogRecord)>> {
    let mut file =
        File::open(path).map_err(|e| Error::Io(format!("open {}: {e}", path.display())))?;
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)
        .map_err(|e| Error::Io(format!("read {}: {e}", path.display())))?;
    let mut out = Vec::new();
    let mut at = 0usize;
    while at < bytes.len() {
        let Some(header) = bytes.get(at..at + HEADER_BYTES) else {
            break; // torn header: the page never finished writing
        };
        let magic = u32::from_le_bytes(take4(header, 0)?);
        if magic != PAGE_MAGIC {
            return Err(Error::CorruptLog(format!(
                "bad page magic {magic:#x} at byte {at} of {}",
                path.display()
            )));
        }
        let count = u32::from_le_bytes(take4(header, 4)?);
        let len = u32::from_le_bytes(take4(header, 8)?) as usize;
        let Some(mut payload) = bytes.get(at + HEADER_BYTES..at + HEADER_BYTES + len) else {
            break; // torn payload
        };
        for _ in 0..count {
            let Some(lsn_bytes) = payload.get(..8) else {
                return Err(Error::CorruptLog("record LSN cut short".into()));
            };
            let mut lsn8 = [0u8; 8];
            lsn8.copy_from_slice(lsn_bytes);
            payload = payload.get(8..).unwrap_or(&[]);
            let rec = LogRecord::decode(&mut payload)?;
            out.push((Lsn(u64::from_le_bytes(lsn8)), rec));
        }
        at += HEADER_BYTES + len;
    }
    Ok(out)
}

/// Reads and merges every `*.log` device file in `dir` by LSN,
/// deduplicating records that reached more than one device. This is the
/// restart-recovery view of a partitioned log (§5.2): fragments from `k`
/// devices joined back into one sequence.
pub fn read_log_dir(dir: &Path) -> Result<Vec<(Lsn, LogRecord)>> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| Error::Io(format!("read {}: {e}", dir.display())))?;
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "log"))
        .collect();
    paths.sort();
    let mut all = Vec::new();
    for p in &paths {
        all.extend(read_log_file(p)?);
    }
    all.sort_by_key(|(lsn, _)| *lsn);
    all.dedup_by_key(|(lsn, _)| *lsn);
    Ok(all)
}

/// Copies four bytes out of `slice` at `offset` (frame headers are fixed
/// width, so a miss is log corruption, not a torn tail).
fn take4(slice: &[u8], offset: usize) -> Result<[u8; 4]> {
    let mut out = [0u8; 4];
    let src = slice
        .get(offset..offset + 4)
        .ok_or_else(|| Error::CorruptLog("page header cut short".into()))?;
    out.copy_from_slice(src);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmdb_types::TxnId;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mmdb-wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn typical(txn: u64, key: u64) -> Vec<(Lsn, LogRecord)> {
        crate::log::typical_transaction(TxnId(txn), key, 0, 1)
            .into_iter()
            .enumerate()
            .map(|(i, r)| (Lsn(txn * 10 + i as u64), r))
            .collect()
    }

    #[test]
    fn roundtrip_pages() {
        let path = tmp("roundtrip.log");
        let mut dev = WalDevice::create(&path, 4096, Duration::ZERO).unwrap();
        let p1 = typical(1, 7);
        let p2 = typical(2, 8);
        dev.append_page(&p1).unwrap();
        dev.append_page(&p2).unwrap();
        assert_eq!(dev.pages_written(), 2);
        let read = read_log_file(&path).unwrap();
        let want: Vec<_> = p1.into_iter().chain(p2).collect();
        assert_eq!(read, want);
    }

    #[test]
    fn torn_tail_is_dropped_earlier_pages_survive() {
        let path = tmp("torn.log");
        let mut dev = WalDevice::create(&path, 4096, Duration::ZERO).unwrap();
        let p1 = typical(1, 7);
        dev.append_page(&p1).unwrap();
        dev.append_page(&typical(2, 8)).unwrap();
        // Truncate into the middle of the second frame: a crash mid-write.
        let full = std::fs::metadata(&path).unwrap().len();
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(full - 10).unwrap();
        let read = read_log_file(&path).unwrap();
        assert_eq!(read, p1, "only the complete first page survives");
    }

    #[test]
    fn dir_merge_sorts_by_lsn() {
        let dir = std::env::temp_dir().join(format!("mmdb-wal-merge-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut d0 = WalDevice::create(dir.join("wal-dev0.log"), 4096, Duration::ZERO).unwrap();
        let mut d1 = WalDevice::create(dir.join("wal-dev1.log"), 4096, Duration::ZERO).unwrap();
        let p1 = typical(1, 1);
        let p2 = typical(2, 2);
        d1.append_page(&p2).unwrap();
        d0.append_page(&p1).unwrap();
        let merged = read_log_dir(&dir).unwrap();
        let want: Vec<_> = p1.into_iter().chain(p2).collect();
        assert_eq!(merged, want);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_magic_is_an_error() {
        let path = tmp("corrupt.log");
        std::fs::write(&path, [0u8; 64]).unwrap();
        assert!(matches!(read_log_file(&path), Err(Error::CorruptLog(_))));
    }
}
