#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Recovery for memory-resident databases (§5 of the paper).
//!
//! The §5 setting: the whole database fits in volatile main memory, so the
//! recovery subsystem only ever writes *log* pages during normal
//! processing — and the log write becomes the throughput bottleneck. This
//! crate builds the full §5 machinery:
//!
//! * [`log`] — log records and their byte-accounted encoding (a "typical"
//!   transaction writes 400 bytes: 40 of begin/commit, 360 of old/new
//!   values, per Gray's banking example).
//! * [`device`] — simulated log devices: one 4096-byte page write costs
//!   10 ms of virtual time; pages are durable once their write completes.
//! * [`lock`] — a lock manager whose lock table carries the paper's three
//!   sets (holders / waiters / **pre-committed**) and maintains the
//!   transaction dependency lists group commit needs.
//! * [`manager`] — the recovery manager: an in-memory KV database with
//!   write-ahead logging, four commit policies (synchronous, group
//!   commit, partitioned log with commit-group dependency ordering,
//!   stable memory), crash, and restart-recovery.
//! * [`stable`] — battery-backed stable memory: the in-memory log tail,
//!   §5.4 log compression (only new values of committed transactions go
//!   to disk) and the §5.5 dirty-page table bounding recovery.
//! * [`checkpoint`] — the §5.3 background sweeper that trickles dirty
//!   pages to the disk snapshot without quiescing.
//! * [`sim`] — a discrete-event throughput simulator reproducing the §5.2
//!   numbers (100 tps synchronous, ~1000 tps with group commit, ~k× with
//!   k log devices).

/// §5 log storage backends: real files plus deterministic fault
/// injection (torn writes, bit flips, failed syncs) for torture tests.
pub mod backend;
/// §5.3 fuzzy checkpointing against the live database.
pub mod checkpoint;
/// §5.2 simulated log devices (one 4096-byte page per 10 ms).
pub mod device;
/// §5.2 lock manager with pre-commit and commit dependencies.
pub mod lock;
/// §5.1 log records and log sequence numbers.
pub mod log;
/// §5.2 the recovery manager: WAL buffer, commit modes, restart.
pub mod manager;
/// §5.2 discrete-event throughput simulator for the commit policies.
pub mod sim;
/// §5.4 stable memory absorbing commits ahead of the disk log.
pub mod stable;
/// §5.2 wall-clock log devices: page-framed append-only files with
/// per-page fsync, for the real-thread session layer.
pub mod wal;

pub use backend::{Fault, FaultKind, FaultPlan, FaultyBackend, FileBackend, LogBackend};
pub use device::LogDevice;
pub use lock::{detect_deadlocks_in, LockManager, LockMode};
pub use log::{LogRecord, Lsn};
pub use manager::{CommitMode, RecoveryManager, TxnHandle};
pub use sim::{SimConfig, ThroughputSim};
pub use stable::StableMemory;
pub use wal::{LogFileReport, WalDevice};
