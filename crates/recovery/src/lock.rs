//! The lock manager, extended for pre-committed transactions (§5.2).
//!
//! Each lock carries the paper's three sets: transactions **holding** the
//! lock, transactions **waiting** for it, and **pre-committed**
//! transactions that released it but whose commit records are not yet on
//! disk. When a transaction is granted a lock it becomes *dependent* on
//! the pre-committed transactions that formerly held it; the dependency
//! list lives in the transaction's descriptor, and the log manager must
//! not write a dependent's commit record before its dependencies'.

use mmdb_types::{AuditViolation, Auditable, Error, Result, TxnId};
use std::collections::{HashMap, HashSet};

/// A lockable object (a key of the memory-resident database).
pub type LockId = u64;

/// Lock modes: standard two-phase locking compatibility (S–S compatible,
/// anything involving X conflicts).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    /// Shared — readers.
    Shared,
    /// Exclusive — writers.
    Exclusive,
}

#[derive(Debug, Default)]
struct Lock {
    holders: HashMap<TxnId, LockMode>,
    waiters: Vec<TxnId>,
    precommitted: HashSet<TxnId>,
}

/// Descriptor of an active transaction in the lock manager.
#[derive(Debug, Default, Clone)]
pub struct TxnDescriptor {
    /// Locks currently held.
    pub held: HashSet<LockId>,
    /// Pre-committed transactions this one depends on (§5.2: "when a
    /// transaction is granted a lock, it becomes dependent on the
    /// pre-committed transactions that formerly held the lock").
    pub dependencies: HashSet<TxnId>,
}

/// The §5.2 lock manager, with standard shared/exclusive modes. (The §5
/// workload is updates, so `acquire` defaults to exclusive; readers use
/// [`LockManager::acquire_shared`].)
#[derive(Debug, Default)]
pub struct LockManager {
    locks: HashMap<LockId, Lock>,
    txns: HashMap<TxnId, TxnDescriptor>,
}

impl LockManager {
    /// A fresh manager.
    pub fn new() -> Self {
        LockManager::default()
    }

    /// Registers a transaction.
    pub fn begin(&mut self, txn: TxnId) {
        self.txns.entry(txn).or_default();
    }

    /// Whether the transaction is registered.
    pub fn is_active(&self, txn: TxnId) -> bool {
        self.txns.contains_key(&txn)
    }

    /// The transaction's descriptor.
    pub fn descriptor(&self, txn: TxnId) -> Option<&TxnDescriptor> {
        self.txns.get(&txn)
    }

    /// Tries to acquire an **exclusive** lock. On success the transaction
    /// inherits dependencies on every pre-committed former holder. On
    /// conflict the transaction is enqueued as a waiter and
    /// `Err(LockConflict)` is returned (the §5 single-site model has no
    /// blocking threads — callers retry or abort).
    pub fn acquire(&mut self, txn: TxnId, object: LockId) -> Result<()> {
        self.acquire_mode(txn, object, LockMode::Exclusive)
    }

    /// Tries to acquire a **shared** lock: compatible with other shared
    /// holders, conflicts with an exclusive holder. Reading the dirty data
    /// of a pre-committed writer creates the §5.2 dependency.
    pub fn acquire_shared(&mut self, txn: TxnId, object: LockId) -> Result<()> {
        self.acquire_mode(txn, object, LockMode::Shared)
    }

    fn acquire_mode(&mut self, txn: TxnId, object: LockId, mode: LockMode) -> Result<()> {
        if !self.txns.contains_key(&txn) {
            return Err(Error::InvalidTransaction(txn.0));
        }
        let lock = self.locks.entry(object).or_default();
        match lock.holders.get(&txn) {
            Some(LockMode::Exclusive) => return Ok(()), // re-entrant, any mode
            Some(LockMode::Shared) if mode == LockMode::Shared => return Ok(()),
            _ => {}
        }
        let others_conflict = lock
            .holders
            .iter()
            .any(|(h, m)| *h != txn && (mode == LockMode::Exclusive || *m == LockMode::Exclusive));
        if others_conflict {
            if !lock.waiters.contains(&txn) {
                lock.waiters.push(txn);
            }
            return Err(Error::LockConflict {
                txn: txn.0,
                object: format!("key {object}"),
            });
        }
        // Grant (possibly upgrading our own Shared to Exclusive).
        lock.holders.insert(txn, mode);
        lock.waiters.retain(|w| *w != txn);
        // Inherit dependencies on pre-committed former holders.
        let deps: Vec<TxnId> = lock.precommitted.iter().copied().collect();
        let desc = self.txns.get_mut(&txn).expect("registered above");
        desc.held.insert(object);
        for d in deps {
            if d != txn {
                desc.dependencies.insert(d);
            }
        }
        Ok(())
    }

    /// Moves a transaction to the pre-committed state: it leaves every
    /// holder set for the pre-committed set of its locks, so others can
    /// read its dirty data, and its dependency list is returned for the
    /// log manager's commit-group ordering.
    pub fn precommit(&mut self, txn: TxnId) -> Result<HashSet<TxnId>> {
        let desc = self
            .txns
            .get(&txn)
            .ok_or(Error::InvalidTransaction(txn.0))?
            .clone();
        for obj in &desc.held {
            let lock = self.locks.get_mut(obj).expect("held lock exists");
            lock.holders.remove(&txn);
            lock.precommitted.insert(txn);
        }
        // A pre-committed transaction has finished its work and will never
        // retry an acquire: drop any stale waiter entries it left behind
        // (§5.2 — pre-committed transactions hold no locks and never wait).
        for lock in self.locks.values_mut() {
            lock.waiters.retain(|w| *w != txn);
        }
        let deps = desc.dependencies.clone();
        let d = self.txns.get_mut(&txn).expect("exists");
        d.held.clear();
        self.gc();
        Ok(deps)
    }

    /// Finalizes a commit: the transaction's commit record is durable, so
    /// it leaves every pre-committed set and every dependency list
    /// (§5.2: "the committed transactions in its dependency list are
    /// removed").
    pub fn finalize_commit(&mut self, txn: TxnId) {
        for lock in self.locks.values_mut() {
            lock.precommitted.remove(&txn);
        }
        for desc in self.txns.values_mut() {
            desc.dependencies.remove(&txn);
        }
        self.txns.remove(&txn);
        self.gc();
    }

    /// Releases everything on abort (a pre-committed transaction never
    /// aborts — §5.2 — so this only sees plain active transactions).
    pub fn abort(&mut self, txn: TxnId) {
        if let Some(desc) = self.txns.remove(&txn) {
            for obj in desc.held {
                if let Some(lock) = self.locks.get_mut(&obj) {
                    lock.holders.remove(&txn);
                }
            }
        }
        for lock in self.locks.values_mut() {
            lock.waiters.retain(|w| *w != txn);
            lock.precommitted.remove(&txn);
        }
        for desc in self.txns.values_mut() {
            desc.dependencies.remove(&txn);
        }
        self.gc();
    }

    fn gc(&mut self) {
        self.locks.retain(|_, l| {
            !(l.holders.is_empty() && l.waiters.is_empty() && l.precommitted.is_empty())
        });
    }

    /// Current waiters on an object, in arrival order (test/diagnostic).
    pub fn waiters(&self, object: LockId) -> Vec<TxnId> {
        self.locks
            .get(&object)
            .map(|l| l.waiters.clone())
            .unwrap_or_default()
    }

    /// The current waits-for edges (waiter → every holder of the lock it
    /// waits on). A sharded lock table (§5.2 scaled out) runs deadlock
    /// detection globally: each partition contributes its edges and the
    /// union goes through [`detect_deadlocks_in`] — a cycle spanning
    /// partitions is invisible to any single one of them.
    pub fn waits_for_edges(&self) -> Vec<(TxnId, TxnId)> {
        let mut edges = Vec::new();
        for lock in self.locks.values() {
            for w in &lock.waiters {
                for h in lock.holders.keys() {
                    if w != h {
                        edges.push((*w, *h));
                    }
                }
            }
        }
        edges
    }

    /// Detects a deadlock in the waits-for graph (waiter → every holder of
    /// the lock it waits on). Returns one transaction per cycle found —
    /// the victim a §5-style system would abort. Pre-committed
    /// transactions never appear: they hold no locks and never wait.
    pub fn detect_deadlocks(&self) -> Vec<TxnId> {
        detect_deadlocks_in(&self.waits_for_edges())
    }

    /// Live locks (test/diagnostic).
    pub fn lock_count(&self) -> usize {
        self.locks.len()
    }
}

/// Cycle detection over an explicit waits-for edge list — the §5-style
/// deadlock detector, factored out so a sharded lock table can merge the
/// edges of every partition ([`LockManager::waits_for_edges`]) and find
/// cross-partition cycles. Returns one victim per cycle (the youngest
/// participant). Edges may be a point-in-time merge of independently
/// snapshotted partitions, so a reported cycle can be *phantom* (already
/// broken by the time the caller acts); aborting a phantom victim costs
/// a retry, never correctness.
pub fn detect_deadlocks_in(edge_list: &[(TxnId, TxnId)]) -> Vec<TxnId> {
    let mut edges: HashMap<TxnId, Vec<TxnId>> = HashMap::new();
    for (w, h) in edge_list {
        if w != h {
            edges.entry(*w).or_default().push(*h);
        }
    }
    // Iterative DFS cycle detection with three-color marking.
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Grey,
        Black,
    }
    let mut color: HashMap<TxnId, Color> = HashMap::new();
    let mut victims = Vec::new();
    let mut nodes: Vec<TxnId> = edges.keys().copied().collect();
    nodes.sort();
    for start in nodes {
        if *color.get(&start).unwrap_or(&Color::White) != Color::White {
            continue;
        }
        // Stack of (node, next child index).
        let mut stack: Vec<(TxnId, usize)> = vec![(start, 0)];
        color.insert(start, Color::Grey);
        while let Some(&mut (node, ref mut idx)) = stack.last_mut() {
            let children = edges.get(&node).map(|v| v.as_slice()).unwrap_or(&[]);
            if *idx < children.len() {
                let child = children[*idx];
                *idx += 1;
                match color.get(&child).copied().unwrap_or(Color::White) {
                    Color::White => {
                        color.insert(child, Color::Grey);
                        stack.push((child, 0));
                    }
                    Color::Grey => {
                        // Cycle: the youngest participant is the victim.
                        let cycle_start = stack.iter().position(|(n, _)| *n == child).unwrap_or(0);
                        let victim = stack[cycle_start..]
                            .iter()
                            .map(|(n, _)| *n)
                            .max()
                            .expect("cycle non-empty");
                        if !victims.contains(&victim) {
                            victims.push(victim);
                        }
                    }
                    Color::Black => {}
                }
            } else {
                color.insert(node, Color::Black);
                stack.pop();
            }
        }
    }
    victims
}

impl Auditable for LockManager {
    /// Verifies the §5.2 lock-table invariants: every holder, waiter, and
    /// pre-committed transaction is registered; no transaction both holds
    /// and waits on the same lock; exclusive holders are sole holders;
    /// descriptor `held` sets mirror the per-lock holder sets exactly;
    /// pre-committed transactions hold nothing; and the dependency graph
    /// over pre-committed transactions is acyclic — the property that
    /// makes the commit-ordering lattice well-founded, so a dependent's
    /// commit record can always be ordered after its dependencies'.
    fn audit(&self) -> std::result::Result<(), AuditViolation> {
        const C: &str = "LockManager";
        let mut precommitted_anywhere: HashSet<TxnId> = HashSet::new();
        for (obj, lock) in &self.locks {
            AuditViolation::ensure(
                !(lock.holders.is_empty()
                    && lock.waiters.is_empty()
                    && lock.precommitted.is_empty()),
                C,
                "lock-gc",
                || format!("lock {obj} survived gc with no holders, waiters or pre-commits"),
            )?;
            for txn in lock
                .holders
                .keys()
                .chain(lock.waiters.iter())
                .chain(lock.precommitted.iter())
            {
                AuditViolation::ensure(self.txns.contains_key(txn), C, "registered", || {
                    format!("lock {obj} references unregistered txn {}", txn.0)
                })?;
            }
            for txn in &lock.waiters {
                // A shared holder may wait on its own lock (a blocked
                // shared-to-exclusive upgrade); an exclusive holder has
                // nothing left to wait for.
                AuditViolation::ensure(
                    lock.holders.get(txn) != Some(&LockMode::Exclusive),
                    C,
                    "holder-not-waiter",
                    || {
                        format!(
                            "txn {} holds lock {obj} exclusively yet still waits on it",
                            txn.0
                        )
                    },
                )?;
            }
            let exclusive = lock
                .holders
                .iter()
                .filter(|(_, m)| **m == LockMode::Exclusive)
                .count();
            AuditViolation::ensure(
                exclusive == 0 || lock.holders.len() == 1,
                C,
                "mode-compatibility",
                || {
                    format!(
                        "lock {obj} has an exclusive holder among {} holders",
                        lock.holders.len()
                    )
                },
            )?;
            for txn in lock.holders.keys() {
                let recorded = self
                    .txns
                    .get(txn)
                    .map(|d| d.held.contains(obj))
                    .unwrap_or(false);
                AuditViolation::ensure(recorded, C, "held-bookkeeping", || {
                    format!("txn {} holds lock {obj} but its descriptor omits it", txn.0)
                })?;
            }
            for txn in &lock.precommitted {
                let empty_held = self
                    .txns
                    .get(txn)
                    .map(|d| d.held.is_empty())
                    .unwrap_or(true);
                AuditViolation::ensure(empty_held, C, "precommit-released", || {
                    format!("pre-committed txn {} still records held locks", txn.0)
                })?;
            }
            precommitted_anywhere.extend(lock.precommitted.iter().copied());
        }
        for (obj, lock) in &self.locks {
            for w in &lock.waiters {
                AuditViolation::ensure(
                    !precommitted_anywhere.contains(w),
                    C,
                    "precommitted-never-waits",
                    || format!("pre-committed txn {} still waits on lock {obj}", w.0),
                )?;
            }
        }
        for (txn, desc) in &self.txns {
            for obj in &desc.held {
                let holds = self
                    .locks
                    .get(obj)
                    .map(|l| l.holders.contains_key(txn))
                    .unwrap_or(false);
                AuditViolation::ensure(holds, C, "held-bookkeeping", || {
                    format!(
                        "txn {} descriptor claims lock {obj} it does not hold",
                        txn.0
                    )
                })?;
            }
            for dep in &desc.dependencies {
                AuditViolation::ensure(dep != txn, C, "no-self-dependency", || {
                    format!("txn {} depends on itself", txn.0)
                })?;
                AuditViolation::ensure(
                    precommitted_anywhere.contains(dep),
                    C,
                    "dependency-target",
                    || {
                        format!(
                            "txn {} depends on txn {}, which is not pre-committed anywhere",
                            txn.0, dep.0
                        )
                    },
                )?;
            }
        }
        // Dependency-graph acyclicity via iterative three-color DFS.
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Grey,
            Black,
        }
        let mut color: HashMap<TxnId, Color> = HashMap::new();
        let mut starts: Vec<TxnId> = self.txns.keys().copied().collect();
        starts.sort();
        for start in starts {
            if color.get(&start).copied().unwrap_or(Color::White) != Color::White {
                continue;
            }
            let mut stack: Vec<(TxnId, Vec<TxnId>, usize)> = Vec::new();
            let children = |t: TxnId| -> Vec<TxnId> {
                self.txns
                    .get(&t)
                    .map(|d| {
                        let mut v: Vec<TxnId> = d.dependencies.iter().copied().collect();
                        v.sort();
                        v
                    })
                    .unwrap_or_default()
            };
            color.insert(start, Color::Grey);
            stack.push((start, children(start), 0));
            while let Some((node, kids, idx)) = stack.last_mut() {
                if *idx < kids.len() {
                    let child = kids[*idx];
                    *idx += 1;
                    match color.get(&child).copied().unwrap_or(Color::White) {
                        Color::White => {
                            color.insert(child, Color::Grey);
                            let kids = children(child);
                            stack.push((child, kids, 0));
                        }
                        Color::Grey => {
                            return Err(AuditViolation::new(
                                C,
                                "dependency-acyclic",
                                format!("dependency cycle through txns {} and {}", node.0, child.0),
                            ));
                        }
                        Color::Black => {}
                    }
                } else {
                    color.insert(*node, Color::Black);
                    stack.pop();
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exclusive_conflict_and_waiting() {
        let mut lm = LockManager::new();
        lm.begin(TxnId(1));
        lm.begin(TxnId(2));
        lm.acquire(TxnId(1), 10).unwrap();
        // Re-entrant acquire is fine.
        lm.acquire(TxnId(1), 10).unwrap();
        let err = lm.acquire(TxnId(2), 10).unwrap_err();
        assert!(matches!(err, Error::LockConflict { .. }));
        assert_eq!(lm.waiters(10), vec![TxnId(2)]);
    }

    #[test]
    fn precommit_releases_and_creates_dependency() {
        let mut lm = LockManager::new();
        lm.begin(TxnId(1));
        lm.begin(TxnId(2));
        lm.acquire(TxnId(1), 10).unwrap();
        let deps1 = lm.precommit(TxnId(1)).unwrap();
        assert!(deps1.is_empty());
        // T2 can now take the lock — reading uncommitted data — but
        // becomes dependent on T1.
        lm.acquire(TxnId(2), 10).unwrap();
        let deps2 = lm.precommit(TxnId(2)).unwrap();
        assert_eq!(deps2, HashSet::from([TxnId(1)]));
    }

    #[test]
    fn finalize_clears_dependencies() {
        let mut lm = LockManager::new();
        lm.begin(TxnId(1));
        lm.begin(TxnId(2));
        lm.acquire(TxnId(1), 5).unwrap();
        lm.precommit(TxnId(1)).unwrap();
        lm.acquire(TxnId(2), 5).unwrap();
        // T1's commit record reaches disk.
        lm.finalize_commit(TxnId(1));
        let deps2 = lm.precommit(TxnId(2)).unwrap();
        assert!(
            deps2.is_empty(),
            "committed transactions leave dependency lists"
        );
    }

    #[test]
    fn dependency_chain_through_several_holders() {
        let mut lm = LockManager::new();
        for i in 1..=3 {
            lm.begin(TxnId(i));
        }
        lm.acquire(TxnId(1), 7).unwrap();
        lm.precommit(TxnId(1)).unwrap();
        lm.acquire(TxnId(2), 7).unwrap();
        lm.precommit(TxnId(2)).unwrap();
        lm.acquire(TxnId(3), 7).unwrap();
        let deps = lm.precommit(TxnId(3)).unwrap();
        assert_eq!(deps, HashSet::from([TxnId(1), TxnId(2)]));
    }

    #[test]
    fn abort_releases_everything() {
        let mut lm = LockManager::new();
        lm.begin(TxnId(1));
        lm.begin(TxnId(2));
        lm.acquire(TxnId(1), 9).unwrap();
        assert!(lm.acquire(TxnId(2), 9).is_err());
        lm.abort(TxnId(1));
        assert!(!lm.is_active(TxnId(1)));
        // The lock is free now.
        lm.acquire(TxnId(2), 9).unwrap();
        assert_eq!(lm.descriptor(TxnId(2)).unwrap().dependencies.len(), 0);
    }

    #[test]
    fn unknown_transaction_rejected() {
        let mut lm = LockManager::new();
        assert!(matches!(
            lm.acquire(TxnId(99), 1),
            Err(Error::InvalidTransaction(99))
        ));
        assert!(lm.precommit(TxnId(99)).is_err());
    }

    #[test]
    fn shared_locks_are_compatible_with_each_other() {
        let mut lm = LockManager::new();
        for i in 1..=3 {
            lm.begin(TxnId(i));
        }
        lm.acquire_shared(TxnId(1), 5).unwrap();
        lm.acquire_shared(TxnId(2), 5).unwrap();
        // A writer conflicts with the readers...
        assert!(lm.acquire(TxnId(3), 5).is_err());
        // ...and a reader conflicts with a writer elsewhere.
        lm.acquire(TxnId(3), 6).unwrap();
        assert!(lm.acquire_shared(TxnId(1), 6).is_err());
        // Re-entrant shared acquisition is a no-op.
        lm.acquire_shared(TxnId(1), 5).unwrap();
    }

    #[test]
    fn shared_to_exclusive_upgrade() {
        let mut lm = LockManager::new();
        lm.begin(TxnId(1));
        lm.begin(TxnId(2));
        lm.acquire_shared(TxnId(1), 9).unwrap();
        // Sole shared holder may upgrade.
        lm.acquire(TxnId(1), 9).unwrap();
        assert!(lm.acquire_shared(TxnId(2), 9).is_err(), "now exclusive");
        // With two shared holders, neither may upgrade.
        let mut lm2 = LockManager::new();
        lm2.begin(TxnId(1));
        lm2.begin(TxnId(2));
        lm2.acquire_shared(TxnId(1), 9).unwrap();
        lm2.acquire_shared(TxnId(2), 9).unwrap();
        assert!(lm2.acquire(TxnId(1), 9).is_err());
    }

    #[test]
    fn shared_readers_of_precommitted_data_become_dependent() {
        // §5.2's very scenario: a reader of a pre-committed writer's dirty
        // data must not commit before the writer does.
        let mut lm = LockManager::new();
        lm.begin(TxnId(1));
        lm.begin(TxnId(2));
        lm.acquire(TxnId(1), 7).unwrap();
        lm.precommit(TxnId(1)).unwrap();
        lm.acquire_shared(TxnId(2), 7).unwrap();
        let deps = lm.precommit(TxnId(2)).unwrap();
        assert_eq!(deps, HashSet::from([TxnId(1)]));
    }

    #[test]
    fn detects_two_party_deadlock() {
        let mut lm = LockManager::new();
        lm.begin(TxnId(1));
        lm.begin(TxnId(2));
        lm.acquire(TxnId(1), 10).unwrap();
        lm.acquire(TxnId(2), 20).unwrap();
        // Cross-wait.
        assert!(lm.acquire(TxnId(1), 20).is_err());
        assert!(lm.acquire(TxnId(2), 10).is_err());
        let victims = lm.detect_deadlocks();
        assert_eq!(victims, vec![TxnId(2)], "youngest participant dies");
        // Aborting the victim clears the cycle.
        lm.abort(TxnId(2));
        assert!(lm.detect_deadlocks().is_empty());
        lm.acquire(TxnId(1), 20).unwrap();
    }

    #[test]
    fn detects_three_party_cycle_but_not_chains() {
        let mut lm = LockManager::new();
        for i in 1..=4 {
            lm.begin(TxnId(i));
        }
        lm.acquire(TxnId(1), 1).unwrap();
        lm.acquire(TxnId(2), 2).unwrap();
        lm.acquire(TxnId(3), 3).unwrap();
        // A plain waiting chain 4→1, 1→2, 2→3 is no deadlock.
        assert!(lm.acquire(TxnId(4), 1).is_err());
        assert!(lm.acquire(TxnId(1), 2).is_err());
        assert!(lm.acquire(TxnId(2), 3).is_err());
        assert!(lm.detect_deadlocks().is_empty(), "chains are fine");
        // Closing the loop (3 → 1's lock) creates a 3-cycle.
        assert!(lm.acquire(TxnId(3), 1).is_err());
        let victims = lm.detect_deadlocks();
        assert_eq!(victims.len(), 1);
        assert!(victims[0].0 >= 1 && victims[0].0 <= 3);
    }

    #[test]
    fn no_deadlock_with_precommitted_holders() {
        let mut lm = LockManager::new();
        lm.begin(TxnId(1));
        lm.begin(TxnId(2));
        lm.acquire(TxnId(1), 5).unwrap();
        lm.precommit(TxnId(1)).unwrap();
        lm.acquire(TxnId(2), 5).unwrap(); // granted, with dependency
        assert!(lm.detect_deadlocks().is_empty());
    }

    #[test]
    fn gc_removes_dead_locks() {
        let mut lm = LockManager::new();
        lm.begin(TxnId(1));
        lm.acquire(TxnId(1), 1).unwrap();
        lm.acquire(TxnId(1), 2).unwrap();
        assert_eq!(lm.lock_count(), 2);
        lm.precommit(TxnId(1)).unwrap();
        lm.finalize_commit(TxnId(1));
        assert_eq!(lm.lock_count(), 0);
    }
}
