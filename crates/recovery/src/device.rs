//! Simulated log devices (§5.2).
//!
//! A device writes one 4096-byte log page in 10 ms of *virtual* time (the
//! paper's figure for a seek-free page write) and is busy until the write
//! completes. Pages are durable — they survive a crash — once their
//! completion time has passed.

use crate::log::{LogRecord, Lsn};

/// Virtual time in microseconds.
pub type Micros = u64;

/// One page worth of log records queued or written on a device.
#[derive(Debug, Clone)]
pub struct LogPage {
    /// LSN-tagged records in the page, in append order.
    pub records: Vec<(Lsn, LogRecord)>,
    /// Monotone page sequence number on its device.
    pub seqno: u64,
    /// Virtual time the write completes (durability point).
    pub durable_at: Micros,
}

/// A simulated sequential log device.
#[derive(Debug)]
pub struct LogDevice {
    pages: Vec<LogPage>,
    busy_until: Micros,
    write_time: Micros,
    page_bytes: usize,
    next_seqno: u64,
}

impl LogDevice {
    /// A device with the paper's parameters: 4096-byte pages, 10 ms per
    /// page write.
    pub fn paper() -> Self {
        LogDevice::new(4096, 10_000)
    }

    /// A device with explicit page size (bytes) and write time (µs).
    pub fn new(page_bytes: usize, write_time_us: Micros) -> Self {
        LogDevice {
            pages: Vec::new(),
            busy_until: 0,
            write_time: write_time_us,
            page_bytes,
            next_seqno: 0,
        }
    }

    /// Page capacity in bytes.
    pub fn page_bytes(&self) -> usize {
        self.page_bytes
    }

    /// Time one page write takes.
    pub fn write_time(&self) -> Micros {
        self.write_time
    }

    /// When the device next becomes idle.
    pub fn busy_until(&self) -> Micros {
        self.busy_until
    }

    /// Submits a page of records at virtual time `now`; returns the time
    /// the page becomes durable. Writes queue behind the device's current
    /// work (a single arm writes one page at a time).
    pub fn write_page(&mut self, records: Vec<(Lsn, LogRecord)>, now: Micros) -> Micros {
        let start = now.max(self.busy_until);
        let done = start + self.write_time;
        self.busy_until = done;
        self.pages.push(LogPage {
            records,
            seqno: self.next_seqno,
            durable_at: done,
        });
        self.next_seqno += 1;
        done
    }

    /// Pages durable at time `now` (what a crash at `now` preserves), in
    /// sequence order.
    pub fn durable_pages(&self, now: Micros) -> impl Iterator<Item = &LogPage> {
        self.pages.iter().filter(move |p| p.durable_at <= now)
    }

    /// All durable records at `now`, flattened in order.
    pub fn durable_records(&self, now: Micros) -> Vec<(Lsn, LogRecord)> {
        self.durable_pages(now)
            .flat_map(|p| p.records.iter().cloned())
            .collect()
    }

    /// Total pages ever submitted.
    pub fn pages_written(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmdb_types::TxnId;

    fn rec(i: u64) -> (Lsn, LogRecord) {
        (Lsn(i), LogRecord::Commit { txn: TxnId(i) })
    }

    #[test]
    fn writes_serialize_on_the_device() {
        let mut d = LogDevice::paper();
        let t1 = d.write_page(vec![rec(1)], 0);
        assert_eq!(t1, 10_000);
        // Submitted while busy: queues behind the first write.
        let t2 = d.write_page(vec![rec(2)], 1_000);
        assert_eq!(t2, 20_000);
        // Submitted after idle: starts immediately.
        let t3 = d.write_page(vec![rec(3)], 50_000);
        assert_eq!(t3, 60_000);
    }

    #[test]
    fn durability_follows_completion_time() {
        let mut d = LogDevice::paper();
        d.write_page(vec![rec(1)], 0); // durable at 10 000
        d.write_page(vec![rec(2)], 0); // durable at 20 000
        assert_eq!(d.durable_records(9_999).len(), 0);
        assert_eq!(d.durable_records(10_000).len(), 1);
        assert_eq!(d.durable_records(20_000).len(), 2);
        // A crash between the two writes loses exactly the second page.
        let survived = d.durable_records(15_000);
        assert_eq!(survived, vec![rec(1)]);
    }

    #[test]
    fn sequence_numbers_are_monotone() {
        let mut d = LogDevice::paper();
        for i in 0..5 {
            d.write_page(vec![rec(i)], 0);
        }
        let seqnos: Vec<u64> = d.durable_pages(u64::MAX).map(|p| p.seqno).collect();
        assert_eq!(seqnos, vec![0, 1, 2, 3, 4]);
        assert_eq!(d.pages_written(), 5);
    }

    #[test]
    fn paper_rate_is_100_pages_per_second() {
        let mut d = LogDevice::paper();
        let mut now = 0;
        for i in 0..100 {
            now = d.write_page(vec![rec(i)], now);
        }
        assert_eq!(now, 1_000_000, "100 page writes take one virtual second");
    }
}
