//! The disk snapshot and the §5.3 fuzzy checkpointer.
//!
//! "Data pages are periodically written to disk by a background process
//! that sweeps through data buffers to find dirty pages." The snapshot is
//! *fuzzy*: a checkpointed page may contain uncommitted data, which
//! recovery undoes using the old values in the log.

use crate::log::Lsn;
use std::collections::HashMap;

/// Number of keys per logical data page of the memory-resident database.
pub const KEYS_PER_PAGE: u64 = 64;

/// Logical data page of a key.
pub fn page_of(key: u64) -> u64 {
    key / KEYS_PER_PAGE
}

/// The on-disk database image. Survives crashes.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Per-page contents, with the LSN up to which the page reflects the
    /// in-memory state when it was swept.
    pages: HashMap<u64, (HashMap<u64, i64>, Lsn)>,
}

impl Snapshot {
    /// An empty image.
    pub fn new() -> Self {
        Snapshot::default()
    }

    /// Installs the current contents of a data page (the sweep's write).
    pub fn write_page(&mut self, page: u64, contents: HashMap<u64, i64>, as_of: Lsn) {
        self.pages.insert(page, (contents, as_of));
    }

    /// The LSN a page's snapshot reflects (`Lsn(0)` if never swept).
    pub fn page_lsn(&self, page: u64) -> Lsn {
        self.pages.get(&page).map(|(_, l)| *l).unwrap_or(Lsn(0))
    }

    /// Reconstructs a full key-value image from the snapshot pages.
    pub fn materialize(&self) -> HashMap<u64, i64> {
        let mut db = HashMap::new();
        for (contents, _) in self.pages.values() {
            for (k, v) in contents {
                db.insert(*k, *v);
            }
        }
        db
    }

    /// Pages stored.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_mapping() {
        assert_eq!(page_of(0), 0);
        assert_eq!(page_of(63), 0);
        assert_eq!(page_of(64), 1);
    }

    #[test]
    fn write_and_materialize() {
        let mut s = Snapshot::new();
        s.write_page(0, HashMap::from([(1, 10), (2, 20)]), Lsn(5));
        s.write_page(1, HashMap::from([(70, 700)]), Lsn(9));
        let db = s.materialize();
        assert_eq!(db[&1], 10);
        assert_eq!(db[&70], 700);
        assert_eq!(s.page_lsn(0), Lsn(5));
        assert_eq!(s.page_lsn(99), Lsn(0));
        assert_eq!(s.page_count(), 2);
    }

    #[test]
    fn rewriting_a_page_replaces_it() {
        let mut s = Snapshot::new();
        s.write_page(0, HashMap::from([(1, 10)]), Lsn(5));
        s.write_page(0, HashMap::from([(1, 11)]), Lsn(8));
        assert_eq!(s.materialize()[&1], 11);
        assert_eq!(s.page_lsn(0), Lsn(8));
    }
}
