//! Property-based testing of the §5 log layer: codec round-trips, byte
//! accounting, device durability prefixes, and lock-manager dependency
//! bookkeeping.

use mmdb_recovery::device::LogDevice;
use mmdb_recovery::lock::LockManager;
use mmdb_recovery::log::{LogRecord, Lsn};
use mmdb_types::TxnId;
use proptest::prelude::*;

fn record_strategy() -> impl Strategy<Value = LogRecord> {
    prop_oneof![
        any::<u64>().prop_map(|t| LogRecord::Begin { txn: TxnId(t) }),
        any::<u64>().prop_map(|t| LogRecord::Commit { txn: TxnId(t) }),
        any::<u64>().prop_map(|t| LogRecord::Abort { txn: TxnId(t) }),
        (
            any::<u64>(),
            any::<u64>(),
            any::<Option<i64>>(),
            any::<i64>(),
            0u32..10_000
        )
            .prop_map(|(t, key, old, new, padding)| LogRecord::Update {
                txn: TxnId(t),
                key,
                old,
                new,
                padding,
            }),
    ]
}

proptest! {
    #[test]
    fn log_records_roundtrip(records in prop::collection::vec(record_strategy(), 0..50)) {
        let mut buf = Vec::new();
        for r in &records {
            r.encode(&mut buf);
        }
        let mut view = buf.as_slice();
        let mut decoded = Vec::new();
        while !view.is_empty() {
            decoded.push(LogRecord::decode(&mut view).unwrap());
        }
        prop_assert_eq!(decoded, records);
    }

    #[test]
    fn compressed_size_never_exceeds_full_size(r in record_strategy()) {
        prop_assert!(r.compressed_size() <= r.byte_size());
    }

    #[test]
    fn device_durability_is_a_prefix(
        submit_gaps in prop::collection::vec(0u64..30_000, 1..40),
        crash_at in 0u64..1_000_000,
    ) {
        // Pages submitted in order to one device complete in order, so the
        // durable set at any crash time is a prefix of submissions.
        let mut d = LogDevice::paper();
        let mut now = 0u64;
        for (i, gap) in submit_gaps.iter().enumerate() {
            now += gap;
            d.write_page(vec![(Lsn(i as u64), LogRecord::Commit { txn: TxnId(i as u64) })], now);
        }
        let durable: Vec<u64> = d
            .durable_pages(crash_at)
            .map(|p| p.seqno)
            .collect();
        let expected: Vec<u64> = (0..durable.len() as u64).collect();
        prop_assert_eq!(durable, expected, "durable pages must form a prefix");
    }

    #[test]
    fn lock_dependencies_only_on_precommitted_holders(
        object_picks in prop::collection::vec(0u64..6, 1..30),
    ) {
        // A chain of transactions each taking one lock after the previous
        // holder pre-commits: the dependency list of each equals the set
        // of pre-committed (not yet finalized) prior holders of its locks.
        let mut lm = LockManager::new();
        let mut precommitted_holders: std::collections::HashMap<u64, Vec<TxnId>> =
            Default::default();
        for (i, obj) in object_picks.iter().enumerate() {
            let txn = TxnId(i as u64 + 1);
            lm.begin(txn);
            lm.acquire(txn, *obj).unwrap();
            let deps = lm.precommit(txn).unwrap();
            let expected: std::collections::HashSet<TxnId> = precommitted_holders
                .get(obj)
                .map(|v| v.iter().copied().collect())
                .unwrap_or_default();
            prop_assert_eq!(deps, expected, "txn {} on object {}", i + 1, obj);
            precommitted_holders.entry(*obj).or_default().push(txn);
        }
    }
}
