//! Property-based testing of the access methods against a `BTreeMap`
//! oracle: arbitrary interleavings of inserts, deletes and lookups must
//! preserve contents, ordering, and structural invariants.

use mmdb_index::{AvlTree, BPlusTree, HashIndex};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Insert(i16, i32),
    Remove(i16),
    Lookup(i16),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (any::<i16>(), any::<i32>()).prop_map(|(k, v)| Op::Insert(k, v)),
            any::<i16>().prop_map(Op::Remove),
            any::<i16>().prop_map(Op::Lookup),
        ],
        1..400,
    )
}

proptest! {
    #[test]
    fn avl_matches_btreemap(ops in ops()) {
        let mut tree = AvlTree::new();
        let mut oracle = std::collections::BTreeMap::new();
        for op in ops {
            match op {
                Op::Insert(k, v) => prop_assert_eq!(tree.insert(k, v), oracle.insert(k, v)),
                Op::Remove(k) => prop_assert_eq!(tree.remove(&k), oracle.remove(&k)),
                Op::Lookup(k) => prop_assert_eq!(tree.get(&k), oracle.get(&k)),
            }
        }
        tree.check_invariants().map_err(TestCaseError::fail)?;
        prop_assert_eq!(tree.len(), oracle.len());
        let got: Vec<(i16, i32)> = tree.iter().map(|(k, v)| (*k, *v)).collect();
        let want: Vec<(i16, i32)> = oracle.iter().map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn bptree_matches_btreemap(ops in ops()) {
        let mut tree = BPlusTree::new(5, 4); // small nodes stress splits/merges
        let mut oracle = std::collections::BTreeMap::new();
        for op in ops {
            match op {
                Op::Insert(k, v) => prop_assert_eq!(tree.insert(k, v), oracle.insert(k, v)),
                Op::Remove(k) => prop_assert_eq!(tree.remove(&k), oracle.remove(&k)),
                Op::Lookup(k) => prop_assert_eq!(tree.get(&k), oracle.get(&k)),
            }
        }
        tree.check_invariants().map_err(TestCaseError::fail)?;
        let got: Vec<(i16, i32)> = tree.iter().map(|(k, v)| (*k, *v)).collect();
        let want: Vec<(i16, i32)> = oracle.iter().map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn hash_index_matches_multimap(
        entries in prop::collection::vec((0u8..32, any::<i32>()), 0..200),
        probes in prop::collection::vec(0u8..40, 0..40),
    ) {
        let mut idx = HashIndex::new();
        let mut oracle: std::collections::HashMap<u8, Vec<i32>> = Default::default();
        for (k, v) in entries {
            idx.insert(k, v);
            oracle.entry(k).or_default().push(v);
        }
        for k in probes {
            let mut got: Vec<i32> = idx.get_all(&k).copied().collect();
            let mut want = oracle.get(&k).cloned().unwrap_or_default();
            got.sort_unstable();
            want.sort_unstable();
            prop_assert_eq!(got, want);
        }
        prop_assert_eq!(idx.len(), oracle.values().map(Vec::len).sum::<usize>());
    }

    #[test]
    fn bulk_load_equals_incremental_build(
        mut keys in prop::collection::btree_set(any::<i32>(), 1..500),
        fill in 0.3f64..1.0,
    ) {
        let pairs: Vec<(i32, i32)> = keys.iter().map(|&k| (k, k.wrapping_mul(3))).collect();
        let bulk = BPlusTree::bulk_load(8, 8, fill, pairs.clone());
        bulk.check_invariants().map_err(TestCaseError::fail)?;
        let mut incr = BPlusTree::new(8, 8);
        for (k, v) in &pairs {
            incr.insert(*k, *v);
        }
        let a: Vec<_> = bulk.iter().map(|(k, v)| (*k, *v)).collect();
        let b: Vec<_> = incr.iter().map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(a, b);
        // Scan-from agrees with the oracle's range.
        let probe = *keys.iter().next().unwrap();
        keys.retain(|k| *k >= probe);
        let mut trace = mmdb_index::AccessTrace::default();
        let run: Vec<i32> = bulk
            .scan_from_traced(&probe, 10, &mut trace)
            .into_iter()
            .map(|(k, _)| *k)
            .collect();
        let want: Vec<i32> = keys.into_iter().take(10).collect();
        prop_assert_eq!(run, want);
    }

    #[test]
    fn scan_from_traced_equals_iter_suffix(
        keys in prop::collection::btree_set(any::<i16>(), 1..300),
        from in any::<i16>(),
        limit in 0usize..50,
    ) {
        let mut avl = AvlTree::new();
        let mut bp = BPlusTree::new(6, 6);
        for &k in &keys {
            avl.insert(k, ());
            bp.insert(k, ());
        }
        let want: Vec<i16> = keys.range(from..).take(limit).copied().collect();
        let mut t1 = mmdb_index::AccessTrace::default();
        let got_avl: Vec<i16> = avl
            .scan_from_traced(&from, limit, &mut t1)
            .into_iter()
            .map(|(k, _)| *k)
            .collect();
        let mut t2 = mmdb_index::AccessTrace::default();
        let got_bp: Vec<i16> = bp
            .scan_from_traced(&from, limit, &mut t2)
            .into_iter()
            .map(|(k, _)| *k)
            .collect();
        prop_assert_eq!(&got_avl, &want);
        prop_assert_eq!(&got_bp, &want);
    }
}
