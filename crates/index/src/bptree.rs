//! A page-based B+-tree.
//!
//! The incumbent §2 access method: every node is one logical page, interior
//! nodes hold only keys and child pointers (fanout `≈ 0.69·Pg/(K+P)` at
//! Yao's steady-state occupancy), and leaves hold the tuples, chained for
//! sequential access. Under random insertion the occupancy converges to
//! ~69 % full — Yao's classic result, which the paper cites; the
//! [`BPlusTree::occupancy`] accessor lets experiments verify it.

use crate::AccessTrace;

#[derive(Debug, Clone)]
enum Node<K, V> {
    Internal {
        keys: Vec<K>,
        children: Vec<u32>,
    },
    Leaf {
        keys: Vec<K>,
        values: Vec<V>,
        next: Option<u32>,
    },
}

/// A B+-tree with configurable branching factor and leaf capacity, one
/// logical page per node.
#[derive(Debug, Clone)]
pub struct BPlusTree<K, V> {
    nodes: Vec<Option<Node<K, V>>>,
    free: Vec<u32>,
    root: u32,
    branching: usize,
    leaf_capacity: usize,
    len: usize,
}

/// What `insert_at` tells its parent.
enum InsertResult<K, V> {
    /// No structural change; optional displaced value.
    Done(Option<V>),
    /// The child split: route keys ≥ `sep` to `right`.
    Split { sep: K, right: u32, old: Option<V> },
}

impl<K: Ord + Clone, V> BPlusTree<K, V> {
    /// An empty tree. `branching` is the maximum number of children of an
    /// interior node (≥ 3); `leaf_capacity` the maximum entries per leaf
    /// (≥ 2).
    pub fn new(branching: usize, leaf_capacity: usize) -> Self {
        assert!(branching >= 3, "branching factor must be at least 3");
        assert!(leaf_capacity >= 2, "leaves must hold at least 2 entries");
        let root_node = Node::Leaf {
            keys: Vec::new(),
            values: Vec::new(),
            next: None,
        };
        BPlusTree {
            nodes: vec![Some(root_node)],
            free: Vec::new(),
            root: 0,
            branching,
            leaf_capacity,
            len: 0,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of live nodes — i.e. logical pages (`S'` in §2).
    pub fn pages(&self) -> u64 {
        (self.nodes.len() - self.free.len()) as u64
    }

    /// Height of the *index*: edges from root to leaf (0 when the root is
    /// itself a leaf) — matching the paper's `height = ceil(log_fanout D)`.
    pub fn height(&self) -> u32 {
        let mut h = 0;
        let mut cur = self.root;
        loop {
            match self.node(cur) {
                Node::Internal { children, .. } => {
                    h += 1;
                    cur = children[0];
                }
                Node::Leaf { .. } => return h,
            }
        }
    }

    /// Average leaf occupancy in `[0, 1]`. Yao predicts ≈ 0.69 under
    /// random insertion.
    pub fn occupancy(&self) -> f64 {
        let mut used = 0usize;
        let mut cap = 0usize;
        for n in self.nodes.iter().flatten() {
            if let Node::Leaf { keys, .. } = n {
                used += keys.len();
                cap += self.leaf_capacity;
            }
        }
        if cap == 0 {
            0.0
        } else {
            used as f64 / cap as f64
        }
    }

    fn node(&self, i: u32) -> &Node<K, V> {
        self.nodes[i as usize].as_ref().expect("live node")
    }

    fn node_mut(&mut self, i: u32) -> &mut Node<K, V> {
        self.nodes[i as usize].as_mut().expect("live node")
    }

    fn alloc(&mut self, node: Node<K, V>) -> u32 {
        if let Some(i) = self.free.pop() {
            self.nodes[i as usize] = Some(node);
            i
        } else {
            self.nodes.push(Some(node));
            (self.nodes.len() - 1) as u32
        }
    }

    fn dealloc(&mut self, i: u32) -> Node<K, V> {
        let n = self.nodes[i as usize].take().expect("live node");
        self.free.push(i);
        n
    }

    /// Binary search counting actual comparisons into `trace` (when given).
    fn search_keys(keys: &[K], key: &K, trace: Option<&mut AccessTrace>) -> Result<usize, usize> {
        let mut comps = 0u64;
        let mut lo = 0usize;
        let mut hi = keys.len();
        let mut result = Err(keys.len());
        while lo < hi {
            let mid = (lo + hi) / 2;
            comps += 1;
            match keys[mid].cmp(key) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => {
                    result = Ok(mid);
                    break;
                }
            }
        }
        if result.is_err() {
            result = Err(lo);
        }
        if let Some(t) = trace {
            t.compare(comps);
        }
        result
    }

    /// Child index to follow for `key` in an internal node with `keys`.
    fn child_slot(keys: &[K], key: &K, trace: Option<&mut AccessTrace>) -> usize {
        match Self::search_keys(keys, key, trace) {
            Ok(i) => i + 1, // keys[i] == key routes right
            Err(i) => i,
        }
    }

    /// Looks a key up.
    pub fn get(&self, key: &K) -> Option<&V> {
        self.get_impl(key, None)
    }

    /// Looks a key up, recording one page visit per node and the actual
    /// binary-search comparisons.
    pub fn get_traced(&self, key: &K, trace: &mut AccessTrace) -> Option<&V> {
        // Work around the borrow checker: collect trace via raw option.
        self.get_impl(key, Some(trace))
    }

    fn get_impl(&self, key: &K, mut trace: Option<&mut AccessTrace>) -> Option<&V> {
        let mut cur = self.root;
        loop {
            if let Some(t) = trace.as_deref_mut() {
                t.visit(cur as u64);
            }
            match self.node(cur) {
                Node::Internal { keys, children } => {
                    let slot = Self::child_slot(keys, key, trace.as_deref_mut());
                    cur = children[slot];
                }
                Node::Leaf { keys, values, .. } => {
                    return match Self::search_keys(keys, key, trace.as_deref_mut()) {
                        Ok(i) => Some(&values[i]),
                        Err(_) => None,
                    };
                }
            }
        }
    }

    /// Inserts `key -> value`; returns the previous value if present.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let root = self.root;
        match self.insert_at(root, key, value) {
            InsertResult::Done(old) => {
                if old.is_none() {
                    self.len += 1;
                }
                old
            }
            InsertResult::Split { sep, right, old } => {
                let new_root = self.alloc(Node::Internal {
                    keys: vec![sep],
                    children: vec![self.root, right],
                });
                self.root = new_root;
                if old.is_none() {
                    self.len += 1;
                }
                old
            }
        }
    }

    fn insert_at(&mut self, i: u32, key: K, value: V) -> InsertResult<K, V> {
        match self.node(i) {
            Node::Leaf { keys, .. } => {
                let pos = Self::search_keys(keys, &key, None);
                let leaf_capacity = self.leaf_capacity;
                let Node::Leaf { keys, values, next } = self.node_mut(i) else {
                    unreachable!()
                };
                match pos {
                    Ok(p) => {
                        let old = std::mem::replace(&mut values[p], value);
                        InsertResult::Done(Some(old))
                    }
                    Err(p) => {
                        keys.insert(p, key);
                        values.insert(p, value);
                        if keys.len() <= leaf_capacity {
                            return InsertResult::Done(None);
                        }
                        // Split the overfull leaf.
                        let mid = keys.len() / 2;
                        let right_keys = keys.split_off(mid);
                        let right_values = values.split_off(mid);
                        let old_next = *next;
                        let sep = right_keys[0].clone();
                        let right = self.alloc(Node::Leaf {
                            keys: right_keys,
                            values: right_values,
                            next: old_next,
                        });
                        let Node::Leaf { next, .. } = self.node_mut(i) else {
                            unreachable!()
                        };
                        *next = Some(right);
                        InsertResult::Split {
                            sep,
                            right,
                            old: None,
                        }
                    }
                }
            }
            Node::Internal { keys, children } => {
                let slot = Self::child_slot(keys, &key, None);
                let child = children[slot];
                match self.insert_at(child, key, value) {
                    InsertResult::Done(old) => InsertResult::Done(old),
                    InsertResult::Split { sep, right, old } => {
                        let branching = self.branching;
                        let Node::Internal { keys, children } = self.node_mut(i) else {
                            unreachable!()
                        };
                        keys.insert(slot, sep);
                        children.insert(slot + 1, right);
                        if children.len() <= branching {
                            return InsertResult::Done(old);
                        }
                        // Split the overfull internal node: the middle key
                        // moves up.
                        let mid = keys.len() / 2;
                        let up_key = keys[mid].clone();
                        let right_keys = keys.split_off(mid + 1);
                        keys.pop(); // drop the key that moved up
                        let right_children = children.split_off(mid + 1);
                        let right = self.alloc(Node::Internal {
                            keys: right_keys,
                            children: right_children,
                        });
                        InsertResult::Split {
                            sep: up_key,
                            right,
                            old,
                        }
                    }
                }
            }
        }
    }

    /// Removes a key, returning its value. Underflowing nodes borrow from
    /// or merge with a sibling; the tree shrinks when the root empties.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let root = self.root;
        let removed = self.remove_at(root, key);
        if removed.is_some() {
            self.len -= 1;
            // Collapse a childless root.
            if let Node::Internal { children, .. } = self.node(self.root) {
                if children.len() == 1 {
                    let only = children[0];
                    self.dealloc(self.root);
                    self.root = only;
                }
            }
        }
        removed
    }

    fn min_leaf_keys(&self) -> usize {
        self.leaf_capacity / 2
    }

    fn min_children(&self) -> usize {
        self.branching.div_ceil(2)
    }

    fn remove_at(&mut self, i: u32, key: &K) -> Option<V> {
        match self.node(i) {
            Node::Leaf { keys, .. } => {
                let pos = Self::search_keys(keys, key, None).ok()?;
                let Node::Leaf { keys, values, .. } = self.node_mut(i) else {
                    unreachable!()
                };
                keys.remove(pos);
                Some(values.remove(pos))
            }
            Node::Internal { keys, children } => {
                let slot = Self::child_slot(keys, key, None);
                let child = children[slot];
                let removed = self.remove_at(child, key)?;
                self.fix_underflow(i, slot);
                Some(removed)
            }
        }
    }

    fn child_is_underfull(&self, child: u32) -> bool {
        match self.node(child) {
            Node::Leaf { keys, .. } => keys.len() < self.min_leaf_keys(),
            Node::Internal { children, .. } => children.len() < self.min_children(),
        }
    }

    /// Repairs child `slot` of internal node `parent` if it underflowed.
    fn fix_underflow(&mut self, parent: u32, slot: usize) {
        let (child, n_children) = {
            let Node::Internal { children, .. } = self.node(parent) else {
                unreachable!()
            };
            (children[slot], children.len())
        };
        if !self.child_is_underfull(child) {
            return;
        }
        // Prefer borrowing from the left sibling, then right; merge if
        // neither can spare.
        if slot > 0 && self.can_lend(self.sibling(parent, slot - 1)) {
            self.borrow_from_left(parent, slot);
        } else if slot + 1 < n_children && self.can_lend(self.sibling(parent, slot + 1)) {
            self.borrow_from_right(parent, slot);
        } else if slot > 0 {
            self.merge_children(parent, slot - 1);
        } else {
            self.merge_children(parent, slot);
        }
    }

    fn sibling(&self, parent: u32, slot: usize) -> u32 {
        let Node::Internal { children, .. } = self.node(parent) else {
            unreachable!()
        };
        children[slot]
    }

    fn can_lend(&self, i: u32) -> bool {
        match self.node(i) {
            Node::Leaf { keys, .. } => keys.len() > self.min_leaf_keys(),
            Node::Internal { children, .. } => children.len() > self.min_children(),
        }
    }

    fn borrow_from_left(&mut self, parent: u32, slot: usize) {
        let (left, right) = (self.sibling(parent, slot - 1), self.sibling(parent, slot));
        match self.dealloc_pair_for_edit(left, right) {
            (
                Node::Leaf {
                    keys: mut lk,
                    values: mut lv,
                    next: ln,
                },
                Node::Leaf {
                    keys: mut rk,
                    values: mut rv,
                    next: rn,
                },
            ) => {
                let k = lk.pop().expect("lender non-empty");
                let v = lv.pop().expect("lender non-empty");
                rk.insert(0, k.clone());
                rv.insert(0, v);
                self.restore_pair(
                    left,
                    Node::Leaf {
                        keys: lk,
                        values: lv,
                        next: ln,
                    },
                    right,
                    Node::Leaf {
                        keys: rk,
                        values: rv,
                        next: rn,
                    },
                );
                self.set_parent_key(parent, slot - 1, k);
            }
            (
                Node::Internal {
                    keys: mut lk,
                    children: mut lc,
                },
                Node::Internal {
                    keys: mut rk,
                    children: mut rc,
                },
            ) => {
                let sep = self.parent_key(parent, slot - 1);
                let k = lk.pop().expect("lender non-empty");
                let c = lc.pop().expect("lender non-empty");
                rk.insert(0, sep);
                rc.insert(0, c);
                self.restore_pair(
                    left,
                    Node::Internal {
                        keys: lk,
                        children: lc,
                    },
                    right,
                    Node::Internal {
                        keys: rk,
                        children: rc,
                    },
                );
                self.set_parent_key(parent, slot - 1, k);
            }
            _ => unreachable!("siblings are the same kind"),
        }
    }

    fn borrow_from_right(&mut self, parent: u32, slot: usize) {
        let (left, right) = (self.sibling(parent, slot), self.sibling(parent, slot + 1));
        match self.dealloc_pair_for_edit(left, right) {
            (
                Node::Leaf {
                    keys: mut lk,
                    values: mut lv,
                    next: ln,
                },
                Node::Leaf {
                    keys: mut rk,
                    values: mut rv,
                    next: rn,
                },
            ) => {
                let k = rk.remove(0);
                let v = rv.remove(0);
                lk.push(k);
                lv.push(v);
                let new_sep = rk[0].clone();
                self.restore_pair(
                    left,
                    Node::Leaf {
                        keys: lk,
                        values: lv,
                        next: ln,
                    },
                    right,
                    Node::Leaf {
                        keys: rk,
                        values: rv,
                        next: rn,
                    },
                );
                self.set_parent_key(parent, slot, new_sep);
            }
            (
                Node::Internal {
                    keys: mut lk,
                    children: mut lc,
                },
                Node::Internal {
                    keys: mut rk,
                    children: mut rc,
                },
            ) => {
                let sep = self.parent_key(parent, slot);
                let k = rk.remove(0);
                let c = rc.remove(0);
                lk.push(sep);
                lc.push(c);
                self.restore_pair(
                    left,
                    Node::Internal {
                        keys: lk,
                        children: lc,
                    },
                    right,
                    Node::Internal {
                        keys: rk,
                        children: rc,
                    },
                );
                self.set_parent_key(parent, slot, k);
            }
            _ => unreachable!("siblings are the same kind"),
        }
    }

    /// Merges children `slot` and `slot + 1` of `parent` into the left one.
    fn merge_children(&mut self, parent: u32, slot: usize) {
        let (left, right) = (self.sibling(parent, slot), self.sibling(parent, slot + 1));
        // The separator key comes down between merged internal halves.
        let sep = self.parent_key(parent, slot);
        let right_node = self.dealloc(right);
        match (self.node_mut(left), right_node) {
            (
                Node::Leaf { keys, values, next },
                Node::Leaf {
                    keys: rk,
                    values: rv,
                    next: rn,
                },
            ) => {
                keys.extend(rk);
                values.extend(rv);
                *next = rn;
            }
            (
                Node::Internal { keys, children },
                Node::Internal {
                    keys: rk,
                    children: rc,
                },
            ) => {
                keys.push(sep);
                keys.extend(rk);
                children.extend(rc);
            }
            _ => unreachable!("siblings are the same kind"),
        }
        let Node::Internal { keys, children } = self.node_mut(parent) else {
            unreachable!()
        };
        keys.remove(slot);
        children.remove(slot + 1);
    }

    fn dealloc_pair_for_edit(&mut self, left: u32, right: u32) -> (Node<K, V>, Node<K, V>) {
        let l = self.nodes[left as usize].take().expect("live node");
        let r = self.nodes[right as usize].take().expect("live node");
        (l, r)
    }

    fn restore_pair(&mut self, left: u32, l: Node<K, V>, right: u32, r: Node<K, V>) {
        self.nodes[left as usize] = Some(l);
        self.nodes[right as usize] = Some(r);
    }

    fn parent_key(&self, parent: u32, idx: usize) -> K {
        let Node::Internal { keys, .. } = self.node(parent) else {
            unreachable!()
        };
        keys[idx].clone()
    }

    fn set_parent_key(&mut self, parent: u32, idx: usize, key: K) {
        let Node::Internal { keys, .. } = self.node_mut(parent) else {
            unreachable!()
        };
        keys[idx] = key;
    }

    fn leftmost_leaf(&self) -> u32 {
        let mut cur = self.root;
        loop {
            match self.node(cur) {
                Node::Internal { children, .. } => cur = children[0],
                Node::Leaf { .. } => return cur,
            }
        }
    }

    /// In-order iteration over `(key, value)` pairs via the leaf chain.
    pub fn iter(&self) -> BPlusIter<'_, K, V> {
        BPlusIter {
            tree: self,
            leaf: Some(self.leftmost_leaf()),
            idx: 0,
            started: self.len > 0,
        }
    }

    /// Sequential access (§2 case 2): descends to the smallest key `≥ from`
    /// then follows the leaf chain, recording one page visit per node
    /// touched and one comparison per entry yielded (the prefix check).
    pub fn scan_from_traced(
        &self,
        from: &K,
        limit: usize,
        trace: &mut AccessTrace,
    ) -> Vec<(&K, &V)> {
        // Descend.
        let mut cur = self.root;
        loop {
            trace.visit(cur as u64);
            match self.node(cur) {
                Node::Internal { keys, children } => {
                    let slot = Self::child_slot(keys, from, Some(trace));
                    cur = children[slot];
                }
                Node::Leaf { .. } => break,
            }
        }
        let mut out = Vec::with_capacity(limit);
        let mut leaf = Some(cur);
        let mut start = match self.node(cur) {
            Node::Leaf { keys, .. } => match Self::search_keys(keys, from, Some(trace)) {
                Ok(i) | Err(i) => i,
            },
            _ => unreachable!(),
        };
        while let Some(l) = leaf {
            trace.visit(l as u64);
            let Node::Leaf { keys, values, next } = self.node(l) else {
                unreachable!()
            };
            for i in start..keys.len() {
                if out.len() >= limit {
                    return out;
                }
                trace.compare(1);
                out.push((&keys[i], &values[i]));
            }
            start = 0;
            leaf = *next;
        }
        out
    }

    /// All entries with `lo ≤ key ≤ hi`, in order, via the leaf chain.
    pub fn range(&self, lo: &K, hi: &K) -> Vec<(&K, &V)> {
        let mut out = Vec::new();
        // Descend to the leaf containing lo.
        let mut cur = self.root;
        while let Node::Internal { keys, children } = self.node(cur) {
            let slot = Self::child_slot(keys, lo, None);
            cur = children[slot];
        }
        let mut start = match self.node(cur) {
            Node::Leaf { keys, .. } => match Self::search_keys(keys, lo, None) {
                Ok(i) | Err(i) => i,
            },
            _ => unreachable!(),
        };
        let mut leaf = Some(cur);
        while let Some(l) = leaf {
            let Node::Leaf { keys, values, next } = self.node(l) else {
                unreachable!()
            };
            for i in start..keys.len() {
                if keys[i] > *hi {
                    return out;
                }
                out.push((&keys[i], &values[i]));
            }
            start = 0;
            leaf = *next;
        }
        out
    }

    /// Bulk-loads a tree from sorted pairs at a target `fill` fraction per
    /// leaf (Yao's steady state is 0.69). Keys must be strictly increasing.
    pub fn bulk_load(
        branching: usize,
        leaf_capacity: usize,
        fill: f64,
        pairs: impl IntoIterator<Item = (K, V)>,
    ) -> Self {
        assert!((0.1..=1.0).contains(&fill), "fill fraction out of range");
        let mut tree = BPlusTree::new(branching, leaf_capacity);
        let per_leaf = ((leaf_capacity as f64 * fill).round() as usize).clamp(1, leaf_capacity);

        // Build the leaf level.
        let mut leaves: Vec<(K, u32)> = Vec::new(); // (min key, node)
        let mut keys = Vec::with_capacity(per_leaf);
        let mut values = Vec::with_capacity(per_leaf);
        let mut count = 0usize;
        let mut last_key: Option<K> = None;
        for (k, v) in pairs {
            if let Some(prev) = &last_key {
                assert!(*prev < k, "bulk_load requires strictly increasing keys");
            }
            last_key = Some(k.clone());
            keys.push(k);
            values.push(v);
            count += 1;
            if keys.len() == per_leaf {
                let min = keys[0].clone();
                let node = tree.alloc(Node::Leaf {
                    keys: std::mem::take(&mut keys),
                    values: std::mem::take(&mut values),
                    next: None,
                });
                leaves.push((min, node));
            }
        }
        if !keys.is_empty() {
            let min = keys[0].clone();
            let node = tree.alloc(Node::Leaf {
                keys,
                values,
                next: None,
            });
            leaves.push((min, node));
        }
        if leaves.is_empty() {
            return tree; // fresh empty tree already has a leaf root
        }
        // Chain the leaves.
        for w in 0..leaves.len().saturating_sub(1) {
            let next = leaves[w + 1].1;
            let Node::Leaf { next: n, .. } = tree.node_mut(leaves[w].1) else {
                unreachable!()
            };
            *n = Some(next);
        }
        // The initial empty root leaf is garbage now.
        tree.dealloc(0);

        // Build interior levels at the same fill fraction. Chunk sizes are
        // chosen so no node (in particular the last one of a level) falls
        // below the deletion-time minimum child count.
        let per_node =
            ((branching as f64 * fill).round() as usize).clamp(tree.min_children(), branching);
        let mut level = leaves;
        while level.len() > 1 {
            let mut next_level: Vec<(K, u32)> = Vec::new();
            let n = level.len();
            let mut start = 0usize;
            while start < n {
                let remaining = n - start;
                let take = if remaining <= branching {
                    remaining
                } else if remaining - per_node < tree.min_children() {
                    // A full chunk would leave an underfull tail: split the
                    // remainder evenly instead.
                    remaining / 2
                } else {
                    per_node
                };
                let chunk = &level[start..start + take];
                let min = chunk[0].0.clone();
                let children: Vec<u32> = chunk.iter().map(|(_, node)| *node).collect();
                let keys: Vec<K> = chunk[1..].iter().map(|(k, _)| k.clone()).collect();
                let node = tree.alloc(Node::Internal { keys, children });
                next_level.push((min, node));
                start += take;
            }
            level = next_level;
        }
        tree.root = level[0].1;
        tree.len = count;
        tree
    }

    /// Diagnostic: checks key ordering, child counts, leaf-chain coverage
    /// and the length bookkeeping.
    pub fn check_invariants(&self) -> Result<(), String>
    where
        K: std::fmt::Debug,
    {
        fn walk<K: Ord + Clone + std::fmt::Debug, V>(
            t: &BPlusTree<K, V>,
            i: u32,
            lo: Option<&K>,
            hi: Option<&K>,
            is_root: bool,
            depth: usize,
            leaf_depth: &mut Option<usize>,
        ) -> Result<usize, String> {
            match t.node(i) {
                Node::Leaf { keys, values, .. } => {
                    if keys.len() != values.len() {
                        return Err("leaf key/value length mismatch".into());
                    }
                    if !is_root && keys.len() > t.leaf_capacity {
                        return Err("overfull leaf".into());
                    }
                    match leaf_depth {
                        Some(d) if *d != depth => return Err("leaves at differing depths".into()),
                        None => *leaf_depth = Some(depth),
                        _ => {}
                    }
                    for w in keys.windows(2) {
                        if w[0] >= w[1] {
                            return Err(format!("unsorted leaf keys {:?} {:?}", w[0], w[1]));
                        }
                    }
                    if let (Some(lo), Some(first)) = (lo, keys.first()) {
                        if first < lo {
                            return Err(format!("leaf key {first:?} below bound {lo:?}"));
                        }
                    }
                    if let (Some(hi), Some(last)) = (hi, keys.last()) {
                        if last >= hi {
                            return Err(format!("leaf key {last:?} not below bound {hi:?}"));
                        }
                    }
                    Ok(keys.len())
                }
                Node::Internal { keys, children } => {
                    if children.len() != keys.len() + 1 {
                        return Err("internal arity mismatch".into());
                    }
                    if children.len() > t.branching {
                        return Err("overfull internal node".into());
                    }
                    if !is_root && children.len() < t.min_children() {
                        return Err("underfull internal node".into());
                    }
                    for w in keys.windows(2) {
                        if w[0] >= w[1] {
                            return Err("unsorted internal keys".into());
                        }
                    }
                    let mut total = 0;
                    for (c, child) in children.iter().enumerate() {
                        let clo = if c == 0 { lo } else { Some(&keys[c - 1]) };
                        let chi = if c == keys.len() { hi } else { Some(&keys[c]) };
                        total += walk(t, *child, clo, chi, false, depth + 1, leaf_depth)?;
                    }
                    Ok(total)
                }
            }
        }
        let mut leaf_depth = None;
        let count = walk(self, self.root, None, None, true, 0, &mut leaf_depth)?;
        if count != self.len {
            return Err(format!("len {} but {count} entries reachable", self.len));
        }
        let chained = self.iter().count();
        if chained != self.len {
            return Err(format!(
                "leaf chain yields {chained} entries but len is {}",
                self.len
            ));
        }
        Ok(())
    }
}

impl<K: Ord + Clone + std::fmt::Debug, V> mmdb_types::Auditable for BPlusTree<K, V> {
    /// Delegates to [`BPlusTree::check_invariants`], wrapping its report
    /// in the engine-wide [`mmdb_types::AuditViolation`] shape.
    fn audit(&self) -> Result<(), mmdb_types::AuditViolation> {
        self.check_invariants()
            .map_err(|detail| mmdb_types::AuditViolation::new("BPlusTree", "structure", detail))
    }
}

/// Iterator over a [`BPlusTree`]'s leaf chain.
pub struct BPlusIter<'a, K, V> {
    tree: &'a BPlusTree<K, V>,
    leaf: Option<u32>,
    idx: usize,
    started: bool,
}

impl<'a, K: Ord + Clone, V> Iterator for BPlusIter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        if !self.started {
            return None;
        }
        loop {
            let leaf = self.leaf?;
            let Node::Leaf { keys, values, next } = self.tree.node(leaf) else {
                unreachable!()
            };
            if self.idx < keys.len() {
                let i = self.idx;
                self.idx += 1;
                return Some((&keys[i], &values[i]));
            }
            self.leaf = *next;
            self.idx = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmdb_types::WorkloadRng;

    fn small() -> BPlusTree<i64, i64> {
        BPlusTree::new(4, 4)
    }

    #[test]
    fn insert_get_basic() {
        let mut t = small();
        assert_eq!(t.insert(1, 10), None);
        assert_eq!(t.insert(2, 20), None);
        assert_eq!(t.insert(1, 11), Some(10));
        assert_eq!(t.get(&1), Some(&11));
        assert_eq!(t.get(&3), None);
        assert_eq!(t.len(), 2);
        t.check_invariants().unwrap();
    }

    #[test]
    fn splits_grow_height() {
        let mut t = small();
        for i in 0..100 {
            t.insert(i, i);
            t.check_invariants().unwrap();
        }
        assert!(t.height() >= 2);
        let got: Vec<i64> = t.iter().map(|(k, _)| *k).collect();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn random_workload_against_btreemap_oracle() {
        let mut rng = WorkloadRng::seeded(21);
        let mut t = BPlusTree::new(5, 4);
        let mut oracle = std::collections::BTreeMap::new();
        for step in 0..6000 {
            let k = rng.int_in(0, 700);
            if rng.chance(0.35) {
                assert_eq!(t.remove(&k), oracle.remove(&k), "step {step}");
            } else {
                let v = rng.int_in(0, 1 << 30);
                assert_eq!(t.insert(k, v), oracle.insert(k, v), "step {step}");
            }
            if step % 500 == 0 {
                t.check_invariants().unwrap();
            }
        }
        t.check_invariants().unwrap();
        let got: Vec<_> = t.iter().map(|(k, v)| (*k, *v)).collect();
        let want: Vec<_> = oracle.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn remove_down_to_empty() {
        let mut t = small();
        for i in 0..50 {
            t.insert(i, i);
        }
        for i in 0..50 {
            assert_eq!(t.remove(&i), Some(i));
            t.check_invariants().unwrap();
        }
        assert!(t.is_empty());
        assert_eq!(t.remove(&0), None);
        // Tree is reusable after emptying.
        t.insert(9, 9);
        assert_eq!(t.get(&9), Some(&9));
        t.check_invariants().unwrap();
    }

    #[test]
    fn height_matches_paper_formula() {
        // height ≈ ceil(log_fanout(leaves)).
        let mut t = BPlusTree::new(10, 10);
        let mut rng = WorkloadRng::seeded(3);
        let mut keys: Vec<i64> = (0..20_000).collect();
        rng.shuffle(&mut keys);
        for k in keys {
            t.insert(k, k);
        }
        t.check_invariants().unwrap();
        let leaves = (t.len() as f64 / (10.0 * t.occupancy())).ceil();
        let model = leaves.log2() / (10.0f64 * t.occupancy()).log2();
        let h = t.height() as f64;
        assert!(
            (h - model.ceil()).abs() <= 1.0,
            "height {h} vs model {}",
            model.ceil()
        );
    }

    #[test]
    fn random_insertion_occupancy_approaches_yao_69_percent() {
        let mut t = BPlusTree::new(20, 20);
        let mut rng = WorkloadRng::seeded(17);
        let mut keys: Vec<i64> = (0..30_000).collect();
        rng.shuffle(&mut keys);
        for k in keys {
            t.insert(k, ());
        }
        let occ = t.occupancy();
        assert!(
            (0.62..0.76).contains(&occ),
            "occupancy {occ}, Yao predicts ≈ 0.69"
        );
    }

    #[test]
    fn traced_lookup_visits_height_plus_one_pages() {
        let mut t = BPlusTree::new(16, 16);
        let mut rng = WorkloadRng::seeded(8);
        let mut keys: Vec<i64> = (0..10_000).collect();
        rng.shuffle(&mut keys);
        for k in keys {
            t.insert(k, k);
        }
        let h = t.height() as u64;
        for _ in 0..100 {
            let mut tr = AccessTrace::default();
            let k = rng.int_in(0, 10_000);
            assert!(t.get_traced(&k, &mut tr).is_some());
            assert_eq!(tr.page_reads(), h + 1, "root-to-leaf path");
            assert!(tr.comparisons >= 1);
        }
    }

    #[test]
    fn traced_comparisons_close_to_log2_n() {
        let mut t = BPlusTree::new(64, 64);
        let mut rng = WorkloadRng::seeded(9);
        let n = 50_000i64;
        let mut keys: Vec<i64> = (0..n).collect();
        rng.shuffle(&mut keys);
        for k in keys {
            t.insert(k, k);
        }
        let mut total = 0u64;
        let probes = 300;
        for _ in 0..probes {
            let mut tr = AccessTrace::default();
            t.get_traced(&rng.int_in(0, n), &mut tr);
            total += tr.comparisons;
        }
        let avg = total as f64 / probes as f64;
        let model = (n as f64).log2();
        // Binary search in a B+-tree does slightly more than log2(n) total
        // comparisons (per-level rounding); the paper assumes C' = log2(n).
        assert!(
            (avg - model).abs() < 6.0,
            "avg {avg} too far from log2(n) = {model}"
        );
    }

    #[test]
    fn scan_from_follows_leaf_chain() {
        let mut t = BPlusTree::new(4, 4);
        for k in 0..200 {
            t.insert(k, k * 3);
        }
        let mut tr = AccessTrace::default();
        let run = t.scan_from_traced(&77, 30, &mut tr);
        let keys: Vec<i64> = run.iter().map(|(k, _)| **k).collect();
        assert_eq!(keys, (77..107).collect::<Vec<_>>());
        // 30 tuples over 4-entry leaves: far fewer pages than an AVL would
        // touch, thanks to clustering.
        assert!(tr.page_reads() < 30);
    }

    #[test]
    fn scan_from_past_end_is_empty() {
        let mut t = small();
        t.insert(1, 1);
        let mut tr = AccessTrace::default();
        assert!(t.scan_from_traced(&100, 5, &mut tr).is_empty());
    }

    #[test]
    fn bulk_load_produces_valid_tree_at_target_fill() {
        let pairs: Vec<(i64, i64)> = (0..10_000).map(|i| (i, i * 2)).collect();
        let t = BPlusTree::bulk_load(20, 20, 0.69, pairs);
        t.check_invariants().unwrap();
        assert_eq!(t.len(), 10_000);
        assert_eq!(t.get(&5_000), Some(&10_000));
        let occ = t.occupancy();
        assert!((0.64..0.74).contains(&occ), "occupancy {occ}");
        let got: Vec<i64> = t.iter().map(|(k, _)| *k).collect();
        assert_eq!(got, (0..10_000).collect::<Vec<_>>());
    }

    #[test]
    fn bulk_load_empty_and_tiny() {
        let t: BPlusTree<i64, ()> = BPlusTree::bulk_load(4, 4, 0.7, Vec::new());
        assert!(t.is_empty());
        t.check_invariants().unwrap();
        let t = BPlusTree::bulk_load(4, 4, 0.7, vec![(1, ()), (2, ())]);
        assert_eq!(t.len(), 2);
        t.check_invariants().unwrap();
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn bulk_load_rejects_unsorted() {
        let _ = BPlusTree::bulk_load(4, 4, 0.7, vec![(2, ()), (1, ())]);
    }

    #[test]
    fn mutation_after_bulk_load() {
        let pairs: Vec<(i64, i64)> = (0..1000).map(|i| (i * 2, i)).collect();
        let mut t = BPlusTree::bulk_load(8, 8, 0.69, pairs);
        t.insert(999, -1); // odd key between bulk entries
        assert_eq!(t.get(&999), Some(&-1));
        assert_eq!(t.remove(&0), Some(0));
        t.check_invariants().unwrap();
        assert_eq!(t.len(), 1000);
    }

    #[test]
    fn range_matches_btreemap_range() {
        let mut t = BPlusTree::new(5, 4);
        let mut oracle = std::collections::BTreeMap::new();
        let mut rng = WorkloadRng::seeded(41);
        for _ in 0..800 {
            let k = rng.int_in(0, 300);
            t.insert(k, k);
            oracle.insert(k, k);
        }
        for _ in 0..50 {
            let a = rng.int_in(0, 300);
            let b = rng.int_in(0, 300);
            let (lo, hi) = (a.min(b), a.max(b));
            let got: Vec<i64> = t.range(&lo, &hi).into_iter().map(|(k, _)| *k).collect();
            let want: Vec<i64> = oracle.range(lo..=hi).map(|(k, _)| *k).collect();
            assert_eq!(got, want, "range [{lo}, {hi}]");
        }
        assert!(t.range(&500, &600).is_empty());
    }

    #[test]
    fn pages_count_live_nodes() {
        let mut t = BPlusTree::new(4, 4);
        let single_leaf = t.pages();
        assert_eq!(single_leaf, 1);
        for i in 0..64 {
            t.insert(i, i);
        }
        assert!(t.pages() > 8);
    }
}
