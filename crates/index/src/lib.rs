#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Access methods for memory-resident relations (§2 of the paper).
//!
//! * [`avl::AvlTree`] — an arena-based AVL tree, the paper's candidate
//!   structure for memory-resident keyed relations.
//! * [`bptree::BPlusTree`] — a page-based B+-tree with configurable fanout
//!   and Yao-style occupancy tracking, the incumbent structure.
//! * [`hash::HashIndex`] — a chained hash index for equality access (§3/§4
//!   make hashing the workhorse of query processing).
//! * [`residency::PagedResidency`] — a random-replacement residency
//!   simulator that converts traced page visits into fault counts, so the
//!   §2 model (`faults = C · (1 − |M|/S)`) can be checked empirically.
//!
//! Every structure offers *traced* operations that report the comparisons
//! performed and the logical pages touched, feeding the paper's cost
//! objective `cost = Z · |page reads| + |comparisons|`.

pub mod avl;
pub mod bptree;
pub mod hash;
pub mod paged_binary;
pub mod residency;

pub use avl::AvlTree;
pub use bptree::BPlusTree;
pub use hash::HashIndex;
pub use paged_binary::PagedBinaryTree;
pub use residency::PagedResidency;

/// The record of one traced index operation: which logical pages were
/// inspected, in order, and how many key comparisons were spent.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AccessTrace {
    /// Logical page of each node inspected, in visit order.
    pub pages_visited: Vec<u64>,
    /// Key comparisons performed.
    pub comparisons: u64,
}

impl AccessTrace {
    /// Records a visit to `page` (consecutive duplicate visits collapse —
    /// staying within one page costs no new page read).
    pub fn visit(&mut self, page: u64) {
        if self.pages_visited.last() != Some(&page) {
            self.pages_visited.push(page);
        }
    }

    /// Records `n` comparisons.
    pub fn compare(&mut self, n: u64) {
        self.comparisons += n;
    }

    /// Number of page reads this operation would issue against a cold
    /// structure.
    pub fn page_reads(&self) -> u64 {
        self.pages_visited.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_collapses_consecutive_pages() {
        let mut t = AccessTrace::default();
        t.visit(3);
        t.visit(3);
        t.visit(4);
        t.visit(3);
        assert_eq!(t.pages_visited, vec![3, 4, 3]);
        assert_eq!(t.page_reads(), 3);
    }

    #[test]
    fn trace_accumulates_comparisons() {
        let mut t = AccessTrace::default();
        t.compare(2);
        t.compare(5);
        assert_eq!(t.comparisons, 7);
    }
}
