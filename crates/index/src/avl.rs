//! An arena-based AVL tree.
//!
//! The paper's §2 candidate for keyed access to memory-resident relations:
//! strictly balanced, no page structure, records located directly (which is
//! why its comparisons may be cheaper than a B+-tree's by the factor `Y`).
//!
//! Nodes live in a `Vec<Option<Node>>` arena and are assigned to *logical
//! pages* of `nodes_per_page` consecutive arena slots. Because keys arrive
//! in random order, consecutive tree levels land on unrelated pages —
//! exactly the §2 observation that "each of the C nodes to be inspected
//! will be on a different page".

use crate::AccessTrace;

#[derive(Debug, Clone)]
struct Node<K, V> {
    key: K,
    value: V,
    left: Option<u32>,
    right: Option<u32>,
    height: u8,
}

/// A strictly balanced binary search tree over an arena.
#[derive(Debug, Clone)]
pub struct AvlTree<K, V> {
    nodes: Vec<Option<Node<K, V>>>,
    root: Option<u32>,
    free: Vec<u32>,
    len: usize,
    nodes_per_page: usize,
}

impl<K: Ord, V> Default for AvlTree<K, V> {
    fn default() -> Self {
        AvlTree::new()
    }
}

impl<K: Ord, V> AvlTree<K, V> {
    /// An empty tree with a default logical-page fanout of 37 nodes
    /// (≈ 4096 / 108 bytes for the paper's standard geometry).
    pub fn new() -> Self {
        AvlTree::with_page_fanout(37)
    }

    /// An empty tree whose logical pages hold `nodes_per_page` nodes.
    pub fn with_page_fanout(nodes_per_page: usize) -> Self {
        assert!(nodes_per_page > 0);
        AvlTree {
            nodes: Vec::new(),
            root: None,
            free: Vec::new(),
            len: 0,
            nodes_per_page,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Logical pages the arena occupies (`S` in the §2 model).
    pub fn pages(&self) -> u64 {
        (self.nodes.len().div_ceil(self.nodes_per_page)) as u64
    }

    /// Height of the tree (0 for empty).
    pub fn height(&self) -> u32 {
        self.root.map(|r| self.node(r).height as u32).unwrap_or(0)
    }

    fn node(&self, i: u32) -> &Node<K, V> {
        self.nodes[i as usize].as_ref().expect("live node")
    }

    fn node_mut(&mut self, i: u32) -> &mut Node<K, V> {
        self.nodes[i as usize].as_mut().expect("live node")
    }

    fn page_of(&self, idx: u32) -> u64 {
        (idx as usize / self.nodes_per_page) as u64
    }

    fn h(&self, n: Option<u32>) -> i32 {
        n.map(|i| self.node(i).height as i32).unwrap_or(0)
    }

    fn update_height(&mut self, i: u32) {
        let l = self.h(self.node(i).left);
        let r = self.h(self.node(i).right);
        self.node_mut(i).height = (1 + l.max(r)) as u8;
    }

    fn balance_factor(&self, i: u32) -> i32 {
        self.h(self.node(i).left) - self.h(self.node(i).right)
    }

    fn rotate_right(&mut self, y: u32) -> u32 {
        let x = self.node(y).left.expect("rotate_right needs left child");
        let t2 = self.node(x).right;
        self.node_mut(x).right = Some(y);
        self.node_mut(y).left = t2;
        self.update_height(y);
        self.update_height(x);
        x
    }

    fn rotate_left(&mut self, x: u32) -> u32 {
        let y = self.node(x).right.expect("rotate_left needs right child");
        let t2 = self.node(y).left;
        self.node_mut(y).left = Some(x);
        self.node_mut(x).right = t2;
        self.update_height(x);
        self.update_height(y);
        y
    }

    fn rebalance(&mut self, i: u32) -> u32 {
        self.update_height(i);
        let bf = self.balance_factor(i);
        if bf > 1 {
            let left = self.node(i).left.expect("bf>1 implies left");
            if self.balance_factor(left) < 0 {
                let new_left = self.rotate_left(left);
                self.node_mut(i).left = Some(new_left);
            }
            self.rotate_right(i)
        } else if bf < -1 {
            let right = self.node(i).right.expect("bf<-1 implies right");
            if self.balance_factor(right) > 0 {
                let new_right = self.rotate_right(right);
                self.node_mut(i).right = Some(new_right);
            }
            self.rotate_left(i)
        } else {
            i
        }
    }

    fn alloc(&mut self, key: K, value: V) -> u32 {
        let node = Node {
            key,
            value,
            left: None,
            right: None,
            height: 1,
        };
        if let Some(idx) = self.free.pop() {
            self.nodes[idx as usize] = Some(node);
            idx
        } else {
            self.nodes.push(Some(node));
            (self.nodes.len() - 1) as u32
        }
    }

    /// Inserts `key -> value`; returns the previous value if the key was
    /// already present.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let root = self.root;
        let (new_root, old) = self.insert_at(root, key, value);
        self.root = Some(new_root);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    fn insert_at(&mut self, node: Option<u32>, key: K, value: V) -> (u32, Option<V>) {
        let Some(i) = node else {
            return (self.alloc(key, value), None);
        };
        use std::cmp::Ordering::*;
        match key.cmp(&self.node(i).key) {
            Equal => {
                let old = std::mem::replace(&mut self.node_mut(i).value, value);
                (i, Some(old))
            }
            Less => {
                let left = self.node(i).left;
                let (nl, old) = self.insert_at(left, key, value);
                self.node_mut(i).left = Some(nl);
                (self.rebalance(i), old)
            }
            Greater => {
                let right = self.node(i).right;
                let (nr, old) = self.insert_at(right, key, value);
                self.node_mut(i).right = Some(nr);
                (self.rebalance(i), old)
            }
        }
    }

    /// Looks a key up.
    pub fn get(&self, key: &K) -> Option<&V> {
        let mut cur = self.root;
        while let Some(i) = cur {
            let n = self.node(i);
            cur = match key.cmp(&n.key) {
                std::cmp::Ordering::Equal => return Some(&n.value),
                std::cmp::Ordering::Less => n.left,
                std::cmp::Ordering::Greater => n.right,
            };
        }
        None
    }

    /// Looks a key up, recording one comparison and one page visit per node
    /// inspected (the §2 accounting).
    pub fn get_traced(&self, key: &K, trace: &mut AccessTrace) -> Option<&V> {
        let mut cur = self.root;
        while let Some(i) = cur {
            trace.visit(self.page_of(i));
            trace.compare(1);
            let n = self.node(i);
            cur = match key.cmp(&n.key) {
                std::cmp::Ordering::Equal => return Some(&n.value),
                std::cmp::Ordering::Less => n.left,
                std::cmp::Ordering::Greater => n.right,
            };
        }
        None
    }

    /// Removes a key, returning its value.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let root = self.root;
        let (new_root, removed) = self.remove_at(root, key);
        self.root = new_root;
        if removed.is_some() {
            self.len -= 1;
        }
        removed
    }

    fn remove_at(&mut self, node: Option<u32>, key: &K) -> (Option<u32>, Option<V>) {
        let Some(i) = node else {
            return (None, None);
        };
        use std::cmp::Ordering::*;
        match key.cmp(&self.node(i).key) {
            Less => {
                let left = self.node(i).left;
                let (nl, removed) = self.remove_at(left, key);
                self.node_mut(i).left = nl;
                let r = if removed.is_some() {
                    self.rebalance(i)
                } else {
                    i
                };
                (Some(r), removed)
            }
            Greater => {
                let right = self.node(i).right;
                let (nr, removed) = self.remove_at(right, key);
                self.node_mut(i).right = nr;
                let r = if removed.is_some() {
                    self.rebalance(i)
                } else {
                    i
                };
                (Some(r), removed)
            }
            Equal => {
                let (left, right) = (self.node(i).left, self.node(i).right);
                match (left, right) {
                    (None, None) => (None, Some(self.free_node(i))),
                    (Some(child), None) | (None, Some(child)) => {
                        (Some(child), Some(self.free_node(i)))
                    }
                    (Some(_), Some(r)) => {
                        // Replace this node's entry with its in-order
                        // successor's, then free the successor slot.
                        let (new_right, succ) = self.detach_min(r);
                        self.node_mut(i).right = new_right;
                        let succ_node = self.nodes[succ as usize].take().expect("successor live");
                        self.free.push(succ);
                        let n = self.node_mut(i);
                        n.key = succ_node.key;
                        let old_val = std::mem::replace(&mut n.value, succ_node.value);
                        (Some(self.rebalance(i)), Some(old_val))
                    }
                }
            }
        }
    }

    fn detach_min(&mut self, i: u32) -> (Option<u32>, u32) {
        match self.node(i).left {
            Some(l) => {
                let (new_left, min) = self.detach_min(l);
                self.node_mut(i).left = new_left;
                (Some(self.rebalance(i)), min)
            }
            None => (self.node(i).right, i),
        }
    }

    fn free_node(&mut self, i: u32) -> V {
        let node = self.nodes[i as usize].take().expect("live node");
        self.free.push(i);
        node.value
    }

    /// In-order iteration over `(key, value)` pairs.
    pub fn iter(&self) -> AvlIter<'_, K, V> {
        let mut stack = Vec::new();
        let mut cur = self.root;
        while let Some(i) = cur {
            stack.push(i);
            cur = self.node(i).left;
        }
        AvlIter { tree: self, stack }
    }

    /// Sequential access (§2 case 2): starting at the smallest key `≥ from`,
    /// returns up to `limit` entries in order, recording the page of every
    /// node inspected (including those traversed to reach successors) and
    /// one comparison per node inspected.
    pub fn scan_from_traced(
        &self,
        from: &K,
        limit: usize,
        trace: &mut AccessTrace,
    ) -> Vec<(&K, &V)> {
        let mut stack = Vec::new();
        let mut cur = self.root;
        while let Some(i) = cur {
            trace.visit(self.page_of(i));
            trace.compare(1);
            let n = self.node(i);
            if *from <= n.key {
                stack.push(i);
                cur = n.left;
            } else {
                cur = n.right;
            }
        }
        let mut out = Vec::with_capacity(limit);
        while out.len() < limit {
            let Some(i) = stack.pop() else { break };
            trace.visit(self.page_of(i));
            trace.compare(1);
            let n = self.node(i);
            out.push((&n.key, &n.value));
            let mut cur = n.right;
            while let Some(c) = cur {
                trace.visit(self.page_of(c));
                stack.push(c);
                cur = self.node(c).left;
            }
        }
        out
    }

    /// All entries with `lo ≤ key ≤ hi`, in order.
    pub fn range(&self, lo: &K, hi: &K) -> Vec<(&K, &V)> {
        let mut out = Vec::new();
        let mut stack = Vec::new();
        let mut cur = self.root;
        while let Some(i) = cur {
            let n = self.node(i);
            if *lo <= n.key {
                stack.push(i);
                cur = n.left;
            } else {
                cur = n.right;
            }
        }
        while let Some(i) = stack.pop() {
            let n = self.node(i);
            if n.key > *hi {
                break;
            }
            out.push((&n.key, &n.value));
            let mut cur = n.right;
            while let Some(c) = cur {
                stack.push(c);
                cur = self.node(c).left;
            }
        }
        out
    }

    /// Diagnostic: verifies BST order, AVL balance, height bookkeeping and
    /// the reachable-node count.
    pub fn check_invariants(&self) -> Result<(), String>
    where
        K: std::fmt::Debug,
    {
        fn walk<K: Ord + std::fmt::Debug, V>(
            t: &AvlTree<K, V>,
            n: Option<u32>,
            lo: Option<&K>,
            hi: Option<&K>,
        ) -> Result<(i32, usize), String> {
            let Some(i) = n else { return Ok((0, 0)) };
            let node = t.node(i);
            if let Some(lo) = lo {
                if node.key <= *lo {
                    return Err(format!("key {:?} violates lower bound {:?}", node.key, lo));
                }
            }
            if let Some(hi) = hi {
                if node.key >= *hi {
                    return Err(format!("key {:?} violates upper bound {:?}", node.key, hi));
                }
            }
            let (lh, lc) = walk(t, node.left, lo, Some(&node.key))?;
            let (rh, rc) = walk(t, node.right, Some(&node.key), hi)?;
            if (lh - rh).abs() > 1 {
                return Err(format!("imbalance {} at {:?}", lh - rh, node.key));
            }
            let h = 1 + lh.max(rh);
            if h != node.height as i32 {
                return Err(format!(
                    "height mismatch at {:?}: stored {}, actual {h}",
                    node.key, node.height
                ));
            }
            Ok((h, lc + rc + 1))
        }
        let (_, count) = walk(self, self.root, None, None)?;
        if count != self.len {
            return Err(format!("len {} but {count} reachable nodes", self.len));
        }
        Ok(())
    }
}

impl<K: Ord + std::fmt::Debug, V> mmdb_types::Auditable for AvlTree<K, V> {
    /// Delegates to [`AvlTree::check_invariants`], wrapping its report in
    /// the engine-wide [`mmdb_types::AuditViolation`] shape.
    fn audit(&self) -> Result<(), mmdb_types::AuditViolation> {
        self.check_invariants()
            .map_err(|detail| mmdb_types::AuditViolation::new("AvlTree", "structure", detail))
    }
}

/// In-order iterator over an [`AvlTree`].
pub struct AvlIter<'a, K, V> {
    tree: &'a AvlTree<K, V>,
    stack: Vec<u32>,
}

impl<'a, K: Ord, V> Iterator for AvlIter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        let i = self.stack.pop()?;
        let n = self.tree.node(i);
        let mut cur = n.right;
        while let Some(c) = cur {
            self.stack.push(c);
            cur = self.tree.node(c).left;
        }
        Some((&n.key, &n.value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmdb_types::WorkloadRng;

    #[test]
    fn insert_get_basic() {
        let mut t = AvlTree::new();
        assert!(t.is_empty());
        assert_eq!(t.insert(5, "five"), None);
        assert_eq!(t.insert(3, "three"), None);
        assert_eq!(t.insert(8, "eight"), None);
        assert_eq!(t.len(), 3);
        assert_eq!(t.get(&5), Some(&"five"));
        assert_eq!(t.get(&9), None);
        assert_eq!(t.insert(5, "FIVE"), Some("five"));
        assert_eq!(t.len(), 3);
        t.check_invariants().unwrap();
    }

    #[test]
    fn stays_balanced_under_sorted_insertion() {
        let mut t = AvlTree::new();
        for i in 0..1024 {
            t.insert(i, i);
        }
        t.check_invariants().unwrap();
        // AVL height bound: < 1.44 log2(n+2).
        let bound = (1.44 * (1026f64).log2()).ceil() as u32;
        assert!(t.height() <= bound, "height {} > bound {bound}", t.height());
    }

    #[test]
    fn random_workload_against_btreemap_oracle() {
        let mut rng = WorkloadRng::seeded(11);
        let mut t = AvlTree::new();
        let mut oracle = std::collections::BTreeMap::new();
        for _ in 0..4000 {
            let k = rng.int_in(0, 500);
            if rng.chance(0.3) {
                assert_eq!(t.remove(&k), oracle.remove(&k));
            } else {
                let v = rng.int_in(0, 1 << 30);
                assert_eq!(t.insert(k, v), oracle.insert(k, v));
            }
        }
        t.check_invariants().unwrap();
        assert_eq!(t.len(), oracle.len());
        let got: Vec<_> = t.iter().map(|(k, v)| (*k, *v)).collect();
        let want: Vec<_> = oracle.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn remove_all_three_shapes() {
        let mut t = AvlTree::new();
        for k in [50, 30, 70, 20, 40, 60, 80] {
            t.insert(k, k * 10);
        }
        assert_eq!(t.remove(&20), Some(200)); // leaf
        assert_eq!(t.remove(&30), Some(300)); // one child
        assert_eq!(t.remove(&50), Some(500)); // two children (root)
        assert_eq!(t.remove(&99), None);
        t.check_invariants().unwrap();
        let keys: Vec<i32> = t.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![40, 60, 70, 80]);
    }

    #[test]
    fn freed_slots_are_reused() {
        let mut t = AvlTree::new();
        for i in 0..100 {
            t.insert(i, i);
        }
        let pages_before = t.pages();
        for i in 0..50 {
            t.remove(&i);
        }
        for i in 100..150 {
            t.insert(i, i);
        }
        assert_eq!(t.pages(), pages_before, "arena should not grow");
        t.check_invariants().unwrap();
    }

    #[test]
    fn traced_lookup_costs_log_n() {
        let mut rng = WorkloadRng::seeded(5);
        let mut t = AvlTree::new();
        let n = 10_000i64;
        let mut keys: Vec<i64> = (0..n).collect();
        rng.shuffle(&mut keys);
        for &k in &keys {
            t.insert(k, k);
        }
        // Average comparisons over random probes ≈ log2(n) + 0.25 (§2).
        let mut total = 0u64;
        let probes = 500;
        for _ in 0..probes {
            let k = rng.int_in(0, n);
            let mut tr = AccessTrace::default();
            assert!(t.get_traced(&k, &mut tr).is_some());
            total += tr.comparisons;
        }
        let avg = total as f64 / probes as f64;
        let model = (n as f64).log2() + 0.25;
        assert!(
            (avg - model).abs() < 1.5,
            "avg comparisons {avg} vs model {model}"
        );
    }

    #[test]
    fn traced_lookup_touches_about_one_page_per_node() {
        // With random insertion order, nodes on a root-leaf path share few
        // pages — the §2 assumption.
        let mut rng = WorkloadRng::seeded(6);
        let mut t = AvlTree::with_page_fanout(37);
        let n = 20_000i64;
        let mut keys: Vec<i64> = (0..n).collect();
        rng.shuffle(&mut keys);
        for &k in &keys {
            t.insert(k, k);
        }
        let mut pages = 0u64;
        let mut comps = 0u64;
        for _ in 0..300 {
            let mut tr = AccessTrace::default();
            t.get_traced(&rng.int_in(0, n), &mut tr);
            pages += tr.page_reads();
            comps += tr.comparisons;
        }
        let ratio = pages as f64 / comps as f64;
        assert!(ratio > 0.8, "page/comparison ratio {ratio}; §2 expects ≈ 1");
    }

    #[test]
    fn scan_from_returns_sorted_run() {
        let mut t = AvlTree::new();
        for k in (0..1000).rev() {
            t.insert(k, k * 2);
        }
        let mut tr = AccessTrace::default();
        let run = t.scan_from_traced(&250, 10, &mut tr);
        let keys: Vec<i64> = run.iter().map(|(k, _)| **k).collect();
        assert_eq!(keys, (250..260).collect::<Vec<_>>());
        assert!(tr.comparisons >= 10);
    }

    #[test]
    fn scan_from_missing_key_starts_at_successor() {
        let mut t = AvlTree::new();
        for k in [10, 20, 30, 40] {
            t.insert(k, ());
        }
        let mut tr = AccessTrace::default();
        let run = t.scan_from_traced(&25, 10, &mut tr);
        let keys: Vec<i32> = run.iter().map(|(k, _)| **k).collect();
        assert_eq!(keys, vec![30, 40]);
    }

    #[test]
    fn scan_limit_zero_is_empty() {
        let mut t = AvlTree::new();
        t.insert(1, ());
        let mut tr = AccessTrace::default();
        assert!(t.scan_from_traced(&0, 0, &mut tr).is_empty());
    }

    #[test]
    fn range_is_inclusive_and_ordered() {
        let mut t = AvlTree::new();
        for k in (0..100).rev() {
            t.insert(k, k * 2);
        }
        let r: Vec<i64> = t.range(&10, &20).into_iter().map(|(k, _)| *k).collect();
        assert_eq!(r, (10..=20).collect::<Vec<_>>());
        assert!(t.range(&200, &300).is_empty());
        assert!(t.range(&20, &10).is_empty(), "inverted bounds");
        // Bounds between keys.
        let mut sparse = AvlTree::new();
        for k in [10, 20, 30] {
            sparse.insert(k, ());
        }
        let r: Vec<i32> = sparse
            .range(&11, &29)
            .into_iter()
            .map(|(k, _)| *k)
            .collect();
        assert_eq!(r, vec![20]);
    }

    #[test]
    fn pages_grow_with_arena() {
        let mut t = AvlTree::with_page_fanout(10);
        for i in 0..95 {
            t.insert(i, ());
        }
        assert_eq!(t.pages(), 10);
    }
}
