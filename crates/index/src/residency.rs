//! A random-replacement residency simulator.
//!
//! §2 derives `faults = C · (1 − |M|/S)` assuming `|M|` of a structure's
//! `S` pages are resident under random replacement. [`PagedResidency`]
//! replays traced page visits against exactly that policy and counts
//! faults, letting the T1 experiment verify the model against the real
//! AVL/B+-tree implementations without materialising page buffers.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Tracks which logical pages are resident under random replacement.
#[derive(Debug)]
pub struct PagedResidency {
    capacity: usize,
    resident: Vec<u64>,
    pos: HashMap<u64, usize>,
    rng: StdRng,
    faults: u64,
    hits: u64,
}

impl PagedResidency {
    /// A residency set of `capacity` pages (`|M|`), with a seeded victim
    /// stream.
    pub fn new(capacity: usize, seed: u64) -> Self {
        PagedResidency {
            capacity: capacity.max(1),
            resident: Vec::with_capacity(capacity.max(1)),
            pos: HashMap::with_capacity(capacity.max(1)),
            rng: StdRng::seed_from_u64(seed),
            faults: 0,
            hits: 0,
        }
    }

    /// Capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Pages currently resident.
    pub fn resident_count(&self) -> usize {
        self.resident.len()
    }

    /// Records an access to `page`; returns whether it faulted.
    pub fn access(&mut self, page: u64) -> bool {
        if self.pos.contains_key(&page) {
            self.hits += 1;
            return false;
        }
        self.faults += 1;
        if self.resident.len() >= self.capacity {
            let victim_idx = self.rng.gen_range(0..self.resident.len());
            let victim = self.resident[victim_idx];
            self.pos.remove(&victim);
            let last = self.resident.pop().expect("non-empty");
            if victim_idx < self.resident.len() {
                self.resident[victim_idx] = last;
                self.pos.insert(last, victim_idx);
            }
        }
        self.pos.insert(page, self.resident.len());
        self.resident.push(page);
        true
    }

    /// Replays a page-visit sequence; returns the number of faults.
    pub fn replay(&mut self, pages: &[u64]) -> u64 {
        pages.iter().filter(|&&p| self.access(p)).count() as u64
    }

    /// Faults so far.
    pub fn faults(&self) -> u64 {
        self.faults
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Zeroes the counters (residency is kept — use after warm-up).
    pub fn reset_counters(&mut self) {
        self.faults = 0;
        self.hits = 0;
    }

    /// Pre-populates residency with pages `0..n` (up to capacity), so a
    /// measurement can start from a warm steady state.
    pub fn warm_with(&mut self, n: u64) {
        for p in 0..n.min(self.capacity as u64) {
            self.access(p);
        }
        self.reset_counters();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_accesses_fault_once() {
        let mut r = PagedResidency::new(10, 1);
        assert!(r.access(5));
        assert!(!r.access(5));
        assert_eq!(r.faults(), 1);
        assert_eq!(r.hits(), 1);
    }

    #[test]
    fn capacity_is_respected() {
        let mut r = PagedResidency::new(3, 1);
        for p in 0..10 {
            r.access(p);
        }
        assert_eq!(r.resident_count(), 3);
    }

    #[test]
    fn steady_state_fault_rate_matches_model() {
        // Uniform access to S pages with |M| resident: fault probability
        // converges to 1 − |M|/S under random replacement.
        let (s, m) = (200u64, 60usize);
        let mut r = PagedResidency::new(m, 42);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..5_000 {
            r.access(rng.gen_range(0..s));
        }
        r.reset_counters();
        let n = 50_000;
        for _ in 0..n {
            r.access(rng.gen_range(0..s));
        }
        let rate = r.faults() as f64 / n as f64;
        let model = 1.0 - m as f64 / s as f64;
        assert!(
            (rate - model).abs() < 0.03,
            "measured {rate}, model {model}"
        );
    }

    #[test]
    fn replay_counts_faults() {
        let mut r = PagedResidency::new(2, 3);
        let faults = r.replay(&[1, 2, 1, 2, 1]);
        assert_eq!(faults, 2);
    }

    #[test]
    fn warm_with_fills_and_resets() {
        let mut r = PagedResidency::new(5, 9);
        r.warm_with(10);
        assert_eq!(r.resident_count(), 5);
        assert_eq!(r.faults(), 0);
        assert_eq!(r.hits(), 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut r = PagedResidency::new(4, seed);
            let mut rng = StdRng::seed_from_u64(100);
            for _ in 0..1000 {
                r.access(rng.gen_range(0..20u64));
            }
            r.faults()
        };
        assert_eq!(run(5), run(5));
    }
}
