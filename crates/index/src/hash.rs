//! A chained hash index.
//!
//! §3/§4 of the paper make hashing the workhorse of main-memory query
//! processing: probes cost ≈ `F` comparisons on average (the universal
//! fudge factor covering chain overflow), independent of input order. This
//! index supports duplicate keys — the common case for a non-unique
//! secondary index — and reports actual probe lengths so the `F` assumption
//! can be measured.

use crate::AccessTrace;
use std::hash::{BuildHasher, BuildHasherDefault, Hash, Hasher};

/// A simple deterministic FNV-1a hasher; keeps experiments reproducible
/// across platforms and runs (`std`'s default hasher is randomly seeded).
#[derive(Debug, Clone, Copy, Default)]
pub struct Fnv1a {
    state: u64,
}

impl Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.state
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = if self.state == 0 {
            0xcbf2_9ce4_8422_2325
        } else {
            self.state
        };
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        self.state = h;
    }
}

/// Deterministic hasher factory.
pub type DeterministicState = BuildHasherDefault<Fnv1a>;

/// A chained hash index mapping keys to (possibly several) values.
#[derive(Debug, Clone)]
pub struct HashIndex<K, V> {
    buckets: Vec<Vec<(K, V)>>,
    len: usize,
    build: DeterministicState,
    max_load: f64,
}

impl<K: Hash + Eq + Clone, V> Default for HashIndex<K, V> {
    fn default() -> Self {
        HashIndex::new()
    }
}

impl<K: Hash + Eq + Clone, V> HashIndex<K, V> {
    /// An empty index.
    pub fn new() -> Self {
        HashIndex::with_buckets(16)
    }

    /// An empty index with an initial bucket count.
    pub fn with_buckets(n: usize) -> Self {
        HashIndex {
            buckets: (0..n.max(1)).map(|_| Vec::new()).collect(),
            len: 0,
            build: DeterministicState::default(),
            max_load: 1.2, // the paper's F: structure sized at |R|·F
        }
    }

    /// Number of entries (counting duplicates).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current bucket count.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    fn bucket_of(&self, key: &K) -> usize {
        (self.build.hash_one(key) % self.buckets.len() as u64) as usize
    }

    /// Inserts an entry (duplicates allowed).
    pub fn insert(&mut self, key: K, value: V) {
        if self.len as f64 >= self.buckets.len() as f64 * self.max_load {
            self.grow();
        }
        let b = self.bucket_of(&key);
        self.buckets[b].push((key, value));
        self.len += 1;
    }

    fn grow(&mut self) {
        let new_n = self.buckets.len() * 2;
        let old = std::mem::replace(&mut self.buckets, (0..new_n).map(|_| Vec::new()).collect());
        for bucket in old {
            for (k, v) in bucket {
                let b = self.bucket_of(&k);
                self.buckets[b].push((k, v));
            }
        }
    }

    /// All values for `key`.
    pub fn get_all<'a>(&'a self, key: &'a K) -> impl Iterator<Item = &'a V> + 'a {
        let b = self.bucket_of(key);
        self.buckets[b]
            .iter()
            .filter(move |(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// First value for `key`, if any.
    pub fn get(&self, key: &K) -> Option<&V> {
        let b = self.bucket_of(key);
        self.buckets[b]
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Traced probe: records one hash and the chain comparisons actually
    /// performed (the measured counterpart of the paper's `F · comp`).
    pub fn probe_traced<'a>(&'a self, key: &K, trace: &mut AccessTrace) -> Vec<&'a V> {
        let b = self.bucket_of(key);
        trace.visit(b as u64);
        let mut out = Vec::new();
        for (k, v) in &self.buckets[b] {
            trace.compare(1);
            if k == key {
                out.push(v);
            }
        }
        out
    }

    /// Removes all entries for `key`, returning how many were removed.
    pub fn remove_all(&mut self, key: &K) -> usize {
        let b = self.bucket_of(key);
        let before = self.buckets[b].len();
        self.buckets[b].retain(|(k, _)| k != key);
        let removed = before - self.buckets[b].len();
        self.len -= removed;
        removed
    }

    /// Removes one `(key, value)` entry matching a predicate on the value;
    /// returns it if found.
    pub fn remove_one(&mut self, key: &K, pred: impl Fn(&V) -> bool) -> Option<V> {
        let b = self.bucket_of(key);
        let pos = self.buckets[b]
            .iter()
            .position(|(k, v)| k == key && pred(v))?;
        self.len -= 1;
        Some(self.buckets[b].swap_remove(pos).1)
    }

    /// Iterates every entry in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.buckets
            .iter()
            .flat_map(|b| b.iter().map(|(k, v)| (k, v)))
    }

    /// Mean probe length over all current keys — the measured `F`.
    pub fn mean_probe_length(&self) -> f64 {
        if self.len == 0 {
            return 0.0;
        }
        // For each entry, the probe that finds it scans its whole bucket.
        let total: usize = self.buckets.iter().map(|b| b.len() * b.len()).sum();
        total as f64 / self.len as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_duplicates() {
        let mut h = HashIndex::new();
        h.insert("a", 1);
        h.insert("a", 2);
        h.insert("b", 3);
        let mut xs: Vec<i32> = h.get_all(&"a").copied().collect();
        xs.sort_unstable();
        assert_eq!(xs, vec![1, 2]);
        assert_eq!(h.get(&"c"), None);
        assert_eq!(h.len(), 3);
    }

    #[test]
    fn grows_and_keeps_everything() {
        let mut h = HashIndex::with_buckets(2);
        for i in 0..10_000i64 {
            h.insert(i, i * 7);
        }
        assert!(h.bucket_count() > 2);
        for i in (0..10_000).step_by(97) {
            assert_eq!(h.get(&i), Some(&(i * 7)));
        }
    }

    #[test]
    fn remove_all_and_one() {
        let mut h = HashIndex::new();
        h.insert(1, "x");
        h.insert(1, "y");
        h.insert(2, "z");
        assert_eq!(h.remove_one(&1, |v| *v == "y"), Some("y"));
        assert_eq!(h.len(), 2);
        assert_eq!(h.remove_all(&1), 1);
        assert_eq!(h.remove_all(&1), 0);
        assert_eq!(h.len(), 1);
        assert_eq!(h.get(&2), Some(&"z"));
    }

    #[test]
    fn probe_traced_counts_chain_comparisons() {
        let mut h = HashIndex::with_buckets(1); // force one chain
        h.max_load = f64::INFINITY;
        for i in 0..10 {
            h.insert(i, ());
        }
        let mut tr = AccessTrace::default();
        let found = h.probe_traced(&5, &mut tr);
        assert_eq!(found.len(), 1);
        assert_eq!(tr.comparisons, 10, "whole chain scanned");
    }

    #[test]
    fn mean_probe_length_tracks_fudge_factor() {
        // At load ≤ F = 1.2 the mean probe stays small — the paper's
        // "somewhat more than one probe".
        let mut h = HashIndex::with_buckets(1024);
        for i in 0..1_000i64 {
            h.insert(i, ());
        }
        let f = h.mean_probe_length();
        assert!((1.0..2.6).contains(&f), "mean probe length {f}");
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = HashIndex::with_buckets(64);
        let mut b = HashIndex::with_buckets(64);
        for i in 0..100i64 {
            a.insert(i, ());
            b.insert(i, ());
        }
        for i in 0..100i64 {
            assert_eq!(a.bucket_of(&i), b.bucket_of(&i));
        }
    }

    #[test]
    fn iter_covers_everything() {
        let mut h = HashIndex::new();
        for i in 0..50i64 {
            h.insert(i % 10, i);
        }
        assert_eq!(h.iter().count(), 50);
    }
}
