//! A paged binary tree (§2's footnote; CESA82, MUNT70).
//!
//! The paper's footnote on AVL trees: "if a paged binary tree organization
//! is used instead, the fanout per node will be slightly worse than the
//! B-tree. Furthermore, paged binary trees are not balanced and the worst
//! case access time may be significantly poorer than in the case of a
//! B-tree."
//!
//! This implementation follows the Muntz–Uzgalis dynamic allocation rule:
//! a new node is placed **in its parent's page** when that page has room,
//! otherwise in a fresh page. Subtrees therefore cluster, so a root-leaf
//! walk touches far fewer pages than an unclustered AVL — but the tree is
//! an ordinary unbalanced BST, so adversarial insertion orders degrade it
//! to a linked list, exactly the worst case the footnote warns about.

use crate::AccessTrace;

#[derive(Debug, Clone)]
struct Node<K, V> {
    key: K,
    value: V,
    left: Option<u32>,
    right: Option<u32>,
    page: u32,
}

/// An unbalanced binary search tree with subtree-clustered page placement.
#[derive(Debug, Clone)]
pub struct PagedBinaryTree<K, V> {
    nodes: Vec<Node<K, V>>,
    root: Option<u32>,
    page_load: Vec<u32>,
    nodes_per_page: u32,
}

impl<K: Ord, V> Default for PagedBinaryTree<K, V> {
    fn default() -> Self {
        PagedBinaryTree::new()
    }
}

impl<K: Ord, V> PagedBinaryTree<K, V> {
    /// A tree whose pages hold 37 nodes (the paper's standard geometry:
    /// ≈ 4096 / 108 bytes).
    pub fn new() -> Self {
        PagedBinaryTree::with_page_capacity(37)
    }

    /// A tree with explicit page capacity.
    pub fn with_page_capacity(nodes_per_page: u32) -> Self {
        assert!(nodes_per_page > 0);
        PagedBinaryTree {
            nodes: Vec::new(),
            root: None,
            page_load: Vec::new(),
            nodes_per_page,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Pages allocated (`S` for the §2 cost objective).
    pub fn pages(&self) -> u64 {
        self.page_load.len() as u64
    }

    /// Height of the tree (nodes on the longest root-leaf path).
    pub fn height(&self) -> u32 {
        fn depth<K, V>(t: &PagedBinaryTree<K, V>, n: Option<u32>) -> u32 {
            match n {
                None => 0,
                Some(i) => {
                    let node = &t.nodes[i as usize];
                    1 + depth(t, node.left).max(depth(t, node.right))
                }
            }
        }
        depth(self, self.root)
    }

    fn allocate_page_for(&mut self, parent_page: Option<u32>) -> u32 {
        if let Some(p) = parent_page {
            if self.page_load[p as usize] < self.nodes_per_page {
                self.page_load[p as usize] += 1;
                return p;
            }
        }
        // Parent page full (or no parent): open a fresh page.
        self.page_load.push(1);
        (self.page_load.len() - 1) as u32
    }

    /// Inserts `key -> value`; returns the previous value for the key.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let Some(root) = self.root else {
            let page = self.allocate_page_for(None);
            self.nodes.push(Node {
                key,
                value,
                left: None,
                right: None,
                page,
            });
            self.root = Some(0);
            return None;
        };
        let mut cur = root;
        loop {
            match key.cmp(&self.nodes[cur as usize].key) {
                std::cmp::Ordering::Equal => {
                    return Some(std::mem::replace(
                        &mut self.nodes[cur as usize].value,
                        value,
                    ));
                }
                std::cmp::Ordering::Less => {
                    if let Some(l) = self.nodes[cur as usize].left {
                        cur = l;
                    } else {
                        let page = self.allocate_page_for(Some(self.nodes[cur as usize].page));
                        let idx = self.nodes.len() as u32;
                        self.nodes.push(Node {
                            key,
                            value,
                            left: None,
                            right: None,
                            page,
                        });
                        self.nodes[cur as usize].left = Some(idx);
                        return None;
                    }
                }
                std::cmp::Ordering::Greater => {
                    if let Some(r) = self.nodes[cur as usize].right {
                        cur = r;
                    } else {
                        let page = self.allocate_page_for(Some(self.nodes[cur as usize].page));
                        let idx = self.nodes.len() as u32;
                        self.nodes.push(Node {
                            key,
                            value,
                            left: None,
                            right: None,
                            page,
                        });
                        self.nodes[cur as usize].right = Some(idx);
                        return None;
                    }
                }
            }
        }
    }

    /// Looks a key up.
    pub fn get(&self, key: &K) -> Option<&V> {
        let mut cur = self.root;
        while let Some(i) = cur {
            let n = &self.nodes[i as usize];
            cur = match key.cmp(&n.key) {
                std::cmp::Ordering::Equal => return Some(&n.value),
                std::cmp::Ordering::Less => n.left,
                std::cmp::Ordering::Greater => n.right,
            };
        }
        None
    }

    /// Traced lookup: one comparison per node, one page visit per *page*
    /// change — the clustering payoff the footnote alludes to.
    pub fn get_traced(&self, key: &K, trace: &mut AccessTrace) -> Option<&V> {
        let mut cur = self.root;
        while let Some(i) = cur {
            let n = &self.nodes[i as usize];
            trace.visit(n.page as u64);
            trace.compare(1);
            cur = match key.cmp(&n.key) {
                std::cmp::Ordering::Equal => return Some(&n.value),
                std::cmp::Ordering::Less => n.left,
                std::cmp::Ordering::Greater => n.right,
            };
        }
        None
    }

    /// In-order iteration.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        let mut stack = Vec::new();
        let mut out = Vec::with_capacity(self.nodes.len());
        let mut cur = self.root;
        loop {
            while let Some(i) = cur {
                stack.push(i);
                cur = self.nodes[i as usize].left;
            }
            let Some(i) = stack.pop() else { break };
            let n = &self.nodes[i as usize];
            out.push((&n.key, &n.value));
            cur = n.right;
        }
        out.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmdb_types::WorkloadRng;

    #[test]
    fn insert_get_iter_against_oracle() {
        let mut rng = WorkloadRng::seeded(31);
        let mut t = PagedBinaryTree::new();
        let mut oracle = std::collections::BTreeMap::new();
        for _ in 0..3_000 {
            let k = rng.int_in(0, 800);
            let v = rng.int_in(0, 1 << 30);
            assert_eq!(t.insert(k, v), oracle.insert(k, v));
        }
        assert_eq!(t.len(), oracle.len());
        for (k, v) in &oracle {
            assert_eq!(t.get(k), Some(v));
        }
        let got: Vec<i64> = t.iter().map(|(k, _)| *k).collect();
        let want: Vec<i64> = oracle.keys().copied().collect();
        assert_eq!(got, want);
    }

    #[test]
    fn clustering_beats_one_page_per_node() {
        // The whole point of paging the BST: a root-leaf walk crosses far
        // fewer pages than nodes.
        let mut rng = WorkloadRng::seeded(32);
        let n = 50_000i64;
        let mut keys: Vec<i64> = (0..n).collect();
        rng.shuffle(&mut keys);
        let mut t = PagedBinaryTree::with_page_capacity(37);
        for &k in &keys {
            t.insert(k, k);
        }
        let mut pages = 0u64;
        let mut comps = 0u64;
        for _ in 0..300 {
            let mut tr = AccessTrace::default();
            assert!(t.get_traced(&rng.int_in(0, n), &mut tr).is_some());
            pages += tr.page_reads();
            comps += tr.comparisons;
        }
        let ratio = pages as f64 / comps as f64;
        assert!(
            ratio < 0.7,
            "page visits should be well below node visits; ratio {ratio}"
        );
    }

    #[test]
    fn random_insertion_height_is_logarithmic_ish() {
        let mut rng = WorkloadRng::seeded(33);
        let n = 10_000i64;
        let mut keys: Vec<i64> = (0..n).collect();
        rng.shuffle(&mut keys);
        let mut t = PagedBinaryTree::new();
        for &k in &keys {
            t.insert(k, k);
        }
        let h = t.height() as f64;
        let log_n = (n as f64).log2();
        // Random BSTs average ≈ 2.99·log2(n) depth; allow headroom.
        assert!(h < 4.5 * log_n, "height {h} vs log2(n) {log_n}");
    }

    #[test]
    fn sorted_insertion_degenerates_as_the_footnote_warns() {
        let mut t = PagedBinaryTree::new();
        for k in 0..2_000 {
            t.insert(k, k);
        }
        assert_eq!(t.height(), 2_000, "unbalanced: a linked list");
        // But clustering still bounds page reads to n / capacity.
        let mut tr = AccessTrace::default();
        t.get_traced(&1_999, &mut tr);
        assert_eq!(tr.comparisons, 2_000);
        assert!(tr.page_reads() <= 2_000 / 37 + 1);
    }

    #[test]
    fn page_capacity_is_respected() {
        let mut t = PagedBinaryTree::with_page_capacity(10);
        let mut rng = WorkloadRng::seeded(34);
        let mut keys: Vec<i64> = (0..1_000).collect();
        rng.shuffle(&mut keys);
        for &k in &keys {
            t.insert(k, k);
        }
        assert!(t.pages() >= 100, "1000 nodes / 10 per page");
        // Every page's load is within capacity (checked internally by the
        // allocator; pages() × capacity must cover all nodes).
        assert!(t.pages() * 10 >= t.len() as u64);
    }

    #[test]
    fn duplicate_insert_replaces() {
        let mut t = PagedBinaryTree::new();
        assert_eq!(t.insert(5, "a"), None);
        assert_eq!(t.insert(5, "b"), Some("a"));
        assert_eq!(t.get(&5), Some(&"b"));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn empty_tree_behaviour() {
        let t: PagedBinaryTree<i64, ()> = PagedBinaryTree::new();
        assert!(t.is_empty());
        assert_eq!(t.get(&1), None);
        assert_eq!(t.height(), 0);
        assert_eq!(t.pages(), 0);
    }
}
