//! Deterministic workload randomness.
//!
//! Every experiment in the workspace must be reproducible run-to-run, so all
//! randomness flows through [`WorkloadRng`], a seeded ChaCha-free wrapper
//! around [`rand::rngs::StdRng`].

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::tuple::Tuple;
use crate::value::Value;

/// A deterministic random source for workload generation.
#[derive(Debug, Clone)]
pub struct WorkloadRng {
    rng: StdRng,
}

impl WorkloadRng {
    /// Creates a generator from a seed. The same seed always produces the
    /// same stream.
    pub fn seeded(seed: u64) -> Self {
        WorkloadRng {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn int_in(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range");
        self.rng.gen_range(lo..hi)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }

    /// Uniform index in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty range");
        self.rng.gen_range(0..n)
    }

    /// Coin flip with probability `p` of `true`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.rng.gen::<f64>() < p
    }

    /// A fixed-width uppercase-alphabetic string, deterministic in the
    /// stream. Useful for name columns.
    pub fn name(&mut self, width: usize) -> String {
        (0..width)
            .map(|_| (b'A' + self.rng.gen_range(0..26u8)) as char)
            .collect()
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.rng.gen_range(0..=i);
            xs.swap(i, j);
        }
    }

    /// A random permutation of `0..n`.
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut v: Vec<usize> = (0..n).collect();
        self.shuffle(&mut v);
        v
    }

    /// Generates `n` employee-style tuples `(id INT, name STR, salary FLOAT,
    /// dept INT)` with ids `0..n` in random order — the workload behind the
    /// paper's motivating `emp.name = "Jones"` queries.
    pub fn employees(&mut self, n: usize, departments: i64) -> Vec<Tuple> {
        let ids = self.permutation(n);
        ids.into_iter()
            .map(|id| {
                Tuple::new(vec![
                    Value::Int(id as i64),
                    Value::Str(self.name(8)),
                    Value::Float(20_000.0 + self.unit() * 80_000.0),
                    Value::Int(self.int_in(0, departments.max(1))),
                ])
            })
            .collect()
    }

    /// Generates a join column workload: `n` tuples with key drawn uniformly
    /// from `[0, key_space)` and a payload integer. Used to build R and S
    /// relations whose key values "are distributed similarly" (§3.5).
    pub fn keyed_tuples(&mut self, n: usize, key_space: i64) -> Vec<Tuple> {
        (0..n)
            .map(|i| {
                Tuple::new(vec![
                    Value::Int(self.int_in(0, key_space)),
                    Value::Int(i as i64),
                ])
            })
            .collect()
    }

    /// A Zipf(s) sampler over `[0, key_space)`: key `k` has probability
    /// proportional to `1/(k+1)^s`. Skewed key workloads stress the §3.3
    /// partition-overflow handling (the paper's recursive hybrid hash).
    pub fn zipf_index(&mut self, key_space: usize, s: f64) -> usize {
        assert!(key_space > 0);
        // Inverse-CDF sampling on the fly: cheap for the small key spaces
        // skew experiments use; callers needing bulk draws use
        // `zipf_tuples`, which precomputes the CDF.
        let mut total = 0.0;
        for k in 0..key_space {
            total += 1.0 / ((k + 1) as f64).powf(s);
        }
        let target = self.unit() * total;
        let mut acc = 0.0;
        for k in 0..key_space {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            if acc >= target {
                return k;
            }
        }
        key_space - 1
    }

    /// `n` tuples with Zipf(s)-distributed keys over `[0, key_space)`.
    pub fn zipf_tuples(&mut self, n: usize, key_space: usize, s: f64) -> Vec<Tuple> {
        assert!(key_space > 0);
        let mut cdf = Vec::with_capacity(key_space);
        let mut acc = 0.0;
        for k in 0..key_space {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = *cdf.last().expect("non-empty");
        (0..n)
            .map(|i| {
                let target = self.unit() * total;
                let k = cdf.partition_point(|&c| c < target).min(key_space - 1);
                Tuple::new(vec![Value::Int(k as i64), Value::Int(i as i64)])
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = WorkloadRng::seeded(42);
        let mut b = WorkloadRng::seeded(42);
        for _ in 0..100 {
            assert_eq!(a.int_in(0, 1000), b.int_in(0, 1000));
        }
        assert_eq!(a.name(8), b.name(8));
    }

    #[test]
    fn different_seed_differs() {
        let mut a = WorkloadRng::seeded(1);
        let mut b = WorkloadRng::seeded(2);
        let va: Vec<i64> = (0..32).map(|_| a.int_in(0, 1 << 30)).collect();
        let vb: Vec<i64> = (0..32).map(|_| b.int_in(0, 1 << 30)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut r = WorkloadRng::seeded(7);
        let mut p = r.permutation(100);
        p.sort_unstable();
        assert_eq!(p, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn employees_have_unique_ids_and_valid_fields() {
        let mut r = WorkloadRng::seeded(3);
        let emps = r.employees(500, 10);
        assert_eq!(emps.len(), 500);
        let mut ids: Vec<i64> = emps.iter().map(|t| t.get(0).as_int().unwrap()).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..500).collect::<Vec<_>>());
        for t in &emps {
            let sal = t.get(2).as_float().unwrap();
            assert!((20_000.0..100_000.0).contains(&sal));
            let dept = t.get(3).as_int().unwrap();
            assert!((0..10).contains(&dept));
        }
    }

    #[test]
    fn keyed_tuples_bound_keys() {
        let mut r = WorkloadRng::seeded(9);
        for t in r.keyed_tuples(200, 50) {
            let k = t.get(0).as_int().unwrap();
            assert!((0..50).contains(&k));
        }
    }

    #[test]
    fn zipf_is_skewed_toward_small_keys() {
        let mut r = WorkloadRng::seeded(13);
        let ts = r.zipf_tuples(10_000, 100, 1.2);
        let zero = ts
            .iter()
            .filter(|t| t.get(0).as_int().unwrap() == 0)
            .count();
        // Zipf(1.2) over 100 keys gives key 0 about 26 % of the mass.
        assert!(
            (1_500..4_500).contains(&zero),
            "key 0 drawn {zero} times out of 10 000"
        );
        for t in &ts {
            let k = t.get(0).as_int().unwrap();
            assert!((0..100).contains(&k));
        }
        // The single-draw sampler agrees with the bulk sampler in range.
        for _ in 0..50 {
            assert!(r.zipf_index(100, 1.2) < 100);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = WorkloadRng::seeded(4);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }
}
