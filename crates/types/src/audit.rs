//! Engine-wide runtime invariant auditing.
//!
//! Every stateful engine structure — buffer pool, heap file, lock manager,
//! MVCC store, recovery manager, index trees — exposes the same audit
//! entry point through [`Auditable`]. An audit walks the structure's
//! internal bookkeeping and reports the first inconsistency it finds as an
//! [`AuditViolation`] naming the component, the invariant, and the
//! observed state.
//!
//! Audits are diagnostic, not part of normal control flow: they run after
//! mutation batches in property tests and (behind `cfg(debug_assertions)`)
//! at commit points, where a violation means the engine itself — not the
//! workload — is wrong. The checks encode the safety arguments the paper
//! makes informally: frame accounting for the §2 buffer economics, §5.2's
//! "a dependent transaction never commits before its dependencies", LSN
//! monotonicity for §5.3 checkpointing, and version-chain timestamp order
//! for the §6 versioning sketch.

use crate::error::Error;
use std::fmt;

/// A violated internal invariant reported by an [`Auditable`] structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditViolation {
    /// The structure that failed its audit (e.g. `"BufferPool"`).
    pub component: &'static str,
    /// Short name of the violated invariant (e.g. `"pin-accounting"`).
    pub invariant: &'static str,
    /// Human-readable description of the observed inconsistency.
    pub detail: String,
}

impl AuditViolation {
    /// A new violation report.
    pub fn new(
        component: &'static str,
        invariant: &'static str,
        detail: impl Into<String>,
    ) -> Self {
        AuditViolation {
            component,
            invariant,
            detail: detail.into(),
        }
    }

    /// Passes when `cond` holds; otherwise builds the violation lazily.
    pub fn ensure(
        cond: bool,
        component: &'static str,
        invariant: &'static str,
        detail: impl FnOnce() -> String,
    ) -> Result<(), AuditViolation> {
        if cond {
            Ok(())
        } else {
            Err(AuditViolation::new(component, invariant, detail()))
        }
    }
}

impl fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} audit failed [{}]: {}",
            self.component, self.invariant, self.detail
        )
    }
}

impl std::error::Error for AuditViolation {}

impl From<AuditViolation> for Error {
    fn from(v: AuditViolation) -> Self {
        Error::Internal(v.to_string())
    }
}

/// Structures that can verify their own internal invariants.
///
/// `audit` must be read-only and side-effect free: it inspects the
/// structure's bookkeeping and either confirms every invariant or returns
/// the first [`AuditViolation`] found. Structures whose invariants span
/// external state (for example a heap file's tuple counts, which live on
/// the simulated disk) audit what they can standalone here and offer an
/// inherent `audit_with(...)` taking the extra context.
pub trait Auditable {
    /// Checks every internal invariant, returning the first violation.
    fn audit(&self) -> Result<(), AuditViolation>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ensure_passes_and_fails() {
        assert!(AuditViolation::ensure(true, "X", "inv", || unreachable!()).is_ok());
        let v = AuditViolation::ensure(false, "X", "inv", || "1 != 2".into()).unwrap_err();
        assert_eq!(v.component, "X");
        assert_eq!(v.invariant, "inv");
        assert!(v.to_string().contains("X audit failed [inv]: 1 != 2"));
    }

    #[test]
    fn converts_into_engine_error() {
        let v = AuditViolation::new("LockManager", "acyclic", "cycle 1->2->1");
        let e: Error = v.into();
        assert!(matches!(e, Error::Internal(s) if s.contains("acyclic")));
    }
}
