//! Parameter blocks used by the paper's cost models.
//!
//! * [`SystemParams`] — Table 2 of the paper: per-operation CPU times, I/O
//!   operation times, and the universal fudge factor `F`.
//! * [`RelationShape`] — sizes of the relations R and S in the join study.
//! * [`AccessGeometry`] — the §2 relation characteristics
//!   (`||R||, K, T, Pg, P`).
//! * [`CostWeights`] — the §4 Selinger-style objective `W·CPU + IO`.

/// Per-operation costs, Table 2 of the paper. CPU times are in
/// **microseconds**, I/O times in **milliseconds**; accessors convert to
/// seconds so downstream arithmetic is unit-safe.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemParams {
    /// `comp` — time to compare keys, µs.
    pub comp_us: f64,
    /// `hash` — time to hash a key, µs.
    pub hash_us: f64,
    /// `move` — time to move a tuple, µs.
    pub move_us: f64,
    /// `swap` — time to swap two tuples, µs.
    pub swap_us: f64,
    /// `IOseq` — sequential I/O operation time, ms.
    pub io_seq_ms: f64,
    /// `IOrand` — random I/O operation time, ms.
    pub io_rand_ms: f64,
    /// `F` — universal fudge factor for hash tables / sort structures.
    pub fudge: f64,
}

impl SystemParams {
    /// The exact Table 2 settings: comp 3 µs, hash 9 µs, move 20 µs,
    /// swap 60 µs, IOseq 10 ms, IOrand 25 ms, F = 1.2.
    pub fn table2() -> Self {
        SystemParams {
            comp_us: 3.0,
            hash_us: 9.0,
            move_us: 20.0,
            swap_us: 60.0,
            io_seq_ms: 10.0,
            io_rand_ms: 25.0,
            fudge: 1.2,
        }
    }

    /// `comp` in seconds.
    pub fn comp(&self) -> f64 {
        self.comp_us * 1e-6
    }

    /// `hash` in seconds.
    pub fn hash(&self) -> f64 {
        self.hash_us * 1e-6
    }

    /// `move` in seconds.
    pub fn mv(&self) -> f64 {
        self.move_us * 1e-6
    }

    /// `swap` in seconds.
    pub fn swap(&self) -> f64 {
        self.swap_us * 1e-6
    }

    /// `IOseq` in seconds.
    pub fn io_seq(&self) -> f64 {
        self.io_seq_ms * 1e-3
    }

    /// `IOrand` in seconds.
    pub fn io_rand(&self) -> f64 {
        self.io_rand_ms * 1e-3
    }
}

impl Default for SystemParams {
    fn default() -> Self {
        SystemParams::table2()
    }
}

/// Shapes of the two relations joined in §3, Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RelationShape {
    /// `|R|` — pages in the smaller relation R.
    pub r_pages: u64,
    /// `|S|` — pages in the larger relation S.
    pub s_pages: u64,
    /// `||R||/|R|` — R tuples per page.
    pub r_tuples_per_page: u64,
    /// `||S||/|S|` — S tuples per page.
    pub s_tuples_per_page: u64,
}

impl RelationShape {
    /// Table 2: `|R| = |S| = 10 000` pages, 40 tuples per page.
    pub fn table2() -> Self {
        RelationShape {
            r_pages: 10_000,
            s_pages: 10_000,
            r_tuples_per_page: 40,
            s_tuples_per_page: 40,
        }
    }

    /// `||R||` — total tuples in R.
    pub fn r_tuples(&self) -> u64 {
        self.r_pages * self.r_tuples_per_page
    }

    /// `||S||` — total tuples in S.
    pub fn s_tuples(&self) -> u64 {
        self.s_pages * self.s_tuples_per_page
    }
}

impl Default for RelationShape {
    fn default() -> Self {
        RelationShape::table2()
    }
}

/// §2 relation characteristics for the access-method study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccessGeometry {
    /// `||R||` — number of tuples in the relation.
    pub tuples: u64,
    /// `K` — key width, bytes.
    pub key_width: u64,
    /// `T` — tuple width, bytes.
    pub tuple_width: u64,
    /// `Pg` — page size, bytes.
    pub page_size: u64,
    /// `P` — pointer width, bytes.
    pub pointer_width: u64,
}

impl AccessGeometry {
    /// A representative 1984-flavoured default: one million 100-byte tuples
    /// with 8-byte keys, 4 KB pages and 4-byte pointers.
    pub fn standard() -> Self {
        AccessGeometry {
            tuples: 1_000_000,
            key_width: 8,
            tuple_width: 100,
            page_size: 4096,
            pointer_width: 4,
        }
    }

    /// AVL node width: tuple plus two child pointers (§2).
    pub fn avl_node_width(&self) -> u64 {
        self.tuple_width + 2 * self.pointer_width
    }

    /// `S` — pages occupied by the AVL structure:
    /// `ceil(||R|| · (T + 2P) / Pg)`.
    pub fn avl_pages(&self) -> u64 {
        let total = self.tuples * self.avl_node_width();
        total.div_ceil(self.page_size)
    }

    /// B+-tree fanout under Yao's 69 % average occupancy:
    /// `floor(0.69 · Pg / (K + P))`, at least 2.
    pub fn btree_fanout(&self) -> u64 {
        let f = (0.69 * self.page_size as f64 / (self.key_width + self.pointer_width) as f64)
            .floor() as u64;
        f.max(2)
    }

    /// Tuples per 69 %-full B+-tree leaf.
    pub fn btree_leaf_capacity(&self) -> u64 {
        ((0.69 * self.page_size as f64 / self.tuple_width as f64).floor() as u64).max(1)
    }

    /// `D` — number of leaf pages of the B+-tree.
    pub fn btree_leaves(&self) -> u64 {
        self.tuples.div_ceil(self.btree_leaf_capacity())
    }

    /// Height of the B+-tree *index* (levels above the leaves):
    /// `ceil(log_fanout(D))`.
    pub fn btree_height(&self) -> u64 {
        let d = self.btree_leaves() as f64;
        let f = self.btree_fanout() as f64;
        if d <= 1.0 {
            return 0;
        }
        (d.ln() / f.ln()).ceil() as u64
    }

    /// `S'` — total pages of the B+-tree. The paper's first approximation is
    /// `S' = D`; we add the (small) interior-node term `D·f/(f−1) − D`.
    pub fn btree_pages(&self) -> u64 {
        let d = self.btree_leaves();
        let f = self.btree_fanout();
        // Geometric series of interior levels on top of D leaves.
        let mut pages = d;
        let mut level = d;
        while level > 1 {
            level = level.div_ceil(f);
            pages += level;
        }
        pages
    }

    /// `C = log2(||R||) + 0.25` — AVL comparisons per random lookup (Knuth).
    pub fn avl_comparisons(&self) -> f64 {
        (self.tuples as f64).log2() + 0.25
    }

    /// `C' = log2(||R||)` — B+-tree comparisons per random lookup (the
    /// paper's simplifying assumption `C = C' = log2 ||R||`).
    pub fn btree_comparisons(&self) -> f64 {
        (self.tuples as f64).log2()
    }
}

impl Default for AccessGeometry {
    fn default() -> Self {
        AccessGeometry::standard()
    }
}

/// Weights for the §4 planning objective `W·|CPU| + |I/O|` (Selinger).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostWeights {
    /// `W` — relative weight of a second of CPU versus one I/O operation.
    pub cpu_weight: f64,
}

impl Default for CostWeights {
    fn default() -> Self {
        // One I/O ≈ 10 ms; weighting CPU seconds at 100 makes 10 ms of CPU
        // equal one sequential I/O, a balanced 1984-era default.
        CostWeights { cpu_weight: 100.0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_matches_paper() {
        let p = SystemParams::table2();
        assert_eq!(p.comp_us, 3.0);
        assert_eq!(p.hash_us, 9.0);
        assert_eq!(p.move_us, 20.0);
        assert_eq!(p.swap_us, 60.0);
        assert_eq!(p.io_seq_ms, 10.0);
        assert_eq!(p.io_rand_ms, 25.0);
        assert_eq!(p.fudge, 1.2);
        // Unit conversions.
        assert!((p.comp() - 3e-6).abs() < 1e-15);
        assert!((p.io_rand() - 0.025).abs() < 1e-12);
    }

    #[test]
    fn relation_shape_tuple_counts() {
        let s = RelationShape::table2();
        assert_eq!(s.r_tuples(), 400_000);
        assert_eq!(s.s_tuples(), 400_000);
    }

    #[test]
    fn avl_pages_standard() {
        let g = AccessGeometry::standard();
        // 1e6 tuples * 108 bytes / 4096 = 26 368 pages (ceil).
        assert_eq!(g.avl_node_width(), 108);
        assert_eq!(g.avl_pages(), (1_000_000u64 * 108).div_ceil(4096));
    }

    #[test]
    fn btree_geometry_standard() {
        let g = AccessGeometry::standard();
        // fanout = floor(0.69*4096/12) = 235
        assert_eq!(g.btree_fanout(), 235);
        // leaf capacity = floor(0.69*4096/100) = 28
        assert_eq!(g.btree_leaf_capacity(), 28);
        let d = 1_000_000u64.div_ceil(28);
        assert_eq!(g.btree_leaves(), d);
        // height = ceil(log_235(35715)) = 2
        assert_eq!(g.btree_height(), 2);
        // S' slightly exceeds D.
        assert!(g.btree_pages() > d);
        assert!(g.btree_pages() < d + d / 100);
    }

    #[test]
    fn avl_structure_is_smaller_than_btree() {
        // With T >> P and 69 % B+-tree occupancy, S ≈ 0.69 · S' (§2).
        let g = AccessGeometry::standard();
        let ratio = g.avl_pages() as f64 / g.btree_pages() as f64;
        assert!(
            (0.6..0.8).contains(&ratio),
            "S/S' = {ratio} out of expected band"
        );
    }

    #[test]
    fn comparison_counts() {
        let g = AccessGeometry::standard();
        assert!((g.avl_comparisons() - (1e6f64.log2() + 0.25)).abs() < 1e-9);
        assert!(g.avl_comparisons() > g.btree_comparisons());
    }

    #[test]
    fn degenerate_single_page_tree() {
        let g = AccessGeometry {
            tuples: 10,
            key_width: 8,
            tuple_width: 100,
            page_size: 4096,
            pointer_width: 4,
        };
        assert_eq!(g.btree_leaves(), 1);
        assert_eq!(g.btree_height(), 0);
        assert_eq!(g.btree_pages(), 1);
    }
}
