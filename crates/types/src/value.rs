//! The value model: a small set of scalar types with a total order.
//!
//! Floats are wrapped so that [`Value`] is totally ordered and hashable —
//! index keys and hash-partitioning both require that. NaN sorts greater
//! than every other float, mirroring `f64::total_cmp`.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A scalar value stored in a tuple.
#[derive(Debug, Clone)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float (totally ordered via `total_cmp`).
    Float(f64),
    /// Variable-width string.
    Str(String),
    /// SQL-style null; sorts before everything else.
    Null,
}

impl Value {
    /// Returns the value's type tag for schema checking.
    pub fn data_type(&self) -> Option<crate::schema::DataType> {
        match self {
            Value::Int(_) => Some(crate::schema::DataType::Int),
            Value::Float(_) => Some(crate::schema::DataType::Float),
            Value::Str(_) => Some(crate::schema::DataType::Str),
            Value::Null => None,
        }
    }

    /// Width of this value when stored, in bytes. Strings are their byte
    /// length plus a 2-byte length prefix; scalars are 8 bytes; nulls 1.
    pub fn stored_width(&self) -> usize {
        match self {
            Value::Int(_) | Value::Float(_) => 8,
            Value::Str(s) => 2 + s.len(),
            Value::Null => 1,
        }
    }

    /// Extracts an integer, if that is what this value holds.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Extracts a float, if that is what this value holds.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// Extracts a string slice, if that is what this value holds.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// True for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view used by aggregate functions: ints are widened to float.
    pub fn numeric(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(x) => Some(*x),
            _ => None,
        }
    }

    fn rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Int(_) => 1,
            Value::Float(_) => 1, // ints and floats compare numerically
            Value::Str(_) => 2,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            _ => self.rank().cmp(&other.rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => state.write_u8(0),
            // Ints and floats must hash identically when they compare equal.
            Value::Int(i) => {
                state.write_u8(1);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(x) => {
                state.write_u8(1);
                x.to_bits().hash(state);
            }
            Value::Str(s) => {
                state.write_u8(2);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "'{s}'"),
            Value::Null => write!(f, "NULL"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn total_order_across_types() {
        assert!(Value::Null < Value::Int(i64::MIN));
        assert!(Value::Int(5) < Value::Str("a".into()));
        assert!(Value::Int(2) < Value::Int(10));
        assert!(Value::Str("abc".into()) < Value::Str("abd".into()));
    }

    #[test]
    fn int_float_compare_numerically() {
        assert_eq!(Value::Int(3), Value::Float(3.0));
        assert!(Value::Int(3) < Value::Float(3.5));
        assert!(Value::Float(2.5) < Value::Int(3));
    }

    #[test]
    fn equal_values_hash_equal() {
        assert_eq!(hash_of(&Value::Int(7)), hash_of(&Value::Float(7.0)));
        assert_eq!(
            hash_of(&Value::Str("x".into())),
            hash_of(&Value::Str("x".into()))
        );
    }

    #[test]
    fn nan_is_ordered() {
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan.cmp(&nan), Ordering::Equal);
        assert!(Value::Float(f64::INFINITY) < nan);
    }

    #[test]
    fn stored_width() {
        assert_eq!(Value::Int(1).stored_width(), 8);
        assert_eq!(Value::Str("abcd".into()).stored_width(), 6);
        assert_eq!(Value::Null.stored_width(), 1);
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(4).as_int(), Some(4));
        assert_eq!(Value::Int(4).as_str(), None);
        assert_eq!(Value::Str("q".into()).as_str(), Some("q"));
        assert_eq!(Value::Int(4).numeric(), Some(4.0));
        assert!(Value::Null.is_null());
    }
}
