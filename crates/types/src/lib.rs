#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Core types shared by every crate in the `mmdb` workspace.
//!
//! This crate defines the relational data model (values, tuples, schemas),
//! identifier newtypes, the error type, the parameter blocks used by the
//! cost models of DeWitt et al. (SIGMOD 1984), and deterministic workload
//! generation helpers.
//!
//! The paper models a relation `R` by five characteristics (its §2 notation
//! is preserved throughout the workspace):
//!
//! * `||R||` — number of tuples (here [`AccessGeometry::tuples`]),
//! * `K`     — key width in bytes,
//! * `T`     — tuple width in bytes,
//! * `Pg`    — page size in bytes,
//! * `P`     — pointer width in bytes.

pub mod audit;
pub mod cast;
pub mod error;
pub mod expr;
pub mod ids;
pub mod params;
pub mod rng;
pub mod schema;
pub mod tuple;
pub mod value;

pub use audit::{AuditViolation, Auditable};
pub use error::{Error, Result};
pub use expr::{CmpOp, Predicate};
pub use ids::{PageId, RelationId, SlotId, TupleId, TxnId};
pub use params::{AccessGeometry, CostWeights, RelationShape, SystemParams};
pub use rng::WorkloadRng;
pub use schema::{Column, DataType, Schema};
pub use tuple::Tuple;
pub use value::Value;

/// Page size used throughout the workspace (bytes). Matches the paper's
/// 4096-byte log/data pages.
pub const PAGE_SIZE: usize = 4096;
