//! Workspace-wide error type.

use std::fmt;

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by the storage, index, execution and recovery layers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A page id was out of range or never allocated.
    PageNotFound(u64),
    /// A relation name or id did not resolve in the catalog.
    RelationNotFound(String),
    /// A column name did not resolve against a schema.
    ColumnNotFound(String),
    /// A tuple did not match the schema it was checked against.
    SchemaMismatch {
        /// What the schema expected.
        expected: String,
        /// What the tuple provided.
        found: String,
    },
    /// A duplicate key was inserted into a unique index.
    DuplicateKey(String),
    /// A key lookup found nothing.
    KeyNotFound(String),
    /// The requested operation needs more buffer/memory pages than granted.
    OutOfMemory {
        /// Pages needed to proceed.
        needed: usize,
        /// Pages available.
        available: usize,
    },
    /// A tuple was too large to fit in a page.
    TupleTooLarge(usize),
    /// A transaction referenced after it terminated, or used incorrectly.
    InvalidTransaction(u64),
    /// Lock acquisition failed (deadlock victim or conflicting mode).
    LockConflict {
        /// Transaction that failed to acquire the lock.
        txn: u64,
        /// A printable description of the locked object.
        object: String,
    },
    /// The transaction was aborted (by the user or by the system).
    TransactionAborted(u64),
    /// The log was corrupt or truncated at recovery time.
    CorruptLog(String),
    /// A query-planning failure (unknown operator, empty plan space, ...).
    Planning(String),
    /// A wall-clock log device failed (disk full, unwritable path, ...).
    Io(String),
    /// A wall-clock log device failed permanently and the engine entered
    /// its fail-stop degraded state (§5.2 failure semantics): every
    /// in-flight and future commit is refused with this error instead of
    /// hanging on a page write that will never complete.
    LogDeviceFailed(String),
    /// A shared-state lock was poisoned: another session thread panicked
    /// while holding it, so the protected invariants are suspect.
    Poisoned(String),
    /// The engine (or its group-commit daemon) has shut down; no further
    /// transactions can be processed.
    Shutdown,
    /// Catch-all invariant violation; indicates a bug if ever produced.
    Internal(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::PageNotFound(id) => write!(f, "page {id} not found"),
            Error::RelationNotFound(name) => write!(f, "relation '{name}' not found"),
            Error::ColumnNotFound(name) => write!(f, "column '{name}' not found"),
            Error::SchemaMismatch { expected, found } => {
                write!(f, "schema mismatch: expected {expected}, found {found}")
            }
            Error::DuplicateKey(k) => write!(f, "duplicate key: {k}"),
            Error::KeyNotFound(k) => write!(f, "key not found: {k}"),
            Error::OutOfMemory { needed, available } => {
                write!(f, "out of memory: need {needed} pages, have {available}")
            }
            Error::TupleTooLarge(n) => write!(f, "tuple of {n} bytes exceeds page capacity"),
            Error::InvalidTransaction(id) => write!(f, "invalid transaction {id}"),
            Error::LockConflict { txn, object } => {
                write!(f, "transaction {txn} lock conflict on {object}")
            }
            Error::TransactionAborted(id) => write!(f, "transaction {id} aborted"),
            Error::CorruptLog(msg) => write!(f, "corrupt log: {msg}"),
            Error::Planning(msg) => write!(f, "planning error: {msg}"),
            Error::Io(msg) => write!(f, "log I/O failed: {msg}"),
            Error::LogDeviceFailed(msg) => {
                write!(f, "log device failed (engine degraded): {msg}")
            }
            Error::Poisoned(what) => write!(f, "poisoned lock: {what}"),
            Error::Shutdown => write!(f, "engine is shut down"),
            Error::Internal(msg) => write!(f, "internal invariant violated: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = Error::OutOfMemory {
            needed: 10,
            available: 4,
        };
        assert_eq!(e.to_string(), "out of memory: need 10 pages, have 4");
        assert_eq!(Error::PageNotFound(7).to_string(), "page 7 not found");
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(Error::PageNotFound(1), Error::PageNotFound(1));
        assert_ne!(Error::PageNotFound(1), Error::PageNotFound(2));
    }

    #[test]
    fn session_layer_errors_display() {
        assert_eq!(
            Error::Io("disk full".into()).to_string(),
            "log I/O failed: disk full"
        );
        assert_eq!(
            Error::Poisoned("engine state".into()).to_string(),
            "poisoned lock: engine state"
        );
        assert_eq!(Error::Shutdown.to_string(), "engine is shut down");
        assert_eq!(
            Error::LogDeviceFailed("device 0 gave up".into()).to_string(),
            "log device failed (engine degraded): device 0 gave up"
        );
    }

    #[test]
    fn error_is_std_error() {
        fn assert_std_error<E: std::error::Error>(_: &E) {}
        assert_std_error(&Error::Internal("x".into()));
    }
}
