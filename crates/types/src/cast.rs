//! Checked numeric conversions for the analytic cost models.
//!
//! The paper's cost formulas (§3, §4) are real-valued expressions over
//! integer inputs — page counts, tuple counts, fan-outs.  Rust's bare
//! `as` casts silently saturate or truncate, which is exactly the wrong
//! behaviour inside a cost model: a silently-clamped cardinality skews a
//! plan choice without any visible failure.  The helpers here make every
//! int↔float crossing explicit and loud (in debug builds) about
//! precision loss, and the `cargo xtask audit` lossy-cast pass flags any
//! bare `as` cast in `analytic`/`planner` that bypasses them.

/// Converts a tuple/page cardinality to `f64` for cost arithmetic.
///
/// Exact for every value up to 2^53; the paper's workloads (§2, Table 1)
/// stay far below that, so the debug assertion documents rather than
/// restricts.
#[must_use]
pub fn f64_from_u64(n: u64) -> f64 {
    debug_assert!(
        n <= (1u64 << 53),
        "cardinality {n} exceeds f64's exact integer range"
    );
    n as f64
}

/// Converts an in-memory length (`usize`) to `f64` for cost arithmetic.
///
/// Same exactness bound as [`f64_from_u64`].
#[must_use]
pub fn f64_from_usize(n: usize) -> f64 {
    debug_assert!(
        n as u128 <= (1u128 << 53),
        "length {n} exceeds f64's exact integer range"
    );
    n as f64
}

/// Converts a real-valued cost-model quantity back to a cardinality.
///
/// Truncates toward zero, mapping NaN and negatives to 0 and values
/// beyond `u64::MAX` to `u64::MAX` — a saturating floor, never UB and
/// never a silently wrapped count.  Callers wanting a ceiling apply
/// `.ceil()` first.
#[must_use]
pub fn u64_from_f64(x: f64) -> u64 {
    if x.is_nan() || x <= 0.0 {
        0
    } else if x >= u64::MAX as f64 {
        u64::MAX
    } else {
        x as u64
    }
}

/// Converts a join count to the `u32` exponent form `saturating_pow`
/// wants, saturating instead of truncating.
#[must_use]
pub fn u32_from_usize(n: usize) -> u32 {
    u32::try_from(n).unwrap_or(u32::MAX)
}

/// `u64` companion of [`u32_from_usize`]: saturating, never truncating.
#[must_use]
pub fn u32_from_u64(n: u64) -> u32 {
    u32::try_from(n).unwrap_or(u32::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_round_trips_small_cardinalities() {
        assert_eq!(f64_from_u64(0), 0.0);
        assert_eq!(f64_from_u64(4096), 4096.0);
        assert_eq!(f64_from_usize(17), 17.0);
    }

    #[test]
    fn u64_from_f64_saturates_instead_of_wrapping() {
        assert_eq!(u64_from_f64(f64::NAN), 0);
        assert_eq!(u64_from_f64(-3.0), 0);
        assert_eq!(u64_from_f64(2.9), 2);
        assert_eq!(u64_from_f64(1e30), u64::MAX);
    }

    #[test]
    fn u32_exponent_saturates() {
        assert_eq!(u32_from_usize(5), 5);
        assert_eq!(u32_from_usize(usize::MAX), u32::MAX);
    }
}
