//! Selection predicates over tuples.
//!
//! A small expression language shared by the executor (which evaluates
//! predicates) and the access planner (which estimates their selectivity
//! and pushes them down the operator tree, §4).

use crate::tuple::Tuple;
use crate::value::Value;
use std::fmt;

/// Comparison operator for column-vs-constant predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Applies the operator to an ordering result.
    pub fn matches(&self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// A boolean predicate over one tuple.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// `column <op> constant`.
    Compare {
        /// Column index.
        column: usize,
        /// Operator.
        op: CmpOp,
        /// Constant operand.
        value: Value,
    },
    /// `lo <= column <= hi`.
    Between {
        /// Column index.
        column: usize,
        /// Inclusive lower bound.
        lo: Value,
        /// Inclusive upper bound.
        hi: Value,
    },
    /// String column starts with a prefix — the paper's
    /// `emp.name = "J*"` example.
    StrPrefix {
        /// Column index.
        column: usize,
        /// Required prefix.
        prefix: String,
    },
    /// Conjunction.
    And(Box<Predicate>, Box<Predicate>),
    /// Disjunction.
    Or(Box<Predicate>, Box<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
    /// Always true (the planner's neutral element).
    True,
}

impl Predicate {
    /// Convenience: `column = value`.
    pub fn eq(column: usize, value: impl Into<Value>) -> Self {
        Predicate::Compare {
            column,
            op: CmpOp::Eq,
            value: value.into(),
        }
    }

    /// Convenience: `column <op> value`.
    pub fn cmp(column: usize, op: CmpOp, value: impl Into<Value>) -> Self {
        Predicate::Compare {
            column,
            op,
            value: value.into(),
        }
    }

    /// Convenience: conjunction.
    pub fn and(self, other: Predicate) -> Self {
        Predicate::And(Box::new(self), Box::new(other))
    }

    /// Convenience: disjunction.
    pub fn or(self, other: Predicate) -> Self {
        Predicate::Or(Box::new(self), Box::new(other))
    }

    /// Evaluates the predicate against a tuple. Nulls compare as the §2
    /// value model dictates (smallest). Returns the verdict plus the number
    /// of leaf comparisons performed (for cost accounting).
    pub fn eval_counting(&self, tuple: &Tuple) -> (bool, u64) {
        match self {
            Predicate::Compare { column, op, value } => {
                (op.matches(tuple.get(*column).cmp(value)), 1)
            }
            Predicate::Between { column, lo, hi } => {
                let v = tuple.get(*column);
                (v >= lo && v <= hi, 2)
            }
            Predicate::StrPrefix { column, prefix } => match tuple.get(*column) {
                Value::Str(s) => (s.starts_with(prefix.as_str()), 1),
                _ => (false, 1),
            },
            Predicate::And(a, b) => {
                let (ra, ca) = a.eval_counting(tuple);
                if !ra {
                    return (false, ca); // short-circuit
                }
                let (rb, cb) = b.eval_counting(tuple);
                (rb, ca + cb)
            }
            Predicate::Or(a, b) => {
                let (ra, ca) = a.eval_counting(tuple);
                if ra {
                    return (true, ca);
                }
                let (rb, cb) = b.eval_counting(tuple);
                (rb, ca + cb)
            }
            Predicate::Not(p) => {
                let (r, c) = p.eval_counting(tuple);
                (!r, c)
            }
            Predicate::True => (true, 0),
        }
    }

    /// Evaluates without counting.
    pub fn eval(&self, tuple: &Tuple) -> bool {
        self.eval_counting(tuple).0
    }

    /// Columns the predicate mentions.
    pub fn columns(&self) -> Vec<usize> {
        let mut cols = Vec::new();
        self.collect_columns(&mut cols);
        cols.sort_unstable();
        cols.dedup();
        cols
    }

    fn collect_columns(&self, out: &mut Vec<usize>) {
        match self {
            Predicate::Compare { column, .. }
            | Predicate::Between { column, .. }
            | Predicate::StrPrefix { column, .. } => out.push(*column),
            Predicate::And(a, b) | Predicate::Or(a, b) => {
                a.collect_columns(out);
                b.collect_columns(out);
            }
            Predicate::Not(p) => p.collect_columns(out),
            Predicate::True => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn emp(name: &str, salary: f64) -> Tuple {
        Tuple::new(vec![Value::Int(1), name.into(), Value::Float(salary)])
    }

    #[test]
    fn compare_ops() {
        let t = emp("Jones", 50_000.0);
        assert!(Predicate::eq(1, "Jones").eval(&t));
        assert!(!Predicate::eq(1, "Smith").eval(&t));
        assert!(Predicate::cmp(2, CmpOp::Gt, 40_000.0).eval(&t));
        assert!(Predicate::cmp(2, CmpOp::Le, 50_000.0).eval(&t));
        assert!(!Predicate::cmp(2, CmpOp::Lt, 50_000.0).eval(&t));
        assert!(Predicate::cmp(2, CmpOp::Ne, 0.0).eval(&t));
    }

    #[test]
    fn prefix_matches_paper_example() {
        // retrieve (emp.salary, emp.name) where emp.name = "J*"
        let pred = Predicate::StrPrefix {
            column: 1,
            prefix: "J".into(),
        };
        assert!(pred.eval(&emp("Jones", 1.0)));
        assert!(pred.eval(&emp("Jacobs", 1.0)));
        assert!(!pred.eval(&emp("Smith", 1.0)));
        // Non-string columns never prefix-match.
        let on_int = Predicate::StrPrefix {
            column: 0,
            prefix: "1".into(),
        };
        assert!(!on_int.eval(&emp("x", 1.0)));
    }

    #[test]
    fn boolean_combinators_and_short_circuit() {
        let t = emp("Jones", 50_000.0);
        let p = Predicate::eq(1, "Jones").and(Predicate::cmp(2, CmpOp::Gt, 10_000.0));
        let (r, comps) = p.eval_counting(&t);
        assert!(r);
        assert_eq!(comps, 2);
        // False left arm short-circuits.
        let p2 = Predicate::eq(1, "Nope").and(Predicate::cmp(2, CmpOp::Gt, 10_000.0));
        let (r2, comps2) = p2.eval_counting(&t);
        assert!(!r2);
        assert_eq!(comps2, 1);
        // Or short-circuits on true.
        let p3 = Predicate::eq(1, "Jones").or(Predicate::eq(1, "Smith"));
        assert_eq!(p3.eval_counting(&t), (true, 1));
        assert!(!Predicate::Not(Box::new(Predicate::True)).eval(&t));
    }

    #[test]
    fn between_is_inclusive() {
        let t = emp("A", 100.0);
        let p = Predicate::Between {
            column: 2,
            lo: Value::Float(100.0),
            hi: Value::Float(200.0),
        };
        assert!(p.eval(&t));
    }

    #[test]
    fn columns_collects_and_dedups() {
        let p = Predicate::eq(2, 1i64).and(Predicate::eq(0, 1i64).or(Predicate::eq(2, 3i64)));
        assert_eq!(p.columns(), vec![0, 2]);
        assert!(Predicate::True.columns().is_empty());
    }
}
