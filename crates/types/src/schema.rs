//! Relation schemas: named, typed columns.

use crate::error::{Error, Result};
use crate::tuple::Tuple;
use std::fmt;

/// The scalar type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// Variable-width string.
    Str,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int => write!(f, "INT"),
            DataType::Float => write!(f, "FLOAT"),
            DataType::Str => write!(f, "STR"),
        }
    }
}

/// A single named column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name, unique within its schema.
    pub name: String,
    /// Column type.
    pub ty: DataType,
}

impl Column {
    /// Builds a column.
    pub fn new(name: impl Into<String>, ty: DataType) -> Self {
        Column {
            name: name.into(),
            ty,
        }
    }
}

/// An ordered list of columns describing a relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    /// Builds a schema from columns. Column names must be unique.
    pub fn new(columns: Vec<Column>) -> Result<Self> {
        for (i, c) in columns.iter().enumerate() {
            if columns[..i].iter().any(|d| d.name == c.name) {
                return Err(Error::SchemaMismatch {
                    expected: "unique column names".into(),
                    found: format!("duplicate column '{}'", c.name),
                });
            }
        }
        Ok(Schema { columns })
    }

    /// Convenience constructor from `(name, type)` pairs.
    pub fn of(cols: &[(&str, DataType)]) -> Self {
        Schema::new(
            cols.iter()
                .map(|(n, t)| Column::new(*n, *t))
                .collect::<Vec<_>>(),
        )
        .expect("static schema must have unique names")
    }

    /// The columns, in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Index of the named column.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .ok_or_else(|| Error::ColumnNotFound(name.to_owned()))
    }

    /// The column at `idx`, if in range.
    pub fn column(&self, idx: usize) -> Option<&Column> {
        self.columns.get(idx)
    }

    /// Validates a tuple against this schema (arity and per-column types;
    /// nulls satisfy any column type).
    pub fn check(&self, tuple: &Tuple) -> Result<()> {
        if tuple.arity() != self.arity() {
            return Err(Error::SchemaMismatch {
                expected: format!("{} columns", self.arity()),
                found: format!("{} values", tuple.arity()),
            });
        }
        for (i, v) in tuple.values().iter().enumerate() {
            if let Some(ty) = v.data_type() {
                if ty != self.columns[i].ty {
                    return Err(Error::SchemaMismatch {
                        expected: format!(
                            "{} for column '{}'",
                            self.columns[i].ty, self.columns[i].name
                        ),
                        found: ty.to_string(),
                    });
                }
            }
        }
        Ok(())
    }

    /// Concatenates two schemas (used by joins). Columns of the right schema
    /// that collide with a left name get a `_r` suffix.
    pub fn join(&self, right: &Schema) -> Schema {
        let mut cols = self.columns.clone();
        for c in &right.columns {
            let name = if cols.iter().any(|d| d.name == c.name) {
                format!("{}_r", c.name)
            } else {
                c.name.clone()
            };
            cols.push(Column::new(name, c.ty));
        }
        Schema { columns: cols }
    }

    /// Projects this schema onto the given column indices.
    pub fn project(&self, indices: &[usize]) -> Result<Schema> {
        let mut cols = Vec::with_capacity(indices.len());
        for &i in indices {
            let c = self
                .columns
                .get(i)
                .ok_or_else(|| Error::ColumnNotFound(format!("#{i}")))?;
            cols.push(c.clone());
        }
        Ok(Schema { columns: cols })
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", c.name, c.ty)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn emp() -> Schema {
        Schema::of(&[
            ("id", DataType::Int),
            ("name", DataType::Str),
            ("salary", DataType::Float),
        ])
    }

    #[test]
    fn rejects_duplicate_names() {
        let r = Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::new("a", DataType::Str),
        ]);
        assert!(r.is_err());
    }

    #[test]
    fn index_of_resolves() {
        let s = emp();
        assert_eq!(s.index_of("salary").unwrap(), 2);
        assert!(s.index_of("missing").is_err());
    }

    #[test]
    fn check_validates_arity_and_types() {
        let s = emp();
        let good = Tuple::new(vec![Value::Int(1), "bob".into(), Value::Float(10.0)]);
        assert!(s.check(&good).is_ok());
        let short = Tuple::new(vec![Value::Int(1)]);
        assert!(s.check(&short).is_err());
        let wrong = Tuple::new(vec![Value::Int(1), Value::Int(2), Value::Float(1.0)]);
        assert!(s.check(&wrong).is_err());
        let with_null = Tuple::new(vec![Value::Int(1), Value::Null, Value::Float(1.0)]);
        assert!(s.check(&with_null).is_ok());
    }

    #[test]
    fn join_renames_collisions() {
        let s = emp().join(&emp());
        assert_eq!(s.arity(), 6);
        assert_eq!(s.columns()[3].name, "id_r");
        assert_eq!(s.columns()[4].name, "name_r");
    }

    #[test]
    fn project_selects_columns() {
        let p = emp().project(&[2, 0]).unwrap();
        assert_eq!(p.columns()[0].name, "salary");
        assert_eq!(p.columns()[1].name, "id");
        assert!(emp().project(&[9]).is_err());
    }

    #[test]
    fn display_renders() {
        assert_eq!(emp().to_string(), "(id INT, name STR, salary FLOAT)");
    }
}
