//! Tuples: ordered lists of values.

use crate::value::Value;
use std::fmt;

/// A tuple (row) of a relation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Tuple {
    values: Vec<Value>,
}

impl Tuple {
    /// Builds a tuple from values.
    pub fn new(values: Vec<Value>) -> Self {
        Tuple { values }
    }

    /// The values, in column order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Number of values.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// The value in column `idx`. Panics if out of range — callers are
    /// expected to have validated against a schema.
    pub fn get(&self, idx: usize) -> &Value {
        &self.values[idx]
    }

    /// Stored width in bytes (sum of value widths plus a 2-byte arity header).
    pub fn stored_width(&self) -> usize {
        2 + self.values.iter().map(Value::stored_width).sum::<usize>()
    }

    /// Concatenates two tuples (used when a join outputs a matched pair).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut values = Vec::with_capacity(self.arity() + other.arity());
        values.extend_from_slice(&self.values);
        values.extend_from_slice(&other.values);
        Tuple { values }
    }

    /// Projects the tuple onto the given column indices.
    pub fn project(&self, indices: &[usize]) -> Tuple {
        Tuple {
            values: indices.iter().map(|&i| self.values[i].clone()).collect(),
        }
    }

    /// Consumes the tuple, returning its values.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple { values }
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Tuple {
            values: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concat_appends() {
        let a = Tuple::new(vec![Value::Int(1), "x".into()]);
        let b = Tuple::new(vec![Value::Int(2)]);
        let c = a.concat(&b);
        assert_eq!(c.arity(), 3);
        assert_eq!(c.get(2), &Value::Int(2));
    }

    #[test]
    fn project_reorders() {
        let t = Tuple::new(vec![Value::Int(1), Value::Int(2), Value::Int(3)]);
        let p = t.project(&[2, 0]);
        assert_eq!(p.values(), &[Value::Int(3), Value::Int(1)]);
    }

    #[test]
    fn stored_width_sums_values() {
        let t = Tuple::new(vec![Value::Int(1), "abc".into()]);
        assert_eq!(t.stored_width(), 2 + 8 + 5);
    }

    #[test]
    fn display_renders() {
        let t = Tuple::new(vec![Value::Int(1), "x".into()]);
        assert_eq!(t.to_string(), "[1, 'x']");
    }

    #[test]
    fn ordering_is_lexicographic() {
        let a = Tuple::new(vec![Value::Int(1), Value::Int(9)]);
        let b = Tuple::new(vec![Value::Int(2), Value::Int(0)]);
        assert!(a < b);
    }
}
