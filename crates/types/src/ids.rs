//! Identifier newtypes.
//!
//! Using distinct newtypes for page, slot, tuple, transaction and relation
//! identifiers prevents an entire class of "wrong id" bugs at compile time.

use std::fmt;

/// Identifies a page within a simulated disk or log device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PageId(pub u64);

/// Identifies a slot within a slotted page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SlotId(pub u16);

/// A tuple identifier (TID): page plus slot. The paper's §3.2 discusses
/// manipulating TID-key pairs instead of whole tuples; this is that TID.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TupleId {
    /// Page holding the tuple.
    pub page: PageId,
    /// Slot within the page.
    pub slot: SlotId,
}

impl TupleId {
    /// Builds a TID from raw parts.
    pub fn new(page: u64, slot: u16) -> Self {
        TupleId {
            page: PageId(page),
            slot: SlotId(slot),
        }
    }
}

/// Identifies a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TxnId(pub u64);

/// Identifies a relation in the catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RelationId(pub u32);

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl fmt::Display for TupleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.page, self.slot.0)
    }
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl fmt::Display for RelationId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuple_id_ordering_is_page_major() {
        let a = TupleId::new(1, 9);
        let b = TupleId::new(2, 0);
        assert!(a < b);
        let c = TupleId::new(1, 10);
        assert!(a < c);
    }

    #[test]
    fn display_forms() {
        assert_eq!(TupleId::new(3, 4).to_string(), "(P3, 4)");
        assert_eq!(TxnId(12).to_string(), "T12");
        assert_eq!(RelationId(2).to_string(), "R2");
    }
}
