//! Property tests for the SQL front end: no input — byte soup, token
//! soup, or truncated valid SQL — may panic the lexer or parser; they
//! must return errors. Valid generated statements must parse.

use mmdb_sql::ast::Statement;
use mmdb_sql::lexer::lex;
use mmdb_sql::parse;
use proptest::prelude::*;

fn keyword_soup() -> impl Strategy<Value = String> {
    let word = prop_oneof![
        Just("SELECT".to_string()),
        Just("FROM".to_string()),
        Just("WHERE".to_string()),
        Just("INSERT".to_string()),
        Just("INTO".to_string()),
        Just("VALUES".to_string()),
        Just("UPDATE".to_string()),
        Just("SET".to_string()),
        Just("DELETE".to_string()),
        Just("CREATE".to_string()),
        Just("TABLE".to_string()),
        Just("JOIN".to_string()),
        Just("ON".to_string()),
        Just("AND".to_string()),
        Just("NULL".to_string()),
        Just("BEGIN".to_string()),
        Just("COMMIT".to_string()),
        Just("ABORT".to_string()),
        Just("*".to_string()),
        Just(",".to_string()),
        Just("(".to_string()),
        Just(")".to_string()),
        Just("=".to_string()),
        Just("<>".to_string()),
        Just("<=".to_string()),
        Just(".".to_string()),
        Just(";".to_string()),
        Just("-".to_string()),
        Just("--".to_string()),
        Just("'s'".to_string()),
        Just("'".to_string()),
        Just("9223372036854775807".to_string()),
        Just("1.5".to_string()),
        Just("tbl".to_string()),
        Just("col".to_string()),
    ];
    prop::collection::vec(word, 0..24).prop_map(|ws| ws.join(" "))
}

proptest! {
    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        // Lexing/parsing take &str; exercise both the lossy decoding of
        // arbitrary bytes and any valid UTF-8 subset directly.
        let lossy = String::from_utf8_lossy(&bytes).into_owned();
        let _ = lex(&lossy);
        let _ = parse(&lossy);
        if let Ok(s) = std::str::from_utf8(&bytes) {
            let _ = parse(s);
        }
    }

    #[test]
    fn ascii_soup_never_panics(s in "[ -~]{0,200}") {
        let _ = lex(&s);
        let _ = parse(&s);
    }

    #[test]
    fn keyword_soup_never_panics(s in keyword_soup()) {
        let _ = parse(&s);
    }

    #[test]
    fn truncating_valid_sql_never_panics(cut in 0usize..120) {
        let sql = "SELECT a.x, b.y FROM a JOIN b ON a.id = b.id \
                   WHERE a.x >= -3 AND b.name = 'it''s' AND a.z <> 1.25;";
        let end = cut.min(sql.len());
        if let Some(prefix) = sql.get(..end) {
            let _ = parse(prefix);
        }
    }

    #[test]
    fn lexed_spans_stay_in_bounds(s in "[ -~]{0,120}") {
        if let Ok(tokens) = lex(&s) {
            for t in tokens {
                prop_assert!(t.at <= s.len());
            }
        }
    }

    #[test]
    fn generated_inserts_parse(
        table in any::<u32>().prop_map(|n| format!("t{n}")),
        ints in prop::collection::vec(any::<i64>(), 1..6),
    ) {
        let values = ints
            .iter()
            .map(|i| i.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        let sql = format!("INSERT INTO {table} VALUES ({values})");
        match parse(&sql) {
            Ok(Statement::Insert { table: t, rows, .. }) => {
                prop_assert_eq!(t, table);
                prop_assert_eq!(rows.len(), 1);
            }
            Ok(other) => prop_assert!(false, "wrong statement {other:?}"),
            Err(e) => prop_assert!(false, "valid INSERT failed to parse: {e}"),
        }
    }
}
