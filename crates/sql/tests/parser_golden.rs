//! Golden parse and error-message tests: one success case per
//! statement kind pinning the exact AST, and one failure case per kind
//! pinning the exact rendered error. These strings are the front
//! end's user interface — change them deliberately.

use mmdb_sql::ast::{ColRef, Condition, Literal, Projection, SelectStmt, SetExpr, Statement};
use mmdb_sql::parse;
use mmdb_types::expr::CmpOp;
use mmdb_types::schema::DataType;

fn col(name: &str) -> ColRef {
    ColRef {
        table: None,
        column: name.to_string(),
    }
}

fn qcol(table: &str, name: &str) -> ColRef {
    ColRef {
        table: Some(table.to_string()),
        column: name.to_string(),
    }
}

#[test]
fn golden_create_table() {
    assert_eq!(
        parse("CREATE TABLE Emp (id INT, name TEXT, salary FLOAT);").unwrap(),
        Statement::CreateTable {
            name: "emp".to_string(),
            columns: vec![
                ("id".to_string(), DataType::Int),
                ("name".to_string(), DataType::Str),
                ("salary".to_string(), DataType::Float),
            ],
        }
    );
}

#[test]
fn golden_insert() {
    assert_eq!(
        parse("INSERT INTO emp (id, name) VALUES (1, 'ann'), (2, NULL)").unwrap(),
        Statement::Insert {
            table: "emp".to_string(),
            columns: Some(vec!["id".to_string(), "name".to_string()]),
            rows: vec![
                vec![Literal::Int(1), Literal::Str("ann".to_string())],
                vec![Literal::Int(2), Literal::Null],
            ],
        }
    );
}

#[test]
fn golden_select() {
    assert_eq!(
        parse(
            "SELECT e.name, d.title FROM e JOIN d ON e.dept = d.id \
             WHERE e.salary >= 10.5 AND d.title <> 'temp'"
        )
        .unwrap(),
        Statement::Select(SelectStmt {
            projection: Projection::Columns(vec![qcol("e", "name"), qcol("d", "title")]),
            tables: vec!["e".to_string(), "d".to_string()],
            conditions: vec![
                Condition::ColEqCol {
                    left: qcol("e", "dept"),
                    right: qcol("d", "id"),
                },
                Condition::Compare {
                    col: qcol("e", "salary"),
                    op: CmpOp::Ge,
                    lit: Literal::Float(10.5),
                },
                Condition::Compare {
                    col: qcol("d", "title"),
                    op: CmpOp::Ne,
                    lit: Literal::Str("temp".to_string()),
                },
            ],
        })
    );
}

#[test]
fn golden_select_mirrors_literal_first_comparisons() {
    assert_eq!(
        parse("SELECT * FROM t WHERE 5 < x").unwrap(),
        Statement::Select(SelectStmt {
            projection: Projection::Star,
            tables: vec!["t".to_string()],
            conditions: vec![Condition::Compare {
                col: col("x"),
                op: CmpOp::Gt,
                lit: Literal::Int(5),
            }],
        })
    );
}

#[test]
fn golden_update() {
    assert_eq!(
        parse("UPDATE acct SET bal = bal - 100, touched = 1 WHERE id = 7").unwrap(),
        Statement::Update {
            table: "acct".to_string(),
            sets: vec![
                (
                    "bal".to_string(),
                    SetExpr::BinOp {
                        col: "bal".to_string(),
                        plus: false,
                        lit: Literal::Int(100),
                    },
                ),
                ("touched".to_string(), SetExpr::Lit(Literal::Int(1))),
            ],
            conditions: vec![Condition::Compare {
                col: col("id"),
                op: CmpOp::Eq,
                lit: Literal::Int(7),
            }],
        }
    );
}

#[test]
fn golden_delete() {
    assert_eq!(
        parse("DELETE FROM acct WHERE bal <= -1").unwrap(),
        Statement::Delete {
            table: "acct".to_string(),
            conditions: vec![Condition::Compare {
                col: col("bal"),
                op: CmpOp::Le,
                lit: Literal::Int(-1),
            }],
        }
    );
}

#[test]
fn golden_txn_controls() {
    assert_eq!(parse("BEGIN").unwrap(), Statement::Begin);
    assert_eq!(parse("COMMIT").unwrap(), Statement::Commit);
    assert_eq!(parse("ABORT").unwrap(), Statement::Abort);
    assert_eq!(parse("ROLLBACK;").unwrap(), Statement::Abort);
}

#[test]
fn golden_statement_kinds() {
    for (sql, kind) in [
        ("CREATE TABLE t (a INT)", "create_table"),
        ("INSERT INTO t VALUES (1)", "insert"),
        ("SELECT * FROM t", "select"),
        ("UPDATE t SET a = 1", "update"),
        ("DELETE FROM t", "delete"),
        ("BEGIN", "begin"),
        ("COMMIT", "commit"),
        ("ABORT", "abort"),
    ] {
        assert_eq!(parse(sql).unwrap().kind(), kind, "{sql}");
    }
}

/// Exact error text per statement kind (and the lexer).
#[test]
fn golden_error_messages() {
    for (sql, want) in [
        (
            "FLY TO t",
            "parse error at byte 0: unknown statement 'FLY' (expected CREATE, INSERT, \
             SELECT, UPDATE, DELETE, BEGIN, COMMIT, or ABORT)",
        ),
        (
            "CREATE TABLE t (a BLOB)",
            "parse error at byte 18: unknown column type 'BLOB' (expected INT, FLOAT, or TEXT)",
        ),
        (
            "SELECT FROM t",
            "parse error at byte 7: expected a column reference, found 'FROM'",
        ),
        (
            "SELECT * FROM t WHERE a < b",
            "parse error at byte 26: column-to-column comparison supports only '='",
        ),
        (
            "SELECT * FROM t extra",
            "parse error at byte 16: unexpected 'extra' after statement",
        ),
        (
            "INSERT INTO t VALUES (1",
            "parse error at byte 23: expected ',' or ')' in a VALUES row, found end of input",
        ),
        (
            "UPDATE t SET = 5",
            "parse error at byte 13: expected an assignment target column, found '='",
        ),
        (
            "DELETE t",
            "parse error at byte 7: expected keyword FROM, found 't'",
        ),
        (
            "SELECT * FROM t WHERE a = 'unterminated",
            "parse error at byte 26: unterminated string literal",
        ),
        (
            "SELECT * FROM t WHERE a = 99999999999999999999",
            "parse error at byte 26: integer literal '99999999999999999999' out of range",
        ),
    ] {
        assert_eq!(parse(sql).unwrap_err().to_string(), want, "{sql}");
    }
}
