//! Recursive-descent parser for the minimal SQL grammar.
//!
//! The grammar (EBNF; keywords case-insensitive, `--` comments and an
//! optional trailing `;` allowed):
//!
//! ```text
//! statement   := create | insert | select | update | delete
//!              | "BEGIN" | "COMMIT" | "ABORT" | "ROLLBACK"
//! create      := "CREATE" "TABLE" ident "(" coldef { "," coldef } ")"
//! coldef      := ident ( "INT" | "FLOAT" | "TEXT" )
//! insert      := "INSERT" "INTO" ident [ "(" ident { "," ident } ")" ]
//!                "VALUES" row { "," row }
//! row         := "(" literal { "," literal } ")"
//! select      := "SELECT" ( "*" | colref { "," colref } )
//!                "FROM" ident { "," ident | "JOIN" ident "ON" colref "=" colref }
//!                [ "WHERE" condition { "AND" condition } ]
//! update      := "UPDATE" ident "SET" assign { "," assign }
//!                [ "WHERE" condition { "AND" condition } ]
//! assign      := ident "=" ( literal | ident [ ("+"|"-") literal ] )
//! delete      := "DELETE" "FROM" ident [ "WHERE" condition { "AND" condition } ]
//! condition   := colref op literal | literal op colref | colref "=" colref
//! op          := "=" | "<>" | "!=" | "<" | "<=" | ">" | ">="
//! colref      := ident [ "." ident ]
//! literal     := [ "-" ] integer | [ "-" ] float | string | "NULL"
//! ```

use crate::ast::{ColRef, Condition, Literal, Projection, SelectStmt, SetExpr, Statement};
use crate::lexer::{lex, Spanned, Token};
use mmdb_types::expr::CmpOp;
use mmdb_types::schema::DataType;
use std::fmt;

/// A lex or parse failure: a message plus the byte offset in the input
/// where the problem starts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the offending token or character.
    pub offset: usize,
    /// What went wrong.
    pub msg: String,
}

impl ParseError {
    /// Builds an error at `offset`.
    pub fn at(offset: usize, msg: impl Into<String>) -> Self {
        ParseError {
            offset,
            msg: msg.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses one SQL statement (optionally `;`-terminated).
pub fn parse(input: &str) -> Result<Statement, ParseError> {
    let tokens = lex(input)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        end: input.len(),
    };
    let stmt = p.statement()?;
    p.eat_optional_semicolon();
    if let Some(t) = p.peek() {
        return Err(ParseError::at(
            t.at,
            format!("unexpected {} after statement", t.tok.describe()),
        ));
    }
    Ok(stmt)
}

/// Keywords that cannot double as table or column names.
const RESERVED: &[&str] = &[
    "select", "from", "where", "and", "join", "on", "insert", "into", "values", "update", "set",
    "delete", "create", "table", "begin", "commit", "abort", "rollback", "null",
];

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
    /// Byte length of the input, for end-of-input error offsets.
    end: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Spanned> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Spanned> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn here(&self) -> usize {
        self.peek().map_or(self.end, |t| t.at)
    }

    fn unexpected(&self, wanted: &str) -> ParseError {
        match self.peek() {
            Some(t) => ParseError::at(
                t.at,
                format!("expected {wanted}, found {}", t.tok.describe()),
            ),
            None => ParseError::at(self.end, format!("expected {wanted}, found end of input")),
        }
    }

    /// Consumes the next token if it is the keyword `kw`
    /// (case-insensitive identifier match).
    fn eat_kw(&mut self, kw: &str) -> bool {
        if let Some(Spanned {
            tok: Token::Ident(w),
            ..
        }) = self.peek()
        {
            if w.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.unexpected(&format!("keyword {kw}")))
        }
    }

    fn expect_tok(&mut self, want: &Token, what: &str) -> Result<(), ParseError> {
        match self.peek() {
            Some(t) if &t.tok == want => {
                self.pos += 1;
                Ok(())
            }
            _ => Err(self.unexpected(what)),
        }
    }

    /// Reads one identifier, lowercased: table and column names are
    /// case-insensitive throughout the front end (the catalog and
    /// schemas store lowercase). Reserved words are refused so a
    /// misplaced keyword (`SELECT FROM t`) errors where the name was
    /// expected instead of shifting the error downstream.
    fn ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.peek() {
            Some(Spanned {
                tok: Token::Ident(w),
                ..
            }) => {
                let w = w.to_ascii_lowercase();
                if RESERVED.contains(&w.as_str()) {
                    return Err(self.unexpected(what));
                }
                self.pos += 1;
                Ok(w)
            }
            _ => Err(self.unexpected(what)),
        }
    }

    /// Reads one identifier as written, reserved or not — only the
    /// statement dispatcher wants this.
    fn raw_ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.peek() {
            Some(Spanned {
                tok: Token::Ident(w),
                ..
            }) => {
                let w = w.clone();
                self.pos += 1;
                Ok(w)
            }
            _ => Err(self.unexpected(what)),
        }
    }

    fn eat_optional_semicolon(&mut self) {
        if let Some(Spanned {
            tok: Token::Semicolon,
            ..
        }) = self.peek()
        {
            self.pos += 1;
        }
    }

    fn statement(&mut self) -> Result<Statement, ParseError> {
        let at = self.here();
        let head = self.raw_ident("a statement keyword")?;
        match head.to_ascii_uppercase().as_str() {
            "CREATE" => self.create_table(),
            "INSERT" => self.insert(),
            "SELECT" => self.select(),
            "UPDATE" => self.update(),
            "DELETE" => self.delete(),
            "BEGIN" => Ok(Statement::Begin),
            "COMMIT" => Ok(Statement::Commit),
            "ABORT" | "ROLLBACK" => Ok(Statement::Abort),
            _ => Err(ParseError::at(
                at,
                format!("unknown statement '{head}' (expected CREATE, INSERT, SELECT, UPDATE, DELETE, BEGIN, COMMIT, or ABORT)"),
            )),
        }
    }

    fn create_table(&mut self) -> Result<Statement, ParseError> {
        self.expect_kw("TABLE")?;
        let name = self.ident("a table name")?;
        self.expect_tok(&Token::LParen, "'(' starting the column list")?;
        let mut columns = Vec::new();
        loop {
            let col = self.ident("a column name")?;
            let ty_at = self.here();
            let ty_word = self.ident("a column type (INT, FLOAT, or TEXT)")?;
            let ty = match ty_word.to_ascii_uppercase().as_str() {
                "INT" | "INTEGER" | "BIGINT" => DataType::Int,
                "FLOAT" | "DOUBLE" | "REAL" => DataType::Float,
                "TEXT" | "VARCHAR" | "STRING" => DataType::Str,
                other => {
                    return Err(ParseError::at(
                        ty_at,
                        format!("unknown column type '{other}' (expected INT, FLOAT, or TEXT)"),
                    ))
                }
            };
            columns.push((col, ty));
            match self.next() {
                Some(Spanned {
                    tok: Token::Comma, ..
                }) => continue,
                Some(Spanned {
                    tok: Token::RParen, ..
                }) => break,
                Some(t) => {
                    return Err(ParseError::at(
                        t.at,
                        format!("expected ',' or ')', found {}", t.tok.describe()),
                    ))
                }
                None => {
                    return Err(ParseError::at(
                        self.end,
                        "expected ',' or ')', found end of input",
                    ))
                }
            }
        }
        Ok(Statement::CreateTable { name, columns })
    }

    fn insert(&mut self) -> Result<Statement, ParseError> {
        self.expect_kw("INTO")?;
        let table = self.ident("a table name")?;
        let columns = if matches!(
            self.peek(),
            Some(Spanned {
                tok: Token::LParen,
                ..
            })
        ) {
            self.pos += 1;
            let mut cols = vec![self.ident("a column name")?];
            loop {
                match self.next() {
                    Some(Spanned {
                        tok: Token::Comma, ..
                    }) => cols.push(self.ident("a column name")?),
                    Some(Spanned {
                        tok: Token::RParen, ..
                    }) => break,
                    _ => return Err(self.unexpected("',' or ')' in the column list")),
                }
            }
            Some(cols)
        } else {
            None
        };
        self.expect_kw("VALUES")?;
        let mut rows = vec![self.value_row()?];
        while matches!(
            self.peek(),
            Some(Spanned {
                tok: Token::Comma,
                ..
            })
        ) {
            self.pos += 1;
            rows.push(self.value_row()?);
        }
        Ok(Statement::Insert {
            table,
            columns,
            rows,
        })
    }

    fn value_row(&mut self) -> Result<Vec<Literal>, ParseError> {
        self.expect_tok(&Token::LParen, "'(' starting a VALUES row")?;
        let mut row = vec![self.literal()?];
        loop {
            match self.next() {
                Some(Spanned {
                    tok: Token::Comma, ..
                }) => row.push(self.literal()?),
                Some(Spanned {
                    tok: Token::RParen, ..
                }) => return Ok(row),
                _ => return Err(self.unexpected("',' or ')' in a VALUES row")),
            }
        }
    }

    fn literal(&mut self) -> Result<Literal, ParseError> {
        let negative = if matches!(
            self.peek(),
            Some(Spanned {
                tok: Token::Minus,
                ..
            })
        ) {
            self.pos += 1;
            true
        } else {
            false
        };
        match self.next() {
            Some(Spanned {
                tok: Token::Int(i), ..
            }) => {
                if negative {
                    Ok(Literal::Int(-i))
                } else {
                    Ok(Literal::Int(i))
                }
            }
            Some(Spanned {
                tok: Token::Float(x),
                ..
            }) => {
                if negative {
                    Ok(Literal::Float(-x))
                } else {
                    Ok(Literal::Float(x))
                }
            }
            Some(Spanned {
                tok: Token::Str(s),
                at,
            }) => {
                if negative {
                    Err(ParseError::at(at, "cannot negate a string literal"))
                } else {
                    Ok(Literal::Str(s))
                }
            }
            Some(Spanned {
                tok: Token::Ident(w),
                at,
            }) if w.eq_ignore_ascii_case("NULL") => {
                if negative {
                    Err(ParseError::at(at, "cannot negate NULL"))
                } else {
                    Ok(Literal::Null)
                }
            }
            Some(t) => Err(ParseError::at(
                t.at,
                format!("expected a literal, found {}", t.tok.describe()),
            )),
            None => Err(ParseError::at(
                self.end,
                "expected a literal, found end of input",
            )),
        }
    }

    fn colref(&mut self) -> Result<ColRef, ParseError> {
        let first = self.ident("a column reference")?;
        if matches!(
            self.peek(),
            Some(Spanned {
                tok: Token::Dot,
                ..
            })
        ) {
            self.pos += 1;
            let col = self.ident("a column name after '.'")?;
            Ok(ColRef {
                table: Some(first),
                column: col,
            })
        } else {
            Ok(ColRef {
                table: None,
                column: first,
            })
        }
    }

    fn select(&mut self) -> Result<Statement, ParseError> {
        let projection = if matches!(
            self.peek(),
            Some(Spanned {
                tok: Token::Star,
                ..
            })
        ) {
            self.pos += 1;
            Projection::Star
        } else {
            let mut cols = vec![self.colref()?];
            while matches!(
                self.peek(),
                Some(Spanned {
                    tok: Token::Comma,
                    ..
                })
            ) {
                self.pos += 1;
                cols.push(self.colref()?);
            }
            Projection::Columns(cols)
        };
        self.expect_kw("FROM")?;
        let mut tables = vec![self.ident("a table name")?];
        let mut conditions = Vec::new();
        loop {
            if matches!(
                self.peek(),
                Some(Spanned {
                    tok: Token::Comma,
                    ..
                })
            ) {
                self.pos += 1;
                tables.push(self.ident("a table name")?);
            } else if self.eat_kw("JOIN") {
                tables.push(self.ident("a table name")?);
                self.expect_kw("ON")?;
                let left = self.colref()?;
                self.expect_tok(&Token::Eq, "'=' in the join condition")?;
                let right = self.colref()?;
                conditions.push(Condition::ColEqCol { left, right });
            } else {
                break;
            }
        }
        if self.eat_kw("WHERE") {
            self.where_conditions(&mut conditions)?;
        }
        Ok(Statement::Select(SelectStmt {
            projection,
            tables,
            conditions,
        }))
    }

    fn where_conditions(&mut self, out: &mut Vec<Condition>) -> Result<(), ParseError> {
        out.push(self.condition()?);
        while self.eat_kw("AND") {
            out.push(self.condition()?);
        }
        Ok(())
    }

    fn cmp_op(&mut self) -> Result<CmpOp, ParseError> {
        let op = match self.peek().map(|t| &t.tok) {
            Some(Token::Eq) => CmpOp::Eq,
            Some(Token::Ne) => CmpOp::Ne,
            Some(Token::Lt) => CmpOp::Lt,
            Some(Token::Le) => CmpOp::Le,
            Some(Token::Gt) => CmpOp::Gt,
            Some(Token::Ge) => CmpOp::Ge,
            _ => return Err(self.unexpected("a comparison operator")),
        };
        self.pos += 1;
        Ok(op)
    }

    /// Mirrors a comparison so the column sits on the left
    /// (`5 < bal` becomes `bal > 5`).
    fn mirror(op: CmpOp) -> CmpOp {
        match op {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    fn condition(&mut self) -> Result<Condition, ParseError> {
        // literal <op> colref
        let starts_with_literal = matches!(
            self.peek().map(|t| &t.tok),
            Some(Token::Int(_) | Token::Float(_) | Token::Str(_) | Token::Minus)
        );
        if starts_with_literal {
            let lit = self.literal()?;
            let op = self.cmp_op()?;
            let col = self.colref()?;
            return Ok(Condition::Compare {
                col,
                op: Self::mirror(op),
                lit,
            });
        }
        let left = self.colref()?;
        let op = self.cmp_op()?;
        // Right-hand side: literal or another column (column only for `=`).
        let rhs_is_col = matches!(self.peek().map(|t| &t.tok), Some(Token::Ident(w)) if !w.eq_ignore_ascii_case("NULL"));
        if rhs_is_col {
            let at = self.here();
            let right = self.colref()?;
            if op != CmpOp::Eq {
                return Err(ParseError::at(
                    at,
                    "column-to-column comparison supports only '='",
                ));
            }
            Ok(Condition::ColEqCol { left, right })
        } else {
            let lit = self.literal()?;
            Ok(Condition::Compare { col: left, op, lit })
        }
    }

    fn update(&mut self) -> Result<Statement, ParseError> {
        let table = self.ident("a table name")?;
        self.expect_kw("SET")?;
        let mut sets = vec![self.assignment()?];
        while matches!(
            self.peek(),
            Some(Spanned {
                tok: Token::Comma,
                ..
            })
        ) {
            self.pos += 1;
            sets.push(self.assignment()?);
        }
        let mut conditions = Vec::new();
        if self.eat_kw("WHERE") {
            self.where_conditions(&mut conditions)?;
        }
        Ok(Statement::Update {
            table,
            sets,
            conditions,
        })
    }

    fn assignment(&mut self) -> Result<(String, SetExpr), ParseError> {
        let target = self.ident("an assignment target column")?;
        self.expect_tok(&Token::Eq, "'=' in the assignment")?;
        // Column-based expression?
        if let Some(Spanned {
            tok: Token::Ident(w),
            ..
        }) = self.peek()
        {
            if !w.eq_ignore_ascii_case("NULL") {
                let col = w.clone();
                self.pos += 1;
                let plus = match self.peek().map(|t| &t.tok) {
                    Some(Token::Plus) => Some(true),
                    Some(Token::Minus) => Some(false),
                    _ => None,
                };
                return match plus {
                    Some(plus) => {
                        self.pos += 1;
                        let lit = self.literal()?;
                        Ok((target, SetExpr::BinOp { col, plus, lit }))
                    }
                    None => Ok((target, SetExpr::Col(col))),
                };
            }
        }
        let lit = self.literal()?;
        Ok((target, SetExpr::Lit(lit)))
    }

    fn delete(&mut self) -> Result<Statement, ParseError> {
        self.expect_kw("FROM")?;
        let table = self.ident("a table name")?;
        let mut conditions = Vec::new();
        if self.eat_kw("WHERE") {
            self.where_conditions(&mut conditions)?;
        }
        Ok(Statement::Delete { table, conditions })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_create_table() {
        let s = parse("CREATE TABLE emp (id INT, name TEXT, salary FLOAT);").unwrap();
        assert_eq!(
            s,
            Statement::CreateTable {
                name: "emp".to_string(),
                columns: vec![
                    ("id".to_string(), DataType::Int),
                    ("name".to_string(), DataType::Str),
                    ("salary".to_string(), DataType::Float),
                ],
            }
        );
    }

    #[test]
    fn parses_insert_multi_row() {
        let s = parse("insert into t (a, b) values (1, 'x'), (-2, NULL)").unwrap();
        match s {
            Statement::Insert {
                table,
                columns,
                rows,
            } => {
                assert_eq!(table, "t");
                assert_eq!(columns, Some(vec!["a".to_string(), "b".to_string()]));
                assert_eq!(
                    rows,
                    vec![
                        vec![Literal::Int(1), Literal::Str("x".to_string())],
                        vec![Literal::Int(-2), Literal::Null],
                    ]
                );
            }
            other => panic!("wrong statement: {other:?}"),
        }
    }

    #[test]
    fn parses_select_with_join_and_where() {
        let s = parse(
            "SELECT emp.name, dept.title FROM emp JOIN dept ON emp.dept_id = dept.id \
             WHERE emp.salary > 100.5 AND dept.title = 'eng'",
        )
        .unwrap();
        match s {
            Statement::Select(sel) => {
                assert_eq!(sel.tables, vec!["emp".to_string(), "dept".to_string()]);
                assert_eq!(sel.conditions.len(), 3);
                assert!(matches!(sel.conditions[0], Condition::ColEqCol { .. }));
            }
            other => panic!("wrong statement: {other:?}"),
        }
    }

    #[test]
    fn comma_join_is_equivalent() {
        let s = parse("SELECT * FROM a, b WHERE a.x = b.y").unwrap();
        match s {
            Statement::Select(sel) => {
                assert_eq!(sel.tables.len(), 2);
                assert!(matches!(sel.conditions[0], Condition::ColEqCol { .. }));
                assert_eq!(sel.projection, Projection::Star);
            }
            other => panic!("wrong statement: {other:?}"),
        }
    }

    #[test]
    fn mirrored_comparison_normalizes() {
        let s = parse("SELECT * FROM t WHERE 5 < x").unwrap();
        match s {
            Statement::Select(sel) => match &sel.conditions[0] {
                Condition::Compare { col, op, lit } => {
                    assert_eq!(col.column, "x");
                    assert_eq!(*op, CmpOp::Gt);
                    assert_eq!(*lit, Literal::Int(5));
                }
                other => panic!("wrong condition: {other:?}"),
            },
            other => panic!("wrong statement: {other:?}"),
        }
    }

    #[test]
    fn parses_update_with_arithmetic() {
        let s = parse("UPDATE acct SET bal = bal - 100 WHERE id = 7").unwrap();
        match s {
            Statement::Update { table, sets, .. } => {
                assert_eq!(table, "acct");
                assert_eq!(
                    sets,
                    vec![(
                        "bal".to_string(),
                        SetExpr::BinOp {
                            col: "bal".to_string(),
                            plus: false,
                            lit: Literal::Int(100),
                        }
                    )]
                );
            }
            other => panic!("wrong statement: {other:?}"),
        }
    }

    #[test]
    fn parses_delete_and_txn_controls() {
        assert!(matches!(
            parse("DELETE FROM t WHERE a = 1").unwrap(),
            Statement::Delete { .. }
        ));
        assert_eq!(parse("BEGIN").unwrap(), Statement::Begin);
        assert_eq!(parse("commit;").unwrap(), Statement::Commit);
        assert_eq!(parse("ROLLBACK").unwrap(), Statement::Abort);
        assert_eq!(parse("abort").unwrap(), Statement::Abort);
    }

    #[test]
    fn error_messages_name_position_and_expectation() {
        let e = parse("SELECT FROM t").unwrap_err();
        assert!(e.to_string().contains("expected a column reference"), "{e}");
        let e = parse("CREATE TABLE t (a BLOB)").unwrap_err();
        assert!(e.to_string().contains("unknown column type 'BLOB'"), "{e}");
        let e = parse("FLY TO t").unwrap_err();
        assert!(e.to_string().contains("unknown statement 'FLY'"), "{e}");
        let e = parse("SELECT * FROM t WHERE a < b").unwrap_err();
        assert!(
            e.to_string()
                .contains("column-to-column comparison supports only '='"),
            "{e}"
        );
        let e = parse("SELECT * FROM t extra garbage").unwrap_err();
        assert!(e.to_string().contains("after statement"), "{e}");
    }

    #[test]
    fn empty_input_is_an_error() {
        let e = parse("").unwrap_err();
        assert!(e.to_string().contains("end of input"), "{e}");
        assert!(parse(";").is_err());
    }
}
