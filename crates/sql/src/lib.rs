#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! A minimal SQL front end over the §5.2 session engine.
//!
//! The crate turns the key/value store of `mmdb-session` into a small
//! relational server substrate:
//!
//! * [`lexer`] + [`parser`] — a hand-rolled tokenizer and
//!   recursive-descent parser (no dependencies) for `CREATE TABLE`,
//!   `INSERT`, `SELECT` (with `WHERE` conjunctions and equi-joins),
//!   `UPDATE`, `DELETE`, and `BEGIN`/`COMMIT`/`ABORT`.
//! * [`codec`] — encodes table schemas and rows into the engine's
//!   `u64 → i64` store so the catalog and all rows ride the same WAL,
//!   group commit, and crash/recover machinery as raw key/value
//!   transactions.
//! * [`catalog`] — the volatile in-memory mirror of that durable
//!   image: schemas plus decoded rows, rebuilt from a store snapshot
//!   after recovery.
//! * [`query`] — the binder/planner bridge: resolves names, splits
//!   `WHERE` conjunctions into per-table predicates and join edges,
//!   feeds them to the §4 selectivity planner, and executes the chosen
//!   physical plan with the §3 `mmdb-exec` operators.
//! * [`session`] — [`SqlDb`]/[`SqlSession`]: per-connection statement
//!   execution with explicit transactions, engine row locks for
//!   write/write conflicts, and a volatile undo log so `ABORT` (or a
//!   deadlock victim) rolls the catalog mirror back in lockstep with
//!   the engine's own undo.
//!
//! Error surface: parse errors are [`ParseError`] (with a byte
//! offset); everything downstream is [`SqlError`].

pub mod ast;
pub mod catalog;
pub mod codec;
pub mod lexer;
pub mod parser;
pub mod query;
pub mod session;

pub use ast::{Statement, StatementKind};
pub use parser::{parse, ParseError};
pub use query::QueryResult;
pub use session::{ErrorClass, SqlDb, SqlError, SqlSession};
