//! Abstract syntax for the minimal SQL surface.

use mmdb_types::schema::DataType;
use mmdb_types::value::Value;

/// A possibly table-qualified column reference (`bal` or `acct.bal`).
#[derive(Debug, Clone, PartialEq)]
pub struct ColRef {
    /// Qualifying table name, if written.
    pub table: Option<String>,
    /// Column name.
    pub column: String,
}

impl std::fmt::Display for ColRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.table {
            Some(t) => write!(f, "{t}.{}", self.column),
            None => write!(f, "{}", self.column),
        }
    }
}

/// A literal constant in the SQL text.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// Integer literal (optionally negated).
    Int(i64),
    /// Float literal (optionally negated).
    Float(f64),
    /// String literal.
    Str(String),
    /// `NULL`.
    Null,
}

impl Literal {
    /// Converts to the engine's [`Value`] model.
    pub fn to_value(&self) -> Value {
        match self {
            Literal::Int(i) => Value::Int(*i),
            Literal::Float(x) => Value::Float(*x),
            Literal::Str(s) => Value::Str(s.clone()),
            Literal::Null => Value::Null,
        }
    }
}

/// One conjunct of a `WHERE` clause.
#[derive(Debug, Clone, PartialEq)]
pub enum Condition {
    /// `col <op> literal` (or `literal <op> col`, normalized).
    Compare {
        /// Column operand.
        col: ColRef,
        /// Comparison operator.
        op: mmdb_types::expr::CmpOp,
        /// Constant operand.
        lit: Literal,
    },
    /// `left = right` between two columns — an equi-join edge when the
    /// columns come from different tables.
    ColEqCol {
        /// Left column.
        left: ColRef,
        /// Right column.
        right: ColRef,
    },
}

/// Projection list of a `SELECT`.
#[derive(Debug, Clone, PartialEq)]
pub enum Projection {
    /// `SELECT *`.
    Star,
    /// Explicit column list.
    Columns(Vec<ColRef>),
}

/// A parsed `SELECT`.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// What to project.
    pub projection: Projection,
    /// Base tables, in `FROM` order (joined tables included).
    pub tables: Vec<String>,
    /// `WHERE` conjuncts plus any `JOIN ... ON` equalities.
    pub conditions: Vec<Condition>,
}

/// Right-hand side of an `UPDATE ... SET col = <expr>` assignment.
/// The expression language is deliberately tiny: a literal, a column,
/// or `col ± literal` (enough for read-modify-write workloads like
/// `SET bal = bal - 100`).
#[derive(Debug, Clone, PartialEq)]
pub enum SetExpr {
    /// Assign a constant.
    Lit(Literal),
    /// Copy another column of the same row.
    Col(String),
    /// `col + literal` or `col - literal` over the same row.
    BinOp {
        /// Source column.
        col: String,
        /// `true` for `+`, `false` for `-`.
        plus: bool,
        /// Constant operand.
        lit: Literal,
    },
}

/// A parsed SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `CREATE TABLE name (col TYPE, ...)`.
    CreateTable {
        /// Table name.
        name: String,
        /// Column names and types, in order.
        columns: Vec<(String, DataType)>,
    },
    /// `INSERT INTO t [(cols)] VALUES (...), (...)`.
    Insert {
        /// Target table.
        table: String,
        /// Explicit column list, if written.
        columns: Option<Vec<String>>,
        /// One literal list per row.
        rows: Vec<Vec<Literal>>,
    },
    /// `SELECT ... FROM ... [WHERE ...]`.
    Select(SelectStmt),
    /// `UPDATE t SET col = expr [, ...] [WHERE ...]`.
    Update {
        /// Target table.
        table: String,
        /// Assignments, in order.
        sets: Vec<(String, SetExpr)>,
        /// `WHERE` conjuncts (all single-table).
        conditions: Vec<Condition>,
    },
    /// `DELETE FROM t [WHERE ...]`.
    Delete {
        /// Target table.
        table: String,
        /// `WHERE` conjuncts (all single-table).
        conditions: Vec<Condition>,
    },
    /// `BEGIN`.
    Begin,
    /// `COMMIT`.
    Commit,
    /// `ABORT` (or `ROLLBACK`).
    Abort,
}

/// Statement kind label used for metrics and protocol accounting.
pub type StatementKind = &'static str;

/// Every label [`Statement::kind`] can produce, for pre-registering
/// labeled metric families.
pub const STATEMENT_KINDS: [StatementKind; 8] = [
    "create_table",
    "insert",
    "select",
    "update",
    "delete",
    "begin",
    "commit",
    "abort",
];

impl Statement {
    /// A stable snake_case label for this statement's kind.
    pub fn kind(&self) -> StatementKind {
        match self {
            Statement::CreateTable { .. } => "create_table",
            Statement::Insert { .. } => "insert",
            Statement::Select(_) => "select",
            Statement::Update { .. } => "update",
            Statement::Delete { .. } => "delete",
            Statement::Begin => "begin",
            Statement::Commit => "commit",
            Statement::Abort => "abort",
        }
    }
}
