//! The volatile catalog: an in-memory mirror of the durable SQL image.
//!
//! The durable truth lives in the session engine's store (see
//! [`crate::codec`] for the key layout); this module holds the decoded
//! mirror — table schemas plus rows — that statements bind and scan
//! against. The mirror is rebuilt from a store snapshot after
//! crash/recover, and mutated in lockstep with engine writes by
//! [`crate::session`].
//!
//! Lock discipline: the catalog sits behind one `RwLock` accessed only
//! through the short closure helpers on [`SharedCatalog`]
//! (`with_catalog_read` / `with_catalog_write`). The catalog lock is
//! the *outermost* class in the engine's documented lock order — no
//! engine lock may be taken while it is held, which the helpers make
//! structural: closures receive the catalog by reference and nothing
//! else, so an engine call inside one would need the session handle
//! smuggled in, and the audit's lock-order pass watches these helper
//! names for exactly that.

use mmdb_types::error::{Error, Result};
use mmdb_types::ids::TxnId;
use mmdb_types::schema::Schema;
use mmdb_types::tuple::Tuple;
use std::collections::BTreeMap;
use std::sync::{Arc, RwLock};

/// One table's volatile state.
#[derive(Debug, Clone)]
pub struct TableEntry {
    /// Stable id used in store keys.
    pub id: u32,
    /// The table's schema.
    pub schema: Schema,
    /// Decoded rows by row id.
    pub rows: BTreeMap<u32, Tuple>,
    /// Next row id to allocate.
    pub next_rid: u32,
    /// When `Some`, the table was created by this still-open
    /// transaction: only that transaction may see or touch it until
    /// commit publishes it (abort removes it). Keeping uncommitted DDL
    /// private stops another session from durably committing rows into
    /// a table whose catalog entry may never commit — which would
    /// orphan those rows in the log.
    pub pending_owner: Option<TxnId>,
}

impl TableEntry {
    /// True when `viewer` may see this table: committed tables are
    /// visible to everyone, a pending table only to its creator.
    pub fn visible_to(&self, viewer: Option<TxnId>) -> bool {
        match self.pending_owner {
            None => true,
            Some(owner) => viewer == Some(owner),
        }
    }
}

/// The catalog proper: tables by (case-insensitive) name.
#[derive(Debug, Default)]
pub struct Catalog {
    tables: BTreeMap<String, TableEntry>,
    next_table_id: u32,
}

impl Catalog {
    /// Looks up a table as seen by `viewer`; a table another
    /// transaction created but has not committed yet reads as missing,
    /// and the error names the relation either way.
    pub fn table(&self, name: &str, viewer: Option<TxnId>) -> Result<&TableEntry> {
        self.tables
            .get(&name.to_ascii_lowercase())
            .filter(|e| e.visible_to(viewer))
            .ok_or_else(|| Error::RelationNotFound(name.to_string()))
    }

    /// Mutable lookup with the same visibility rule as
    /// [`table`](Self::table).
    pub fn table_mut(&mut self, name: &str, viewer: Option<TxnId>) -> Result<&mut TableEntry> {
        self.tables
            .get_mut(&name.to_ascii_lowercase())
            .filter(|e| e.visible_to(viewer))
            .ok_or_else(|| Error::RelationNotFound(name.to_string()))
    }

    /// Mutable lookup ignoring visibility. Only for the undo path,
    /// whose records always describe state the undoing transaction
    /// itself produced.
    pub fn table_mut_any(&mut self, name: &str) -> Result<&mut TableEntry> {
        self.tables
            .get_mut(&name.to_ascii_lowercase())
            .ok_or_else(|| Error::RelationNotFound(name.to_string()))
    }

    /// Clears a pending marker: the creating transaction committed, so
    /// `name` is now visible to every session. No-op for unknown names.
    pub fn publish(&mut self, name: &str) {
        if let Some(entry) = self.tables.get_mut(&name.to_ascii_lowercase()) {
            entry.pending_owner = None;
        }
    }

    /// True when `name` exists — pending entries included, so a second
    /// `CREATE TABLE` of the same name conflicts instead of colliding
    /// on a table id (if the creator aborts, a retry succeeds).
    pub fn contains(&self, name: &str) -> bool {
        self.tables.contains_key(&name.to_ascii_lowercase())
    }

    /// Allocates the next table id (bounded by the key layout).
    pub fn alloc_table_id(&mut self) -> Result<u32> {
        if self.next_table_id > crate::codec::MAX_TABLE_ID {
            return Err(Error::OutOfMemory {
                needed: self.next_table_id as usize + 1,
                available: crate::codec::MAX_TABLE_ID as usize + 1,
            });
        }
        let id = self.next_table_id;
        self.next_table_id += 1;
        Ok(id)
    }

    /// Installs a table entry under `name` (lowercased).
    pub fn install(&mut self, name: &str, entry: TableEntry) {
        self.next_table_id = self.next_table_id.max(entry.id.saturating_add(1));
        self.tables.insert(name.to_ascii_lowercase(), entry);
    }

    /// Removes a table (the `CREATE TABLE` undo path).
    pub fn remove(&mut self, name: &str) {
        self.tables.remove(&name.to_ascii_lowercase());
    }

    /// Iterates tables as `(name, entry)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &TableEntry)> {
        self.tables.iter()
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True when no tables exist.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

/// The catalog behind its lock, shared by every session of one
/// database.
#[derive(Debug, Clone, Default)]
pub struct SharedCatalog {
    inner: Arc<RwLock<Catalog>>,
}

impl SharedCatalog {
    /// Runs `f` with shared (read) access to the catalog. The guard
    /// lives only for the closure — the catalog lock is the outermost
    /// lock class, so no engine call may happen inside `f`.
    pub fn with_catalog_read<T>(&self, f: impl FnOnce(&Catalog) -> Result<T>) -> Result<T> {
        let guard = self
            .inner
            .read()
            .map_err(|_| Error::Poisoned("sql catalog".to_string()))?;
        f(&guard)
    }

    /// Runs `f` with exclusive (write) access to the catalog. Same
    /// scoping rule as [`with_catalog_read`](Self::with_catalog_read).
    pub fn with_catalog_write<T>(&self, f: impl FnOnce(&mut Catalog) -> Result<T>) -> Result<T> {
        let mut guard = self
            .inner
            .write()
            .map_err(|_| Error::Poisoned("sql catalog".to_string()))?;
        f(&mut guard)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmdb_types::schema::DataType;

    fn entry(id: u32) -> TableEntry {
        TableEntry {
            id,
            schema: Schema::of(&[("id", DataType::Int)]),
            rows: BTreeMap::new(),
            next_rid: 0,
            pending_owner: None,
        }
    }

    #[test]
    fn names_are_case_insensitive() {
        let mut c = Catalog::default();
        c.install("Emp", entry(0));
        assert!(c.contains("EMP"));
        assert!(c.table("emp", None).is_ok());
        c.remove("eMp");
        assert!(c.table("emp", None).is_err());
    }

    #[test]
    fn pending_tables_are_private_until_published() {
        let mut c = Catalog::default();
        let mut e = entry(0);
        e.pending_owner = Some(TxnId(7));
        c.install("t", e);
        // Only the owning transaction sees it; the name still conflicts.
        assert!(c.table("t", None).is_err());
        assert!(c.table("t", Some(TxnId(8))).is_err());
        assert!(c.table("t", Some(TxnId(7))).is_ok());
        assert!(c.table_mut("t", None).is_err());
        assert!(c.table_mut("t", Some(TxnId(7))).is_ok());
        assert!(c.table_mut_any("t").is_ok());
        assert!(c.contains("t"));
        c.publish("t");
        assert!(c.table("t", None).is_ok());
        assert!(c.table("t", Some(TxnId(8))).is_ok());
    }

    #[test]
    fn table_ids_allocate_past_installed() {
        let mut c = Catalog::default();
        c.install("a", entry(5));
        assert_eq!(c.alloc_table_id().unwrap(), 6);
        assert_eq!(c.len(), 1);
        assert!(!c.is_empty());
    }

    #[test]
    fn shared_catalog_closures() {
        let shared = SharedCatalog::default();
        shared
            .with_catalog_write(|c| {
                c.install("t", entry(0));
                Ok(())
            })
            .unwrap();
        let n = shared.with_catalog_read(|c| Ok(c.len())).unwrap();
        assert_eq!(n, 1);
    }
}
