//! Statement execution against the session engine.
//!
//! [`SqlDb`] pairs one engine [`Session`] handle with the shared
//! volatile [`Catalog`]; [`SqlSession`] adds per-connection transaction
//! state. Durability rides the engine's ordinary write path: every
//! schema and row is chunked into the `u64 → i64` store (see
//! [`crate::codec`]), so SQL state gets WAL framing, group commit, and
//! crash/recover without any code of its own.
//!
//! # Visibility and rollback
//!
//! The catalog mirror is updated as statements execute, *before*
//! commit — row reads are read-uncommitted, matching the engine's own
//! `read()`. DDL is stricter: a table created inside an open
//! transaction stays private to that transaction (the entry carries a
//! `pending_owner` tag filtered out of every other session's lookups)
//! until commit publishes it. Otherwise another session could durably
//! commit rows into a table whose catalog entry never commits, leaving
//! orphan row keys in the log. Write-write conflicts are real
//! conflicts: every
//! `INSERT`/`UPDATE`/`DELETE` locks its row's header key through the
//! engine's per-shard lock manager, so two transactions mutating the
//! same row serialize (or deadlock, and the victim aborts). Each
//! catalog mutation pushes a volatile undo record; `ABORT` (or any
//! failed statement, which aborts the whole transaction) replays the
//! undo log in reverse and then aborts the engine transaction, which
//! rolls the durable side back.
//!
//! Statements outside an explicit `BEGIN` autocommit: they run in a
//! fresh transaction committed durably (`commit_durable`) before the
//! result returns.

use crate::ast::{Condition, Literal, SetExpr, Statement};
use crate::catalog::{SharedCatalog, TableEntry};
use crate::codec;
use crate::parser::{parse, ParseError};
use crate::query::{self, QueryResult};
use mmdb_session::{Engine, Session, Txn};
use mmdb_types::error::{Error, Result};
use mmdb_types::ids::TxnId;
use mmdb_types::schema::{Column, DataType, Schema};
use mmdb_types::tuple::Tuple;
use std::collections::BTreeMap;

/// Any error a SQL statement can produce.
#[derive(Debug)]
pub enum SqlError {
    /// The text did not parse.
    Parse(ParseError),
    /// Front-end semantic error (transaction state, unsupported shape).
    Sql(String),
    /// Engine, planner, or executor error.
    Exec(Error),
    /// A statement failed inside an explicit transaction, which the
    /// session then aborted. Wraps the original failure; classification
    /// follows the inner error.
    TxnAborted(Box<SqlError>),
}

/// How a failed statement should be treated by the caller: worth
/// retrying from the top (a fresh attempt may succeed — deadlock
/// victims, capacity refusals, shutdown races) or fatal as written
/// (parse errors, unknown tables, constraint-shaped failures).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorClass {
    /// Transient: the same statement may succeed if resubmitted.
    Retryable,
    /// Deterministic: resubmitting the same statement will fail again.
    Fatal,
}

impl SqlError {
    /// Classifies this error as [`ErrorClass::Retryable`] or
    /// [`ErrorClass::Fatal`]. The server forwards this in-band so
    /// clients can auto-retry safely.
    pub fn class(&self) -> ErrorClass {
        match self {
            SqlError::Parse(_) | SqlError::Sql(_) => ErrorClass::Fatal,
            SqlError::TxnAborted(inner) => inner.class(),
            SqlError::Exec(e) => match e {
                Error::LockConflict { .. } | Error::TransactionAborted(_) | Error::Shutdown => {
                    ErrorClass::Retryable
                }
                _ => ErrorClass::Fatal,
            },
        }
    }
}

impl std::fmt::Display for SqlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SqlError::Parse(e) => write!(f, "{e}"),
            SqlError::Sql(msg) => write!(f, "{msg}"),
            SqlError::Exec(e) => write!(f, "{e}"),
            SqlError::TxnAborted(inner) => write!(f, "{inner}; transaction aborted"),
        }
    }
}

impl std::error::Error for SqlError {}

impl From<ParseError> for SqlError {
    fn from(e: ParseError) -> Self {
        SqlError::Parse(e)
    }
}

impl From<Error> for SqlError {
    fn from(e: Error) -> Self {
        SqlError::Exec(e)
    }
}

/// One reversible catalog mutation, recorded as the statement applies
/// so `ABORT` can restore the mirror (the engine's own abort restores
/// the durable side).
#[derive(Debug)]
enum UndoOp {
    /// Undo an `INSERT`: drop the row from the mirror.
    RemoveRow { table: String, rid: u32 },
    /// Undo an `UPDATE` or `DELETE`: put the old tuple back — but only
    /// if the mirror still shows what this transaction wrote. A
    /// deadlock victim's engine locks are released (and its engine
    /// writes rolled back) *inside* the engine, before this volatile
    /// undo runs; a successor may have legitimately overwritten the row
    /// in that window, and restoring over its value would clobber
    /// committed state.
    RestoreRow {
        table: String,
        rid: u32,
        tuple: Tuple,
        /// What this transaction left in the mirror: `Some(new)` for an
        /// `UPDATE`, `None` for a `DELETE` (row absent).
        wrote: Option<Tuple>,
    },
    /// Undo a `CREATE TABLE`.
    DropTable { name: String },
}

/// A SQL database bound to one engine: the shared catalog plus a
/// session handle. Cheap to clone — make one [`SqlSession`] per
/// connection via [`SqlDb::session`].
#[derive(Clone)]
pub struct SqlDb {
    session: Session,
    catalog: SharedCatalog,
}

impl SqlDb {
    /// Opens the SQL layer over an engine, rebuilding the volatile
    /// catalog from the store's SQL-owned keys. After
    /// [`Engine::recover`] this is exactly the committed image: the
    /// log replayed into memory (§5.2), decoded back into schemas and
    /// rows.
    pub fn open(engine: &Engine) -> Result<SqlDb> {
        let session = engine.session();
        let catalog = SharedCatalog::default();
        let snapshot = session.snapshot_kv()?;

        // Regroup the flat key space per table / per row.
        let mut schema_chunks: BTreeMap<u32, BTreeMap<u64, i64>> = BTreeMap::new();
        let mut row_chunks: BTreeMap<(u32, u32), BTreeMap<u64, i64>> = BTreeMap::new();
        for (key, value) in snapshot {
            match codec::parse_key(key) {
                Some(codec::SqlKey::Catalog { table_id, chunk }) => {
                    schema_chunks
                        .entry(table_id)
                        .or_default()
                        .insert(chunk, value);
                }
                Some(codec::SqlKey::Row {
                    table_id,
                    rid,
                    chunk,
                }) => {
                    row_chunks
                        .entry((table_id, rid))
                        .or_default()
                        .insert(chunk, value);
                }
                None => {}
            }
        }

        let assemble = |chunks: &BTreeMap<u64, i64>, what: &str| -> Result<Option<Vec<u8>>> {
            let header = match chunks.get(&0) {
                Some(h) => *h,
                None => {
                    return Err(Error::CorruptLog(format!("{what} has no header chunk")));
                }
            };
            if header == codec::TOMBSTONE {
                return Ok(None);
            }
            if header < 0 {
                return Err(Error::CorruptLog(format!(
                    "{what} header {header} is not a length"
                )));
            }
            let len = header as usize;
            let need = len.div_ceil(8) as u64;
            let mut words = Vec::with_capacity(need as usize);
            for chunk in 1..=need {
                match chunks.get(&chunk) {
                    Some(w) => words.push(*w),
                    None => {
                        return Err(Error::CorruptLog(format!(
                            "{what} is missing chunk {chunk}"
                        )))
                    }
                }
            }
            codec::words_to_blob(&words, len).map(Some)
        };

        // Schemas first (rows need arities), then rows.
        let mut by_id: BTreeMap<u32, (String, Schema)> = BTreeMap::new();
        for (table_id, chunks) in &schema_chunks {
            let blob = match assemble(chunks, &format!("catalog entry {table_id}"))? {
                Some(b) => b,
                None => continue,
            };
            let (name, schema) = codec::decode_schema(&blob)?;
            by_id.insert(*table_id, (name, schema));
        }
        let mut rows: BTreeMap<u32, BTreeMap<u32, Tuple>> = BTreeMap::new();
        let mut next_rid: BTreeMap<u32, u32> = BTreeMap::new();
        for ((table_id, rid), chunks) in &row_chunks {
            // Tombstoned rows still advance the rid watermark.
            let bound = next_rid.entry(*table_id).or_insert(0);
            *bound = (*bound).max(rid.saturating_add(1));
            let blob = match assemble(chunks, &format!("row {rid} of table {table_id}"))? {
                Some(b) => b,
                None => continue,
            };
            // An orphan row (no catalog entry) is quarantined — skipped,
            // with its rid watermark kept — rather than failing the whole
            // open and leaving the database permanently unopenable.
            let (_, schema) = match by_id.get(table_id) {
                Some(entry) => entry,
                None => continue,
            };
            let tuple = codec::decode_row(&blob, schema.arity())?;
            rows.entry(*table_id).or_default().insert(*rid, tuple);
        }

        catalog.with_catalog_write(|cat| {
            for (table_id, (name, schema)) in &by_id {
                cat.install(
                    name,
                    TableEntry {
                        id: *table_id,
                        schema: schema.clone(),
                        rows: rows.remove(table_id).unwrap_or_default(),
                        next_rid: next_rid.get(table_id).copied().unwrap_or(0),
                        pending_owner: None,
                    },
                );
            }
            Ok(())
        })?;
        Ok(SqlDb { session, catalog })
    }

    /// A new statement session (one per connection or client thread).
    pub fn session(&self) -> SqlSession {
        SqlSession {
            db: self.clone(),
            txn: None,
            undo: Vec::new(),
        }
    }

    /// Committed table names currently in the catalog, sorted; tables
    /// pending inside an open transaction are not listed.
    pub fn table_names(&self) -> Result<Vec<String>> {
        self.catalog.with_catalog_read(|c| {
            Ok(c.iter()
                .filter(|(_, e)| e.visible_to(None))
                .map(|(n, _)| n.clone())
                .collect())
        })
    }
}

/// Per-connection statement execution state: an optional open
/// transaction and its volatile undo log.
pub struct SqlSession {
    db: SqlDb,
    txn: Option<Txn>,
    undo: Vec<UndoOp>,
}

impl SqlSession {
    /// Parses and runs one statement.
    pub fn execute(&mut self, sql: &str) -> std::result::Result<QueryResult, SqlError> {
        let stmt = parse(sql)?;
        self.run(&stmt)
    }

    /// True while an explicit transaction is open.
    pub fn in_transaction(&self) -> bool {
        self.txn.is_some()
    }

    /// Runs one parsed statement.
    pub fn run(&mut self, stmt: &Statement) -> std::result::Result<QueryResult, SqlError> {
        match stmt {
            Statement::Begin => {
                if self.txn.is_some() {
                    return Err(SqlError::Sql("a transaction is already open".to_string()));
                }
                self.txn = Some(self.db.session.begin()?);
                Ok(QueryResult::ack())
            }
            Statement::Commit => {
                let txn = self
                    .txn
                    .take()
                    .ok_or_else(|| SqlError::Sql("COMMIT outside a transaction".to_string()))?;
                match self.db.session.commit_durable(txn) {
                    Ok(_) => {
                        self.publish_and_clear_undo();
                        Ok(QueryResult::ack())
                    }
                    Err(e) => {
                        self.rollback_volatile();
                        Err(SqlError::Exec(e))
                    }
                }
            }
            Statement::Abort => {
                let txn = self
                    .txn
                    .take()
                    .ok_or_else(|| SqlError::Sql("ABORT outside a transaction".to_string()))?;
                self.rollback_volatile();
                // The engine may have already aborted us as a deadlock
                // victim; either way the durable side is rolled back.
                let _ = self.db.session.abort(txn);
                Ok(QueryResult::ack())
            }
            Statement::Select(sel) => {
                // Snapshot under the catalog read lock, then plan and
                // execute with the lock released — a long analytic join
                // must not stall every writer on the outermost lock.
                let viewer = self.txn.as_ref().map(Txn::id);
                let tables = self
                    .db
                    .catalog
                    .with_catalog_read(|c| query::snapshot_tables(sel, c, viewer))
                    .map_err(SqlError::Exec)?;
                query::run_select_on(sel, tables).map_err(SqlError::Exec)
            }
            mutation => self.run_mutation(mutation),
        }
    }

    /// Runs a DDL/DML statement, autocommitting when no transaction is
    /// open. Any failure aborts the whole transaction (volatile undo
    /// replayed, engine transaction aborted) — the error message tells
    /// the client so.
    fn run_mutation(&mut self, stmt: &Statement) -> std::result::Result<QueryResult, SqlError> {
        let auto = self.txn.is_none();
        if auto {
            self.txn = Some(self.db.session.begin()?);
        }
        let outcome = match self.txn.as_ref() {
            Some(txn) => {
                // `txn` borrows self.txn, so split the borrows by hand.
                let txn_ref = txn;
                match stmt {
                    Statement::CreateTable { name, columns } => {
                        create_table(&self.db, txn_ref, &mut self.undo, name, columns)
                    }
                    Statement::Insert {
                        table,
                        columns,
                        rows,
                    } => insert(&self.db, txn_ref, &mut self.undo, table, columns, rows),
                    Statement::Update {
                        table,
                        sets,
                        conditions,
                    } => update(&self.db, txn_ref, &mut self.undo, table, sets, conditions),
                    Statement::Delete { table, conditions } => {
                        delete(&self.db, txn_ref, &mut self.undo, table, conditions)
                    }
                    _ => Err(Error::Internal("not a mutation statement".to_string())),
                }
            }
            None => Err(Error::Internal(
                "mutation without a transaction".to_string(),
            )),
        };
        match outcome {
            Ok(result) => {
                if auto {
                    match self.txn.take() {
                        Some(txn) => match self.db.session.commit_durable(txn) {
                            Ok(_) => {
                                self.publish_and_clear_undo();
                                Ok(result)
                            }
                            Err(e) => {
                                self.rollback_volatile();
                                Err(SqlError::Exec(e))
                            }
                        },
                        None => Err(SqlError::Exec(Error::Internal(
                            "autocommit transaction vanished".to_string(),
                        ))),
                    }
                } else {
                    Ok(result)
                }
            }
            Err(e) => {
                self.rollback_volatile();
                if let Some(txn) = self.txn.take() {
                    let _ = self.db.session.abort(txn);
                }
                if auto {
                    Err(SqlError::Exec(e))
                } else {
                    Err(SqlError::TxnAborted(Box::new(SqlError::Exec(e))))
                }
            }
        }
    }

    /// After a successful commit: clears the pending markers of tables
    /// this transaction created — making them visible to every other
    /// session — and drops the undo log (the changes are durable now).
    fn publish_and_clear_undo(&mut self) {
        let created: Vec<String> = self
            .undo
            .iter()
            .filter_map(|op| match op {
                UndoOp::DropTable { name } => Some(name.clone()),
                _ => None,
            })
            .collect();
        if !created.is_empty() {
            let _ = self.db.catalog.with_catalog_write(|cat| {
                for name in &created {
                    cat.publish(name);
                }
                Ok(())
            });
        }
        self.undo.clear();
    }

    /// Replays the volatile undo log in reverse, restoring the catalog
    /// mirror. Engine-side rollback is the caller's job. Lookups skip
    /// the visibility filter: every record describes state this
    /// transaction itself produced.
    fn rollback_volatile(&mut self) {
        while let Some(op) = self.undo.pop() {
            let _ = self.db.catalog.with_catalog_write(|cat| {
                match op {
                    UndoOp::RemoveRow { ref table, rid } => {
                        if let Ok(entry) = cat.table_mut_any(table) {
                            entry.rows.remove(&rid);
                        }
                    }
                    UndoOp::RestoreRow {
                        ref table,
                        rid,
                        ref tuple,
                        ref wrote,
                    } => {
                        if let Ok(entry) = cat.table_mut_any(table) {
                            // Restore only when the mirror still shows
                            // this transaction's own write; anything
                            // else means a successor overwrote the row
                            // after the engine released our locks, and
                            // its value is the correct one.
                            if entry.rows.get(&rid) == wrote.as_ref() {
                                entry.rows.insert(rid, tuple.clone());
                            }
                        }
                    }
                    UndoOp::DropTable { ref name } => cat.remove(name),
                }
                Ok(())
            });
        }
    }
}

impl Drop for SqlSession {
    /// A dropped session with an open transaction aborts it — a
    /// disconnecting client must not leave row locks behind.
    fn drop(&mut self) {
        if let Some(txn) = self.txn.take() {
            self.rollback_volatile();
            let _ = self.db.session.abort(txn);
        }
    }
}

// ---------------------------------------------------------------------
// Mutation statements
// ---------------------------------------------------------------------

/// Writes `blob` as a chunked entry under `key_of(chunk)`: header
/// (chunk 0) carries the byte length, chunks `1..=n` the payload. The
/// header is written first — it is the row's lock point, so conflicts
/// surface before any payload writes.
fn write_blob(
    session: &Session,
    txn: &Txn,
    blob: &[u8],
    key_of: impl Fn(u64) -> Result<u64>,
) -> Result<()> {
    session.write(txn, key_of(0)?, blob.len() as i64)?;
    for (i, word) in codec::blob_to_words(blob).into_iter().enumerate() {
        session.write(txn, key_of(i as u64 + 1)?, word)?;
    }
    Ok(())
}

fn create_table(
    db: &SqlDb,
    txn: &Txn,
    undo: &mut Vec<UndoOp>,
    name: &str,
    columns: &[(String, DataType)],
) -> Result<QueryResult> {
    let schema = Schema::new(
        columns
            .iter()
            .map(|(n, ty)| Column::new(n.clone(), *ty))
            .collect(),
    )?;
    // Install in the mirror first, tagged as pending: only this
    // transaction sees the table until commit publishes it, so no other
    // session can durably commit rows into a table whose catalog entry
    // might never commit. The name itself is claimed immediately —
    // concurrent CREATEs of the same name race on the catalog lock
    // instead of silently colliding on a table id.
    let (table_id, blob) = db.catalog.with_catalog_write(|cat| {
        if cat.contains(name) {
            return Err(Error::Planning(format!("table '{name}' already exists")));
        }
        let id = cat.alloc_table_id()?;
        let blob = codec::encode_schema(name, &schema)?;
        cat.install(
            name,
            TableEntry {
                id,
                schema: schema.clone(),
                rows: BTreeMap::new(),
                next_rid: 0,
                pending_owner: Some(txn.id()),
            },
        );
        Ok((id, blob))
    })?;
    undo.push(UndoOp::DropTable {
        name: name.to_string(),
    });
    write_blob(&db.session, txn, &blob, |chunk| {
        codec::catalog_key(table_id, chunk)
    })?;
    Ok(QueryResult::ack())
}

fn insert(
    db: &SqlDb,
    txn: &Txn,
    undo: &mut Vec<UndoOp>,
    table: &str,
    columns: &Option<Vec<String>>,
    rows: &[Vec<Literal>],
) -> Result<QueryResult> {
    // Bind every row and reserve rids under one catalog lock.
    let viewer = Some(txn.id());
    let (table_id, bound) = db.catalog.with_catalog_write(|cat| {
        let entry = cat.table_mut(table, viewer)?;
        let mut bound = Vec::with_capacity(rows.len());
        for row in rows {
            let tuple = query::bind_insert_row(&entry.schema, columns, row)?;
            let blob = codec::encode_row(&tuple)?;
            if entry.next_rid == codec::MAX_RID {
                return Err(Error::OutOfMemory {
                    needed: entry.next_rid as usize,
                    available: codec::MAX_RID as usize,
                });
            }
            let rid = entry.next_rid;
            entry.next_rid += 1;
            bound.push((rid, tuple, blob));
        }
        Ok((entry.id, bound))
    })?;
    // Per row: durable write, then mirror + undo — so a failure part
    // way through leaves only undo-covered state behind.
    let count = bound.len() as u64;
    for (rid, tuple, blob) in bound {
        write_blob(&db.session, txn, &blob, |chunk| {
            codec::row_key(table_id, rid, chunk)
        })?;
        db.catalog.with_catalog_write(|cat| {
            cat.table_mut(table, viewer)?
                .rows
                .insert(rid, tuple.clone());
            Ok(())
        })?;
        undo.push(UndoOp::RemoveRow {
            table: table.to_string(),
            rid,
        });
    }
    Ok(QueryResult::affected(count))
}

/// Snapshot of the rows an `UPDATE`/`DELETE` will touch, plus what it
/// needs to touch them.
struct MutationScan {
    table_id: u32,
    schema: Schema,
    matches: Vec<(u32, Tuple)>,
}

fn scan_matching(
    db: &SqlDb,
    viewer: Option<TxnId>,
    table: &str,
    conditions: &[Condition],
) -> Result<MutationScan> {
    db.catalog.with_catalog_read(|cat| {
        let entry = cat.table(table, viewer)?;
        let pred = query::bind_table_predicate(table, &entry.schema, conditions)?;
        let matches = entry
            .rows
            .iter()
            .filter(|(_, t)| pred.eval(t))
            .map(|(rid, t)| (*rid, t.clone()))
            .collect();
        Ok(MutationScan {
            table_id: entry.id,
            schema: entry.schema.clone(),
            matches,
        })
    })
}

/// Locks one row's header through the engine and re-reads its current
/// tuple *from the engine* under that lock. Returns `None` when the
/// row vanished (or was tombstoned) between the scan and the lock —
/// the statement skips it, exactly as if the scan had never seen it.
///
/// The engine, not the catalog mirror, is the authority here: an
/// engine-side abort (deadlock victim) rolls the store back and
/// releases the victim's locks atomically under the shard lock, while
/// the victim's *mirror* writes linger until its session observes the
/// abort. Re-reading the mirror in that window reads uncommitted data
/// — a read-modify-write built on it silently drops the concurrent
/// committed update.
fn lock_and_refetch(
    db: &SqlDb,
    txn: &Txn,
    table_id: u32,
    rid: u32,
    arity: usize,
) -> Result<Option<Tuple>> {
    let header = db
        .session
        .read_for_update(txn, codec::row_key(table_id, rid, 0)?)?;
    let len = match header {
        None => return Ok(None),
        Some(h) if h == codec::TOMBSTONE => return Ok(None),
        Some(h) if h < 0 => {
            return Err(Error::Internal(format!(
                "row {rid} of table {table_id}: header {h} is not a length"
            )))
        }
        Some(h) => h as usize,
    };
    // The header's exclusive lock is the row's lock point (every writer
    // takes it first), so the payload chunks cannot change under us;
    // shared locks suffice and pick up §5.2 commit dependencies from a
    // pre-committed writer.
    let need = len.div_ceil(8) as u64;
    let mut words = Vec::with_capacity(need as usize);
    for chunk in 1..=need {
        match db
            .session
            .read_shared(txn, codec::row_key(table_id, rid, chunk)?)?
        {
            Some(w) => words.push(w),
            None => {
                return Err(Error::Internal(format!(
                    "row {rid} of table {table_id} is missing chunk {chunk}"
                )))
            }
        }
    }
    let blob = codec::words_to_blob(&words, len)?;
    codec::decode_row(&blob, arity).map(Some)
}

fn update(
    db: &SqlDb,
    txn: &Txn,
    undo: &mut Vec<UndoOp>,
    table: &str,
    sets: &[(String, SetExpr)],
    conditions: &[Condition],
) -> Result<QueryResult> {
    let scan = scan_matching(db, Some(txn.id()), table, conditions)?;
    let bound_sets = query::bind_sets(&scan.schema, sets)?;
    let pred = query::bind_table_predicate(table, &scan.schema, conditions)?;
    let mut affected = 0u64;
    for (rid, _) in scan.matches {
        // The scan ran unlocked; lock the row, then recheck against its
        // current value (it may have changed or stopped matching).
        let current = match lock_and_refetch(db, txn, scan.table_id, rid, scan.schema.arity())? {
            Some(t) if pred.eval(&t) => t,
            _ => continue,
        };
        let new = query::apply_sets(&scan.schema, &current, &bound_sets)?;
        let blob = codec::encode_row(&new)?;
        write_blob(&db.session, txn, &blob, |chunk| {
            codec::row_key(scan.table_id, rid, chunk)
        })?;
        db.catalog.with_catalog_write(|cat| {
            cat.table_mut(table, Some(txn.id()))?
                .rows
                .insert(rid, new.clone());
            Ok(())
        })?;
        undo.push(UndoOp::RestoreRow {
            table: table.to_string(),
            rid,
            tuple: current,
            wrote: Some(new),
        });
        affected += 1;
    }
    Ok(QueryResult::affected(affected))
}

fn delete(
    db: &SqlDb,
    txn: &Txn,
    undo: &mut Vec<UndoOp>,
    table: &str,
    conditions: &[Condition],
) -> Result<QueryResult> {
    let scan = scan_matching(db, Some(txn.id()), table, conditions)?;
    let pred = query::bind_table_predicate(table, &scan.schema, conditions)?;
    let mut affected = 0u64;
    for (rid, _) in scan.matches {
        let current = match lock_and_refetch(db, txn, scan.table_id, rid, scan.schema.arity())? {
            Some(t) if pred.eval(&t) => t,
            _ => continue,
        };
        // A tombstone header is all deletion takes: stale payload
        // chunks are never read (the header bounds every decode), and
        // recovery skips tombstoned rows while keeping their rid
        // watermark.
        db.session.write(
            txn,
            codec::row_key(scan.table_id, rid, 0)?,
            codec::TOMBSTONE,
        )?;
        db.catalog.with_catalog_write(|cat| {
            cat.table_mut(table, Some(txn.id()))?.rows.remove(&rid);
            Ok(())
        })?;
        undo.push(UndoOp::RestoreRow {
            table: table.to_string(),
            rid,
            tuple: current,
            wrote: None,
        });
        affected += 1;
    }
    Ok(QueryResult::affected(affected))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmdb_session::EngineOptions;
    use mmdb_types::value::Value;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("mmdb-sql-session-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn engine(dir: &std::path::Path) -> Engine {
        let opts = EngineOptions::new(mmdb_session::CommitPolicy::Group, dir);
        Engine::start(opts).unwrap()
    }

    #[test]
    fn autocommit_crud_roundtrip() {
        let dir = temp_dir("crud");
        let eng = engine(&dir);
        let db = SqlDb::open(&eng).unwrap();
        let mut s = db.session();
        s.execute("CREATE TABLE acct (id INT, owner TEXT, bal INT)")
            .unwrap();
        let r = s
            .execute("INSERT INTO acct VALUES (1, 'ann', 100), (2, 'bob', 50)")
            .unwrap();
        assert_eq!(r.affected, 2);
        let r = s
            .execute("UPDATE acct SET bal = bal + 10 WHERE id = 2")
            .unwrap();
        assert_eq!(r.affected, 1);
        let r = s
            .execute("SELECT owner, bal FROM acct WHERE bal >= 60")
            .unwrap();
        assert_eq!(r.rows.len(), 2);
        let r = s.execute("DELETE FROM acct WHERE id = 1").unwrap();
        assert_eq!(r.affected, 1);
        let r = s.execute("SELECT * FROM acct").unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][1], Value::Str("bob".to_string()));
        eng.shutdown().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn abort_rolls_back_catalog_and_rows() {
        let dir = temp_dir("abort");
        let eng = engine(&dir);
        let db = SqlDb::open(&eng).unwrap();
        let mut s = db.session();
        s.execute("CREATE TABLE t (id INT)").unwrap();
        s.execute("INSERT INTO t VALUES (1)").unwrap();
        s.execute("BEGIN").unwrap();
        s.execute("INSERT INTO t VALUES (2)").unwrap();
        s.execute("UPDATE t SET id = 9 WHERE id = 1").unwrap();
        s.execute("CREATE TABLE u (x INT)").unwrap();
        s.execute("ABORT").unwrap();
        let r = s.execute("SELECT id FROM t").unwrap();
        assert_eq!(r.rows, vec![vec![Value::Int(1)]]);
        assert!(s.execute("SELECT * FROM u").is_err());
        eng.shutdown().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_statement_aborts_open_transaction() {
        let dir = temp_dir("stmt-abort");
        let eng = engine(&dir);
        let db = SqlDb::open(&eng).unwrap();
        let mut s = db.session();
        s.execute("CREATE TABLE t (id INT)").unwrap();
        s.execute("BEGIN").unwrap();
        s.execute("INSERT INTO t VALUES (1)").unwrap();
        assert!(s.execute("INSERT INTO nope VALUES (1)").is_err());
        assert!(!s.in_transaction());
        let r = s.execute("SELECT * FROM t").unwrap();
        assert!(r.rows.is_empty());
        eng.shutdown().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn catalog_survives_crash_and_recover() {
        let dir = temp_dir("recover");
        let eng = engine(&dir);
        {
            let db = SqlDb::open(&eng).unwrap();
            let mut s = db.session();
            s.execute("CREATE TABLE kv (k INT, v TEXT)").unwrap();
            s.execute("INSERT INTO kv VALUES (1, 'one'), (2, 'two'), (3, 'three')")
                .unwrap();
            s.execute("DELETE FROM kv WHERE k = 2").unwrap();
            s.execute("UPDATE kv SET v = 'THREE' WHERE k = 3").unwrap();
            // An uncommitted transaction must not survive.
            s.execute("BEGIN").unwrap();
            s.execute("INSERT INTO kv VALUES (4, 'four')").unwrap();
        }
        eng.crash().unwrap();
        let opts = EngineOptions::new(mmdb_session::CommitPolicy::Group, &dir);
        let (eng, _info) = Engine::recover(opts).unwrap();
        let db = SqlDb::open(&eng).unwrap();
        let mut s = db.session();
        let r = s.execute("SELECT k, v FROM kv WHERE k >= 1").unwrap();
        let mut rows = r.rows.clone();
        rows.sort();
        assert_eq!(
            rows,
            vec![
                vec![Value::Int(1), Value::Str("one".to_string())],
                vec![Value::Int(3), Value::Str("THREE".to_string())],
            ]
        );
        // New inserts allocate past the recovered watermark.
        s.execute("INSERT INTO kv VALUES (5, 'five')").unwrap();
        let r = s.execute("SELECT k FROM kv").unwrap();
        assert_eq!(r.rows.len(), 3);
        eng.shutdown().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn uncommitted_create_table_is_private_to_its_transaction() {
        let dir = temp_dir("ddl-private");
        let eng = engine(&dir);
        let db = SqlDb::open(&eng).unwrap();
        let mut a = db.session();
        let mut b = db.session();
        a.execute("BEGIN").unwrap();
        a.execute("CREATE TABLE t (id INT)").unwrap();
        a.execute("INSERT INTO t VALUES (1)").unwrap();
        // The creator sees its own pending table...
        let r = a.execute("SELECT id FROM t").unwrap();
        assert_eq!(r.rows, vec![vec![Value::Int(1)]]);
        // ...but no other session can read it, write into it (and
        // durably commit orphan rows), or list it; the name itself is
        // already claimed.
        assert!(b.execute("SELECT * FROM t").is_err());
        assert!(b.execute("INSERT INTO t VALUES (2)").is_err());
        assert!(b.execute("CREATE TABLE t (x INT)").is_err());
        assert_eq!(db.table_names().unwrap(), Vec::<String>::new());
        a.execute("COMMIT").unwrap();
        // Commit publishes: now everyone sees it.
        assert_eq!(db.table_names().unwrap(), vec!["t".to_string()]);
        let r = b.execute("SELECT id FROM t").unwrap();
        assert_eq!(r.rows, vec![vec![Value::Int(1)]]);
        b.execute("INSERT INTO t VALUES (2)").unwrap();
        eng.shutdown().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn aborted_create_table_frees_the_name() {
        let dir = temp_dir("ddl-abort");
        let eng = engine(&dir);
        let db = SqlDb::open(&eng).unwrap();
        let mut a = db.session();
        let mut b = db.session();
        a.execute("BEGIN").unwrap();
        a.execute("CREATE TABLE t (id INT)").unwrap();
        a.execute("INSERT INTO t VALUES (1)").unwrap();
        a.execute("ABORT").unwrap();
        // Nothing leaked, and the name is free for anyone again.
        assert!(a.execute("SELECT * FROM t").is_err());
        b.execute("CREATE TABLE t (x INT)").unwrap();
        let r = b.execute("SELECT * FROM t").unwrap();
        assert!(r.rows.is_empty());
        eng.shutdown().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_write_conflicts_serialize() {
        let dir = temp_dir("conflict");
        let eng = engine(&dir);
        let db = SqlDb::open(&eng).unwrap();
        let mut a = db.session();
        let mut b = db.session();
        a.execute("CREATE TABLE t (id INT, n INT)").unwrap();
        a.execute("INSERT INTO t VALUES (1, 0)").unwrap();
        a.execute("BEGIN").unwrap();
        a.execute("UPDATE t SET n = n + 1 WHERE id = 1").unwrap();
        // B cannot touch the same row while A holds its lock.
        assert!(b.execute("UPDATE t SET n = n + 5 WHERE id = 1").is_err());
        a.execute("COMMIT").unwrap();
        let r = b.execute("SELECT n FROM t WHERE id = 1").unwrap();
        assert_eq!(r.rows, vec![vec![Value::Int(1)]]);
        eng.shutdown().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
