//! The binder/planner bridge and plan executor.
//!
//! `SELECT` statements are bound against the volatile catalog, turned
//! into the §4 optimizer's [`QuerySpec`] (per-table predicate
//! conjunctions plus equi-join edges), planned with exact statistics
//! computed from the resident rows, and executed with the §3
//! `mmdb-exec` operators. `INSERT`/`UPDATE`/`DELETE` binding helpers
//! (row coercion, single-table predicates, `SET` expressions) also
//! live here so [`crate::session`] stays focused on transaction
//! mechanics.

use crate::ast::{ColRef, Condition, Literal, Projection, SelectStmt, SetExpr};
use crate::catalog::Catalog;
use mmdb_exec::join::{run_join, Algo};
use mmdb_exec::{select, ExecContext, JoinSpec};
use mmdb_planner::optimizer::PlanEnv;
use mmdb_planner::{
    optimize, AccessPath, ColumnStats, JoinEdge, JoinMethod, PhysicalPlan, QuerySpec, TableRef,
    TableStats,
};
use mmdb_storage::MemRelation;
use mmdb_types::error::{Error, Result};
use mmdb_types::expr::Predicate;
use mmdb_types::ids::TxnId;
use mmdb_types::schema::{DataType, Schema};
use mmdb_types::tuple::Tuple;
use mmdb_types::value::Value;
use std::collections::HashSet;

/// Page geometry for planning and execution: rows of the volatile
/// catalog are grouped this many to a "page" for the cost model.
const TUPLES_PER_PAGE: usize = 40;

/// The result of one statement.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QueryResult {
    /// Output column names (empty for non-`SELECT` statements).
    pub columns: Vec<String>,
    /// Output rows (empty for non-`SELECT` statements).
    pub rows: Vec<Vec<Value>>,
    /// Rows inserted/updated/deleted (0 for `SELECT` and controls).
    pub affected: u64,
}

impl QueryResult {
    /// An acknowledgement with no rows and no affected count.
    pub fn ack() -> Self {
        QueryResult::default()
    }

    /// A mutation result.
    pub fn affected(n: u64) -> Self {
        QueryResult {
            affected: n,
            ..QueryResult::default()
        }
    }
}

/// One table's snapshot used during planning and execution. Built
/// under the catalog read lock by [`snapshot_tables`], then planned
/// and executed lock-free by [`run_select_on`].
pub struct BoundTable {
    /// Lowercased canonical name (what the planner sees).
    name: String,
    schema: Schema,
    tuples: Vec<Tuple>,
}

/// Coerces a bound value toward a column type: integers widen to
/// floats for `FLOAT` columns; everything else passes through (the
/// schema check rejects real mismatches).
pub fn coerce(value: Value, ty: DataType) -> Value {
    match (value, ty) {
        (Value::Int(i), DataType::Float) => Value::Float(i as f64),
        (v, _) => v,
    }
}

/// Binds one `VALUES` row of an `INSERT` to a schema-checked tuple.
pub fn bind_insert_row(
    schema: &Schema,
    columns: &Option<Vec<String>>,
    row: &[Literal],
) -> Result<Tuple> {
    let values = match columns {
        None => {
            if row.len() != schema.arity() {
                return Err(Error::SchemaMismatch {
                    expected: format!("{} values", schema.arity()),
                    found: format!("{} values", row.len()),
                });
            }
            let mut out = Vec::with_capacity(row.len());
            for (lit, col) in row.iter().zip(schema.columns()) {
                out.push(coerce(lit.to_value(), col.ty));
            }
            out
        }
        Some(cols) => {
            if row.len() != cols.len() {
                return Err(Error::SchemaMismatch {
                    expected: format!("{} values (one per named column)", cols.len()),
                    found: format!("{} values", row.len()),
                });
            }
            let mut out = vec![Value::Null; schema.arity()];
            let mut seen: HashSet<usize> = HashSet::new();
            for (name, lit) in cols.iter().zip(row) {
                let idx = schema.index_of(name)?;
                if !seen.insert(idx) {
                    return Err(Error::Planning(format!(
                        "column '{name}' named twice in INSERT"
                    )));
                }
                let ty = schema
                    .column(idx)
                    .map(|c| c.ty)
                    .ok_or_else(|| Error::ColumnNotFound(name.clone()))?;
                if let Some(slot) = out.get_mut(idx) {
                    *slot = coerce(lit.to_value(), ty);
                }
            }
            out
        }
    };
    let tuple = Tuple::new(values);
    schema.check(&tuple)?;
    Ok(tuple)
}

/// A bound `SET` expression (column names resolved to indices).
#[derive(Debug, Clone)]
pub enum BoundSetExpr {
    /// Assign a constant.
    Lit(Value),
    /// Copy a column.
    Col(usize),
    /// `col ± constant`.
    BinOp {
        /// Source column index.
        col: usize,
        /// `true` for `+`.
        plus: bool,
        /// Constant operand.
        val: Value,
    },
}

/// Binds `UPDATE` assignments against a schema.
pub fn bind_sets(
    schema: &Schema,
    sets: &[(String, SetExpr)],
) -> Result<Vec<(usize, BoundSetExpr)>> {
    let mut out = Vec::with_capacity(sets.len());
    let mut seen: HashSet<usize> = HashSet::new();
    for (target, expr) in sets {
        let idx = schema.index_of(target)?;
        if !seen.insert(idx) {
            return Err(Error::Planning(format!(
                "column '{target}' assigned twice in UPDATE"
            )));
        }
        let bound = match expr {
            SetExpr::Lit(lit) => BoundSetExpr::Lit(lit.to_value()),
            SetExpr::Col(c) => BoundSetExpr::Col(schema.index_of(c)?),
            SetExpr::BinOp { col, plus, lit } => BoundSetExpr::BinOp {
                col: schema.index_of(col)?,
                plus: *plus,
                val: lit.to_value(),
            },
        };
        out.push((idx, bound));
    }
    Ok(out)
}

/// Evaluates arithmetic for a bound `SET`: nulls propagate, integer
/// overflow is an error, floats follow IEEE.
fn eval_binop(lhs: &Value, plus: bool, rhs: &Value) -> Result<Value> {
    match (lhs, rhs) {
        (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
        (Value::Int(a), Value::Int(b)) => {
            let r = if plus {
                a.checked_add(*b)
            } else {
                a.checked_sub(*b)
            };
            r.map(Value::Int)
                .ok_or_else(|| Error::Planning("integer overflow in UPDATE arithmetic".to_string()))
        }
        (a, b) => match (a.numeric(), b.numeric()) {
            (Some(x), Some(y)) => Ok(Value::Float(if plus { x + y } else { x - y })),
            _ => Err(Error::Planning(
                "arithmetic over non-numeric column in UPDATE".to_string(),
            )),
        },
    }
}

/// Applies bound `SET` expressions to a row, producing the new
/// schema-checked tuple. All source columns read the *old* row, as SQL
/// requires.
pub fn apply_sets(schema: &Schema, old: &Tuple, sets: &[(usize, BoundSetExpr)]) -> Result<Tuple> {
    let mut values: Vec<Value> = old.values().to_vec();
    for (target, expr) in sets {
        let ty = schema
            .column(*target)
            .map(|c| c.ty)
            .ok_or_else(|| Error::ColumnNotFound(format!("#{target}")))?;
        let read = |idx: usize| -> Result<&Value> {
            old.values()
                .get(idx)
                .ok_or_else(|| Error::ColumnNotFound(format!("#{idx}")))
        };
        let new = match expr {
            BoundSetExpr::Lit(v) => v.clone(),
            BoundSetExpr::Col(c) => read(*c)?.clone(),
            BoundSetExpr::BinOp { col, plus, val } => eval_binop(read(*col)?, *plus, val)?,
        };
        if let Some(slot) = values.get_mut(*target) {
            *slot = coerce(new, ty);
        }
    }
    let tuple = Tuple::new(values);
    schema.check(&tuple)?;
    Ok(tuple)
}

/// Binds the `WHERE` conjuncts of an `UPDATE`/`DELETE` (single-table:
/// every condition must compare a column of `table` with a literal).
pub fn bind_table_predicate(
    table: &str,
    schema: &Schema,
    conditions: &[Condition],
) -> Result<Predicate> {
    let mut pred = Predicate::True;
    for cond in conditions {
        match cond {
            Condition::Compare { col, op, lit } => {
                if let Some(q) = &col.table {
                    if !q.eq_ignore_ascii_case(table) {
                        return Err(Error::Planning(format!(
                            "column '{col}' does not belong to table '{table}'"
                        )));
                    }
                }
                let idx = schema.index_of(&col.column)?;
                let ty = schema
                    .column(idx)
                    .map(|c| c.ty)
                    .ok_or_else(|| Error::ColumnNotFound(col.column.clone()))?;
                let value = coerce(lit.to_value(), ty);
                let leaf = Predicate::cmp(idx, *op, value);
                pred = conjoin(pred, leaf);
            }
            Condition::ColEqCol { left, right } => {
                return Err(Error::Planning(format!(
                    "'{left} = {right}': UPDATE/DELETE conditions must compare a column to a literal"
                )));
            }
        }
    }
    Ok(pred)
}

fn conjoin(acc: Predicate, leaf: Predicate) -> Predicate {
    if acc == Predicate::True {
        leaf
    } else {
        acc.and(leaf)
    }
}

/// Resolves a column reference against the `FROM` tables; returns
/// `(table index, column index)`.
fn resolve(col: &ColRef, tables: &[BoundTable]) -> Result<(usize, usize)> {
    match &col.table {
        Some(q) => {
            let q = q.to_ascii_lowercase();
            let (ti, t) = tables
                .iter()
                .enumerate()
                .find(|(_, t)| t.name == q)
                .ok_or_else(|| Error::Planning(format!("table '{q}' is not listed in FROM")))?;
            Ok((ti, t.schema.index_of(&col.column)?))
        }
        None => {
            let mut hit: Option<(usize, usize)> = None;
            for (ti, t) in tables.iter().enumerate() {
                if let Ok(ci) = t.schema.index_of(&col.column) {
                    if hit.is_some() {
                        return Err(Error::Planning(format!(
                            "column '{}' is ambiguous; qualify it with a table name",
                            col.column
                        )));
                    }
                    hit = Some((ti, ci));
                }
            }
            hit.ok_or_else(|| Error::ColumnNotFound(col.column.clone()))
        }
    }
}

/// Computes exact [`TableStats`] from resident rows (distinct counts
/// and min/max per column — affordable because everything is already
/// in memory, exactly the paper's argument for cheap statistics).
fn compute_stats(t: &BoundTable) -> TableStats {
    struct Acc<'a> {
        distinct: HashSet<&'a Value>,
        min: Option<&'a Value>,
        max: Option<&'a Value>,
    }
    let arity = t.schema.arity();
    let mut accs: Vec<Acc<'_>> = (0..arity)
        .map(|_| Acc {
            distinct: HashSet::new(),
            min: None,
            max: None,
        })
        .collect();
    for tuple in &t.tuples {
        for (acc, v) in accs.iter_mut().zip(tuple.values()) {
            acc.distinct.insert(v);
            if acc.min.map_or(true, |m| v < m) {
                acc.min = Some(v);
            }
            if acc.max.map_or(true, |m| v > m) {
                acc.max = Some(v);
            }
        }
    }
    TableStats {
        name: t.name.clone(),
        tuples: t.tuples.len() as u64,
        pages: (t.tuples.len() as u64).div_ceil(TUPLES_PER_PAGE as u64),
        tuples_per_page: TUPLES_PER_PAGE as u64,
        columns: accs
            .iter()
            .map(|a| ColumnStats {
                distinct: a.distinct.len().max(1) as u64,
                min: a.min.cloned(),
                max: a.max.cloned(),
            })
            .collect(),
        indexed_columns: Vec::new(),
        ordered_indexed_columns: Vec::new(),
    }
}

fn to_relation(t: &BoundTable) -> Result<MemRelation> {
    MemRelation::from_tuples(t.schema.clone(), TUPLES_PER_PAGE, t.tuples.clone())
}

fn exec_ctx(env: &PlanEnv) -> ExecContext {
    ExecContext::new(env.mem_pages, 1.2)
}

fn execute_plan(
    plan: &PhysicalPlan,
    tables: &[BoundTable],
    ctx: &ExecContext,
) -> Result<MemRelation> {
    let table_by_name = |name: &str| -> Result<&BoundTable> {
        tables
            .iter()
            .find(|t| t.name == name)
            .ok_or_else(|| Error::RelationNotFound(name.to_string()))
    };
    match plan {
        PhysicalPlan::Access(AccessPath::SeqScan { table, predicate }) => {
            let rel = to_relation(table_by_name(table)?)?;
            select::select(&rel, predicate, ctx)
        }
        // SQL tables carry no indexes today, so the planner cannot pick
        // these — but execute them faithfully as filtered scans if a
        // future catalog grows index metadata.
        PhysicalPlan::Access(AccessPath::IndexLookup {
            table,
            column,
            value,
            residual,
        }) => {
            let rel = to_relation(table_by_name(table)?)?;
            let pred = conjoin(Predicate::eq(*column, value.clone()), residual.clone());
            select::select(&rel, &pred, ctx)
        }
        PhysicalPlan::Access(AccessPath::IndexRange {
            table,
            column,
            lo,
            hi,
            residual,
        }) => {
            let rel = to_relation(table_by_name(table)?)?;
            let pred = conjoin(
                Predicate::Between {
                    column: *column,
                    lo: lo.clone(),
                    hi: hi.clone(),
                },
                residual.clone(),
            );
            select::select(&rel, &pred, ctx)
        }
        PhysicalPlan::Join {
            left,
            right,
            left_key,
            right_key,
            method,
            ..
        } => {
            let l = execute_plan(left, tables, ctx)?;
            let r = execute_plan(right, tables, ctx)?;
            let algo = match method {
                JoinMethod::HybridHash => Algo::HybridHash,
                JoinMethod::SimpleHash => Algo::SimpleHash,
                JoinMethod::GraceHash => Algo::GraceHash,
                JoinMethod::SortMerge => Algo::SortMerge,
            };
            run_join(algo, &l, &r, JoinSpec::new(*left_key, *right_key), ctx)
        }
    }
}

/// Snapshots the tables a `SELECT` references — schemas plus cloned
/// resident rows, resolved with `viewer` visibility. This is the only
/// part of `SELECT` that touches the catalog; callers run it under the
/// catalog read lock, release the lock, and hand the snapshots to
/// [`run_select_on`] so planning and join execution never stall
/// writers.
pub fn snapshot_tables(
    stmt: &SelectStmt,
    catalog: &Catalog,
    viewer: Option<TxnId>,
) -> Result<Vec<BoundTable>> {
    let mut tables: Vec<BoundTable> = Vec::with_capacity(stmt.tables.len());
    for name in &stmt.tables {
        let lower = name.to_ascii_lowercase();
        if tables.iter().any(|t| t.name == lower) {
            return Err(Error::Planning(format!(
                "table '{lower}' appears twice in FROM; self-joins are not supported"
            )));
        }
        let entry = catalog.table(name, viewer)?;
        tables.push(BoundTable {
            name: lower,
            schema: entry.schema.clone(),
            tuples: entry.rows.values().cloned().collect(),
        });
    }
    Ok(tables)
}

/// Plans and executes a bound `SELECT` over pre-snapshotted tables.
/// No catalog access happens here, so no lock need be held.
pub fn run_select_on(stmt: &SelectStmt, tables: Vec<BoundTable>) -> Result<QueryResult> {
    // Split conditions into per-table predicates and join edges.
    let mut preds: Vec<Predicate> = tables.iter().map(|_| Predicate::True).collect();
    let mut joins: Vec<JoinEdge> = Vec::new();
    for cond in &stmt.conditions {
        match cond {
            Condition::Compare { col, op, lit } => {
                let (ti, ci) = resolve(col, &tables)?;
                let ty = tables
                    .get(ti)
                    .and_then(|t| t.schema.column(ci))
                    .map(|c| c.ty)
                    .ok_or_else(|| Error::ColumnNotFound(col.column.clone()))?;
                let leaf = Predicate::cmp(ci, *op, coerce(lit.to_value(), ty));
                if let Some(slot) = preds.get_mut(ti) {
                    let acc = std::mem::replace(slot, Predicate::True);
                    *slot = conjoin(acc, leaf);
                }
            }
            Condition::ColEqCol { left, right } => {
                let (lt, lc) = resolve(left, &tables)?;
                let (rt, rc) = resolve(right, &tables)?;
                if lt == rt {
                    return Err(Error::Planning(format!(
                        "'{left} = {right}' compares columns of the same table; join conditions must span two tables"
                    )));
                }
                joins.push(JoinEdge {
                    left_table: lt,
                    left_column: lc,
                    right_table: rt,
                    right_column: rc,
                });
            }
        }
    }

    // Feed the §4 optimizer.
    let spec = QuerySpec {
        tables: tables
            .iter()
            .zip(preds)
            .map(|(t, p)| TableRef::filtered(t.name.clone(), p))
            .collect(),
        joins,
    };
    let stats: Vec<TableStats> = tables.iter().map(compute_stats).collect();
    let env = PlanEnv::default();
    let planned = optimize(&spec, &stats, &env)?;

    // Execute the chosen physical plan with the §3 operators.
    let ctx = exec_ctx(&env);
    let rel = execute_plan(&planned.plan, &tables, &ctx)?;

    // Output offsets follow the plan's base-table order, which the
    // optimizer may have permuted relative to FROM.
    let plan_order = planned.plan.tables();
    let mut offsets: Vec<(usize, usize)> = Vec::with_capacity(plan_order.len());
    let mut off = 0usize;
    for name in &plan_order {
        let ti = tables
            .iter()
            .position(|t| &t.name == name)
            .ok_or_else(|| Error::RelationNotFound((*name).to_string()))?;
        offsets.push((ti, off));
        off += tables.get(ti).map(|t| t.schema.arity()).unwrap_or_default();
    }
    let offset_of = |ti: usize| -> Result<usize> {
        offsets
            .iter()
            .find(|(t, _)| *t == ti)
            .map(|(_, o)| *o)
            .ok_or_else(|| Error::Internal("table missing from plan order".to_string()))
    };

    let (names, indices): (Vec<String>, Vec<usize>) = match &stmt.projection {
        Projection::Star => {
            let mut names = Vec::new();
            let mut idx = Vec::new();
            for (ti, off) in &offsets {
                if let Some(t) = tables.get(*ti) {
                    for (ci, c) in t.schema.columns().iter().enumerate() {
                        names.push(if tables.len() > 1 {
                            format!("{}.{}", t.name, c.name)
                        } else {
                            c.name.clone()
                        });
                        idx.push(off + ci);
                    }
                }
            }
            (names, idx)
        }
        Projection::Columns(cols) => {
            let mut names = Vec::new();
            let mut idx = Vec::new();
            for col in cols {
                let (ti, ci) = resolve(col, &tables)?;
                names.push(col.to_string());
                idx.push(offset_of(ti)? + ci);
            }
            (names, idx)
        }
    };

    let arity = rel.schema().arity();
    if indices.iter().any(|&i| i >= arity) {
        return Err(Error::Internal(
            "projection index out of plan output range".to_string(),
        ));
    }
    let rows: Vec<Vec<Value>> = rel
        .tuples()
        .iter()
        .map(|t| indices.iter().map(|&i| t.get(i).clone()).collect())
        .collect();
    Ok(QueryResult {
        columns: names,
        rows,
        affected: 0,
    })
}

/// Snapshot + plan + execute in one call. The session splits the two
/// phases to scope the catalog lock; this composition serves callers
/// (and tests) that already hold the catalog.
pub fn run_select(
    stmt: &SelectStmt,
    catalog: &Catalog,
    viewer: Option<TxnId>,
) -> Result<QueryResult> {
    run_select_on(stmt, snapshot_tables(stmt, catalog, viewer)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::TableEntry;
    use crate::parser::parse;
    use crate::Statement;
    use std::collections::BTreeMap;

    fn catalog() -> Catalog {
        let mut c = Catalog::default();
        let emp_schema = Schema::of(&[
            ("id", DataType::Int),
            ("name", DataType::Str),
            ("dept_id", DataType::Int),
        ]);
        let dept_schema = Schema::of(&[("id", DataType::Int), ("title", DataType::Str)]);
        let mut emp_rows = BTreeMap::new();
        for (i, (name, dept)) in [("ann", 1), ("bob", 2), ("cat", 1)].iter().enumerate() {
            emp_rows.insert(
                i as u32,
                Tuple::new(vec![
                    Value::Int(i as i64),
                    Value::Str((*name).to_string()),
                    Value::Int(*dept),
                ]),
            );
        }
        let mut dept_rows = BTreeMap::new();
        dept_rows.insert(0, Tuple::new(vec![Value::Int(1), "eng".into()]));
        dept_rows.insert(1, Tuple::new(vec![Value::Int(2), "ops".into()]));
        c.install(
            "emp",
            TableEntry {
                id: 0,
                schema: emp_schema,
                rows: emp_rows,
                next_rid: 3,
                pending_owner: None,
            },
        );
        c.install(
            "dept",
            TableEntry {
                id: 1,
                schema: dept_schema,
                rows: dept_rows,
                next_rid: 2,
                pending_owner: None,
            },
        );
        c
    }

    fn select(cat: &Catalog, sql: &str) -> QueryResult {
        match parse(sql).unwrap() {
            Statement::Select(s) => run_select(&s, cat, None).unwrap(),
            other => panic!("not a select: {other:?}"),
        }
    }

    #[test]
    fn single_table_filter_and_projection() {
        let cat = catalog();
        let r = select(&cat, "SELECT name FROM emp WHERE dept_id = 1");
        assert_eq!(r.columns, vec!["name"]);
        assert_eq!(
            r.rows,
            vec![
                vec![Value::Str("ann".into())],
                vec![Value::Str("cat".into())]
            ]
        );
    }

    #[test]
    fn star_on_single_table_uses_plain_names() {
        let cat = catalog();
        let r = select(&cat, "SELECT * FROM dept WHERE id >= 2");
        assert_eq!(r.columns, vec!["id", "title"]);
        assert_eq!(r.rows.len(), 1);
    }

    #[test]
    fn equi_join_projects_across_tables() {
        let cat = catalog();
        let r = select(
            &cat,
            "SELECT emp.name, dept.title FROM emp JOIN dept ON emp.dept_id = dept.id \
             WHERE dept.title = 'eng'",
        );
        assert_eq!(r.columns, vec!["emp.name", "dept.title"]);
        let mut names: Vec<String> = r
            .rows
            .iter()
            .map(|row| row[0].as_str().unwrap().to_string())
            .collect();
        names.sort();
        assert_eq!(names, vec!["ann", "cat"]);
    }

    #[test]
    fn disconnected_join_is_an_error() {
        let cat = catalog();
        let s = match parse("SELECT * FROM emp, dept").unwrap() {
            Statement::Select(s) => s,
            _ => unreachable!(),
        };
        assert!(run_select(&s, &cat, None).is_err());
    }

    #[test]
    fn ambiguous_and_unknown_columns_error() {
        let cat = catalog();
        let s = match parse("SELECT id FROM emp JOIN dept ON emp.dept_id = dept.id").unwrap() {
            Statement::Select(s) => s,
            _ => unreachable!(),
        };
        let e = run_select(&s, &cat, None).unwrap_err();
        assert!(e.to_string().contains("ambiguous"), "{e}");
        let s = match parse("SELECT nope FROM emp").unwrap() {
            Statement::Select(s) => s,
            _ => unreachable!(),
        };
        assert!(run_select(&s, &cat, None).is_err());
    }

    #[test]
    fn insert_row_binding_coerces_and_checks() {
        let schema = Schema::of(&[("a", DataType::Int), ("b", DataType::Float)]);
        let t = bind_insert_row(&schema, &None, &[Literal::Int(1), Literal::Int(2)]).unwrap();
        assert_eq!(t.values(), &[Value::Int(1), Value::Float(2.0)]);
        let t = bind_insert_row(
            &schema,
            &Some(vec!["b".to_string()]),
            &[Literal::Float(0.5)],
        )
        .unwrap();
        assert_eq!(t.values(), &[Value::Null, Value::Float(0.5)]);
        assert!(bind_insert_row(&schema, &None, &[Literal::Int(1)]).is_err());
        assert!(bind_insert_row(
            &schema,
            &Some(vec!["a".to_string(), "a".to_string()]),
            &[Literal::Int(1), Literal::Int(2)]
        )
        .is_err());
        assert!(
            bind_insert_row(&schema, &None, &[Literal::Str("x".into()), Literal::Null]).is_err()
        );
    }

    #[test]
    fn set_expressions_apply() {
        let schema = Schema::of(&[("id", DataType::Int), ("bal", DataType::Int)]);
        let sets = bind_sets(
            &schema,
            &[(
                "bal".to_string(),
                SetExpr::BinOp {
                    col: "bal".to_string(),
                    plus: false,
                    lit: Literal::Int(25),
                },
            )],
        )
        .unwrap();
        let old = Tuple::new(vec![Value::Int(1), Value::Int(100)]);
        let new = apply_sets(&schema, &old, &sets).unwrap();
        assert_eq!(new.values(), &[Value::Int(1), Value::Int(75)]);
        // Overflow is an error, not a wrap.
        let old = Tuple::new(vec![Value::Int(1), Value::Int(i64::MIN)]);
        assert!(apply_sets(&schema, &old, &sets).is_err());
    }

    #[test]
    fn table_predicate_binding() {
        let schema = Schema::of(&[("id", DataType::Int)]);
        let conds = match parse("DELETE FROM t WHERE id > 5 AND t.id < 9").unwrap() {
            Statement::Delete { conditions, .. } => conditions,
            _ => unreachable!(),
        };
        let p = bind_table_predicate("t", &schema, &conds).unwrap();
        assert!(p.eval(&Tuple::new(vec![Value::Int(7)])));
        assert!(!p.eval(&Tuple::new(vec![Value::Int(4)])));
        let conds = match parse("DELETE FROM t WHERE other.id = 5").unwrap() {
            Statement::Delete { conditions, .. } => conditions,
            _ => unreachable!(),
        };
        assert!(bind_table_predicate("t", &schema, &conds).is_err());
    }
}
