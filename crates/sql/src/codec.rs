//! Encoding of SQL catalog entries and rows into the engine's
//! `u64 → i64` store.
//!
//! Everything the SQL layer persists rides the session engine's
//! ordinary write path, so schemas and rows get WAL framing, group
//! commit, and crash/recover for free. The store is a flat key space;
//! the SQL layer claims the keys whose top bit is set:
//!
//! ```text
//! bit 63  SQL_BIT   — set for every SQL-owned key
//! bit 62  ROW_BIT   — clear: catalog entry, set: row
//!
//! catalog key:  SQL_BIT | table_id << 16 | chunk          (chunk: 16 bits)
//! row key:      SQL_BIT | ROW_BIT | table_id << 46
//!                       | rid << 14 | chunk               (chunk: 14 bits)
//! ```
//!
//! Chunk 0 is the *header*: its `i64` value is the byte length of the
//! entry's blob, or [`TOMBSTONE`] for a deleted row. Chunks `1..=n`
//! carry the blob eight bytes per value, little-endian, zero-padded.
//! An update may shrink a blob and leave stale high chunks behind; the
//! header length bounds every read, so they are never decoded.
//!
//! Blob formats (all integers little-endian):
//!
//! * schema: `u16` name length, name bytes, `u16` column count, then
//!   per column `u16` length + name bytes + one type byte
//!   (0 = INT, 1 = FLOAT, 2 = TEXT).
//! * row: per column one tag byte — 0 `NULL`, 1 `INT` + 8 bytes,
//!   2 `FLOAT` + 8 bytes (IEEE bits), 3 `TEXT` + `u32` length + bytes.

use mmdb_types::error::{Error, Result};
use mmdb_types::schema::{Column, DataType, Schema};
use mmdb_types::tuple::Tuple;
use mmdb_types::value::Value;

/// Top bit: marks a key as owned by the SQL subsystem.
pub const SQL_BIT: u64 = 1 << 63;
/// Second bit: row (set) vs catalog entry (clear).
pub const ROW_BIT: u64 = 1 << 62;
/// Header value marking a deleted row.
pub const TOMBSTONE: i64 = -1;

/// Highest table id the key layout can carry (16 bits).
pub const MAX_TABLE_ID: u32 = 0xFFFF;
/// Highest row id the key layout can carry (32 bits).
pub const MAX_RID: u32 = u32::MAX;
/// Highest chunk index of a catalog entry (16 bits).
const MAX_CATALOG_CHUNK: u64 = 0xFFFF;
/// Highest chunk index of a row (14 bits).
const MAX_ROW_CHUNK: u64 = 0x3FFF;

/// True when `key` belongs to the SQL subsystem.
pub fn is_sql_key(key: u64) -> bool {
    key & SQL_BIT != 0
}

/// Builds the store key of catalog chunk `chunk` for `table_id`.
pub fn catalog_key(table_id: u32, chunk: u64) -> Result<u64> {
    if table_id > MAX_TABLE_ID {
        return Err(Error::Internal(format!("table id {table_id} out of range")));
    }
    if chunk > MAX_CATALOG_CHUNK {
        return Err(Error::TupleTooLarge(chunk as usize * 8));
    }
    Ok(SQL_BIT | (u64::from(table_id) << 16) | chunk)
}

/// Builds the store key of row chunk `chunk` for `(table_id, rid)`.
pub fn row_key(table_id: u32, rid: u32, chunk: u64) -> Result<u64> {
    if table_id > MAX_TABLE_ID {
        return Err(Error::Internal(format!("table id {table_id} out of range")));
    }
    if chunk > MAX_ROW_CHUNK {
        return Err(Error::TupleTooLarge(chunk as usize * 8));
    }
    Ok(SQL_BIT | ROW_BIT | (u64::from(table_id) << 46) | (u64::from(rid) << 14) | chunk)
}

/// A decoded SQL store key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SqlKey {
    /// A catalog (schema) chunk.
    Catalog {
        /// Owning table.
        table_id: u32,
        /// Chunk index (0 = header).
        chunk: u64,
    },
    /// A row chunk.
    Row {
        /// Owning table.
        table_id: u32,
        /// Row id within the table.
        rid: u32,
        /// Chunk index (0 = header).
        chunk: u64,
    },
}

/// Splits a SQL-owned key into its components; `None` for keys outside
/// the SQL key space.
pub fn parse_key(key: u64) -> Option<SqlKey> {
    if key & SQL_BIT == 0 {
        return None;
    }
    if key & ROW_BIT == 0 {
        Some(SqlKey::Catalog {
            table_id: ((key >> 16) & 0xFFFF) as u32,
            chunk: key & 0xFFFF,
        })
    } else {
        Some(SqlKey::Row {
            table_id: ((key >> 46) & 0xFFFF) as u32,
            rid: ((key >> 14) & 0xFFFF_FFFF) as u32,
            chunk: key & MAX_ROW_CHUNK,
        })
    }
}

/// Packs blob bytes into store words, eight per `i64`, little-endian,
/// zero-padded.
pub fn blob_to_words(blob: &[u8]) -> Vec<i64> {
    blob.chunks(8)
        .map(|chunk| {
            let mut b = [0u8; 8];
            for (dst, src) in b.iter_mut().zip(chunk) {
                *dst = *src;
            }
            i64::from_le_bytes(b)
        })
        .collect()
}

/// Reassembles a blob of `len` bytes from store words.
pub fn words_to_blob(words: &[i64], len: usize) -> Result<Vec<u8>> {
    let need = len.div_ceil(8);
    if words.len() < need {
        return Err(Error::CorruptLog(format!(
            "blob of {len} bytes needs {need} chunks, found {}",
            words.len()
        )));
    }
    let mut out = Vec::with_capacity(len);
    for w in words.iter().take(need) {
        out.extend_from_slice(&w.to_le_bytes());
    }
    out.truncate(len);
    Ok(out)
}

// ---------------------------------------------------------------------
// Byte-level reader (no slicing, so the panic-freedom audit stays clean)
// ---------------------------------------------------------------------

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn corrupt(&self, what: &str) -> Error {
        Error::CorruptLog(format!("{what} at byte {} of SQL blob", self.pos))
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or_else(|| self.corrupt("length overflow"))?;
        let s = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| self.corrupt("truncated field"))?;
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        let b = *self
            .bytes
            .get(self.pos)
            .ok_or_else(|| self.corrupt("truncated byte"))?;
        self.pos += 1;
        Ok(b)
    }

    fn u16(&mut self) -> Result<u16> {
        let s = self.take(2)?;
        let mut b = [0u8; 2];
        for (dst, src) in b.iter_mut().zip(s) {
            *dst = *src;
        }
        Ok(u16::from_le_bytes(b))
    }

    fn u32(&mut self) -> Result<u32> {
        let s = self.take(4)?;
        let mut b = [0u8; 4];
        for (dst, src) in b.iter_mut().zip(s) {
            *dst = *src;
        }
        Ok(u32::from_le_bytes(b))
    }

    fn u64(&mut self) -> Result<u64> {
        let s = self.take(8)?;
        let mut b = [0u8; 8];
        for (dst, src) in b.iter_mut().zip(s) {
            *dst = *src;
        }
        Ok(u64::from_le_bytes(b))
    }

    fn string(&mut self, len: usize) -> Result<String> {
        let s = self.take(len)?;
        String::from_utf8(s.to_vec()).map_err(|_| self.corrupt("non-UTF-8 string"))
    }

    fn done(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

// ---------------------------------------------------------------------
// Schema blobs
// ---------------------------------------------------------------------

/// Longest table/column name the codec accepts.
pub const MAX_NAME_BYTES: usize = 256;
/// Most columns a table may declare.
pub const MAX_COLUMNS: usize = 256;
/// Largest encoded row blob (bounded by the 14-bit chunk space).
pub const MAX_ROW_BYTES: usize = (MAX_ROW_CHUNK as usize) * 8;

fn push_name(out: &mut Vec<u8>, name: &str) -> Result<()> {
    if name.len() > MAX_NAME_BYTES {
        return Err(Error::TupleTooLarge(name.len()));
    }
    out.extend_from_slice(&(name.len() as u16).to_le_bytes());
    out.extend_from_slice(name.as_bytes());
    Ok(())
}

/// Encodes a table's name and schema into a catalog blob.
pub fn encode_schema(name: &str, schema: &Schema) -> Result<Vec<u8>> {
    if schema.arity() > MAX_COLUMNS {
        return Err(Error::TupleTooLarge(schema.arity()));
    }
    let mut out = Vec::new();
    push_name(&mut out, name)?;
    out.extend_from_slice(&(schema.arity() as u16).to_le_bytes());
    for col in schema.columns() {
        push_name(&mut out, &col.name)?;
        out.push(match col.ty {
            DataType::Int => 0,
            DataType::Float => 1,
            DataType::Str => 2,
        });
    }
    Ok(out)
}

/// Decodes a catalog blob back into the table name and schema.
pub fn decode_schema(blob: &[u8]) -> Result<(String, Schema)> {
    let mut r = Reader::new(blob);
    let name_len = r.u16()? as usize;
    let name = r.string(name_len)?;
    let ncols = r.u16()? as usize;
    if ncols > MAX_COLUMNS {
        return Err(r.corrupt("column count out of range"));
    }
    let mut cols = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        let len = r.u16()? as usize;
        let cname = r.string(len)?;
        let ty = match r.u8()? {
            0 => DataType::Int,
            1 => DataType::Float,
            2 => DataType::Str,
            other => return Err(r.corrupt(&format!("unknown column type tag {other}"))),
        };
        cols.push(Column::new(cname, ty));
    }
    if !r.done() {
        return Err(r.corrupt("trailing bytes in schema blob"));
    }
    Ok((name, Schema::new(cols)?))
}

// ---------------------------------------------------------------------
// Row blobs and wire values
// ---------------------------------------------------------------------

/// Appends one tagged [`Value`] to `out` (the same encoding the wire
/// protocol uses for result rows).
pub fn encode_value_into(out: &mut Vec<u8>, v: &Value) -> Result<()> {
    match v {
        Value::Null => out.push(0),
        Value::Int(i) => {
            out.push(1);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(x) => {
            out.push(2);
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            if s.len() > u32::MAX as usize {
                return Err(Error::TupleTooLarge(s.len()));
            }
            out.push(3);
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
    }
    Ok(())
}

fn decode_value(r: &mut Reader<'_>) -> Result<Value> {
    match r.u8()? {
        0 => Ok(Value::Null),
        1 => Ok(Value::Int(r.u64()? as i64)),
        2 => Ok(Value::Float(f64::from_bits(r.u64()?))),
        3 => {
            let len = r.u32()? as usize;
            Ok(Value::Str(r.string(len)?))
        }
        other => Err(r.corrupt(&format!("unknown value tag {other}"))),
    }
}

/// Encodes a row into its blob. The caller has already schema-checked
/// the tuple, so the arity is the schema's.
pub fn encode_row(tuple: &Tuple) -> Result<Vec<u8>> {
    let mut out = Vec::new();
    for v in tuple.values() {
        encode_value_into(&mut out, v)?;
    }
    if out.len() > MAX_ROW_BYTES {
        return Err(Error::TupleTooLarge(out.len()));
    }
    Ok(out)
}

/// Decodes a row blob, validating the value count against `arity`.
pub fn decode_row(blob: &[u8], arity: usize) -> Result<Tuple> {
    let mut r = Reader::new(blob);
    let mut values = Vec::with_capacity(arity);
    for _ in 0..arity {
        values.push(decode_value(&mut r)?);
    }
    if !r.done() {
        return Err(r.corrupt("trailing bytes in row blob"));
    }
    Ok(Tuple::new(values))
}

/// Decodes a sequence of tagged values until the blob is exhausted
/// (used by the wire protocol, where the column count frames the row).
pub fn decode_values(blob: &[u8], count: usize) -> Result<Vec<Value>> {
    let mut r = Reader::new(blob);
    let mut values = Vec::with_capacity(count);
    for _ in 0..count {
        values.push(decode_value(&mut r)?);
    }
    Ok(values)
}

/// Reads `count` tagged values starting at `*pos`, advancing `*pos`
/// past them — the wire decoder's incremental entry point.
pub fn decode_values_at(blob: &[u8], pos: &mut usize, count: usize) -> Result<Vec<Value>> {
    let rest = blob
        .get(*pos..)
        .ok_or_else(|| Error::CorruptLog("value offset out of range".to_string()))?;
    let mut r = Reader::new(rest);
    let mut values = Vec::with_capacity(count);
    for _ in 0..count {
        values.push(decode_value(&mut r)?);
    }
    *pos += r.pos;
    Ok(values)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_roundtrip() {
        let k = catalog_key(7, 3).unwrap();
        assert!(is_sql_key(k));
        assert_eq!(
            parse_key(k),
            Some(SqlKey::Catalog {
                table_id: 7,
                chunk: 3
            })
        );
        let k = row_key(MAX_TABLE_ID, MAX_RID, MAX_ROW_CHUNK).unwrap();
        assert_eq!(
            parse_key(k),
            Some(SqlKey::Row {
                table_id: MAX_TABLE_ID,
                rid: MAX_RID,
                chunk: MAX_ROW_CHUNK
            })
        );
        assert_eq!(parse_key(42), None);
        assert!(catalog_key(0x10000, 0).is_err());
        assert!(row_key(0, 0, MAX_ROW_CHUNK + 1).is_err());
    }

    #[test]
    fn catalog_and_row_keys_do_not_collide() {
        let c = catalog_key(1, 0).unwrap();
        let r = row_key(1, 0, 0).unwrap();
        assert_ne!(c, r);
        assert!(c & ROW_BIT == 0 && r & ROW_BIT != 0);
    }

    #[test]
    fn words_roundtrip() {
        for blob in [
            Vec::new(),
            vec![1u8],
            vec![0xAB; 8],
            (0..=255u8).collect::<Vec<u8>>(),
        ] {
            let words = blob_to_words(&blob);
            assert_eq!(words.len(), blob.len().div_ceil(8));
            assert_eq!(words_to_blob(&words, blob.len()).unwrap(), blob);
        }
        assert!(words_to_blob(&[1], 16).is_err());
    }

    #[test]
    fn schema_roundtrip() {
        let schema = Schema::of(&[
            ("id", DataType::Int),
            ("name", DataType::Str),
            ("salary", DataType::Float),
        ]);
        let blob = encode_schema("emp", &schema).unwrap();
        let (name, back) = decode_schema(&blob).unwrap();
        assert_eq!(name, "emp");
        assert_eq!(back, schema);
    }

    #[test]
    fn schema_decode_rejects_corruption() {
        let schema = Schema::of(&[("id", DataType::Int)]);
        let blob = encode_schema("t", &schema).unwrap();
        for cut in 0..blob.len() {
            assert!(decode_schema(&blob[..cut]).is_err(), "cut at {cut}");
        }
        let mut bad_tag = blob.clone();
        *bad_tag.last_mut().unwrap() = 9;
        assert!(decode_schema(&bad_tag).is_err());
        let mut trailing = blob;
        trailing.push(0);
        assert!(decode_schema(&trailing).is_err());
    }

    #[test]
    fn row_roundtrip() {
        let t = Tuple::new(vec![
            Value::Int(-5),
            Value::Float(2.5),
            Value::Str("héllo".to_string()),
            Value::Null,
        ]);
        let blob = encode_row(&t).unwrap();
        assert_eq!(decode_row(&blob, 4).unwrap(), t);
        assert!(decode_row(&blob, 3).is_err()); // trailing bytes
        assert!(decode_row(&blob, 5).is_err()); // truncated
    }

    #[test]
    fn oversized_names_are_rejected() {
        let long = "x".repeat(MAX_NAME_BYTES + 1);
        let schema = Schema::of(&[("id", DataType::Int)]);
        assert!(encode_schema(&long, &schema).is_err());
    }

    #[test]
    fn incremental_value_decode() {
        let mut blob = Vec::new();
        encode_value_into(&mut blob, &Value::Int(1)).unwrap();
        encode_value_into(&mut blob, &Value::Str("ab".to_string())).unwrap();
        let mut pos = 0;
        let first = decode_values_at(&blob, &mut pos, 1).unwrap();
        assert_eq!(first, vec![Value::Int(1)]);
        let second = decode_values_at(&blob, &mut pos, 1).unwrap();
        assert_eq!(second, vec![Value::Str("ab".to_string())]);
        assert_eq!(pos, blob.len());
    }
}
