//! Hand-rolled SQL tokenizer.
//!
//! Produces a flat token stream with byte offsets for error reporting.
//! Keywords are not distinguished here — the parser matches identifiers
//! case-insensitively, so `select` and `SELECT` lex identically.

use crate::parser::ParseError;

/// One lexical token plus the byte offset where it started.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub tok: Token,
    /// Byte offset of the token's first character in the input.
    pub at: usize,
}

/// A SQL token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Bare word: keyword, table, or column name.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal (`12.5`).
    Float(f64),
    /// Single-quoted string literal (`''` escapes a quote).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `;`
    Semicolon,
    /// `*`
    Star,
    /// `.`
    Dot,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl Token {
    /// Short human-readable description for error messages.
    pub fn describe(&self) -> String {
        match self {
            Token::Ident(s) => format!("'{s}'"),
            Token::Int(i) => format!("integer {i}"),
            Token::Float(x) => format!("float {x}"),
            Token::Str(s) => format!("string '{s}'"),
            Token::LParen => "'('".to_string(),
            Token::RParen => "')'".to_string(),
            Token::Comma => "','".to_string(),
            Token::Semicolon => "';'".to_string(),
            Token::Star => "'*'".to_string(),
            Token::Dot => "'.'".to_string(),
            Token::Plus => "'+'".to_string(),
            Token::Minus => "'-'".to_string(),
            Token::Eq => "'='".to_string(),
            Token::Ne => "'<>'".to_string(),
            Token::Lt => "'<'".to_string(),
            Token::Le => "'<='".to_string(),
            Token::Gt => "'>'".to_string(),
            Token::Ge => "'>='".to_string(),
        }
    }
}

/// Longest identifier / string literal the lexer accepts; beyond this
/// is a lex error, which keeps catalog blobs and error messages small.
const MAX_TOKEN_BYTES: usize = 4096;

/// Tokenizes `input`. Never panics: every malformed byte sequence is a
/// [`ParseError`] naming the offending offset.
pub fn lex(input: &str) -> Result<Vec<Spanned>, ParseError> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while let Some(&b) = bytes.get(i) {
        let at = i;
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                i += 1;
            }
            b'(' => push1(&mut out, Token::LParen, at, &mut i),
            b')' => push1(&mut out, Token::RParen, at, &mut i),
            b',' => push1(&mut out, Token::Comma, at, &mut i),
            b';' => push1(&mut out, Token::Semicolon, at, &mut i),
            b'*' => push1(&mut out, Token::Star, at, &mut i),
            b'.' => push1(&mut out, Token::Dot, at, &mut i),
            b'+' => push1(&mut out, Token::Plus, at, &mut i),
            b'-' => {
                // `--` starts a line comment.
                if bytes.get(i + 1) == Some(&b'-') {
                    while bytes.get(i).is_some_and(|&c| c != b'\n') {
                        i += 1;
                    }
                } else {
                    push1(&mut out, Token::Minus, at, &mut i);
                }
            }
            b'=' => push1(&mut out, Token::Eq, at, &mut i),
            b'<' => match bytes.get(i + 1) {
                Some(b'=') => push2(&mut out, Token::Le, at, &mut i),
                Some(b'>') => push2(&mut out, Token::Ne, at, &mut i),
                _ => push1(&mut out, Token::Lt, at, &mut i),
            },
            b'>' => match bytes.get(i + 1) {
                Some(b'=') => push2(&mut out, Token::Ge, at, &mut i),
                _ => push1(&mut out, Token::Gt, at, &mut i),
            },
            b'!' => match bytes.get(i + 1) {
                Some(b'=') => push2(&mut out, Token::Ne, at, &mut i),
                _ => {
                    return Err(ParseError::at(at, "unexpected character '!'"));
                }
            },
            b'\'' => {
                let (s, next) = lex_string(bytes, i)?;
                out.push(Spanned {
                    tok: Token::Str(s),
                    at,
                });
                i = next;
            }
            b'0'..=b'9' => {
                let (tok, next) = lex_number(bytes, i)?;
                out.push(Spanned { tok, at });
                i = next;
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while bytes
                    .get(i)
                    .is_some_and(|&c| c.is_ascii_alphanumeric() || c == b'_')
                {
                    i += 1;
                }
                if i - start > MAX_TOKEN_BYTES {
                    return Err(ParseError::at(start, "identifier too long"));
                }
                let word = bytes
                    .get(start..i)
                    .and_then(|w| std::str::from_utf8(w).ok())
                    .ok_or_else(|| ParseError::at(start, "malformed identifier"))?;
                out.push(Spanned {
                    tok: Token::Ident(word.to_string()),
                    at,
                });
            }
            other => {
                // Non-ASCII bytes get a generic description so the
                // message itself stays valid UTF-8.
                let what = if other.is_ascii_graphic() {
                    format!("unexpected character '{}'", other as char)
                } else {
                    format!("unexpected byte 0x{other:02x}")
                };
                return Err(ParseError::at(at, what));
            }
        }
    }
    Ok(out)
}

fn push1(out: &mut Vec<Spanned>, tok: Token, at: usize, i: &mut usize) {
    out.push(Spanned { tok, at });
    *i += 1;
}

fn push2(out: &mut Vec<Spanned>, tok: Token, at: usize, i: &mut usize) {
    out.push(Spanned { tok, at });
    *i += 2;
}

/// Lexes a single-quoted string starting at `start` (which holds `'`).
/// Returns the unescaped contents and the index just past the closing
/// quote. `''` inside the literal is an escaped quote.
fn lex_string(bytes: &[u8], start: usize) -> Result<(String, usize), ParseError> {
    let mut i = start + 1;
    let mut buf: Vec<u8> = Vec::new();
    loop {
        match bytes.get(i) {
            Some(b'\'') => {
                if bytes.get(i + 1) == Some(&b'\'') {
                    buf.push(b'\'');
                    i += 2;
                } else {
                    let s = String::from_utf8(buf)
                        .map_err(|_| ParseError::at(start, "string literal is not valid UTF-8"))?;
                    return Ok((s, i + 1));
                }
            }
            Some(&c) => {
                if buf.len() >= MAX_TOKEN_BYTES {
                    return Err(ParseError::at(start, "string literal too long"));
                }
                buf.push(c);
                i += 1;
            }
            None => return Err(ParseError::at(start, "unterminated string literal")),
        }
    }
}

/// Lexes an unsigned number starting at `start`. A `.` followed by a
/// digit makes it a float; otherwise it is an integer (checked parse,
/// so overflow is an error rather than a wrap).
fn lex_number(bytes: &[u8], start: usize) -> Result<(Token, usize), ParseError> {
    let mut i = start;
    while bytes.get(i).is_some_and(|c| c.is_ascii_digit()) {
        i += 1;
    }
    let is_float =
        bytes.get(i) == Some(&b'.') && bytes.get(i + 1).is_some_and(|c| c.is_ascii_digit());
    if is_float {
        i += 1;
        while bytes.get(i).is_some_and(|c| c.is_ascii_digit()) {
            i += 1;
        }
    }
    let text = bytes
        .get(start..i)
        .and_then(|w| std::str::from_utf8(w).ok())
        .ok_or_else(|| ParseError::at(start, "malformed number"))?;
    if is_float {
        text.parse::<f64>()
            .map(|x| (Token::Float(x), i))
            .map_err(|_| ParseError::at(start, format!("bad float literal '{text}'")))
    } else {
        text.parse::<i64>()
            .map(|n| (Token::Int(n), i))
            .map_err(|_| ParseError::at(start, format!("integer literal '{text}' out of range")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(input: &str) -> Vec<Token> {
        lex(input).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn lexes_punctuation_and_operators() {
        assert_eq!(
            toks("( ) , ; * . + - = <> != < <= > >="),
            vec![
                Token::LParen,
                Token::RParen,
                Token::Comma,
                Token::Semicolon,
                Token::Star,
                Token::Dot,
                Token::Plus,
                Token::Minus,
                Token::Eq,
                Token::Ne,
                Token::Ne,
                Token::Lt,
                Token::Le,
                Token::Gt,
                Token::Ge,
            ]
        );
    }

    #[test]
    fn lexes_literals() {
        assert_eq!(
            toks("42 12.5 'it''s'"),
            vec![
                Token::Int(42),
                Token::Float(12.5),
                Token::Str("it's".to_string()),
            ]
        );
    }

    #[test]
    fn number_then_dot_is_not_a_float() {
        // `t1.c` style references must survive: `1.x` lexes as int, dot, ident.
        assert_eq!(
            toks("1.x"),
            vec![Token::Int(1), Token::Dot, Token::Ident("x".to_string())]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("a -- rest of line\n b"),
            vec![Token::Ident("a".to_string()), Token::Ident("b".to_string())]
        );
    }

    #[test]
    fn errors_name_the_offset() {
        let e = lex("select ~").unwrap_err();
        assert_eq!(e.offset, 7);
        assert!(e.to_string().contains("unexpected character '~'"));
        assert!(lex("'open").is_err());
        assert!(lex("99999999999999999999").is_err());
        assert!(lex("!x").is_err());
    }

    #[test]
    fn non_ascii_is_an_error_not_a_panic() {
        assert!(lex("café").is_err());
        assert!(lex("\u{1F600}").is_err());
    }
}
