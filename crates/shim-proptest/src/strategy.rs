//! The [`Strategy`] trait and the combinators the workspace tests use.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::Range;

/// A recipe for generating values of one type from a [`TestRng`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy so heterogeneous strategies can share a
    /// collection (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T> {
    inner: Box<dyn Strategy<Value = T>>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.inner.sample(rng)
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

/// Uniform choice among boxed strategies (the `prop_oneof!` backend).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union of the given arms; each sample picks one uniformly.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.usize_in(0..self.arms.len());
        self.arms[idx].sample(rng)
    }
}

/// Types with a canonical "any value" strategy, like upstream's trait of
/// the same name.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Arbitrary bit patterns: includes infinities, NaNs, subnormals.
        // The workspace's Value type is totally ordered via total_cmp, so
        // these round-trip and compare fine.
        f64::from_bits(rng.next_u64())
    }
}

impl<T: Arbitrary> Arbitrary for Option<T> {
    fn arbitrary(rng: &mut TestRng) -> Option<T> {
        if rng.next_u64() % 4 == 0 {
            None
        } else {
            Some(T::arbitrary(rng))
        }
    }
}

/// The `any::<T>()` strategy.
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<T>);

/// Builds a strategy producing arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128 as u64;
                let off = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_strategy_tuple {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_strategy_tuple!(A);
impl_strategy_tuple!(A, B);
impl_strategy_tuple!(A, B, C);
impl_strategy_tuple!(A, B, C, D);
impl_strategy_tuple!(A, B, C, D, E);
impl_strategy_tuple!(A, B, C, D, E, F);

/// String patterns: a `&'static str` of the form `[class]{m,n}` is a
/// strategy producing strings of `m..=n` characters drawn from the class
/// (which may contain `a-z` style ranges). A pattern without `[` is
/// treated as a literal. This covers the regex subset the workspace's
/// tests use.
impl Strategy for &'static str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        let (alphabet, lo, hi) = match parse_class_pattern(self) {
            Some(parsed) => parsed,
            None => return (*self).to_string(),
        };
        let len = lo + rng.usize_in(0..(hi - lo + 1));
        (0..len)
            .map(|_| alphabet[rng.usize_in(0..alphabet.len())])
            .collect()
    }
}

/// Parses `[chars]{m,n}` into (alphabet, m, n). Returns `None` when the
/// pattern does not have that shape.
fn parse_class_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let mut alphabet = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (lo, hi) = (class[i], class[i + 2]);
            for c in lo..=hi {
                alphabet.push(c);
            }
            i += 3;
        } else {
            alphabet.push(class[i]);
            i += 1;
        }
    }
    if alphabet.is_empty() {
        return None;
    }
    let reps = rest[close + 1..]
        .strip_prefix('{')?
        .strip_suffix('}')?
        .to_string();
    let (lo, hi) = match reps.split_once(',') {
        Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
        None => {
            let n = reps.trim().parse().ok()?;
            (n, n)
        }
    };
    if lo > hi {
        return None;
    }
    Some((alphabet, lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = TestRng::for_test("ranges_sample_in_bounds");
        for _ in 0..10_000 {
            let v = (-20i16..20).sample(&mut rng);
            assert!((-20..20).contains(&v));
            let u = (1usize..17).sample(&mut rng);
            assert!((1..17).contains(&u));
            let f = (0.3f64..1.0).sample(&mut rng);
            assert!((0.3..1.0).contains(&f));
        }
    }

    #[test]
    fn map_and_union_compose() {
        let mut rng = TestRng::for_test("map_and_union_compose");
        let strat = Union::new(vec![
            (0u8..3).prop_map(|v| v as i32).boxed(),
            Just(-1i32).boxed(),
        ]);
        let mut saw_just = false;
        for _ in 0..200 {
            let v = strat.sample(&mut rng);
            assert!(v == -1 || (0..3).contains(&v));
            saw_just |= v == -1;
        }
        assert!(saw_just, "union must visit every arm");
    }

    #[test]
    fn class_patterns_honour_alphabet_and_length() {
        let mut rng = TestRng::for_test("class_patterns");
        for _ in 0..500 {
            let s = "[a-cXY ]{0,5}".sample(&mut rng);
            assert!(s.chars().count() <= 5);
            assert!(s.chars().all(|c| "abcXY ".contains(c)), "bad char in {s:?}");
        }
    }

    #[test]
    fn tuples_sample_elementwise() {
        let mut rng = TestRng::for_test("tuples_sample_elementwise");
        let (a, b, c) = (0u8..2, 5i64..6, Just("k")).sample(&mut rng);
        assert!(a < 2);
        assert_eq!(b, 5);
        assert_eq!(c, "k");
    }

    #[test]
    fn vec_and_btree_set_respect_sizes() {
        let mut rng = TestRng::for_test("vec_and_btree_set");
        for _ in 0..200 {
            let v = crate::collection::vec(any::<i32>(), 2..9).sample(&mut rng);
            assert!((2..9).contains(&v.len()));
            let s = crate::collection::btree_set(any::<i32>(), 1..40).sample(&mut rng);
            assert!((1..40).contains(&s.len()));
        }
    }
}
