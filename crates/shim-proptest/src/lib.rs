#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no crates.io access, so the workspace vendors
//! the subset of the proptest API its property tests use: the
//! [`proptest!`] macro, [`Strategy`] with `prop_map`/`boxed`,
//! [`prop_oneof!`], integer/float range strategies, `any::<T>()`,
//! [`Just`], tuple strategies, `prop::collection::{vec, btree_set}`, and
//! simple `[class]{m,n}` string patterns.
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its case number and the
//!   deterministic per-test seed; re-running reproduces it exactly.
//! * **Deterministic seeding.** Each test's stream is derived from its
//!   full module path, so runs are reproducible without a persistence
//!   file. Set `PROPTEST_CASES` to change the case count globally.

use std::fmt;

pub mod strategy;

pub use strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};

/// Collection strategies (`prop::collection::vec` call sites).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Strategy for `Vec<T>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// Strategy for `BTreeSet<T>` with a target size drawn from `size`.
    ///
    /// If the element strategy cannot produce enough distinct values the
    /// set may come out smaller than the drawn target, like upstream.
    pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.usize_in(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// See [`btree_set`].
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = rng.usize_in(self.size.clone());
            let mut out = BTreeSet::new();
            // Bounded retries: duplicates are expected for narrow element
            // domains, so allow several attempts per requested element.
            for _ in 0..target * 8 + 32 {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.sample(rng));
            }
            out
        }
    }
}

/// `prop::…` paths as the upstream prelude exposes them.
pub mod prop {
    pub use crate::collection;
}

/// Test-runner plumbing: RNG, config, and the error type the `proptest!`
/// macro's bodies return.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::ops::Range;

    /// Deterministic RNG behind every strategy sample.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// A stream derived from the test's fully qualified name, so each
        /// test is deterministic and distinct.
        pub fn for_test(name: &str) -> TestRng {
            // FNV-1a over the test name.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng {
                inner: StdRng::seed_from_u64(h),
            }
        }

        /// Uniform `u64`.
        pub fn next_u64(&mut self) -> u64 {
            self.inner.gen::<u64>()
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            self.inner.gen::<f64>()
        }

        /// Uniform `usize` in `range`.
        pub fn usize_in(&mut self, range: Range<usize>) -> usize {
            if range.start >= range.end {
                return range.start;
            }
            self.inner.gen_range(range)
        }
    }
}

/// Failure raised by `prop_assert*` and `TestCaseError::fail`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failed case with the given reason.
    pub fn fail<S: Into<String>>(reason: S) -> TestCaseError {
        TestCaseError(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// How many random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(128);
        ProptestConfig { cases }
    }
}

/// Everything a test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::prop;
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::TestRng;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, ProptestConfig,
        TestCaseError,
    };
}

/// Defines property tests: `proptest! { #[test] fn f(x in strat) { … } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(cfg = $cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(cfg = $crate::ProptestConfig::default(); $($rest)*);
    };
}

/// Internal recursion for [`proptest!`] — not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let __strats = ($($strat,)*);
            let __test_name = concat!(module_path!(), "::", stringify!($name));
            let mut __rng = $crate::test_runner::TestRng::for_test(__test_name);
            for __case in 0..__cfg.cases {
                let ($($arg,)*) = $crate::Strategy::sample(&__strats, &mut __rng);
                let __outcome: ::core::result::Result<(), $crate::TestCaseError> =
                    (|| { $body; ::core::result::Result::Ok(()) })();
                if let ::core::result::Result::Err(e) = __outcome {
                    panic!(
                        "[{}] case {}/{} failed: {}",
                        __test_name,
                        __case + 1,
                        __cfg.cases,
                        e
                    );
                }
            }
        }
        $crate::__proptest_impl!(cfg = $cfg; $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), __a, __b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), __a, __b
            )));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if __a == __b {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($a), stringify!($b), __a
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if __a == __b {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Uniform choice among heterogeneous strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}
