#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Executable query-processing algorithms (§3 of the paper).
//!
//! Everything here *really executes*: the four join algorithms produce
//! actual result tuples (verifiable against the nested-loops reference)
//! while charging every primitive operation — `comp`, `hash`, `move`,
//! `swap`, `IOseq`, `IOrand` — to a shared [`mmdb_storage::CostMeter`].
//! Converting the meter to seconds with the Table 2 prices regenerates
//! Figure 1 from a running system rather than from formulas.
//!
//! Conventions, following §3.2 of the paper:
//!
//! * the initial scan of the input relations and the write of the join
//!   result are **not** charged (identical for every algorithm);
//! * CPU and I/O never overlap — the meter simply sums;
//! * `R` is the smaller relation; hash/sort structures for `X` pages of
//!   tuples occupy `X·F` pages of memory (the universal fudge factor).

pub mod aggregate;
pub mod context;
pub mod join;
pub mod partition;
pub mod project;
pub mod select;
pub mod sort;
pub mod spill;
pub mod workload;

pub use context::ExecContext;
pub use join::JoinSpec;
pub use spill::SpillFile;
