//! Spill files: page-granular temporary tuple storage.
//!
//! Operators that overflow memory write tuples here in logical pages of
//! `tuples_per_page`. Every page written and read charges the meter —
//! sequential or random per the caller's access pattern — which is the
//! whole of the paper's I/O cost accounting (the tuples themselves stay in
//! process memory; see DESIGN.md on the simulated-disk substitution).

use mmdb_storage::CostMeter;
use mmdb_types::Tuple;
use std::sync::Arc;

/// How a spill transfer is priced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpillIo {
    /// `IOseq`.
    Sequential,
    /// `IOrand`.
    Random,
}

/// A temporary file of tuple pages with priced I/O.
#[derive(Debug)]
pub struct SpillFile {
    pages: Vec<Vec<Tuple>>,
    open_page: Vec<Tuple>,
    tuples_per_page: usize,
    meter: Arc<CostMeter>,
    tuples: usize,
}

impl SpillFile {
    /// A fresh spill file.
    pub fn new(meter: Arc<CostMeter>, tuples_per_page: usize) -> Self {
        assert!(tuples_per_page > 0);
        SpillFile {
            pages: Vec::new(),
            open_page: Vec::with_capacity(tuples_per_page),
            tuples_per_page,
            meter,
            tuples: 0,
        }
    }

    /// Tuples appended so far.
    pub fn tuple_count(&self) -> usize {
        self.tuples
    }

    /// Whether nothing was appended.
    pub fn is_empty(&self) -> bool {
        self.tuples == 0
    }

    /// Pages this file occupies (counting a partial open page).
    pub fn page_count(&self) -> usize {
        self.pages.len() + usize::from(!self.open_page.is_empty())
    }

    /// Tuples per logical page.
    pub fn tuples_per_page(&self) -> usize {
        self.tuples_per_page
    }

    /// Appends a tuple to the open output buffer; when the buffer fills it
    /// is written out with one I/O of `io`. (The buffer page itself is part
    /// of the operator's memory grant; callers account for that.)
    pub fn append(&mut self, tuple: Tuple, io: SpillIo) {
        self.open_page.push(tuple);
        self.tuples += 1;
        if self.open_page.len() >= self.tuples_per_page {
            self.flush(io);
        }
    }

    /// Writes the open buffer out if non-empty (end-of-scan flush, §3.6
    /// step 1: "flush all output buffers to disk").
    pub fn flush(&mut self, io: SpillIo) {
        if self.open_page.is_empty() {
            return;
        }
        match io {
            SpillIo::Sequential => self.meter.charge_seq_ios(1),
            SpillIo::Random => self.meter.charge_rand_ios(1),
        }
        let page = std::mem::replace(
            &mut self.open_page,
            Vec::with_capacity(self.tuples_per_page),
        );
        self.pages.push(page);
    }

    /// Reads the whole file back page by page, charging one I/O of `io`
    /// per page, and consumes it.
    pub fn drain_pages(mut self, io: SpillIo) -> DrainPages {
        self.flush(match io {
            SpillIo::Sequential => SpillIo::Sequential,
            SpillIo::Random => SpillIo::Random,
        });
        DrainPages {
            pages: self.pages.into_iter(),
            meter: self.meter,
            io,
        }
    }

    /// Reads one specific page (for merge-style interleaved access),
    /// charging one I/O of `io`. Panics if out of range.
    pub fn read_page(&self, idx: usize, io: SpillIo) -> &[Tuple] {
        match io {
            SpillIo::Sequential => self.meter.charge_seq_ios(1),
            SpillIo::Random => self.meter.charge_rand_ios(1),
        }
        &self.pages[idx]
    }

    /// Number of closed (written) pages addressable by [`Self::read_page`].
    pub fn closed_pages(&self) -> usize {
        self.pages.len()
    }

    /// The meter this file charges.
    pub fn meter(&self) -> &Arc<CostMeter> {
        &self.meter
    }
}

/// Page iterator returned by [`SpillFile::drain_pages`].
#[derive(Debug)]
pub struct DrainPages {
    pages: std::vec::IntoIter<Vec<Tuple>>,
    meter: Arc<CostMeter>,
    io: SpillIo,
}

impl Iterator for DrainPages {
    type Item = Vec<Tuple>;

    fn next(&mut self) -> Option<Self::Item> {
        let page = self.pages.next()?;
        match self.io {
            SpillIo::Sequential => self.meter.charge_seq_ios(1),
            SpillIo::Random => self.meter.charge_rand_ios(1),
        }
        Some(page)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmdb_types::Value;

    fn t(i: i64) -> Tuple {
        Tuple::new(vec![Value::Int(i)])
    }

    #[test]
    fn pages_fill_and_charge_on_write() {
        let meter = Arc::new(CostMeter::new());
        let mut f = SpillFile::new(Arc::clone(&meter), 4);
        for i in 0..9 {
            f.append(t(i), SpillIo::Sequential);
        }
        // Two full pages written; one open page pending.
        assert_eq!(meter.snapshot().seq_ios, 2);
        assert_eq!(f.page_count(), 3);
        assert_eq!(f.tuple_count(), 9);
        f.flush(SpillIo::Sequential);
        assert_eq!(meter.snapshot().seq_ios, 3);
    }

    #[test]
    fn drain_charges_one_io_per_page() {
        let meter = Arc::new(CostMeter::new());
        let mut f = SpillFile::new(Arc::clone(&meter), 4);
        for i in 0..10 {
            f.append(t(i), SpillIo::Sequential);
        }
        let before = meter.snapshot();
        let pages: Vec<_> = f.drain_pages(SpillIo::Sequential).collect();
        let delta = meter.snapshot().delta_since(&before);
        // Final partial page flushed (1 write) + 3 reads.
        assert_eq!(pages.len(), 3);
        assert_eq!(delta.seq_ios, 4);
        let total: usize = pages.iter().map(|p| p.len()).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn random_io_charges_random_counter() {
        let meter = Arc::new(CostMeter::new());
        let mut f = SpillFile::new(Arc::clone(&meter), 2);
        for i in 0..4 {
            f.append(t(i), SpillIo::Random);
        }
        assert_eq!(meter.snapshot().rand_ios, 2);
        assert_eq!(meter.snapshot().seq_ios, 0);
    }

    #[test]
    fn read_page_by_index() {
        let meter = Arc::new(CostMeter::new());
        let mut f = SpillFile::new(Arc::clone(&meter), 2);
        for i in 0..6 {
            f.append(t(i), SpillIo::Sequential);
        }
        assert_eq!(f.closed_pages(), 3);
        let p1 = f.read_page(1, SpillIo::Random);
        assert_eq!(p1, &[t(2), t(3)]);
        assert_eq!(meter.snapshot().rand_ios, 1);
    }

    #[test]
    fn empty_file_drains_nothing() {
        let meter = Arc::new(CostMeter::new());
        let f = SpillFile::new(Arc::clone(&meter), 4);
        assert!(f.is_empty());
        assert_eq!(f.drain_pages(SpillIo::Sequential).count(), 0);
        assert_eq!(meter.snapshot().total_ios(), 0);
    }
}
