//! Partitioning a relation by hash values (§3.3).
//!
//! A partition of R *compatible with h* assigns every tuple to a subset
//! determined only by `h(key)`, so partitioning R and S by the same split
//! of the hash-value space reduces joining R with S to joining `R_i` with
//! `S_i` pairwise (Babb's and Goodman's observation, cited in §3.3).

use mmdb_types::Value;
use std::hash::{Hash, Hasher};

/// A deterministic 64-bit hash of a join key. All §3 algorithms share it so
/// R and S are always partitioned compatibly.
pub fn hash_key(v: &Value) -> u64 {
    // FNV-1a over the value's canonical encoding; deterministic across
    // runs and platforms (std's SipHash is randomly keyed per process).
    struct Fnv(u64);
    impl Hasher for Fnv {
        fn finish(&self) -> u64 {
            self.0
        }
        fn write(&mut self, bytes: &[u8]) {
            for &b in bytes {
                self.0 ^= b as u64;
                self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
    }
    let mut h = Fnv(0xcbf2_9ce4_8422_2325);
    v.hash(&mut h);
    // One xorshift round to spread FNV's weak low bits.
    let mut x = h.finish();
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    x
}

/// A level-salted variant of [`hash_key`] for **recursive** partitioning
/// (§3.3: "we can always apply the hybrid hash join recursively"). Tuples
/// that collided into one partition at level `k` share a hash class under
/// the level-`k` function, so the recursion must re-partition them with an
/// *independent* function — salting by level provides one.
pub fn hash_key_level(v: &Value, level: u32) -> u64 {
    let mut x = hash_key(v) ^ (level as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// Splits the hash-value space `[0, 2^64)` into one in-memory class (the
/// first `q` fraction) plus `disk_partitions` equal classes — the hybrid
/// join's partitioning (§3.7). Class 0 is the memory-resident `R0/S0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HybridSplit {
    /// Fraction of the hash space kept in memory (`q = |R0|/|R|`).
    pub in_memory_fraction: f64,
    /// Number of on-disk partitions (`B`).
    pub disk_partitions: usize,
}

impl HybridSplit {
    /// Class of a hash value: `0` for the in-memory class, `1..=B` for the
    /// disk partitions.
    pub fn classify(&self, hash: u64) -> usize {
        let u = hash as f64 / u64::MAX as f64;
        if u < self.in_memory_fraction || self.disk_partitions == 0 {
            return 0;
        }
        let rest = (u - self.in_memory_fraction) / (1.0 - self.in_memory_fraction).max(1e-12);
        let idx = (rest * self.disk_partitions as f64).floor() as usize;
        1 + idx.min(self.disk_partitions - 1)
    }
}

/// Uniformly splits the hash space into `n` classes — GRACE's partitioning
/// (§3.6, "sets of approximately equal size" via the central limit
/// theorem).
pub fn uniform_class(hash: u64, n: usize) -> usize {
    debug_assert!(n > 0);
    // Multiply-shift avoids the modulo bias of `hash % n` on weak bits.
    ((hash as u128 * n as u128) >> 64) as usize
}

/// The simple-hash join's per-pass acceptance test: a tuple is "in range"
/// when its hash falls in the first `fraction` of the space (§3.5 step 1).
pub fn in_first_fraction(hash: u64, fraction: f64) -> bool {
    (hash as f64 / u64::MAX as f64) < fraction
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_deterministic_and_spread() {
        let a = hash_key(&Value::Int(42));
        assert_eq!(a, hash_key(&Value::Int(42)));
        assert_ne!(a, hash_key(&Value::Int(43)));
        // Equal-comparing int/float hash equal (needed for mixed joins).
        assert_eq!(hash_key(&Value::Int(7)), hash_key(&Value::Float(7.0)));
    }

    #[test]
    fn uniform_class_is_balanced() {
        let n = 16;
        let mut counts = vec![0usize; n];
        for i in 0..80_000i64 {
            counts[uniform_class(hash_key(&Value::Int(i)), n)] += 1;
        }
        let expected = 80_000 / n;
        for (c, &count) in counts.iter().enumerate() {
            assert!(
                (count as f64 - expected as f64).abs() < expected as f64 * 0.15,
                "class {c} has {count}, expected ≈ {expected}"
            );
        }
    }

    #[test]
    fn hybrid_split_fractions_match_q() {
        let split = HybridSplit {
            in_memory_fraction: 0.3,
            disk_partitions: 4,
        };
        let mut counts = [0usize; 5];
        let n = 100_000i64;
        for i in 0..n {
            counts[split.classify(hash_key(&Value::Int(i)))] += 1;
        }
        let q_measured = counts[0] as f64 / n as f64;
        assert!((q_measured - 0.3).abs() < 0.02, "q = {q_measured}");
        // Disk partitions split the remainder evenly.
        let per = (n as f64 * 0.7) / 4.0;
        for &c in &counts[1..] {
            assert!((c as f64 - per).abs() < per * 0.15);
        }
    }

    #[test]
    fn hybrid_split_degenerate_cases() {
        let all_mem = HybridSplit {
            in_memory_fraction: 1.0,
            disk_partitions: 0,
        };
        for i in 0..100 {
            assert_eq!(all_mem.classify(hash_key(&Value::Int(i))), 0);
        }
        let no_mem = HybridSplit {
            in_memory_fraction: 0.0,
            disk_partitions: 3,
        };
        for i in 0..100 {
            let c = no_mem.classify(hash_key(&Value::Int(i)));
            assert!((1..=3).contains(&c));
        }
    }

    #[test]
    fn compatibility_r_and_s_agree() {
        // The same key always lands in the same class — the §3.3 property
        // that makes partitioned joins correct.
        let split = HybridSplit {
            in_memory_fraction: 0.25,
            disk_partitions: 7,
        };
        for i in 0..1_000i64 {
            let h = hash_key(&Value::Int(i));
            assert_eq!(split.classify(h), split.classify(h));
            assert_eq!(
                uniform_class(h, 11),
                uniform_class(hash_key(&Value::Int(i)), 11)
            );
        }
    }

    #[test]
    fn level_salted_hashes_are_independent() {
        // Keys that share a class at level 0 must spread at level 1.
        let n = 8;
        let mut colliders = Vec::new();
        for i in 0..200_000i64 {
            let v = Value::Int(i);
            if uniform_class(hash_key_level(&v, 0), n) == 3 {
                colliders.push(i);
            }
        }
        assert!(colliders.len() > 10_000);
        let mut counts = vec![0usize; n];
        for &i in &colliders {
            counts[uniform_class(hash_key_level(&Value::Int(i), 1), n)] += 1;
        }
        let expected = colliders.len() / n;
        for (c, &count) in counts.iter().enumerate() {
            assert!(
                (count as f64 - expected as f64).abs() < expected as f64 * 0.2,
                "level-1 class {c}: {count} vs expected {expected}"
            );
        }
    }

    #[test]
    fn level_zero_differs_from_plain_hash_mix_only() {
        // Determinism per level.
        for i in 0..100i64 {
            let v = Value::Int(i);
            assert_eq!(hash_key_level(&v, 2), hash_key_level(&v, 2));
            assert_ne!(hash_key_level(&v, 0), hash_key_level(&v, 1));
        }
    }

    #[test]
    fn in_first_fraction_boundaries() {
        assert!(in_first_fraction(0, 0.01));
        assert!(!in_first_fraction(u64::MAX, 0.999));
        assert!(in_first_fraction(u64::MAX / 2, 0.6));
        assert!(!in_first_fraction(u64::MAX / 2, 0.4));
    }
}
