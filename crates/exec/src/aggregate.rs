//! Aggregation (§3.9).
//!
//! "If there is enough memory to hold the result relation, then the
//! fastest algorithm will be a one pass hashing algorithm in which each
//! incoming tuple is hashed on the grouping attribute. If there is not
//! ... a variant of the hybrid-hash algorithm appears fastest."
//!
//! Both are implemented, plus the sort-based alternative they beat.

use crate::context::ExecContext;
use crate::partition::{hash_key, uniform_class};
use crate::sort::external_sort;
use crate::spill::{SpillFile, SpillIo};
use mmdb_storage::MemRelation;
use mmdb_types::{DataType, Result, Schema, Tuple, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// An aggregate function over a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// Row count (column ignored).
    Count,
    /// Sum of a numeric column.
    Sum(usize),
    /// Mean of a numeric column.
    Avg(usize),
    /// Minimum of a column.
    Min(usize),
    /// Maximum of a column.
    Max(usize),
}

impl AggFunc {
    fn output_name(&self) -> String {
        match self {
            AggFunc::Count => "count".into(),
            AggFunc::Sum(c) => format!("sum_{c}"),
            AggFunc::Avg(c) => format!("avg_{c}"),
            AggFunc::Min(c) => format!("min_{c}"),
            AggFunc::Max(c) => format!("max_{c}"),
        }
    }

    fn output_type(&self, input: &Schema) -> DataType {
        match self {
            AggFunc::Count => DataType::Int,
            AggFunc::Sum(_) | AggFunc::Avg(_) => DataType::Float,
            AggFunc::Min(c) | AggFunc::Max(c) => input
                .column(*c)
                .map(|col| col.ty)
                .unwrap_or(DataType::Float),
        }
    }
}

/// Running state for one group.
#[derive(Debug, Clone)]
struct AggState {
    count: u64,
    sums: Vec<f64>,
    mins: Vec<Option<Value>>,
    maxs: Vec<Option<Value>>,
}

impl AggState {
    fn new(aggs: &[AggFunc]) -> Self {
        AggState {
            count: 0,
            sums: vec![0.0; aggs.len()],
            mins: vec![None; aggs.len()],
            maxs: vec![None; aggs.len()],
        }
    }

    fn update(&mut self, aggs: &[AggFunc], t: &Tuple) {
        self.count += 1;
        for (i, a) in aggs.iter().enumerate() {
            match a {
                AggFunc::Count => {}
                AggFunc::Sum(c) | AggFunc::Avg(c) => {
                    if let Some(x) = t.get(*c).numeric() {
                        self.sums[i] += x;
                    }
                }
                AggFunc::Min(c) => {
                    let v = t.get(*c);
                    if self.mins[i].as_ref().map(|m| v < m).unwrap_or(true) {
                        self.mins[i] = Some(v.clone());
                    }
                }
                AggFunc::Max(c) => {
                    let v = t.get(*c);
                    if self.maxs[i].as_ref().map(|m| v > m).unwrap_or(true) {
                        self.maxs[i] = Some(v.clone());
                    }
                }
            }
        }
    }

    fn finish(&self, aggs: &[AggFunc]) -> Vec<Value> {
        aggs.iter()
            .enumerate()
            .map(|(i, a)| match a {
                AggFunc::Count => Value::Int(self.count as i64),
                AggFunc::Sum(_) => Value::Float(self.sums[i]),
                AggFunc::Avg(_) => Value::Float(if self.count == 0 {
                    0.0
                } else {
                    self.sums[i] / self.count as f64
                }),
                AggFunc::Min(_) => self.mins[i].clone().unwrap_or(Value::Null),
                AggFunc::Max(_) => self.maxs[i].clone().unwrap_or(Value::Null),
            })
            .collect()
    }
}

/// Output schema: the group column then one column per aggregate.
pub fn aggregate_schema(input: &Schema, group_col: usize, aggs: &[AggFunc]) -> Result<Schema> {
    let gcol = input
        .column(group_col)
        .ok_or_else(|| mmdb_types::Error::ColumnNotFound(format!("#{group_col}")))?;
    let mut cols = vec![(gcol.name.clone(), gcol.ty)];
    for a in aggs {
        cols.push((a.output_name(), a.output_type(input)));
    }
    Schema::new(
        cols.into_iter()
            .map(|(n, t)| mmdb_types::Column::new(n, t))
            .collect(),
    )
}

fn aggregate_in_memory(
    tuples: impl Iterator<Item = Tuple>,
    group_col: usize,
    aggs: &[AggFunc],
    ctx: &ExecContext,
    out: &mut MemRelation,
) -> Result<()> {
    let mut groups: HashMap<Value, AggState> = HashMap::new();
    for t in tuples {
        ctx.meter.charge_hashes(1);
        let key = t.get(group_col).clone();
        // One comparison to match the group within its bucket; one move
        // when a new group tuple is created (the result-relation insert).
        ctx.meter.charge_comparisons(1);
        let state = groups.entry(key).or_insert_with(|| {
            ctx.meter.charge_moves(1);
            AggState::new(aggs)
        });
        state.update(aggs, &t);
    }
    let mut keys: Vec<Value> = groups.keys().cloned().collect();
    keys.sort();
    for k in keys {
        let state = &groups[&k];
        let mut values = vec![k.clone()];
        values.extend(state.finish(aggs));
        out.push(Tuple::new(values))?;
    }
    Ok(())
}

/// One-pass hash aggregation: assumes the result relation fits in memory
/// (§3.9 calls the alternative "a very unlikely event"). Groups by
/// `group_col` and computes `aggs`.
pub fn hash_aggregate(
    rel: &MemRelation,
    group_col: usize,
    aggs: &[AggFunc],
    ctx: &ExecContext,
) -> Result<MemRelation> {
    let schema = aggregate_schema(rel.schema(), group_col, aggs)?;
    let mut out = MemRelation::new(schema, rel.tuples_per_page());
    aggregate_in_memory(rel.tuples().iter().cloned(), group_col, aggs, ctx, &mut out)?;
    Ok(out)
}

/// Hybrid-hash aggregation: partitions the input by group hash (like the
/// hybrid join's partitioning phase) when there could be more groups than
/// memory holds, then aggregates each partition in one pass.
pub fn hybrid_hash_aggregate(
    rel: &MemRelation,
    group_col: usize,
    aggs: &[AggFunc],
    ctx: &ExecContext,
) -> Result<MemRelation> {
    let schema = aggregate_schema(rel.schema(), group_col, aggs)?;
    let tpp = rel.tuples_per_page().max(1);
    let mut out = MemRelation::new(schema, tpp);
    let capacity = ctx.mem_tuple_capacity(tpp);
    if rel.tuple_count() <= capacity {
        aggregate_in_memory(rel.tuples().iter().cloned(), group_col, aggs, ctx, &mut out)?;
        return Ok(out);
    }
    // Partition to disk so each partition's groups fit.
    let parts = rel.tuple_count().div_ceil(capacity).max(1);
    let mut files: Vec<SpillFile> = (0..parts)
        .map(|_| SpillFile::new(Arc::clone(&ctx.meter), tpp))
        .collect();
    for t in rel.tuples() {
        ctx.meter.charge_hashes(1);
        let h = hash_key(t.get(group_col));
        ctx.meter.charge_moves(1);
        files[uniform_class(h, parts)].append(t.clone(), SpillIo::Random);
    }
    for f in &mut files {
        f.flush(SpillIo::Random);
    }
    for f in files {
        let tuples = f.drain_pages(SpillIo::Sequential).flatten();
        aggregate_in_memory(tuples, group_col, aggs, ctx, &mut out)?;
    }
    Ok(out)
}

/// Output schema for multi-column grouping: the group columns then one
/// column per aggregate.
pub fn aggregate_schema_multi(
    input: &Schema,
    group_cols: &[usize],
    aggs: &[AggFunc],
) -> Result<Schema> {
    let mut cols = Vec::with_capacity(group_cols.len() + aggs.len());
    for &g in group_cols {
        let c = input
            .column(g)
            .ok_or_else(|| mmdb_types::Error::ColumnNotFound(format!("#{g}")))?;
        cols.push(mmdb_types::Column::new(c.name.clone(), c.ty));
    }
    for a in aggs {
        cols.push(mmdb_types::Column::new(
            a.output_name(),
            a.output_type(input),
        ));
    }
    Schema::new(cols)
}

/// One-pass hash aggregation grouping by **several** columns — the shape
/// of "average salary by manager and department". Hashing composes over
/// the projected group key exactly as over a single column, so §3.9's
/// conclusion carries over unchanged.
pub fn hash_aggregate_multi(
    rel: &MemRelation,
    group_cols: &[usize],
    aggs: &[AggFunc],
    ctx: &ExecContext,
) -> Result<MemRelation> {
    let schema = aggregate_schema_multi(rel.schema(), group_cols, aggs)?;
    let mut out = MemRelation::new(schema, rel.tuples_per_page());
    let mut groups: HashMap<Tuple, AggState> = HashMap::new();
    for t in rel.tuples() {
        ctx.meter.charge_hashes(1);
        ctx.meter.charge_comparisons(1);
        let key = t.project(group_cols);
        let state = groups.entry(key).or_insert_with(|| {
            ctx.meter.charge_moves(1);
            AggState::new(aggs)
        });
        state.update(aggs, t);
    }
    let mut keys: Vec<Tuple> = groups.keys().cloned().collect();
    keys.sort();
    for k in keys {
        let state = &groups[&k];
        let mut values = k.into_values();
        values.extend(state.finish(aggs));
        out.push(Tuple::new(values))?;
    }
    Ok(out)
}

/// The sort-based alternative: sort on the group column, then scan groups.
/// Exists as the baseline §3.9's claim is measured against.
pub fn sort_aggregate(
    rel: &MemRelation,
    group_col: usize,
    aggs: &[AggFunc],
    ctx: &ExecContext,
) -> Result<MemRelation> {
    let schema = aggregate_schema(rel.schema(), group_col, aggs)?;
    let mut out = MemRelation::new(schema, rel.tuples_per_page());
    let sorted = external_sort(rel, group_col, ctx);
    let mut current: Option<(Value, AggState)> = None;
    for t in sorted {
        let key = t.get(group_col).clone();
        ctx.meter.charge_comparisons(1);
        match &mut current {
            Some((k, state)) if *k == key => state.update(aggs, &t),
            _ => {
                if let Some((k, state)) = current.take() {
                    let mut values = vec![k];
                    values.extend(state.finish(aggs));
                    out.push(Tuple::new(values))?;
                }
                ctx.meter.charge_moves(1);
                let mut state = AggState::new(aggs);
                state.update(aggs, &t);
                current = Some((key, state));
            }
        }
    }
    if let Some((k, state)) = current {
        let mut values = vec![k];
        values.extend(state.finish(aggs));
        out.push(Tuple::new(values))?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmdb_types::{Schema, WorkloadRng};

    fn employees(n: usize, depts: i64) -> MemRelation {
        let mut rng = WorkloadRng::seeded(123);
        let schema = Schema::of(&[
            ("id", DataType::Int),
            ("name", DataType::Str),
            ("salary", DataType::Float),
            ("dept", DataType::Int),
        ]);
        MemRelation::from_tuples(schema, 40, rng.employees(n, depts)).unwrap()
    }

    fn oracle_avg_by_dept(rel: &MemRelation) -> HashMap<i64, (u64, f64)> {
        let mut m: HashMap<i64, (u64, f64)> = HashMap::new();
        for t in rel.tuples() {
            let d = t.get(3).as_int().unwrap();
            let s = t.get(2).as_float().unwrap();
            let e = m.entry(d).or_insert((0, 0.0));
            e.0 += 1;
            e.1 += s;
        }
        m
    }

    #[test]
    fn average_salary_by_department() {
        // §3.9's example: "compute average employee salary by manager".
        let rel = employees(2_000, 8);
        let ctx = ExecContext::new(100, 1.2);
        let out = hash_aggregate(&rel, 3, &[AggFunc::Count, AggFunc::Avg(2)], &ctx).unwrap();
        assert_eq!(out.tuple_count(), 8);
        let oracle = oracle_avg_by_dept(&rel);
        for t in out.tuples() {
            let d = t.get(0).as_int().unwrap();
            let count = t.get(1).as_int().unwrap() as u64;
            let avg = t.get(2).as_float().unwrap();
            let (oc, osum) = oracle[&d];
            assert_eq!(count, oc);
            assert!((avg - osum / oc as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn all_aggregate_functions() {
        let rel = employees(500, 4);
        let ctx = ExecContext::new(100, 1.2);
        let out = hash_aggregate(
            &rel,
            3,
            &[
                AggFunc::Count,
                AggFunc::Sum(2),
                AggFunc::Min(2),
                AggFunc::Max(2),
            ],
            &ctx,
        )
        .unwrap();
        for t in out.tuples() {
            let min = t.get(3).as_float().unwrap();
            let max = t.get(4).as_float().unwrap();
            assert!(min <= max);
            let sum = t.get(2).as_float().unwrap();
            let count = t.get(1).as_int().unwrap() as f64;
            assert!(sum >= min * count && sum <= max * count);
        }
    }

    #[test]
    fn hash_and_sort_agree() {
        let rel = employees(3_000, 16);
        let h = hash_aggregate(
            &rel,
            3,
            &[AggFunc::Count, AggFunc::Avg(2)],
            &ExecContext::new(200, 1.2),
        )
        .unwrap();
        let s = sort_aggregate(
            &rel,
            3,
            &[AggFunc::Count, AggFunc::Avg(2)],
            &ExecContext::new(200, 1.2),
        )
        .unwrap();
        // Both produce group-key-sorted output.
        assert_eq!(h.tuples(), s.tuples());
    }

    #[test]
    fn hybrid_matches_one_pass_under_pressure() {
        let rel = employees(4_000, 32);
        let one = hash_aggregate(
            &rel,
            3,
            &[AggFunc::Count, AggFunc::Sum(2)],
            &ExecContext::new(1_000, 1.2),
        )
        .unwrap();
        let ctx = ExecContext::new(10, 1.2); // forces partitioning
        let hybrid =
            hybrid_hash_aggregate(&rel, 3, &[AggFunc::Count, AggFunc::Sum(2)], &ctx).unwrap();
        let mut got = hybrid.tuples().to_vec();
        got.sort();
        let mut want = one.tuples().to_vec();
        want.sort();
        assert_eq!(got, want);
        assert!(
            ctx.meter.snapshot().total_ios() > 0,
            "must have partitioned"
        );
    }

    #[test]
    fn hash_beats_sort_in_cpu_seconds() {
        // §3.9's claim, measured at Table 2 prices.
        let rel = employees(5_000, 10);
        let params = mmdb_types::SystemParams::table2();
        let hctx = ExecContext::new(1_000, 1.2);
        hash_aggregate(&rel, 3, &[AggFunc::Avg(2)], &hctx).unwrap();
        let sctx = ExecContext::new(1_000, 1.2);
        sort_aggregate(&rel, 3, &[AggFunc::Avg(2)], &sctx).unwrap();
        let h_secs = hctx.meter.seconds(&params);
        let s_secs = sctx.meter.seconds(&params);
        assert!(
            h_secs < s_secs,
            "hash aggregation {h_secs}s should beat sort {s_secs}s"
        );
    }

    #[test]
    fn multi_column_grouping() {
        // Group by (dept, salary-band-ish id parity): composite keys.
        let rel = employees(1_200, 6);
        let ctx = ExecContext::new(100, 1.2);
        let out = hash_aggregate_multi(&rel, &[3, 0], &[AggFunc::Count], &ctx).unwrap();
        // (dept, id) is unique per employee here, so one group per row —
        // check schema shape and count conservation instead.
        assert_eq!(out.schema().arity(), 3);
        assert_eq!(out.tuple_count(), 1_200);
        let total: i64 = out
            .tuples()
            .iter()
            .map(|t| t.get(2).as_int().unwrap())
            .sum();
        assert_eq!(total, 1_200);
        // Coarser composite: dept alone via the multi API matches the
        // single-column API.
        let multi =
            hash_aggregate_multi(&rel, &[3], &[AggFunc::Count, AggFunc::Avg(2)], &ctx).unwrap();
        let single = hash_aggregate(&rel, 3, &[AggFunc::Count, AggFunc::Avg(2)], &ctx).unwrap();
        assert_eq!(multi.tuples(), single.tuples());
    }

    #[test]
    fn multi_column_grouping_rejects_bad_columns() {
        let rel = employees(10, 2);
        let ctx = ExecContext::new(10, 1.2);
        assert!(hash_aggregate_multi(&rel, &[0, 99], &[AggFunc::Count], &ctx).is_err());
    }

    #[test]
    fn empty_input() {
        let rel = employees(0, 4);
        let ctx = ExecContext::new(10, 1.2);
        let out = hash_aggregate(&rel, 3, &[AggFunc::Count], &ctx).unwrap();
        assert_eq!(out.tuple_count(), 0);
        let out = sort_aggregate(&rel, 3, &[AggFunc::Count], &ctx).unwrap();
        assert_eq!(out.tuple_count(), 0);
    }

    #[test]
    fn bad_group_column_errors() {
        let rel = employees(10, 2);
        let ctx = ExecContext::new(10, 1.2);
        assert!(hash_aggregate(&rel, 99, &[AggFunc::Count], &ctx).is_err());
    }
}
