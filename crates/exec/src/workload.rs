//! Workload generators shaped like the paper's Table 2 inputs.
//!
//! The paper joins `|R| = |S| = 10 000` pages at 40 tuples/page (400 000
//! tuples each). [`table2_relations`] generates that shape at a
//! configurable scale factor so the empirical Figure 1 can run at full or
//! reduced size with identical geometry.

use mmdb_storage::MemRelation;
use mmdb_types::{DataType, RelationShape, Result, Schema, WorkloadRng};

/// The schema used by the join workloads: an integer key plus a payload.
pub fn join_schema() -> Schema {
    Schema::of(&[("k", DataType::Int), ("payload", DataType::Int)])
}

/// Generates `(R, S)` with Table 2 geometry scaled by `scale` (1.0 = the
/// paper's 10 000 pages each). Keys are uniform over a space sized to give
/// roughly one match per R tuple — "key values of the two relations are
/// distributed similarly" (§3.5).
pub fn table2_relations(
    shape: RelationShape,
    scale: f64,
    seed: u64,
) -> Result<(MemRelation, MemRelation)> {
    assert!(scale > 0.0);
    let r_tuples = (shape.r_tuples() as f64 * scale).round() as usize;
    let s_tuples = (shape.s_tuples() as f64 * scale).round() as usize;
    let key_space = r_tuples.max(1) as i64;
    let mut rng = WorkloadRng::seeded(seed);
    let r = MemRelation::from_tuples(
        join_schema(),
        shape.r_tuples_per_page as usize,
        rng.keyed_tuples(r_tuples, key_space),
    )?;
    let s = MemRelation::from_tuples(
        join_schema(),
        shape.s_tuples_per_page as usize,
        rng.keyed_tuples(s_tuples, key_space),
    )?;
    Ok((r, s))
}

/// The Wisconsin benchmark relation schema (DeWitt 1983 — the authors'
/// own benchmark, the natural workload for this engine). A subset of the
/// classic columns:
///
/// * `unique1` — unique, random order (selection/join key),
/// * `unique2` — unique, sequential (clustered key),
/// * `two`, `ten`, `hundred` — `unique1 mod 2/10/100` (selectivity
///   controls),
/// * `string4` — a 4-letter string cycling over 4 values.
pub fn wisconsin_schema() -> Schema {
    Schema::of(&[
        ("unique1", DataType::Int),
        ("unique2", DataType::Int),
        ("two", DataType::Int),
        ("ten", DataType::Int),
        ("hundred", DataType::Int),
        ("string4", DataType::Str),
    ])
}

/// Generates an `n`-tuple Wisconsin relation.
pub fn wisconsin(n: usize, seed: u64) -> Result<MemRelation> {
    use mmdb_types::{Tuple, Value};
    let mut rng = WorkloadRng::seeded(seed);
    let unique1 = rng.permutation(n);
    let strings = ["AAAA", "HHHH", "OOOO", "VVVV"];
    let tuples: Vec<Tuple> = unique1
        .into_iter()
        .enumerate()
        .map(|(unique2, u1)| {
            let u1 = u1 as i64;
            Tuple::new(vec![
                Value::Int(u1),
                Value::Int(unique2 as i64),
                Value::Int(u1 % 2),
                Value::Int(u1 % 10),
                Value::Int(u1 % 100),
                Value::Str(strings[(u1 % 4) as usize].to_string()),
            ])
        })
        .collect();
    MemRelation::from_tuples(wisconsin_schema(), 40, tuples)
}

/// The employee relation of the paper's motivating queries.
pub fn employee_schema() -> Schema {
    Schema::of(&[
        ("id", DataType::Int),
        ("name", DataType::Str),
        ("salary", DataType::Float),
        ("dept", DataType::Int),
    ])
}

/// Generates `n` employees over `departments` departments.
pub fn employees(n: usize, departments: i64, seed: u64) -> Result<MemRelation> {
    let mut rng = WorkloadRng::seeded(seed);
    MemRelation::from_tuples(employee_schema(), 40, rng.employees(n, departments))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_shape_at_scale() {
        let shape = RelationShape::table2();
        let (r, s) = table2_relations(shape, 0.01, 1).unwrap();
        assert_eq!(r.tuple_count(), 4_000);
        assert_eq!(s.tuple_count(), 4_000);
        assert_eq!(r.page_count(), 100);
        assert_eq!(r.tuples_per_page(), 40);
        assert_eq!(s.schema(), r.schema());
    }

    #[test]
    fn deterministic_per_seed() {
        let shape = RelationShape::table2();
        let (r1, _) = table2_relations(shape, 0.001, 9).unwrap();
        let (r2, _) = table2_relations(shape, 0.001, 9).unwrap();
        assert_eq!(r1.tuples(), r2.tuples());
        let (r3, _) = table2_relations(shape, 0.001, 10).unwrap();
        assert_ne!(r1.tuples(), r3.tuples());
    }

    #[test]
    fn join_produces_meaningful_matches() {
        // Keys uniform over ||R||: an R-S join yields ≈ ||S|| matches.
        let shape = RelationShape::table2();
        let (r, s) = table2_relations(shape, 0.005, 3).unwrap();
        let ctx = crate::ExecContext::new(10_000, 1.2);
        let out = crate::join::hybrid_hash_join(&r, &s, crate::JoinSpec::new(0, 0), &ctx).unwrap();
        let n = out.tuple_count() as f64;
        let expect = s.tuple_count() as f64;
        assert!(
            (n / expect - 1.0).abs() < 0.2,
            "join cardinality {n} vs expected ≈ {expect}"
        );
    }

    #[test]
    fn wisconsin_columns_have_their_defined_relationships() {
        let rel = wisconsin(1_000, 7).unwrap();
        assert_eq!(rel.tuple_count(), 1_000);
        let mut u1_seen = std::collections::HashSet::new();
        let mut u2_seen = std::collections::HashSet::new();
        for t in rel.tuples() {
            let u1 = t.get(0).as_int().unwrap();
            let u2 = t.get(1).as_int().unwrap();
            assert!(u1_seen.insert(u1), "unique1 must be unique");
            assert!(u2_seen.insert(u2), "unique2 must be unique");
            assert_eq!(t.get(2).as_int().unwrap(), u1 % 2);
            assert_eq!(t.get(3).as_int().unwrap(), u1 % 10);
            assert_eq!(t.get(4).as_int().unwrap(), u1 % 100);
            assert_eq!(t.get(5).as_str().unwrap().len(), 4);
        }
        // unique2 is sequential: tuple i has unique2 = i.
        for (i, t) in rel.tuples().iter().enumerate() {
            assert_eq!(t.get(1).as_int().unwrap(), i as i64);
        }
    }

    #[test]
    fn wisconsin_selectivity_controls() {
        // The ten column selects exactly 10 % of tuples per value.
        let rel = wisconsin(2_000, 8).unwrap();
        for v in 0..10i64 {
            let n = rel
                .tuples()
                .iter()
                .filter(|t| t.get(3).as_int().unwrap() == v)
                .count();
            assert_eq!(n, 200, "ten = {v}");
        }
    }

    #[test]
    fn employees_shape() {
        let e = employees(1_000, 12, 4).unwrap();
        assert_eq!(e.tuple_count(), 1_000);
        assert_eq!(e.schema().arity(), 4);
    }
}
