//! Selection: filtering a memory-resident relation by a predicate.

use crate::context::ExecContext;
use mmdb_storage::MemRelation;
use mmdb_types::{Predicate, Result};

/// Filters `rel` by `pred`, charging the actual leaf comparisons evaluated.
pub fn select(rel: &MemRelation, pred: &Predicate, ctx: &ExecContext) -> Result<MemRelation> {
    let mut out = rel.empty_like();
    for t in rel.tuples() {
        let (keep, comps) = pred.eval_counting(t);
        ctx.meter.charge_comparisons(comps);
        if keep {
            out.push(t.clone())?;
        }
    }
    Ok(out)
}

/// Estimated fraction of tuples a selection keeps, measured exactly by
/// running it (used to validate the planner's estimates in tests).
pub fn measured_selectivity(rel: &MemRelation, pred: &Predicate) -> f64 {
    if rel.tuple_count() == 0 {
        return 0.0;
    }
    let kept = rel.tuples().iter().filter(|t| pred.eval(t)).count();
    kept as f64 / rel.tuple_count() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmdb_types::{CmpOp, DataType, Schema, Tuple, Value, WorkloadRng};

    fn employees(n: usize) -> MemRelation {
        let mut rng = WorkloadRng::seeded(77);
        let schema = Schema::of(&[
            ("id", DataType::Int),
            ("name", DataType::Str),
            ("salary", DataType::Float),
            ("dept", DataType::Int),
        ]);
        MemRelation::from_tuples(schema, 40, rng.employees(n, 10)).unwrap()
    }

    #[test]
    fn filters_and_charges() {
        let rel = employees(1_000);
        let ctx = ExecContext::new(100, 1.2);
        let out = select(&rel, &Predicate::cmp(3, CmpOp::Eq, 0i64), &ctx).unwrap();
        assert!(out.tuple_count() > 0);
        assert!(out.tuple_count() < 1_000);
        for t in out.tuples() {
            assert_eq!(t.get(3), &Value::Int(0));
        }
        assert_eq!(ctx.meter.snapshot().comparisons, 1_000);
    }

    #[test]
    fn prefix_selection_matches_paper_query() {
        // retrieve (emp.salary, emp.name) where emp.name = "J*"
        let rel = employees(2_000);
        let ctx = ExecContext::new(100, 1.2);
        let pred = Predicate::StrPrefix {
            column: 1,
            prefix: "J".into(),
        };
        let out = select(&rel, &pred, &ctx).unwrap();
        // Names are uniform over 26 letters: expect ≈ 1/26 of tuples.
        let frac = out.tuple_count() as f64 / 2_000.0;
        assert!((frac - 1.0 / 26.0).abs() < 0.02, "prefix fraction {frac}");
        for t in out.tuples() {
            assert!(t.get(1).as_str().unwrap().starts_with('J'));
        }
    }

    #[test]
    fn measured_selectivity_bounds() {
        let rel = employees(500);
        assert_eq!(measured_selectivity(&rel, &Predicate::True), 1.0);
        let none = Predicate::cmp(0, CmpOp::Lt, -1i64);
        assert_eq!(measured_selectivity(&rel, &none), 0.0);
        let empty = rel.empty_like();
        assert_eq!(measured_selectivity(&empty, &Predicate::True), 0.0);
    }

    #[test]
    fn tuple_order_is_preserved() {
        let schema = Schema::of(&[("k", DataType::Int)]);
        let tuples: Vec<Tuple> = (0..10).map(|i| Tuple::new(vec![Value::Int(i)])).collect();
        let rel = MemRelation::from_tuples(schema, 4, tuples).unwrap();
        let ctx = ExecContext::new(10, 1.2);
        let out = select(&rel, &Predicate::cmp(0, CmpOp::Ge, 5i64), &ctx).unwrap();
        let ks: Vec<i64> = out
            .tuples()
            .iter()
            .map(|t| t.get(0).as_int().unwrap())
            .collect();
        assert_eq!(ks, vec![5, 6, 7, 8, 9]);
    }
}
