//! Projection with duplicate elimination (§3.9).
//!
//! "Projection with duplicate elimination is very similar in nature to the
//! aggregate function operation (in projection we are grouping identical
//! tuples)" — so the hash-based variant mirrors hybrid-hash aggregation,
//! with the whole projected tuple as the grouping key.

use crate::context::ExecContext;
use crate::partition::uniform_class;
use crate::sort::CountingHeap;
use crate::spill::{SpillFile, SpillIo};
use mmdb_storage::MemRelation;
use mmdb_types::{Result, Tuple};
use std::collections::HashSet;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

fn tuple_hash(t: &Tuple) -> u64 {
    let mut h = crate::partition::hash_key(&mmdb_types::Value::Int(0));
    // Mix each value's hash; reuse the deterministic key hash per value.
    for v in t.values() {
        let vh = crate::partition::hash_key(v);
        h = h.rotate_left(13) ^ vh;
    }
    let mut fin = std::collections::hash_map::DefaultHasher::new();
    h.hash(&mut fin);
    fin.finish()
}

fn dedup_in_memory(
    tuples: impl Iterator<Item = Tuple>,
    ctx: &ExecContext,
    out: &mut MemRelation,
) -> Result<()> {
    let mut seen: HashSet<Tuple> = HashSet::new();
    for t in tuples {
        ctx.meter.charge_hashes(1);
        ctx.meter.charge_comparisons(1);
        if seen.insert(t.clone()) {
            ctx.meter.charge_moves(1);
            out.push(t)?;
        }
    }
    Ok(())
}

/// Projects `rel` onto `columns` and removes duplicates with one-pass
/// hashing (assumes the result fits in memory, else use
/// [`hybrid_hash_project`]).
pub fn hash_project(
    rel: &MemRelation,
    columns: &[usize],
    ctx: &ExecContext,
) -> Result<MemRelation> {
    let schema = rel.schema().project(columns)?;
    let mut out = MemRelation::new(schema, rel.tuples_per_page());
    let projected = rel.tuples().iter().map(|t| {
        ctx.meter.charge_moves(1);
        t.project(columns)
    });
    dedup_in_memory(projected, ctx, &mut out)?;
    Ok(out)
}

/// Hybrid-hash projection: partitions the projected tuples by hash when
/// they may exceed memory, then deduplicates each partition in one pass.
pub fn hybrid_hash_project(
    rel: &MemRelation,
    columns: &[usize],
    ctx: &ExecContext,
) -> Result<MemRelation> {
    let schema = rel.schema().project(columns)?;
    let tpp = rel.tuples_per_page().max(1);
    let mut out = MemRelation::new(schema, tpp);
    let capacity = ctx.mem_tuple_capacity(tpp);
    if rel.tuple_count() <= capacity {
        let projected = rel.tuples().iter().map(|t| {
            ctx.meter.charge_moves(1);
            t.project(columns)
        });
        dedup_in_memory(projected, ctx, &mut out)?;
        return Ok(out);
    }
    let parts = rel.tuple_count().div_ceil(capacity).max(1);
    let mut files: Vec<SpillFile> = (0..parts)
        .map(|_| SpillFile::new(Arc::clone(&ctx.meter), tpp))
        .collect();
    for t in rel.tuples() {
        ctx.meter.charge_moves(1);
        let p = t.project(columns);
        ctx.meter.charge_hashes(1);
        let h = tuple_hash(&p);
        files[uniform_class(h, parts)].append(p, SpillIo::Random);
    }
    for f in &mut files {
        f.flush(SpillIo::Random);
    }
    for f in files {
        let tuples = f.drain_pages(SpillIo::Sequential).flatten();
        dedup_in_memory(tuples, ctx, &mut out)?;
    }
    Ok(out)
}

/// Sort-based projection baseline: project, sort the projected tuples,
/// emit on key change.
pub fn sort_project(
    rel: &MemRelation,
    columns: &[usize],
    ctx: &ExecContext,
) -> Result<MemRelation> {
    let schema = rel.schema().project(columns)?;
    let mut out = MemRelation::new(schema, rel.tuples_per_page());
    let mut heap: CountingHeap<Tuple> = CountingHeap::new(Arc::clone(&ctx.meter));
    for t in rel.tuples() {
        ctx.meter.charge_moves(1);
        heap.push(t.project(columns));
    }
    let mut last: Option<Tuple> = None;
    while let Some(t) = heap.pop() {
        ctx.meter.charge_comparisons(1);
        if last.as_ref() != Some(&t) {
            ctx.meter.charge_moves(1);
            out.push(t.clone())?;
            last = Some(t);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmdb_types::{DataType, Schema, Value, WorkloadRng};

    fn rel_with_dups(n: usize, key_space: i64) -> MemRelation {
        let mut rng = WorkloadRng::seeded(55);
        let schema = Schema::of(&[("k", DataType::Int), ("v", DataType::Int)]);
        MemRelation::from_tuples(schema, 40, rng.keyed_tuples(n, key_space)).unwrap()
    }

    #[test]
    fn removes_duplicates() {
        let rel = rel_with_dups(1_000, 20);
        let ctx = ExecContext::new(100, 1.2);
        let out = hash_project(&rel, &[0], &ctx).unwrap();
        assert_eq!(out.tuple_count(), 20);
        let mut ks: Vec<i64> = out
            .tuples()
            .iter()
            .map(|t| t.get(0).as_int().unwrap())
            .collect();
        ks.sort_unstable();
        ks.dedup();
        assert_eq!(ks.len(), 20);
    }

    #[test]
    fn projection_without_dups_keeps_everything() {
        let rel = rel_with_dups(500, 1_000_000);
        let ctx = ExecContext::new(100, 1.2);
        // Projecting all columns of near-unique tuples removes ~nothing.
        let out = hash_project(&rel, &[0, 1], &ctx).unwrap();
        assert_eq!(out.tuple_count(), 500);
        assert_eq!(out.schema().arity(), 2);
    }

    #[test]
    fn hash_sort_and_hybrid_agree() {
        let rel = rel_with_dups(3_000, 64);
        let a = hash_project(&rel, &[0], &ExecContext::new(500, 1.2)).unwrap();
        let b = sort_project(&rel, &[0], &ExecContext::new(500, 1.2)).unwrap();
        let hctx = ExecContext::new(4, 1.2); // force partitioning
        let c = hybrid_hash_project(&rel, &[0], &hctx).unwrap();
        let canon = |r: &MemRelation| {
            let mut v = r.tuples().to_vec();
            v.sort();
            v
        };
        assert_eq!(canon(&a), canon(&b));
        assert_eq!(canon(&a), canon(&c));
        assert!(hctx.meter.snapshot().total_ios() > 0);
    }

    #[test]
    fn hash_beats_sort_in_cpu_seconds() {
        let rel = rel_with_dups(5_000, 100);
        let params = mmdb_types::SystemParams::table2();
        let hctx = ExecContext::new(1_000, 1.2);
        hash_project(&rel, &[0], &hctx).unwrap();
        let sctx = ExecContext::new(1_000, 1.2);
        sort_project(&rel, &[0], &sctx).unwrap();
        assert!(hctx.meter.seconds(&params) < sctx.meter.seconds(&params));
    }

    #[test]
    fn column_reordering_projection() {
        let rel = rel_with_dups(100, 5);
        let ctx = ExecContext::new(100, 1.2);
        let out = hash_project(&rel, &[1, 0], &ctx).unwrap();
        assert_eq!(out.schema().columns()[0].name, "v");
        assert_eq!(out.schema().columns()[1].name, "k");
    }

    #[test]
    fn invalid_column_errors() {
        let rel = rel_with_dups(10, 5);
        let ctx = ExecContext::new(10, 1.2);
        assert!(hash_project(&rel, &[7], &ctx).is_err());
    }

    #[test]
    fn projection_hash_distributes() {
        // tuple_hash shouldn't collapse distinct tuples to few partitions.
        let mut counts = vec![0usize; 8];
        for i in 0..8_000i64 {
            let t = Tuple::new(vec![Value::Int(i)]);
            counts[uniform_class(tuple_hash(&t), 8)] += 1;
        }
        for &c in &counts {
            assert!(c > 500, "partition skew: {counts:?}");
        }
    }
}
