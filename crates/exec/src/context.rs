//! The execution context: memory grant, fudge factor, and the cost meter.

use mmdb_storage::CostMeter;
use std::sync::Arc;

/// Everything an operator needs to execute and be priced.
#[derive(Debug, Clone)]
pub struct ExecContext {
    /// Shared cost meter all operators charge into.
    pub meter: Arc<CostMeter>,
    /// `|M|` — pages of main memory granted to the operator.
    pub mem_pages: usize,
    /// `F` — the universal fudge factor: a hash/sort structure holding `X`
    /// pages of tuples occupies `X·F` pages.
    pub fudge: f64,
}

impl ExecContext {
    /// A context with a fresh meter.
    pub fn new(mem_pages: usize, fudge: f64) -> Self {
        ExecContext {
            meter: Arc::new(CostMeter::new()),
            mem_pages,
            fudge,
        }
    }

    /// How many tuples fit in this context's memory when each logical page
    /// holds `tuples_per_page` and structures carry the fudge overhead:
    /// `{M} = |M| · tpp / F`.
    pub fn mem_tuple_capacity(&self, tuples_per_page: usize) -> usize {
        ((self.mem_pages as f64 * tuples_per_page as f64 / self.fudge).floor() as usize).max(1)
    }

    /// How many pages of raw tuples this context's memory can hold as a
    /// hash-table/sort structure: `|M| / F`.
    pub fn mem_page_capacity(&self) -> f64 {
        self.mem_pages as f64 / self.fudge
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_arithmetic() {
        let ctx = ExecContext::new(1200, 1.2);
        assert_eq!(ctx.mem_tuple_capacity(40), 40_000);
        assert!((ctx.mem_page_capacity() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn capacity_never_zero() {
        let ctx = ExecContext::new(0, 1.2);
        assert_eq!(ctx.mem_tuple_capacity(40), 1);
    }
}
