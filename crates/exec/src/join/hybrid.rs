//! §3.7 — the hybrid-hash join, the paper's new algorithm.
//!
//! Like GRACE it partitions into compatible buckets, but memory beyond the
//! `B` output-buffer pages immediately holds a hash table for partition
//! `R0`, so the fraction `q = |R0|/|R|` of both relations is joined during
//! the partitioning scan itself and never touches disk. As `|M| → |R|·F`,
//! `q → 1` and the algorithm becomes the one-pass hash join; as `|M|`
//! shrinks it degrades gracefully toward GRACE.

use super::{charged_hash, output_relation, JoinSpec, ProbeTable};
use crate::context::ExecContext;
use crate::partition::{hash_key_level, HybridSplit};
use crate::spill::{SpillFile, SpillIo};
use mmdb_storage::MemRelation;
use mmdb_types::Result;
use std::sync::Arc;

/// Execution statistics exposing the memory discipline (for tests and the
/// skew experiments).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HybridStats {
    /// Largest in-memory build-side (tuples) any phase used.
    pub max_build_tuples: usize,
    /// Deepest recursion level reached (0 = no partition overflowed).
    pub max_recursion_depth: u32,
    /// How many partitions had to be re-partitioned recursively.
    pub recursive_partitionings: u32,
    /// Whether the recursion cap forced an oversized build (possible only
    /// under extreme duplicate skew no hash function can split).
    pub depth_capped: bool,
}

/// Number of on-disk partitions `B` for a memory grant (0 when R's hash
/// table fits entirely in memory).
pub fn disk_partitions(r_pages: usize, fudge: f64, mem_pages: usize) -> usize {
    let r_f = r_pages as f64 * fudge;
    let m = mem_pages as f64;
    if m >= r_f {
        0
    } else {
        (((r_f - m) / (m - 1.0).max(1.0)).ceil() as usize).max(1)
    }
}

/// Joins `r` and `s` with the hybrid-hash algorithm.
pub fn hybrid_hash_join(
    r: &MemRelation,
    s: &MemRelation,
    spec: JoinSpec,
    ctx: &ExecContext,
) -> Result<MemRelation> {
    Ok(hybrid_hash_join_with_stats(r, s, spec, ctx)?.0)
}

/// Like [`hybrid_hash_join`], additionally reporting execution statistics.
pub fn hybrid_hash_join_with_stats(
    r: &MemRelation,
    s: &MemRelation,
    spec: JoinSpec,
    ctx: &ExecContext,
) -> Result<(MemRelation, HybridStats)> {
    let mut out = output_relation(&spec, r, s);
    let r_tpp = r.tuples_per_page().max(1);
    let s_tpp = s.tuples_per_page().max(1);

    let b = disk_partitions(r.page_count(), ctx.fudge, ctx.mem_pages);
    // Memory left for R0's hash table after reserving B buffer pages.
    let r0_capacity_tuples = if b == 0 {
        r.tuple_count().max(1)
    } else {
        ((((ctx.mem_pages.saturating_sub(b)) as f64) * r_tpp as f64 / ctx.fudge).floor() as usize)
            .max(1)
    };
    let q = (r0_capacity_tuples as f64 / r.tuple_count().max(1) as f64).min(1.0);
    let split = HybridSplit {
        in_memory_fraction: q,
        disk_partitions: b,
    };
    // §3.8's footnote: with a single output buffer the writes are
    // effectively sequential.
    let write_io = if b <= 1 {
        SpillIo::Sequential
    } else {
        SpillIo::Random
    };

    // Step 1: scan R — partition 0 builds in memory, the rest spills.
    let mut stats = HybridStats::default();
    let mut table0 = ProbeTable::new(
        Arc::clone(&ctx.meter),
        spec.r_key,
        r0_capacity_tuples.min(r.tuple_count()),
    );
    let mut r_parts: Vec<SpillFile> = (0..b)
        .map(|_| SpillFile::new(Arc::clone(&ctx.meter), r_tpp))
        .collect();
    let mut r0_count = 0usize;
    for t in r.tuples() {
        let h = charged_hash(&ctx.meter, t, spec.r_key);
        match split.classify(h) {
            0 => {
                r0_count += 1;
                table0.insert(h, t.clone());
            }
            i => {
                ctx.meter.charge_moves(1);
                r_parts[i - 1].append(t.clone(), write_io);
            }
        }
    }
    stats.max_build_tuples = r0_count;

    // Step 2: scan S — partition 0 probes immediately, the rest spills.
    let mut s_parts: Vec<SpillFile> = (0..b)
        .map(|_| SpillFile::new(Arc::clone(&ctx.meter), s_tpp))
        .collect();
    for t in s.tuples() {
        let h = charged_hash(&ctx.meter, t, spec.s_key);
        match split.classify(h) {
            0 => table0.probe(h, t.get(spec.s_key), |rt| out.push(rt.concat(t)))?,
            i => {
                ctx.meter.charge_moves(1);
                s_parts[i - 1].append(t.clone(), write_io);
            }
        }
    }
    for p in r_parts.iter_mut().chain(s_parts.iter_mut()) {
        p.flush(write_io);
    }
    drop(table0);

    // Steps 3 and 4, repeated for each on-disk partition pair, applying
    // the algorithm *recursively* when a partition overflowed memory
    // (§3.3: "we can always apply the hybrid hash join recursively,
    // thereby adding an extra pass for the overflow tuples").
    for (r_part, s_part) in r_parts.into_iter().zip(s_parts) {
        if r_part.is_empty() {
            continue;
        }
        let r_tuples: Vec<mmdb_types::Tuple> =
            r_part.drain_pages(SpillIo::Sequential).flatten().collect();
        let s_tuples: Vec<mmdb_types::Tuple> =
            s_part.drain_pages(SpillIo::Sequential).flatten().collect();
        join_pair(
            r_tuples, s_tuples, 1, spec, ctx, r_tpp, s_tpp, &mut out, &mut stats,
        )?;
    }
    Ok((out, stats))
}

/// Hard cap on recursion: beyond this a partition is joined in place even
/// if oversized (it can only be reached by extreme duplicate skew, where
/// no hash function can split the offending key).
const MAX_RECURSION: u32 = 8;

/// Joins one spilled partition pair at recursion `level`: build-and-probe
/// when R's side fits the memory grant, otherwise re-partition both sides
/// with the level-salted hash and recurse.
#[allow(clippy::too_many_arguments)]
fn join_pair(
    r_tuples: Vec<mmdb_types::Tuple>,
    s_tuples: Vec<mmdb_types::Tuple>,
    level: u32,
    spec: JoinSpec,
    ctx: &ExecContext,
    r_tpp: usize,
    s_tpp: usize,
    out: &mut MemRelation,
    stats: &mut HybridStats,
) -> Result<()> {
    if r_tuples.is_empty() {
        return Ok(());
    }
    stats.max_recursion_depth = stats.max_recursion_depth.max(level);
    let capacity = ctx.mem_tuple_capacity(r_tpp);
    // §3.3: partition sizes vary around their mean (central limit
    // theorem), and "if we err slightly" the slight overflow is absorbed —
    // the hash table just runs marginally over its F allowance. Recursion
    // is reserved for genuine overflow (skew, or memory far too small).
    let slack_capacity = capacity + capacity / 4;
    if r_tuples.len() <= slack_capacity || level >= MAX_RECURSION {
        // Build and probe in memory.
        stats.max_build_tuples = stats.max_build_tuples.max(r_tuples.len());
        if level >= MAX_RECURSION && r_tuples.len() > capacity {
            stats.depth_capped = true;
        }
        let mut table = ProbeTable::new(Arc::clone(&ctx.meter), spec.r_key, r_tuples.len());
        for t in r_tuples {
            ctx.meter.charge_hashes(1);
            let h = hash_key_level(t.get(spec.r_key), level);
            table.insert(h, t);
        }
        for t in s_tuples {
            ctx.meter.charge_hashes(1);
            let h = hash_key_level(t.get(spec.s_key), level);
            table.probe(h, t.get(spec.s_key), |rt| out.push(rt.concat(&t)))?;
        }
        return Ok(());
    }

    // Overflow: re-partition with an independent (level-salted) hash.
    stats.recursive_partitionings += 1;
    let r_pages = r_tuples.len().div_ceil(r_tpp);
    let b = disk_partitions(r_pages, ctx.fudge, ctx.mem_pages).max(2);
    let write_io = if b <= 1 {
        SpillIo::Sequential
    } else {
        SpillIo::Random
    };
    let mut r_parts: Vec<SpillFile> = (0..b)
        .map(|_| SpillFile::new(Arc::clone(&ctx.meter), r_tpp))
        .collect();
    for t in r_tuples {
        ctx.meter.charge_hashes(1);
        let h = hash_key_level(t.get(spec.r_key), level);
        ctx.meter.charge_moves(1);
        r_parts[crate::partition::uniform_class(h, b)].append(t, write_io);
    }
    let mut s_parts: Vec<SpillFile> = (0..b)
        .map(|_| SpillFile::new(Arc::clone(&ctx.meter), s_tpp))
        .collect();
    for t in s_tuples {
        ctx.meter.charge_hashes(1);
        let h = hash_key_level(t.get(spec.s_key), level);
        ctx.meter.charge_moves(1);
        s_parts[crate::partition::uniform_class(h, b)].append(t, write_io);
    }
    for p in r_parts.iter_mut().chain(s_parts.iter_mut()) {
        p.flush(write_io);
    }
    for (r_part, s_part) in r_parts.into_iter().zip(s_parts) {
        let r_next: Vec<mmdb_types::Tuple> =
            r_part.drain_pages(SpillIo::Sequential).flatten().collect();
        let s_next: Vec<mmdb_types::Tuple> =
            s_part.drain_pages(SpillIo::Sequential).flatten().collect();
        join_pair(
            r_next,
            s_next,
            level + 1,
            spec,
            ctx,
            r_tpp,
            s_tpp,
            out,
            stats,
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::super::testkit::{assert_matches_reference, keyed};
    use super::*;

    #[test]
    fn matches_reference_all_in_memory() {
        let r = keyed(50, 2_000, 250, 40);
        let s = keyed(51, 3_000, 250, 40);
        assert_matches_reference(hybrid_hash_join, &r, &s, 1_000);
    }

    #[test]
    fn matches_reference_partitioned() {
        let r = keyed(52, 4_000, 450, 40);
        let s = keyed(53, 6_000, 450, 40);
        // 100 R pages · 1.2 = 120 > 30 → several disk partitions.
        assert_matches_reference(hybrid_hash_join, &r, &s, 30);
    }

    #[test]
    fn matches_reference_single_disk_partition() {
        let r = keyed(54, 4_000, 450, 40);
        let s = keyed(55, 4_000, 450, 40);
        // |M| just above |R|·F/2 → exactly one disk partition.
        assert_matches_reference(hybrid_hash_join, &r, &s, 70);
    }

    #[test]
    fn all_in_memory_does_no_io() {
        let r = keyed(56, 1_000, 100, 40);
        let s = keyed(57, 1_000, 100, 40);
        let ctx = ExecContext::new(100, 1.2);
        hybrid_hash_join(&r, &s, JoinSpec::new(0, 0), &ctx).unwrap();
        assert_eq!(ctx.meter.snapshot().total_ios(), 0);
    }

    #[test]
    fn single_buffer_writes_sequentially() {
        let r = keyed(58, 4_000, 400, 40); // 100 pages, ·F = 120
        let s = keyed(59, 4_000, 400, 40);
        let one_buffer = ExecContext::new(70, 1.2); // B = 1
        hybrid_hash_join(&r, &s, JoinSpec::new(0, 0), &one_buffer).unwrap();
        assert_eq!(
            one_buffer.meter.snapshot().rand_ios,
            0,
            "B = 1 ⇒ sequential writes (§3.8 footnote)"
        );
        let many_buffers = ExecContext::new(25, 1.2); // B > 1
        hybrid_hash_join(&r, &s, JoinSpec::new(0, 0), &many_buffers).unwrap();
        assert!(many_buffers.meter.snapshot().rand_ios > 0);
    }

    #[test]
    fn io_decreases_with_memory() {
        let r = keyed(60, 4_000, 350, 40);
        let s = keyed(61, 4_000, 350, 40);
        let spec = JoinSpec::new(0, 0);
        let mut prev = u64::MAX;
        for mem in [20, 40, 80, 130] {
            let ctx = ExecContext::new(mem, 1.2);
            hybrid_hash_join(&r, &s, spec, &ctx).unwrap();
            let io = ctx.meter.snapshot().total_ios();
            assert!(io <= prev, "I/O must shrink with memory: {io} at {mem}");
            prev = io;
        }
        assert_eq!(prev, 0, "fully in memory at the top of the sweep");
    }

    #[test]
    fn disk_partition_count_formula() {
        assert_eq!(disk_partitions(100, 1.2, 120), 0);
        assert_eq!(disk_partitions(100, 1.2, 70), 1);
        assert!(disk_partitions(100, 1.2, 20) > 1);
        // Matches the analytic crate's arithmetic at Table 2 scale.
        assert_eq!(disk_partitions(10_000, 1.2, 6_001), 1);
    }

    #[test]
    fn duplicate_heavy_keys() {
        let r = keyed(62, 400, 2, 40);
        let s = keyed(63, 300, 2, 40);
        assert_matches_reference(hybrid_hash_join, &r, &s, 6);
    }

    fn zipf_relation(seed: u64, n: usize, key_space: usize, s: f64) -> MemRelation {
        let mut rng = mmdb_types::WorkloadRng::seeded(seed);
        MemRelation::from_tuples(
            mmdb_types::Schema::of(&[
                ("k", mmdb_types::DataType::Int),
                ("payload", mmdb_types::DataType::Int),
            ]),
            40,
            rng.zipf_tuples(n, key_space, s),
        )
        .unwrap()
    }

    #[test]
    fn recursion_triggers_on_skew_and_stays_correct() {
        // Zipf(1.1) keys: the hot partition overflows a tiny memory grant,
        // so phase 2 must recurse (§3.3) — and still produce exactly the
        // nested-loops answer.
        let r = zipf_relation(70, 6_000, 2_000, 1.1);
        let s = zipf_relation(71, 6_000, 2_000, 1.1);
        assert_matches_reference(hybrid_hash_join, &r, &s, 8);
        let ctx = ExecContext::new(8, 1.2);
        let (_, stats) = hybrid_hash_join_with_stats(&r, &s, JoinSpec::new(0, 0), &ctx).unwrap();
        assert!(
            stats.recursive_partitionings > 0,
            "skewed partitions should force recursion: {stats:?}"
        );
        assert!(stats.max_recursion_depth >= 2);
    }

    #[test]
    fn recursion_respects_the_memory_grant() {
        // With splittable (low-duplicate) keys, no in-memory build may
        // exceed the grant even under skewed partition sizes.
        let r = zipf_relation(72, 8_000, 8_000, 0.8);
        let s = zipf_relation(73, 8_000, 8_000, 0.8);
        let ctx = ExecContext::new(12, 1.2);
        let (_, stats) = hybrid_hash_join_with_stats(&r, &s, JoinSpec::new(0, 0), &ctx).unwrap();
        let capacity = ctx.mem_tuple_capacity(40);
        assert!(
            stats.depth_capped || stats.max_build_tuples <= capacity.max(1) * 2,
            "build of {} tuples vs capacity {capacity}: {stats:?}",
            stats.max_build_tuples
        );
    }

    #[test]
    fn extreme_duplicate_skew_hits_the_depth_cap_but_stays_correct() {
        // Every tuple shares one key: no hash can split it; the recursion
        // cap must kick in rather than loop forever.
        let r = keyed(74, 3_000, 1, 40);
        let s = keyed(75, 100, 1, 40);
        let ctx = ExecContext::new(4, 1.2);
        let (out, stats) = hybrid_hash_join_with_stats(&r, &s, JoinSpec::new(0, 0), &ctx).unwrap();
        assert_eq!(out.tuple_count(), 3_000 * 100);
        assert!(stats.depth_capped, "{stats:?}");
    }

    #[test]
    fn no_recursion_when_partitions_fit() {
        let r = keyed(76, 2_000, 500, 40);
        let s = keyed(77, 2_000, 500, 40);
        let ctx = ExecContext::new(30, 1.2);
        let (_, stats) = hybrid_hash_join_with_stats(&r, &s, JoinSpec::new(0, 0), &ctx).unwrap();
        assert_eq!(stats.recursive_partitionings, 0, "{stats:?}");
    }
}
