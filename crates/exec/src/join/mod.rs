//! The four §3 join algorithms, plus a nested-loops reference.
//!
//! All five take the same inputs — relations `R` (smaller) and `S`, a
//! [`JoinSpec`] naming the key columns, and an [`crate::ExecContext`] — and
//! produce the same result relation, so every algorithm is testable
//! against every other. They differ only in what they charge to the meter.

pub mod grace;
pub mod hybrid;
pub mod nested_loops;
pub mod simple_hash;
pub mod sort_merge;

pub use grace::grace_hash_join;
pub use hybrid::hybrid_hash_join;
pub use nested_loops::nested_loops_join;
pub use simple_hash::simple_hash_join;
pub use sort_merge::sort_merge_join;

use crate::partition::hash_key;
use mmdb_storage::{CostMeter, MemRelation};
use mmdb_types::{Result, Schema, Tuple};
use std::sync::Arc;

/// Which columns join.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinSpec {
    /// Key column index in R.
    pub r_key: usize,
    /// Key column index in S.
    pub s_key: usize,
}

impl JoinSpec {
    /// Joins on column `r_key` of R and `s_key` of S.
    pub fn new(r_key: usize, s_key: usize) -> Self {
        JoinSpec { r_key, s_key }
    }

    /// Schema of the join output.
    pub fn output_schema(&self, r: &MemRelation, s: &MemRelation) -> Schema {
        r.schema().join(s.schema())
    }
}

/// Builds the output relation container for a join. Result tuples are not
/// charged (§3.2: the cost of writing the result is ignored).
pub(crate) fn output_relation(spec: &JoinSpec, r: &MemRelation, s: &MemRelation) -> MemRelation {
    MemRelation::new(
        spec.output_schema(r, s),
        r.tuples_per_page().max(s.tuples_per_page()),
    )
}

/// An in-memory chained hash table for build/probe phases, charging the
/// shared meter: the *caller* charges `hash` when it computes the key hash;
/// the table charges `move` per insertion and `comp` per chain comparison
/// during probes.
#[derive(Debug)]
pub(crate) struct ProbeTable {
    buckets: Vec<Vec<(u64, Tuple)>>,
    meter: Arc<CostMeter>,
    key_col: usize,
    len: usize,
}

impl ProbeTable {
    /// A table expecting about `expected` entries.
    pub fn new(meter: Arc<CostMeter>, key_col: usize, expected: usize) -> Self {
        let n = expected.next_power_of_two().max(16);
        ProbeTable {
            buckets: (0..n).map(|_| Vec::new()).collect(),
            meter,
            key_col,
            len: 0,
        }
    }

    /// Entries inserted.
    #[allow(dead_code)]
    pub fn len(&self) -> usize {
        self.len
    }

    fn bucket(&self, hash: u64) -> usize {
        (hash & (self.buckets.len() as u64 - 1)) as usize
    }

    /// Inserts a build tuple whose key hashed to `hash` (one `move`).
    pub fn insert(&mut self, hash: u64, tuple: Tuple) {
        self.meter.charge_moves(1);
        let b = self.bucket(hash);
        self.buckets[b].push((hash, tuple));
        self.len += 1;
    }

    /// Probes with a key hash and the probing tuple's key value; invokes
    /// `on_match` for every matching build tuple, stopping at the first
    /// error. Charges one `comp` per chain entry whose hash matches (the
    /// key comparison the paper prices at `F · comp` on average).
    pub fn probe(
        &self,
        hash: u64,
        key: &mmdb_types::Value,
        mut on_match: impl FnMut(&Tuple) -> Result<()>,
    ) -> Result<()> {
        let b = self.bucket(hash);
        for (h, t) in &self.buckets[b] {
            if *h == hash {
                self.meter.charge_comparisons(1);
                if t.get(self.key_col) == key {
                    on_match(t)?;
                }
            }
        }
        Ok(())
    }
}

/// Hashes the join key of `tuple`, charging one `hash`.
pub(crate) fn charged_hash(meter: &CostMeter, tuple: &Tuple, key_col: usize) -> u64 {
    meter.charge_hashes(1);
    hash_key(tuple.get(key_col))
}

/// Test helper: canonical (sorted) multiset of a relation's tuples, so two
/// join outputs can be compared regardless of production order.
pub fn canonical(rel: &MemRelation) -> Vec<Tuple> {
    let mut v = rel.tuples().to_vec();
    v.sort();
    v
}

/// Executable join algorithm selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algo {
    /// O(n·m) reference.
    NestedLoops,
    /// §3.4.
    SortMerge,
    /// §3.5.
    SimpleHash,
    /// §3.6.
    GraceHash,
    /// §3.7.
    HybridHash,
}

impl Algo {
    /// The four paper algorithms (excluding the reference).
    pub const PAPER: [Algo; 4] = [
        Algo::SortMerge,
        Algo::SimpleHash,
        Algo::GraceHash,
        Algo::HybridHash,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Algo::NestedLoops => "nested-loops",
            Algo::SortMerge => "sort-merge",
            Algo::SimpleHash => "simple-hash",
            Algo::GraceHash => "grace-hash",
            Algo::HybridHash => "hybrid-hash",
        }
    }
}

/// Runs the selected join algorithm.
pub fn run_join(
    algo: Algo,
    r: &MemRelation,
    s: &MemRelation,
    spec: JoinSpec,
    ctx: &crate::ExecContext,
) -> Result<MemRelation> {
    match algo {
        Algo::NestedLoops => nested_loops_join(r, s, spec, ctx),
        Algo::SortMerge => sort_merge_join(r, s, spec, ctx),
        Algo::SimpleHash => simple_hash_join(r, s, spec, ctx),
        Algo::GraceHash => grace_hash_join(r, s, spec, ctx),
        Algo::HybridHash => hybrid_hash_join(r, s, spec, ctx),
    }
}

#[cfg(test)]
pub(crate) mod testkit {
    use super::*;
    use crate::ExecContext;
    use mmdb_types::{DataType, WorkloadRng};

    /// A keyed relation of `n` tuples with keys drawn from `[0, key_space)`.
    pub fn keyed(seed: u64, n: usize, key_space: i64, per_page: usize) -> MemRelation {
        let mut rng = WorkloadRng::seeded(seed);
        let schema = Schema::of(&[("k", DataType::Int), ("payload", DataType::Int)]);
        MemRelation::from_tuples(schema, per_page, rng.keyed_tuples(n, key_space)).unwrap()
    }

    /// Asserts `algo(r, s)` produces exactly the nested-loops result.
    pub fn assert_matches_reference(
        algo: fn(&MemRelation, &MemRelation, JoinSpec, &ExecContext) -> Result<MemRelation>,
        r: &MemRelation,
        s: &MemRelation,
        mem_pages: usize,
    ) {
        let spec = JoinSpec::new(0, 0);
        let ref_ctx = ExecContext::new(usize::MAX / 2, 1.2);
        let want = canonical(&nested_loops_join(r, s, spec, &ref_ctx).unwrap());
        let ctx = ExecContext::new(mem_pages, 1.2);
        let got = canonical(&algo(r, s, spec, &ctx).unwrap());
        assert_eq!(
            got.len(),
            want.len(),
            "cardinality mismatch: {} vs {}",
            got.len(),
            want.len()
        );
        assert_eq!(got, want);
    }
}
