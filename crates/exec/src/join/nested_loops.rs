//! Nested-loops reference join.
//!
//! Not one of the paper's four contenders — it exists as the correctness
//! oracle every other algorithm is verified against, and as the planner's
//! fallback for non-equijoin predicates. Charges one comparison per tuple
//! pair, no I/O (both relations are memory-resident by assumption).

use super::{output_relation, JoinSpec};
use crate::context::ExecContext;
use mmdb_storage::MemRelation;
use mmdb_types::Result;

/// Joins `r` and `s` by comparing every pair of tuples.
pub fn nested_loops_join(
    r: &MemRelation,
    s: &MemRelation,
    spec: JoinSpec,
    ctx: &ExecContext,
) -> Result<MemRelation> {
    let mut out = output_relation(&spec, r, s);
    for rt in r.tuples() {
        let rk = rt.get(spec.r_key);
        for st in s.tuples() {
            ctx.meter.charge_comparisons(1);
            if rk == st.get(spec.s_key) {
                out.push(rt.concat(st))?;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::super::testkit::keyed;
    use super::super::JoinSpec;
    use super::*;
    use mmdb_types::Value;

    #[test]
    fn joins_matching_keys() {
        let r = keyed(1, 100, 50, 10);
        let s = keyed(2, 100, 50, 10);
        let ctx = ExecContext::new(1000, 1.2);
        let out = nested_loops_join(&r, &s, JoinSpec::new(0, 0), &ctx).unwrap();
        // Every output row carries equal keys in columns 0 and 2.
        assert!(!out.tuples().is_empty());
        for t in out.tuples() {
            assert_eq!(t.get(0), t.get(2));
            assert_eq!(t.arity(), 4);
        }
        // Exactly |R|·|S| comparisons.
        assert_eq!(ctx.meter.snapshot().comparisons, 100 * 100);
        assert_eq!(ctx.meter.snapshot().total_ios(), 0);
    }

    #[test]
    fn disjoint_keys_produce_empty_output() {
        let r = keyed(3, 50, 10, 10);
        let mut s = keyed(4, 50, 10, 10).into_tuples();
        for t in &mut s {
            // Shift S's keys out of R's key space.
            let k = t.get(0).as_int().unwrap();
            *t = mmdb_types::Tuple::new(vec![Value::Int(k + 1000), t.get(1).clone()]);
        }
        let s = MemRelation::from_tuples(r.schema().clone(), 10, s).unwrap();
        let ctx = ExecContext::new(1000, 1.2);
        let out = nested_loops_join(&r, &s, JoinSpec::new(0, 0), &ctx).unwrap();
        assert_eq!(out.tuple_count(), 0);
    }

    #[test]
    fn cross_product_on_duplicate_keys() {
        let r = keyed(5, 30, 1, 10); // all keys = 0
        let s = keyed(6, 20, 1, 10);
        let ctx = ExecContext::new(1000, 1.2);
        let out = nested_loops_join(&r, &s, JoinSpec::new(0, 0), &ctx).unwrap();
        assert_eq!(out.tuple_count(), 30 * 20);
    }
}
