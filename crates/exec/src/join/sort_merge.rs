//! §3.4 — the standard sort-merge join.
//!
//! Both relations are sorted (replacement-selection runs + one n-way
//! merge, in memory when they fit), then merge-joined with equal-key
//! groups cross-produced. Unlike the paper's cost formula — which assumes
//! no R tuple joins more than a page of S tuples — the implementation
//! handles arbitrarily large equal-key groups correctly.

use super::{output_relation, JoinSpec};
use crate::context::ExecContext;
use crate::sort::external_sort;
use mmdb_storage::MemRelation;
use mmdb_types::{Result, Tuple};

/// Joins `r` and `s` by sorting both on their key columns and merging.
pub fn sort_merge_join(
    r: &MemRelation,
    s: &MemRelation,
    spec: JoinSpec,
    ctx: &ExecContext,
) -> Result<MemRelation> {
    let sorted_r = external_sort(r, spec.r_key, ctx);
    let sorted_s = external_sort(s, spec.s_key, ctx);
    let mut out = output_relation(&spec, r, s);

    let (mut i, mut j) = (0usize, 0usize);
    while i < sorted_r.len() && j < sorted_s.len() {
        ctx.meter.charge_comparisons(1);
        let rk = sorted_r[i].get(spec.r_key);
        let sk = sorted_s[j].get(spec.s_key);
        match rk.cmp(sk) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                // Find both equal-key groups and cross-produce them.
                let key = rk.clone();
                let gi_end = run_end(&sorted_r, i, spec.r_key, &key, ctx);
                let gj_end = run_end(&sorted_s, j, spec.s_key, &key, ctx);
                for rt in &sorted_r[i..gi_end] {
                    for st in &sorted_s[j..gj_end] {
                        out.push(rt.concat(st))?;
                    }
                }
                i = gi_end;
                j = gj_end;
            }
        }
    }
    Ok(out)
}

/// First index after `start` whose key differs; one comparison per probe.
fn run_end(
    tuples: &[Tuple],
    start: usize,
    key_col: usize,
    key: &mmdb_types::Value,
    ctx: &ExecContext,
) -> usize {
    let mut end = start + 1;
    while end < tuples.len() {
        ctx.meter.charge_comparisons(1);
        if tuples[end].get(key_col) != key {
            break;
        }
        end += 1;
    }
    end
}

#[cfg(test)]
mod tests {
    use super::super::testkit::{assert_matches_reference, keyed};
    use super::*;

    #[test]
    fn matches_reference_with_ample_memory() {
        let r = keyed(10, 2_000, 300, 40);
        let s = keyed(11, 3_000, 300, 40);
        assert_matches_reference(sort_merge_join, &r, &s, 10_000);
    }

    #[test]
    fn matches_reference_when_spilling() {
        let r = keyed(12, 2_000, 300, 40);
        let s = keyed(13, 3_000, 300, 40);
        // 2000 tuples = 50 pages; grant far less so runs spill.
        assert_matches_reference(sort_merge_join, &r, &s, 8);
    }

    #[test]
    fn spilling_charges_io_in_memory_does_not() {
        let r = keyed(14, 2_000, 300, 40);
        let s = keyed(15, 2_000, 300, 40);
        let spec = JoinSpec::new(0, 0);
        let big = ExecContext::new(10_000, 1.2);
        sort_merge_join(&r, &s, spec, &big).unwrap();
        assert_eq!(big.meter.snapshot().total_ios(), 0);

        let small = ExecContext::new(8, 1.2);
        sort_merge_join(&r, &s, spec, &small).unwrap();
        let ios = small.meter.snapshot().total_ios();
        assert!(ios > 0, "constrained sort-merge must do I/O");
    }

    #[test]
    fn giant_equal_key_groups() {
        // 200 × 150 identical keys: the formula's corner case, handled
        // exactly by the implementation.
        let r = keyed(16, 200, 1, 40);
        let s = keyed(17, 150, 1, 40);
        assert_matches_reference(sort_merge_join, &r, &s, 16);
    }

    #[test]
    fn empty_inputs() {
        let r = keyed(18, 0, 10, 40);
        let s = keyed(19, 100, 10, 40);
        let ctx = ExecContext::new(100, 1.2);
        assert_eq!(
            sort_merge_join(&r, &s, JoinSpec::new(0, 0), &ctx)
                .unwrap()
                .tuple_count(),
            0
        );
        assert_eq!(
            sort_merge_join(&s, &r, JoinSpec::new(0, 0), &ctx)
                .unwrap()
                .tuple_count(),
            0
        );
    }
}
