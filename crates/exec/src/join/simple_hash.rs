//! §3.5 — the multipass simple-hash join.
//!
//! Each pass fills memory with a hash table for the fraction of R whose
//! hash falls in the chosen range, scans S against it, and writes the
//! passed-over tuples of both relations to disk for the next pass. With
//! ample memory this degenerates to the classic one-pass hash join; with
//! `A = ceil(|R|·F/|M|)` passes the passed-over work is what makes the
//! algorithm blow up at low memory (the steep left edge of Figure 1).

use super::{charged_hash, output_relation, JoinSpec, ProbeTable};
use crate::context::ExecContext;
use crate::partition::in_first_fraction;
use crate::spill::{SpillFile, SpillIo};
use mmdb_storage::MemRelation;
use mmdb_types::{Result, Tuple};
use std::sync::Arc;

/// Joins `r` and `s` by multipass simple hashing.
pub fn simple_hash_join(
    r: &MemRelation,
    s: &MemRelation,
    spec: JoinSpec,
    ctx: &ExecContext,
) -> Result<MemRelation> {
    let mut out = output_relation(&spec, r, s);
    let r_tpp = r.tuples_per_page().max(1);
    let s_tpp = s.tuples_per_page().max(1);
    let capacity = ctx.mem_tuple_capacity(r_tpp);

    // The initial read of R and S is not charged (§3.2).
    let mut r_remaining: Vec<Tuple> = r.tuples().to_vec();
    let mut s_remaining: Vec<Tuple> = s.tuples().to_vec();

    // §3.5 step 1 *re-chooses* the hash range on every pass so that
    // "P pages of R-tuples will hash into that range". Passed-over tuples
    // occupy only the not-yet-consumed tail of the hash space, so each
    // pass's acceptance window is sized within that tail; `consumed`
    // tracks its lower edge.
    let mut consumed = 0.0f64;
    while !r_remaining.is_empty() {
        let rel_fraction = (capacity as f64 / r_remaining.len() as f64).min(1.0);
        let whole = rel_fraction >= 1.0;
        let fraction = consumed + rel_fraction * (1.0 - consumed);

        // Build phase: in-range R tuples enter the table, the rest are
        // passed over.
        let mut table = ProbeTable::new(
            Arc::clone(&ctx.meter),
            spec.r_key,
            capacity.min(r_remaining.len()),
        );
        let mut r_spill = SpillFile::new(Arc::clone(&ctx.meter), r_tpp);
        for t in r_remaining.drain(..) {
            let h = charged_hash(&ctx.meter, &t, spec.r_key);
            if whole || in_first_fraction(h, fraction) {
                table.insert(h, t);
            } else {
                ctx.meter.charge_moves(1);
                r_spill.append(t, SpillIo::Sequential);
            }
        }

        // Probe phase: in-range S tuples probe, the rest are passed over.
        let mut s_spill = SpillFile::new(Arc::clone(&ctx.meter), s_tpp);
        for t in s_remaining.drain(..) {
            let h = charged_hash(&ctx.meter, &t, spec.s_key);
            if whole || in_first_fraction(h, fraction) {
                table.probe(h, t.get(spec.s_key), |rt| out.push(rt.concat(&t)))?;
            } else {
                ctx.meter.charge_moves(1);
                s_spill.append(t, SpillIo::Sequential);
            }
        }

        if r_spill.is_empty() {
            break; // passed-over S tuples (if any) cannot match anything
        }
        // Read the passed-over files back as the next pass's inputs.
        consumed = fraction;
        r_remaining = r_spill.drain_pages(SpillIo::Sequential).flatten().collect();
        s_remaining = s_spill.drain_pages(SpillIo::Sequential).flatten().collect();
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::super::testkit::{assert_matches_reference, keyed};
    use super::*;

    #[test]
    fn matches_reference_one_pass() {
        let r = keyed(20, 2_000, 400, 40);
        let s = keyed(21, 3_000, 400, 40);
        assert_matches_reference(simple_hash_join, &r, &s, 1_000);
    }

    #[test]
    fn matches_reference_multipass() {
        let r = keyed(22, 4_000, 500, 40);
        let s = keyed(23, 6_000, 500, 40);
        // 4000 R tuples = 100 pages · F 1.2 = 120; grant 13 pages → ~10
        // passes.
        assert_matches_reference(simple_hash_join, &r, &s, 13);
    }

    #[test]
    fn one_pass_does_no_io() {
        let r = keyed(24, 1_000, 100, 40);
        let s = keyed(25, 1_000, 100, 40);
        let ctx = ExecContext::new(100, 1.2);
        simple_hash_join(&r, &s, JoinSpec::new(0, 0), &ctx).unwrap();
        assert_eq!(ctx.meter.snapshot().total_ios(), 0);
    }

    #[test]
    fn pass_count_drives_io_up() {
        let r = keyed(26, 4_000, 300, 40); // 100 pages
        let s = keyed(27, 4_000, 300, 40);
        let spec = JoinSpec::new(0, 0);
        let two_pass = ExecContext::new(60, 1.2);
        simple_hash_join(&r, &s, spec, &two_pass).unwrap();
        let io2 = two_pass.meter.snapshot().total_ios();

        let five_pass = ExecContext::new(24, 1.2);
        simple_hash_join(&r, &s, spec, &five_pass).unwrap();
        let io5 = five_pass.meter.snapshot().total_ios();
        assert!(
            io5 > io2 * 2,
            "more passes must pass over more pages: {io5} vs {io2}"
        );
    }

    #[test]
    fn passed_over_io_is_sequential() {
        let r = keyed(28, 4_000, 300, 40);
        let s = keyed(29, 4_000, 300, 40);
        let ctx = ExecContext::new(24, 1.2);
        simple_hash_join(&r, &s, JoinSpec::new(0, 0), &ctx).unwrap();
        let snap = ctx.meter.snapshot();
        assert!(snap.seq_ios > 0);
        assert_eq!(snap.rand_ios, 0, "§3.5 charges 2·IOseq per page");
    }

    #[test]
    fn empty_relations() {
        let r = keyed(30, 0, 10, 40);
        let s = keyed(31, 50, 10, 40);
        let ctx = ExecContext::new(10, 1.2);
        assert_eq!(
            simple_hash_join(&r, &s, JoinSpec::new(0, 0), &ctx)
                .unwrap()
                .tuple_count(),
            0
        );
    }
}
