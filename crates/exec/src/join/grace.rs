//! §3.6 — the GRACE-hash join.
//!
//! Phase 1 partitions both relations into `|M|` compatible buckets through
//! per-bucket output-buffer pages, writing filled buffers to disk (random
//! I/O — buffers fill in hash order, not disk order). Phase 2 joins each
//! `(R_i, S_i)` pair by building a hash table for `R_i` and probing it
//! with `S_i`. The original uses a hardware sorter in phase 2; the paper
//! itself substitutes hashing "to provide a fair comparison", and so do we.
//!
//! Memory is *not* adaptive: GRACE always runs both phases, which is why
//! its Figure 1 curve is flat — it never exploits memory beyond the
//! `sqrt(|S|·F)` minimum.

use super::{charged_hash, output_relation, JoinSpec, ProbeTable};
use crate::context::ExecContext;
use crate::partition::uniform_class;
use crate::spill::{SpillFile, SpillIo};
use mmdb_storage::MemRelation;
use mmdb_types::Result;
use std::sync::Arc;

/// Joins `r` and `s` with the two-phase GRACE algorithm.
pub fn grace_hash_join(
    r: &MemRelation,
    s: &MemRelation,
    spec: JoinSpec,
    ctx: &ExecContext,
) -> Result<MemRelation> {
    let mut out = output_relation(&spec, r, s);
    let r_tpp = r.tuples_per_page().max(1);
    let s_tpp = s.tuples_per_page().max(1);
    // One output-buffer page per bucket; the paper uses |M| buckets.
    let buckets = ctx.mem_pages.max(1);

    // Phase 1: partition R, then S (steps 1 and 2).
    let mut r_parts: Vec<SpillFile> = (0..buckets)
        .map(|_| SpillFile::new(Arc::clone(&ctx.meter), r_tpp))
        .collect();
    for t in r.tuples() {
        let h = charged_hash(&ctx.meter, t, spec.r_key);
        ctx.meter.charge_moves(1);
        r_parts[uniform_class(h, buckets)].append(t.clone(), SpillIo::Random);
    }
    let mut s_parts: Vec<SpillFile> = (0..buckets)
        .map(|_| SpillFile::new(Arc::clone(&ctx.meter), s_tpp))
        .collect();
    for t in s.tuples() {
        let h = charged_hash(&ctx.meter, t, spec.s_key);
        ctx.meter.charge_moves(1);
        s_parts[uniform_class(h, buckets)].append(t.clone(), SpillIo::Random);
    }
    for p in r_parts.iter_mut().chain(s_parts.iter_mut()) {
        p.flush(SpillIo::Random);
    }

    // Phase 2: join each (R_i, S_i) pair (steps 3 and 4).
    for (r_part, s_part) in r_parts.into_iter().zip(s_parts) {
        if r_part.is_empty() {
            // Nothing to probe; S_i tuples are tossed unread only if empty
            // too — otherwise the scan of S_i was already paid in phase 1
            // and the read-back is skipped entirely.
            continue;
        }
        let expected = r_part.tuple_count();
        let mut table = ProbeTable::new(Arc::clone(&ctx.meter), spec.r_key, expected);
        for page in r_part.drain_pages(SpillIo::Sequential) {
            for t in page {
                ctx.meter.charge_hashes(1);
                let h = crate::partition::hash_key(t.get(spec.r_key));
                table.insert(h, t);
            }
        }
        for page in s_part.drain_pages(SpillIo::Sequential) {
            for t in page {
                ctx.meter.charge_hashes(1);
                let h = crate::partition::hash_key(t.get(spec.s_key));
                table.probe(h, t.get(spec.s_key), |rt| out.push(rt.concat(&t)))?;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::super::testkit::{assert_matches_reference, keyed};
    use super::*;

    #[test]
    fn matches_reference() {
        let r = keyed(40, 2_000, 350, 40);
        let s = keyed(41, 3_000, 350, 40);
        assert_matches_reference(grace_hash_join, &r, &s, 30);
    }

    #[test]
    fn matches_reference_tiny_memory() {
        let r = keyed(42, 1_000, 200, 40);
        let s = keyed(43, 1_500, 200, 40);
        // sqrt(|S|·F) = sqrt(45) ≈ 7 pages.
        assert_matches_reference(grace_hash_join, &r, &s, 8);
    }

    #[test]
    fn io_is_flat_in_memory_grant() {
        let r = keyed(44, 4_000, 400, 40);
        let s = keyed(45, 4_000, 400, 40);
        let spec = JoinSpec::new(0, 0);
        let small = ExecContext::new(20, 1.2);
        grace_hash_join(&r, &s, spec, &small).unwrap();
        let io_small = small.meter.snapshot().total_ios();
        let large = ExecContext::new(120, 1.2);
        grace_hash_join(&r, &s, spec, &large).unwrap();
        let io_large = large.meter.snapshot().total_ios();
        // GRACE writes and reads every page regardless of memory; more
        // buckets only add partial-page flush overhead.
        let diff = (io_small as f64 - io_large as f64).abs();
        assert!(
            diff < io_small as f64 * 0.5,
            "GRACE I/O should be roughly flat: {io_small} vs {io_large}"
        );
        assert!(io_small > 0);
    }

    #[test]
    fn writes_are_random_reads_sequential() {
        let r = keyed(46, 2_000, 300, 40);
        let s = keyed(47, 2_000, 300, 40);
        let ctx = ExecContext::new(25, 1.2);
        grace_hash_join(&r, &s, JoinSpec::new(0, 0), &ctx).unwrap();
        let snap = ctx.meter.snapshot();
        assert!(snap.rand_ios > 0, "phase-1 buffer flushes are random");
        assert!(snap.seq_ios > 0, "phase-2 reads are sequential");
    }

    #[test]
    fn duplicate_heavy_keys() {
        let r = keyed(48, 500, 3, 40);
        let s = keyed(49, 400, 3, 40);
        assert_matches_reference(grace_hash_join, &r, &s, 10);
    }
}
