//! External sorting: replacement-selection run formation and n-way merge.
//!
//! §3.4's building blocks: runs average twice the memory size (Knuth), all
//! runs merge in one pass because `sqrt(|S|·F) ≤ |M|`. The priority queue
//! charges one comparison and one swap per heap level — the paper's
//! `log2({M}) · (comp + swap)` pricing, measured rather than assumed.

use crate::context::ExecContext;
use crate::spill::{SpillFile, SpillIo};
use mmdb_storage::{CostMeter, MemRelation};
use mmdb_types::{Tuple, Value};
use std::sync::Arc;

/// A binary min-heap that charges the meter one `comp` and one `swap` per
/// level an element moves.
#[derive(Debug)]
pub struct CountingHeap<T: Ord> {
    data: Vec<T>,
    meter: Arc<CostMeter>,
}

impl<T: Ord> CountingHeap<T> {
    /// An empty heap charging to `meter`.
    pub fn new(meter: Arc<CostMeter>) -> Self {
        CountingHeap {
            data: Vec::new(),
            meter,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the heap is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The minimum element, if any.
    pub fn peek(&self) -> Option<&T> {
        self.data.first()
    }

    /// Inserts an element (≈ `log2 n` comparisons and swaps).
    pub fn push(&mut self, item: T) {
        self.data.push(item);
        let mut i = self.data.len() - 1;
        while i > 0 {
            let parent = (i - 1) / 2;
            self.meter.charge_comparisons(1);
            if self.data[i] < self.data[parent] {
                self.meter.charge_swaps(1);
                self.data.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    /// Removes and returns the minimum (≈ `log2 n` comparisons and swaps).
    pub fn pop(&mut self) -> Option<T> {
        if self.data.is_empty() {
            return None;
        }
        let last = self.data.len() - 1;
        self.data.swap(0, last);
        let out = self.data.pop();
        let n = self.data.len();
        let mut i = 0;
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            if l >= n {
                break;
            }
            let smaller = if r < n {
                self.meter.charge_comparisons(1);
                if self.data[r] < self.data[l] {
                    r
                } else {
                    l
                }
            } else {
                l
            };
            self.meter.charge_comparisons(1);
            if self.data[smaller] < self.data[i] {
                self.meter.charge_swaps(1);
                self.data.swap(i, smaller);
                i = smaller;
            } else {
                break;
            }
        }
        out
    }
}

/// Heap entry for replacement selection: ordered by `(run, key)` so the
/// current run drains before the next begins.
#[derive(Debug, PartialEq, Eq, PartialOrd, Ord)]
struct RsEntry {
    run: u32,
    key: Value,
    seq: u64, // tie-break keeps the ordering total without comparing tuples
    tuple: Tuple,
}

/// Forms sorted runs from `rel` (keyed on column `key_col`) by replacement
/// selection, using at most the context's memory for the selection tree.
/// Runs are written sequentially; each averages `2·{M}` tuples on random
/// input (Knuth via §3.4).
pub fn form_runs(rel: &MemRelation, key_col: usize, ctx: &ExecContext) -> Vec<SpillFile> {
    let tpp = rel.tuples_per_page().max(1);
    let capacity = ctx.mem_tuple_capacity(tpp);
    let mut input = rel.tuples().iter();
    let mut heap: CountingHeap<RsEntry> = CountingHeap::new(Arc::clone(&ctx.meter));
    let mut seq = 0u64;
    let mut push = |heap: &mut CountingHeap<RsEntry>, run: u32, tuple: &Tuple| {
        let key = tuple.get(key_col).clone();
        let entry = RsEntry {
            run,
            key,
            seq,
            tuple: tuple.clone(),
        };
        seq += 1;
        heap.push(entry);
    };

    for t in input.by_ref().take(capacity) {
        push(&mut heap, 0, t);
    }

    let mut runs: Vec<SpillFile> = Vec::new();
    let mut current_run = 0u32;
    let mut current = SpillFile::new(Arc::clone(&ctx.meter), tpp);
    while let Some(entry) = heap.pop() {
        if entry.run != current_run {
            current.flush(SpillIo::Sequential);
            runs.push(current);
            current = SpillFile::new(Arc::clone(&ctx.meter), tpp);
            current_run = entry.run;
        }
        if let Some(t) = input.next() {
            ctx.meter.charge_comparisons(1);
            let next_run = if *t.get(key_col) >= entry.key {
                entry.run
            } else {
                entry.run + 1
            };
            push(&mut heap, next_run, t);
        }
        current.append(entry.tuple, SpillIo::Sequential);
    }
    current.flush(SpillIo::Sequential);
    if !current.is_empty() {
        runs.push(current);
    }
    runs
}

/// Heap entry for the n-way merge: `(key, run index, position)`.
#[derive(Debug, PartialEq, Eq, PartialOrd, Ord)]
struct MergeEntry {
    key: Value,
    seq: u64,
    run: usize,
    tuple: Tuple,
}

/// Cursor over one run's pages, reading each page with one random I/O as
/// the merge interleaves across runs.
struct RunCursor {
    file: SpillFile,
    page_idx: usize,
    buffer: Vec<Tuple>,
    pos: usize,
}

impl RunCursor {
    fn new(file: SpillFile) -> Self {
        RunCursor {
            file,
            page_idx: 0,
            buffer: Vec::new(),
            pos: 0,
        }
    }

    fn next(&mut self) -> Option<Tuple> {
        if self.pos >= self.buffer.len() {
            if self.page_idx >= self.file.closed_pages() {
                return None;
            }
            self.buffer = self.file.read_page(self.page_idx, SpillIo::Random).to_vec();
            self.page_idx += 1;
            self.pos = 0;
        }
        let t = self.buffer[self.pos].clone();
        self.pos += 1;
        Some(t)
    }
}

/// Merges sorted runs into one fully sorted tuple vector, charging heap
/// comparisons/swaps and one random I/O per run page read.
pub fn merge_runs(runs: Vec<SpillFile>, key_col: usize, ctx: &ExecContext) -> Vec<Tuple> {
    // Make sure trailing partial pages are on "disk".
    let mut cursors: Vec<RunCursor> = runs
        .into_iter()
        .map(|mut f| {
            f.flush(SpillIo::Sequential);
            RunCursor::new(f)
        })
        .collect();
    let total: usize = cursors.iter().map(|c| c.file.tuple_count()).sum();
    let mut heap: CountingHeap<MergeEntry> = CountingHeap::new(Arc::clone(&ctx.meter));
    let mut seq = 0u64;
    for (i, c) in cursors.iter_mut().enumerate() {
        if let Some(t) = c.next() {
            heap.push(MergeEntry {
                key: t.get(key_col).clone(),
                seq,
                run: i,
                tuple: t,
            });
            seq += 1;
        }
    }
    let mut out = Vec::with_capacity(total);
    while let Some(e) = heap.pop() {
        if let Some(t) = cursors[e.run].next() {
            heap.push(MergeEntry {
                key: t.get(key_col).clone(),
                seq,
                run: e.run,
                tuple: t,
            });
            seq += 1;
        }
        out.push(e.tuple);
    }
    out
}

/// Fully sorts a relation by `key_col` under the context's memory grant:
/// in memory when `|R|·F ≤ |M|` (no I/O — the paper's beyond-ratio-1.0
/// regime), otherwise replacement-selection runs plus one merge pass.
pub fn external_sort(rel: &MemRelation, key_col: usize, ctx: &ExecContext) -> Vec<Tuple> {
    let fits = (rel.page_count() as f64) * ctx.fudge <= ctx.mem_pages as f64;
    if fits {
        // Heap-sort in place: same comparison/swap pricing, no I/O.
        let mut heap: CountingHeap<RsEntry> = CountingHeap::new(Arc::clone(&ctx.meter));
        for (seq, t) in rel.tuples().iter().enumerate() {
            heap.push(RsEntry {
                run: 0,
                key: t.get(key_col).clone(),
                seq: seq as u64,
                tuple: t.clone(),
            });
        }
        let mut out = Vec::with_capacity(rel.tuple_count());
        while let Some(e) = heap.pop() {
            out.push(e.tuple);
        }
        out
    } else {
        let runs = form_runs(rel, key_col, ctx);
        merge_runs(runs, key_col, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmdb_types::{DataType, Schema, WorkloadRng};

    fn rel(keys: &[i64], per_page: usize) -> MemRelation {
        let schema = Schema::of(&[("k", DataType::Int), ("v", DataType::Int)]);
        let tuples = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| Tuple::new(vec![Value::Int(k), Value::Int(i as i64)]))
            .collect();
        MemRelation::from_tuples(schema, per_page, tuples).unwrap()
    }

    fn keys_of(ts: &[Tuple]) -> Vec<i64> {
        ts.iter().map(|t| t.get(0).as_int().unwrap()).collect()
    }

    #[test]
    fn counting_heap_sorts_and_charges() {
        let meter = Arc::new(CostMeter::new());
        let mut h = CountingHeap::new(Arc::clone(&meter));
        for x in [5, 1, 4, 2, 3] {
            h.push(x);
        }
        let mut out = Vec::new();
        while let Some(x) = h.pop() {
            out.push(x);
        }
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
        let s = meter.snapshot();
        assert!(s.comparisons > 0 && s.swaps > 0);
    }

    #[test]
    fn heap_comparison_cost_is_logarithmic() {
        let meter = Arc::new(CostMeter::new());
        let mut h = CountingHeap::new(Arc::clone(&meter));
        let n = 10_000u64;
        let mut rng = WorkloadRng::seeded(1);
        for _ in 0..n {
            h.push(rng.int_in(0, 1 << 40));
        }
        while h.pop().is_some() {}
        let comps = meter.snapshot().comparisons as f64;
        let per_element = comps / n as f64;
        let log_n = (n as f64).log2();
        // Push+pop together should cost within a small factor of 2·log2(n).
        assert!(
            per_element < 2.5 * log_n && per_element > 0.5 * log_n,
            "per-element comparisons {per_element}, log2(n) = {log_n}"
        );
    }

    #[test]
    fn replacement_selection_runs_average_twice_memory() {
        let mut rng = WorkloadRng::seeded(2);
        let n = 20_000;
        let keys: Vec<i64> = (0..n).map(|_| rng.int_in(0, 1 << 40)).collect();
        let r = rel(&keys, 40);
        // Memory for 1000 tuples (F = 1.0 to make the arithmetic exact).
        let ctx = ExecContext::new(25, 1.0);
        let runs = form_runs(&r, 0, &ctx);
        let avg = n as f64 / runs.len() as f64;
        let mem_tuples = 1000.0;
        assert!(
            (1.6 * mem_tuples..2.6 * mem_tuples).contains(&avg),
            "average run length {avg}, expected ≈ 2·{mem_tuples} (Knuth)"
        );
        // Each run is internally sorted.
        for run in runs {
            let pages: Vec<Vec<Tuple>> = run.drain_pages(SpillIo::Sequential).collect();
            let flat: Vec<Tuple> = pages.into_iter().flatten().collect();
            let ks = keys_of(&flat);
            assert!(ks.windows(2).all(|w| w[0] <= w[1]), "run not sorted");
        }
    }

    #[test]
    fn sorted_input_yields_one_run() {
        let keys: Vec<i64> = (0..5_000).collect();
        let r = rel(&keys, 40);
        let ctx = ExecContext::new(5, 1.0);
        let runs = form_runs(&r, 0, &ctx);
        assert_eq!(runs.len(), 1, "replacement selection on sorted input");
    }

    #[test]
    fn external_sort_matches_std_sort() {
        let mut rng = WorkloadRng::seeded(3);
        let keys: Vec<i64> = (0..8_000).map(|_| rng.int_in(0, 500)).collect();
        let r = rel(&keys, 40);
        let ctx = ExecContext::new(20, 1.2); // forces spilling
        let sorted = external_sort(&r, 0, &ctx);
        assert_eq!(sorted.len(), keys.len());
        let mut want = keys.clone();
        want.sort_unstable();
        assert_eq!(keys_of(&sorted), want);
        assert!(ctx.meter.snapshot().total_ios() > 0, "must have spilled");
    }

    #[test]
    fn in_memory_sort_does_no_io() {
        let mut rng = WorkloadRng::seeded(4);
        let keys: Vec<i64> = (0..2_000).map(|_| rng.int_in(0, 100)).collect();
        let r = rel(&keys, 40);
        let ctx = ExecContext::new(1_000, 1.2); // plenty of memory
        let sorted = external_sort(&r, 0, &ctx);
        let mut want = keys.clone();
        want.sort_unstable();
        assert_eq!(keys_of(&sorted), want);
        assert_eq!(ctx.meter.snapshot().total_ios(), 0);
    }

    #[test]
    fn merge_reads_run_pages_randomly() {
        let mut rng = WorkloadRng::seeded(5);
        let keys: Vec<i64> = (0..4_000).map(|_| rng.int_in(0, 1 << 30)).collect();
        let r = rel(&keys, 40);
        let ctx = ExecContext::new(10, 1.0);
        let runs = form_runs(&r, 0, &ctx);
        assert!(runs.len() > 1);
        let before = ctx.meter.snapshot();
        let merged = merge_runs(runs, 0, &ctx);
        let delta = ctx.meter.snapshot().delta_since(&before);
        assert_eq!(merged.len(), 4_000);
        assert!(delta.rand_ios >= 100, "run pages read back: {delta:?}");
    }

    #[test]
    fn empty_relation_sorts_to_empty() {
        let r = rel(&[], 40);
        let ctx = ExecContext::new(10, 1.2);
        assert!(external_sort(&r, 0, &ctx).is_empty());
    }

    #[test]
    fn duplicate_keys_survive_sorting() {
        let keys = vec![3, 1, 3, 2, 3, 1];
        let r = rel(&keys, 2);
        let ctx = ExecContext::new(1, 1.0);
        let sorted = external_sort(&r, 0, &ctx);
        assert_eq!(keys_of(&sorted), vec![1, 1, 2, 3, 3, 3]);
    }
}
