//! Property-based testing of the §3 executors: every join algorithm must
//! equal the nested-loops oracle for arbitrary inputs and memory grants;
//! sorting must equal `sort()`; partitioning must be compatible (§3.3).

use mmdb_exec::join::{run_join, Algo, JoinSpec};
use mmdb_exec::sort::external_sort;
use mmdb_exec::ExecContext;
use mmdb_storage::MemRelation;
use mmdb_types::{DataType, Schema, Tuple, Value};
use proptest::prelude::*;

fn relation(keys: Vec<i16>, per_page: usize) -> MemRelation {
    let schema = Schema::of(&[("k", DataType::Int), ("v", DataType::Int)]);
    let tuples = keys
        .into_iter()
        .enumerate()
        .map(|(i, k)| Tuple::new(vec![Value::Int(k as i64), Value::Int(i as i64)]))
        .collect();
    MemRelation::from_tuples(schema, per_page, tuples).unwrap()
}

fn canonical(rel: &MemRelation) -> Vec<Tuple> {
    let mut v = rel.tuples().to_vec();
    v.sort();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_join_matches_nested_loops(
        r_keys in prop::collection::vec(-20i16..20, 0..120),
        s_keys in prop::collection::vec(-20i16..20, 0..120),
        mem_pages in 2usize..40,
        algo_pick in 0u8..4,
    ) {
        let r = relation(r_keys, 8);
        let s = relation(s_keys, 8);
        let spec = JoinSpec::new(0, 0);
        let oracle_ctx = ExecContext::new(usize::MAX / 2, 1.2);
        let want = canonical(&run_join(Algo::NestedLoops, &r, &s, spec, &oracle_ctx).unwrap());
        let algo = Algo::PAPER[algo_pick as usize];
        let ctx = ExecContext::new(mem_pages, 1.2);
        let got = canonical(&run_join(algo, &r, &s, spec, &ctx).unwrap());
        prop_assert_eq!(got, want, "{} at {} pages", algo.name(), mem_pages);
    }

    #[test]
    fn external_sort_equals_std_sort(
        keys in prop::collection::vec(any::<i16>(), 0..500),
        mem_pages in 1usize..20,
        per_page in 1usize..20,
    ) {
        let rel = relation(keys.clone(), per_page);
        let ctx = ExecContext::new(mem_pages, 1.2);
        let sorted = external_sort(&rel, 0, &ctx);
        let got: Vec<i64> = sorted.iter().map(|t| t.get(0).as_int().unwrap()).collect();
        let mut want: Vec<i64> = keys.iter().map(|k| *k as i64).collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
        // No tuple lost or duplicated (payload multiset preserved).
        let mut payloads: Vec<i64> = sorted.iter().map(|t| t.get(1).as_int().unwrap()).collect();
        payloads.sort_unstable();
        prop_assert_eq!(payloads, (0..keys.len() as i64).collect::<Vec<_>>());
    }

    #[test]
    fn partitioning_is_compatible(
        keys in prop::collection::vec(any::<i32>(), 1..300),
        parts in 1usize..17,
    ) {
        use mmdb_exec::partition::{hash_key, uniform_class};
        // §3.3: a partition compatible with h assigns equal keys to equal
        // classes — so R_i ⋈ S_j is empty for i ≠ j.
        for k in keys {
            let v = Value::Int(k as i64);
            let c1 = uniform_class(hash_key(&v), parts);
            let c2 = uniform_class(hash_key(&Value::Int(k as i64)), parts);
            prop_assert_eq!(c1, c2);
            prop_assert!(c1 < parts);
        }
    }

    #[test]
    fn join_cardinality_equals_key_histogram_product(
        r_keys in prop::collection::vec(0i16..10, 0..80),
        s_keys in prop::collection::vec(0i16..10, 0..80),
    ) {
        let r = relation(r_keys.clone(), 8);
        let s = relation(s_keys.clone(), 8);
        let ctx = ExecContext::new(50, 1.2);
        let out = run_join(Algo::HybridHash, &r, &s, JoinSpec::new(0, 0), &ctx).unwrap();
        let mut expected = 0usize;
        for k in 0..10i16 {
            let nr = r_keys.iter().filter(|x| **x == k).count();
            let ns = s_keys.iter().filter(|x| **x == k).count();
            expected += nr * ns;
        }
        prop_assert_eq!(out.tuple_count(), expected);
    }

    #[test]
    fn aggregation_count_sums_to_input(
        keys in prop::collection::vec(0i16..12, 1..300),
        mem_pages in 1usize..30,
    ) {
        use mmdb_exec::aggregate::{hybrid_hash_aggregate, AggFunc};
        let rel = relation(keys.clone(), 8);
        let ctx = ExecContext::new(mem_pages, 1.2);
        let out = hybrid_hash_aggregate(&rel, 0, &[AggFunc::Count], &ctx).unwrap();
        let total: i64 = out.tuples().iter().map(|t| t.get(1).as_int().unwrap()).sum();
        prop_assert_eq!(total as usize, keys.len());
        // One output row per distinct key.
        let distinct: std::collections::HashSet<i16> = keys.into_iter().collect();
        prop_assert_eq!(out.tuple_count(), distinct.len());
    }

    #[test]
    fn projection_distinct_equals_hashset(
        keys in prop::collection::vec(-5i16..5, 0..300),
        mem_pages in 1usize..30,
    ) {
        use mmdb_exec::project::hybrid_hash_project;
        let rel = relation(keys.clone(), 8);
        let ctx = ExecContext::new(mem_pages, 1.2);
        let out = hybrid_hash_project(&rel, &[0], &ctx).unwrap();
        let got: std::collections::HashSet<i64> = out
            .tuples()
            .iter()
            .map(|t| t.get(0).as_int().unwrap())
            .collect();
        let want: std::collections::HashSet<i64> =
            keys.into_iter().map(|k| k as i64).collect();
        prop_assert_eq!(out.tuple_count(), want.len(), "duplicates must be gone");
        prop_assert_eq!(got, want);
    }
}
