//! Property-based testing of the storage substrate: tuple codec
//! round-trips, slotted-page oracle equivalence, buffer-pool coherence.

use mmdb_storage::{
    tuple_codec, BufferPool, CostMeter, IoKind, ReplacementPolicy, SimDisk, SlottedPage,
};
use mmdb_types::{PageId, SlotId, Tuple, Value, PAGE_SIZE};
use proptest::prelude::*;
use std::sync::Arc;

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::Float),
        "[a-zA-Z0-9 ]{0,40}".prop_map(Value::Str),
        Just(Value::Null),
    ]
}

fn tuple_strategy() -> impl Strategy<Value = Tuple> {
    prop::collection::vec(value_strategy(), 0..8).prop_map(Tuple::new)
}

proptest! {
    #[test]
    fn tuple_codec_roundtrips(t in tuple_strategy()) {
        let enc = tuple_codec::encode(&t);
        let dec = tuple_codec::decode(&enc).unwrap();
        prop_assert_eq!(dec, t);
    }

    #[test]
    fn tuple_codec_rejects_any_truncation(t in tuple_strategy()) {
        let enc = tuple_codec::encode(&t);
        for cut in 0..enc.len() {
            prop_assert!(tuple_codec::decode(&enc[..cut]).is_err());
        }
    }

    #[test]
    fn slotted_page_matches_vec_oracle(
        ops in prop::collection::vec(
            prop_oneof![
                prop::collection::vec(any::<u8>(), 1..300).prop_map(Ok),
                any::<u16>().prop_map(Err),
            ],
            1..60,
        )
    ) {
        let mut page = SlottedPage::new();
        let mut oracle: Vec<Option<Vec<u8>>> = Vec::new();
        for op in ops {
            match op {
                Ok(record) => {
                    if page.fits(record.len()) {
                        let slot = page.insert(&record).unwrap();
                        prop_assert_eq!(slot.0 as usize, oracle.len());
                        oracle.push(Some(record));
                    }
                }
                Err(raw) => {
                    let idx = if oracle.is_empty() { 0 } else { raw as usize % oracle.len() };
                    let removed = page.delete(SlotId(idx as u16));
                    let oracle_removed = oracle
                        .get_mut(idx)
                        .map(|s| s.take().is_some())
                        .unwrap_or(false);
                    prop_assert_eq!(removed, oracle_removed);
                }
            }
        }
        // Every live slot agrees with the oracle; dead slots read None.
        for (i, want) in oracle.iter().enumerate() {
            let got = page.get(SlotId(i as u16)).map(|r| r.to_vec());
            prop_assert_eq!(&got, want);
        }
        // Compaction preserves the live multiset and round-trips bytes.
        let live_before: Vec<Vec<u8>> =
            oracle.iter().flatten().cloned().collect();
        let mapping = page.compact();
        prop_assert_eq!(mapping.len(), live_before.len());
        let reloaded = SlottedPage::from_bytes(page.as_bytes()).unwrap();
        let mut live_after: Vec<Vec<u8>> =
            reloaded.iter().map(|(_, r)| r.to_vec()).collect();
        let mut want = live_before;
        live_after.sort();
        want.sort();
        prop_assert_eq!(live_after, want);
    }

    #[test]
    fn buffer_pool_never_loses_writes(
        policy_pick in 0u8..3,
        writes in prop::collection::vec((0u8..12, any::<u8>()), 1..120,),
        capacity in 1usize..6,
    ) {
        let policy = match policy_pick {
            0 => ReplacementPolicy::Random { seed: 42 },
            1 => ReplacementPolicy::Lru,
            _ => ReplacementPolicy::Clock,
        };
        let meter = Arc::new(CostMeter::new());
        let mut disk = SimDisk::new(meter);
        let mut pool = BufferPool::new(capacity, policy);
        let pages: Vec<PageId> = (0..12).map(|_| disk.allocate()).collect();
        let mut oracle = [0u8; 12];
        for (p, byte) in writes {
            let id = pages[p as usize];
            let frame = pool.get_mut(&mut disk, id, IoKind::Random).unwrap();
            frame[0] = byte;
            oracle[p as usize] = byte;
        }
        pool.flush_all(&mut disk).unwrap();
        for (i, id) in pages.iter().enumerate() {
            prop_assert_eq!(disk.peek(*id).unwrap()[0], oracle[i], "page {}", i);
        }
    }

    #[test]
    fn pool_capacity_is_never_exceeded(
        accesses in prop::collection::vec(0u8..30, 1..300),
        capacity in 1usize..8,
    ) {
        let meter = Arc::new(CostMeter::new());
        let mut disk = SimDisk::new(meter);
        let pages: Vec<PageId> = (0..30).map(|_| disk.allocate()).collect();
        let mut pool = BufferPool::new(capacity, ReplacementPolicy::Random { seed: 1 });
        for a in accesses {
            pool.get(&mut disk, pages[a as usize], IoKind::Random).unwrap();
            prop_assert!(pool.resident_count() <= capacity);
        }
    }
}

// The PAGE_SIZE import is used implicitly by SlottedPage invariants; keep
// the compiler honest about it.
const _: () = assert!(PAGE_SIZE == 4096);
