//! Fully memory-resident relations with a paged view.
//!
//! The §3 join study works in units of *pages* (`|R|`, `|S|`) and *tuples*
//! (`||R||`, `||S||`). [`MemRelation`] keeps tuples in memory grouped into
//! fixed-fanout logical pages so the executable join algorithms can spill
//! and re-read page-sized units through the simulated disk at the paper's
//! prices.

use mmdb_types::{Error, Result, Schema, Tuple};

/// A memory-resident relation: a schema plus tuples grouped into logical
/// pages of a fixed number of tuples (Table 2 uses 40 tuples/page).
#[derive(Debug, Clone)]
pub struct MemRelation {
    schema: Schema,
    tuples: Vec<Tuple>,
    tuples_per_page: usize,
}

impl MemRelation {
    /// An empty relation.
    pub fn new(schema: Schema, tuples_per_page: usize) -> Self {
        assert!(tuples_per_page > 0, "need at least one tuple per page");
        MemRelation {
            schema,
            tuples: Vec::new(),
            tuples_per_page,
        }
    }

    /// Builds a relation from tuples, validating each against the schema.
    pub fn from_tuples(schema: Schema, tuples_per_page: usize, tuples: Vec<Tuple>) -> Result<Self> {
        for t in &tuples {
            schema.check(t)?;
        }
        let mut r = MemRelation::new(schema, tuples_per_page);
        r.tuples = tuples;
        Ok(r)
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// `||R||` — tuple count.
    pub fn tuple_count(&self) -> usize {
        self.tuples.len()
    }

    /// `|R|` — page count (ceiling of tuples / tuples-per-page).
    pub fn page_count(&self) -> usize {
        self.tuples.len().div_ceil(self.tuples_per_page)
    }

    /// Tuples per logical page.
    pub fn tuples_per_page(&self) -> usize {
        self.tuples_per_page
    }

    /// All tuples in storage order.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Appends a tuple after schema validation.
    pub fn push(&mut self, tuple: Tuple) -> Result<()> {
        self.schema.check(&tuple)?;
        self.tuples.push(tuple);
        Ok(())
    }

    /// The tuples of logical page `p`.
    pub fn page(&self, p: usize) -> Result<&[Tuple]> {
        let start = p * self.tuples_per_page;
        if start >= self.tuples.len() && !(p == 0 && self.tuples.is_empty()) {
            return Err(Error::PageNotFound(p as u64));
        }
        let end = ((p + 1) * self.tuples_per_page).min(self.tuples.len());
        Ok(&self.tuples[start..end])
    }

    /// Iterates logical pages in order.
    pub fn pages(&self) -> impl Iterator<Item = &[Tuple]> + '_ {
        self.tuples.chunks(self.tuples_per_page)
    }

    /// Consumes the relation, returning its tuples.
    pub fn into_tuples(self) -> Vec<Tuple> {
        self.tuples
    }

    /// A relation with the same schema and page fanout but no tuples.
    pub fn empty_like(&self) -> MemRelation {
        MemRelation::new(self.schema.clone(), self.tuples_per_page)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmdb_types::{DataType, Value};

    fn schema() -> Schema {
        Schema::of(&[("k", DataType::Int), ("v", DataType::Int)])
    }

    fn rel(n: usize, per_page: usize) -> MemRelation {
        let tuples = (0..n)
            .map(|i| Tuple::new(vec![Value::Int(i as i64), Value::Int(0)]))
            .collect();
        MemRelation::from_tuples(schema(), per_page, tuples).unwrap()
    }

    #[test]
    fn page_arithmetic() {
        let r = rel(100, 40);
        assert_eq!(r.tuple_count(), 100);
        assert_eq!(r.page_count(), 3);
        assert_eq!(r.page(0).unwrap().len(), 40);
        assert_eq!(r.page(2).unwrap().len(), 20);
        assert!(r.page(3).is_err());
    }

    #[test]
    fn empty_relation() {
        let r = rel(0, 40);
        assert_eq!(r.page_count(), 0);
        assert_eq!(r.pages().count(), 0);
        assert_eq!(r.page(0).unwrap().len(), 0);
    }

    #[test]
    fn push_validates_schema() {
        let mut r = rel(0, 4);
        assert!(r
            .push(Tuple::new(vec![Value::Int(1), Value::Int(2)]))
            .is_ok());
        assert!(r
            .push(Tuple::new(vec![Value::Str("no".into()), Value::Int(2)]))
            .is_err());
        assert!(r.push(Tuple::new(vec![Value::Int(1)])).is_err());
    }

    #[test]
    fn from_tuples_validates() {
        let bad = vec![Tuple::new(vec![Value::Int(1)])];
        assert!(MemRelation::from_tuples(schema(), 4, bad).is_err());
    }

    #[test]
    fn pages_iterator_covers_all_tuples() {
        let r = rel(95, 10);
        let total: usize = r.pages().map(|p| p.len()).sum();
        assert_eq!(total, 95);
        assert_eq!(r.pages().count(), 10);
    }

    #[test]
    fn empty_like_preserves_shape() {
        let r = rel(10, 7);
        let e = r.empty_like();
        assert_eq!(e.tuple_count(), 0);
        assert_eq!(e.tuples_per_page(), 7);
        assert_eq!(e.schema(), r.schema());
    }
}
