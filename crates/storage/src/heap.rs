//! Heap files: relations stored as unordered collections of slotted pages.
//!
//! A heap file goes through a [`BufferPool`] for all page access, so the
//! §2 fault economics apply to base-table access exactly as they do to
//! index access.

use crate::buffer::BufferPool;
use crate::disk::{IoKind, SimDisk};
use crate::page::SlottedPage;
use crate::tuple_codec;
use mmdb_types::{AuditViolation, Auditable, Error, PageId, Result, Tuple, TupleId};

/// A relation stored as slotted pages on a simulated disk.
#[derive(Debug)]
pub struct HeapFile {
    pages: Vec<PageId>,
    tuple_count: usize,
}

impl HeapFile {
    /// An empty heap file.
    pub fn new() -> Self {
        HeapFile {
            pages: Vec::new(),
            tuple_count: 0,
        }
    }

    /// Number of pages in the file.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Number of live tuples.
    pub fn tuple_count(&self) -> usize {
        self.tuple_count
    }

    /// Page ids of the file, in order.
    pub fn pages(&self) -> &[PageId] {
        &self.pages
    }

    /// Inserts a tuple, returning its TID. Appends to the last page,
    /// allocating a fresh page when full.
    pub fn insert(
        &mut self,
        disk: &mut SimDisk,
        pool: &mut BufferPool,
        tuple: &Tuple,
    ) -> Result<TupleId> {
        let record = tuple_codec::encode(tuple);
        if record.len() > SlottedPage::max_record_len() {
            return Err(Error::TupleTooLarge(record.len()));
        }
        if let Some(&last) = self.pages.last() {
            let bytes = pool.get(disk, last, IoKind::Auto)?;
            let mut page = SlottedPage::from_bytes(bytes)?;
            if page.fits(record.len()) {
                let slot = page.insert(&record)?;
                pool.put(disk, last, page.as_bytes())?;
                self.tuple_count += 1;
                return Ok(TupleId { page: last, slot });
            }
        }
        let id = disk.allocate();
        let mut page = SlottedPage::new();
        let slot = page.insert(&record)?;
        pool.put(disk, id, page.as_bytes())?;
        self.pages.push(id);
        self.tuple_count += 1;
        Ok(TupleId { page: id, slot })
    }

    /// Fetches a tuple by TID.
    pub fn get(&self, disk: &mut SimDisk, pool: &mut BufferPool, tid: TupleId) -> Result<Tuple> {
        if !self.pages.contains(&tid.page) {
            return Err(Error::PageNotFound(tid.page.0));
        }
        let bytes = pool.get(disk, tid.page, IoKind::Random)?;
        let page = SlottedPage::from_bytes(bytes)?;
        let record = page
            .get(tid.slot)
            .ok_or_else(|| Error::KeyNotFound(tid.to_string()))?;
        tuple_codec::decode(record)
    }

    /// Deletes a tuple by TID. Returns whether a live tuple was removed.
    pub fn delete(
        &mut self,
        disk: &mut SimDisk,
        pool: &mut BufferPool,
        tid: TupleId,
    ) -> Result<bool> {
        if !self.pages.contains(&tid.page) {
            return Err(Error::PageNotFound(tid.page.0));
        }
        let bytes = pool.get(disk, tid.page, IoKind::Random)?;
        let mut page = SlottedPage::from_bytes(bytes)?;
        let removed = page.delete(tid.slot);
        if removed {
            pool.put(disk, tid.page, page.as_bytes())?;
            self.tuple_count -= 1;
        }
        Ok(removed)
    }

    /// Replaces a tuple in place. The TID may change if the new encoding is
    /// larger than the old cell; the (possibly new) TID is returned.
    pub fn update(
        &mut self,
        disk: &mut SimDisk,
        pool: &mut BufferPool,
        tid: TupleId,
        tuple: &Tuple,
    ) -> Result<TupleId> {
        if !self.pages.contains(&tid.page) {
            return Err(Error::PageNotFound(tid.page.0));
        }
        let record = tuple_codec::encode(tuple);
        let bytes = pool.get(disk, tid.page, IoKind::Random)?;
        let mut page = SlottedPage::from_bytes(bytes)?;
        match page.update(tid.slot, &record) {
            Ok(slot) => {
                pool.put(disk, tid.page, page.as_bytes())?;
                Ok(TupleId {
                    page: tid.page,
                    slot,
                })
            }
            Err(Error::OutOfMemory { .. }) => {
                // No room on this page: delete here, insert elsewhere.
                page.delete(tid.slot);
                pool.put(disk, tid.page, page.as_bytes())?;
                self.tuple_count -= 1;
                self.insert(disk, pool, tuple)
            }
            Err(e) => Err(e),
        }
    }

    /// Scans every live tuple in file order, invoking `f` with its TID.
    /// Pages are read sequentially — the access pattern of the paper's
    /// `emp.name = "J*"` example once positioned.
    pub fn scan<F: FnMut(TupleId, Tuple)>(
        &self,
        disk: &mut SimDisk,
        pool: &mut BufferPool,
        mut f: F,
    ) -> Result<()> {
        for &pid in &self.pages {
            let bytes = pool.get(disk, pid, IoKind::Sequential)?;
            let page = SlottedPage::from_bytes(bytes)?;
            // Collect first: decoding borrows the pool's frame.
            let records: Vec<(mmdb_types::SlotId, Vec<u8>)> =
                page.iter().map(|(s, r)| (s, r.to_vec())).collect();
            for (slot, rec) in records {
                f(TupleId { page: pid, slot }, tuple_codec::decode(&rec)?);
            }
        }
        Ok(())
    }

    /// Collects all live tuples (convenience for tests and loading).
    pub fn all_tuples(&self, disk: &mut SimDisk, pool: &mut BufferPool) -> Result<Vec<Tuple>> {
        let mut out = Vec::with_capacity(self.tuple_count);
        self.scan(disk, pool, |_, t| out.push(t))?;
        Ok(out)
    }

    /// Full audit against the stored pages: every page must parse as a
    /// slotted page, every record must decode as a tuple, and the live
    /// records must sum to exactly [`HeapFile::tuple_count`]. Goes through
    /// the pool (and therefore the §2 fault economics) like any other
    /// access; see [`Auditable`] for the standalone subset.
    pub fn audit_with(
        &self,
        disk: &mut SimDisk,
        pool: &mut BufferPool,
    ) -> std::result::Result<(), AuditViolation> {
        const C: &str = "HeapFile";
        self.audit()?;
        let mut live = 0usize;
        for &pid in &self.pages {
            let bytes = pool
                .get(disk, pid, IoKind::Sequential)
                .map_err(|e| AuditViolation::new(C, "page-readable", e.to_string()))?;
            let page = SlottedPage::from_bytes(bytes)
                .map_err(|e| AuditViolation::new(C, "page-parse", e.to_string()))?;
            let records: Vec<Vec<u8>> = page.iter().map(|(_, r)| r.to_vec()).collect();
            live += records.len();
            for rec in records {
                tuple_codec::decode(&rec)
                    .map_err(|e| AuditViolation::new(C, "tuple-decode", e.to_string()))?;
            }
        }
        AuditViolation::ensure(live == self.tuple_count, C, "tuple-count", || {
            format!(
                "pages hold {live} live records, bookkeeping says {}",
                self.tuple_count
            )
        })
    }
}

impl Auditable for HeapFile {
    /// Standalone free-space bookkeeping checks: the page list must be
    /// duplicate-free (a page appearing twice would double-count its
    /// tuples) and a non-zero tuple count requires at least one page.
    fn audit(&self) -> std::result::Result<(), AuditViolation> {
        const C: &str = "HeapFile";
        let mut seen = std::collections::HashSet::new();
        for pid in &self.pages {
            AuditViolation::ensure(seen.insert(*pid), C, "page-list-unique", || {
                format!("page {} appears twice in the file", pid.0)
            })?;
        }
        AuditViolation::ensure(
            self.tuple_count == 0 || !self.pages.is_empty(),
            C,
            "tuple-count",
            || {
                format!(
                    "{} tuples recorded but the file has no pages",
                    self.tuple_count
                )
            },
        )
    }
}

impl Default for HeapFile {
    fn default() -> Self {
        HeapFile::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::ReplacementPolicy;
    use crate::meter::CostMeter;
    use mmdb_types::Value;
    use std::sync::Arc;

    fn env() -> (SimDisk, BufferPool) {
        let meter = Arc::new(CostMeter::new());
        (
            SimDisk::new(meter),
            BufferPool::new(64, ReplacementPolicy::Lru),
        )
    }

    fn t(i: i64) -> Tuple {
        Tuple::new(vec![Value::Int(i), Value::Str(format!("tuple-{i}"))])
    }

    #[test]
    fn insert_get_roundtrip() {
        let (mut disk, mut pool) = env();
        let mut hf = HeapFile::new();
        let tid = hf.insert(&mut disk, &mut pool, &t(7)).unwrap();
        assert_eq!(hf.get(&mut disk, &mut pool, tid).unwrap(), t(7));
        assert_eq!(hf.tuple_count(), 1);
    }

    #[test]
    fn spills_to_multiple_pages() {
        let (mut disk, mut pool) = env();
        let mut hf = HeapFile::new();
        for i in 0..2_000 {
            hf.insert(&mut disk, &mut pool, &t(i)).unwrap();
        }
        assert!(hf.page_count() > 1, "2000 tuples need several pages");
        assert_eq!(hf.tuple_count(), 2_000);
        let all = hf.all_tuples(&mut disk, &mut pool).unwrap();
        assert_eq!(all.len(), 2_000);
        // Scan preserves insertion order within the file.
        assert_eq!(all[0], t(0));
        assert_eq!(all[1999], t(1999));
    }

    #[test]
    fn delete_then_get_fails() {
        let (mut disk, mut pool) = env();
        let mut hf = HeapFile::new();
        let tid = hf.insert(&mut disk, &mut pool, &t(1)).unwrap();
        assert!(hf.delete(&mut disk, &mut pool, tid).unwrap());
        assert!(!hf.delete(&mut disk, &mut pool, tid).unwrap());
        assert!(hf.get(&mut disk, &mut pool, tid).is_err());
        assert_eq!(hf.tuple_count(), 0);
    }

    #[test]
    fn update_in_place_and_relocating() {
        let (mut disk, mut pool) = env();
        let mut hf = HeapFile::new();
        let tid = hf.insert(&mut disk, &mut pool, &t(1)).unwrap();
        // Same-size update keeps the TID.
        let tid2 = hf.update(&mut disk, &mut pool, tid, &t(2)).unwrap();
        assert_eq!(tid.page, tid2.page);
        assert_eq!(hf.get(&mut disk, &mut pool, tid2).unwrap(), t(2));
        assert_eq!(hf.tuple_count(), 1);
    }

    #[test]
    fn update_relocates_across_pages_when_page_is_full() {
        let (mut disk, mut pool) = env();
        let mut hf = HeapFile::new();
        // Fill page 0 almost exactly.
        let filler = Tuple::new(vec![Value::Str("x".repeat(400))]);
        let mut first = None;
        while hf.page_count() <= 1 {
            let tid = hf.insert(&mut disk, &mut pool, &filler).unwrap();
            if first.is_none() {
                first = Some(tid);
            }
        }
        let first = first.unwrap();
        // Grow the first tuple beyond its cell: page 0 is full, so it must
        // relocate (possibly to another page).
        let big = Tuple::new(vec![Value::Str("y".repeat(900))]);
        let moved = hf.update(&mut disk, &mut pool, first, &big).unwrap();
        assert_eq!(hf.get(&mut disk, &mut pool, moved).unwrap(), big);
    }

    #[test]
    fn bad_tids_error() {
        let (mut disk, mut pool) = env();
        let mut hf = HeapFile::new();
        hf.insert(&mut disk, &mut pool, &t(0)).unwrap();
        assert!(hf.get(&mut disk, &mut pool, TupleId::new(999, 0)).is_err());
        let first_page = hf.pages()[0];
        assert!(hf
            .get(
                &mut disk,
                &mut pool,
                TupleId {
                    page: first_page,
                    slot: mmdb_types::SlotId(200)
                }
            )
            .is_err());
    }

    #[test]
    fn oversized_tuple_rejected() {
        let (mut disk, mut pool) = env();
        let mut hf = HeapFile::new();
        let huge = Tuple::new(vec![Value::Str("z".repeat(8192))]);
        assert!(matches!(
            hf.insert(&mut disk, &mut pool, &huge),
            Err(Error::TupleTooLarge(_))
        ));
    }
}
