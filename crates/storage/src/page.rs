//! A slotted-page layout over a fixed 4 KB buffer.
//!
//! Layout (offsets in bytes):
//!
//! ```text
//! 0..2    slot count (u16)
//! 2..4    cell-region start (u16) — cells grow downward from PAGE_SIZE
//! 4..     slot directory, 4 bytes per slot: cell offset (u16), length (u16)
//! ...     free space
//! ...PAGE_SIZE  cell data
//! ```
//!
//! A slot with length `0` is a tombstone left by deletion; its slot id is
//! never reused so TIDs stay stable, matching what index entries require.

use mmdb_types::{Error, Result, SlotId, PAGE_SIZE};

const HEADER: usize = 4;
const SLOT_ENTRY: usize = 4;

/// A slotted page backed by an owned 4 KB buffer.
#[derive(Clone, PartialEq, Eq)]
pub struct SlottedPage {
    data: Box<[u8]>,
}

impl std::fmt::Debug for SlottedPage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlottedPage")
            .field("slots", &self.slot_count())
            .field("free", &self.free_space())
            .finish()
    }
}

impl SlottedPage {
    /// An empty page.
    pub fn new() -> Self {
        let mut data = vec![0u8; PAGE_SIZE].into_boxed_slice();
        write_u16(&mut data, 2, PAGE_SIZE as u16);
        SlottedPage { data }
    }

    /// Reconstructs a page from raw bytes (e.g. read back from the disk).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        if bytes.len() != PAGE_SIZE {
            return Err(Error::Internal(format!(
                "page must be {PAGE_SIZE} bytes, got {}",
                bytes.len()
            )));
        }
        let page = SlottedPage {
            data: bytes.to_vec().into_boxed_slice(),
        };
        // Sanity-check the header so corrupt buffers fail loudly.
        let cell_start = page.cell_start();
        let dir_end = HEADER + page.slot_count() * SLOT_ENTRY;
        if cell_start > PAGE_SIZE || dir_end > cell_start {
            return Err(Error::Internal("corrupt slotted page header".into()));
        }
        Ok(page)
    }

    /// The raw page bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.data
    }

    /// Number of slots, including tombstones.
    pub fn slot_count(&self) -> usize {
        read_u16(&self.data, 0) as usize
    }

    fn cell_start(&self) -> usize {
        read_u16(&self.data, 2) as usize
    }

    /// Contiguous free bytes between the slot directory and the cell region.
    pub fn free_space(&self) -> usize {
        self.cell_start() - (HEADER + self.slot_count() * SLOT_ENTRY)
    }

    /// Whether a record of `len` bytes fits (including its new slot entry).
    pub fn fits(&self, len: usize) -> bool {
        len > 0 && len + SLOT_ENTRY <= self.free_space()
    }

    /// Inserts a record, returning its slot id.
    pub fn insert(&mut self, record: &[u8]) -> Result<SlotId> {
        if record.is_empty() {
            return Err(Error::Internal("cannot store empty record".into()));
        }
        if record.len() > Self::max_record_len() {
            return Err(Error::TupleTooLarge(record.len()));
        }
        if !self.fits(record.len()) {
            return Err(Error::OutOfMemory {
                needed: record.len() + SLOT_ENTRY,
                available: self.free_space(),
            });
        }
        let slot = self.slot_count();
        let new_cell_start = self.cell_start() - record.len();
        self.data[new_cell_start..new_cell_start + record.len()].copy_from_slice(record);
        let dir = HEADER + slot * SLOT_ENTRY;
        write_u16(&mut self.data, dir, new_cell_start as u16);
        write_u16(&mut self.data, dir + 2, record.len() as u16);
        write_u16(&mut self.data, 0, (slot + 1) as u16);
        write_u16(&mut self.data, 2, new_cell_start as u16);
        Ok(SlotId(slot as u16))
    }

    /// The largest record a fresh page can hold.
    pub fn max_record_len() -> usize {
        PAGE_SIZE - HEADER - SLOT_ENTRY
    }

    /// Reads the record in `slot`, or `None` for tombstones / out-of-range.
    pub fn get(&self, slot: SlotId) -> Option<&[u8]> {
        let idx = slot.0 as usize;
        if idx >= self.slot_count() {
            return None;
        }
        let dir = HEADER + idx * SLOT_ENTRY;
        let off = read_u16(&self.data, dir) as usize;
        let len = read_u16(&self.data, dir + 2) as usize;
        if len == 0 {
            return None;
        }
        Some(&self.data[off..off + len])
    }

    /// Deletes the record in `slot` (tombstoning it). Space is reclaimed
    /// only by [`SlottedPage::compact`]. Returns whether a live record was
    /// removed.
    pub fn delete(&mut self, slot: SlotId) -> bool {
        let idx = slot.0 as usize;
        if idx >= self.slot_count() {
            return false;
        }
        let dir = HEADER + idx * SLOT_ENTRY;
        if read_u16(&self.data, dir + 2) == 0 {
            return false;
        }
        write_u16(&mut self.data, dir, 0);
        write_u16(&mut self.data, dir + 2, 0);
        true
    }

    /// Updates the record in `slot` in place if the new record fits in the
    /// old cell; otherwise deletes and re-inserts, returning the (possibly
    /// new) slot id.
    pub fn update(&mut self, slot: SlotId, record: &[u8]) -> Result<SlotId> {
        let idx = slot.0 as usize;
        if idx >= self.slot_count() {
            return Err(Error::KeyNotFound(format!("slot {idx}")));
        }
        let dir = HEADER + idx * SLOT_ENTRY;
        let off = read_u16(&self.data, dir) as usize;
        let len = read_u16(&self.data, dir + 2) as usize;
        if len == 0 {
            return Err(Error::KeyNotFound(format!("slot {idx} is deleted")));
        }
        if record.len() <= len && !record.is_empty() {
            // Shrink in place; keep the cell where it is.
            self.data[off..off + record.len()].copy_from_slice(record);
            write_u16(&mut self.data, dir + 2, record.len() as u16);
            Ok(slot)
        } else {
            self.delete(slot);
            self.insert(record)
        }
    }

    /// Live (non-tombstone) records with their slot ids.
    pub fn iter(&self) -> impl Iterator<Item = (SlotId, &[u8])> + '_ {
        (0..self.slot_count()).filter_map(move |i| {
            let slot = SlotId(i as u16);
            self.get(slot).map(|r| (slot, r))
        })
    }

    /// Number of live records.
    pub fn live_count(&self) -> usize {
        self.iter().count()
    }

    /// Rewrites the page without tombstones, renumbering slots. Returns the
    /// mapping `old slot -> new slot` for live records so callers can fix
    /// up index entries.
    pub fn compact(&mut self) -> Vec<(SlotId, SlotId)> {
        let live: Vec<(SlotId, Vec<u8>)> = self.iter().map(|(s, r)| (s, r.to_vec())).collect();
        let mut fresh = SlottedPage::new();
        let mut mapping = Vec::with_capacity(live.len());
        for (old, rec) in live {
            let new = fresh
                .insert(&rec)
                .expect("records that fit before must fit after compaction");
            mapping.push((old, new));
        }
        *self = fresh;
        mapping
    }
}

impl Default for SlottedPage {
    fn default() -> Self {
        SlottedPage::new()
    }
}

fn read_u16(data: &[u8], off: usize) -> u16 {
    u16::from_le_bytes([data[off], data[off + 1]])
}

fn write_u16(data: &mut [u8], off: usize, v: u16) {
    data[off..off + 2].copy_from_slice(&v.to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_get() {
        let mut p = SlottedPage::new();
        let a = p.insert(b"alpha").unwrap();
        let b = p.insert(b"beta").unwrap();
        assert_eq!(p.get(a), Some(&b"alpha"[..]));
        assert_eq!(p.get(b), Some(&b"beta"[..]));
        assert_eq!(p.slot_count(), 2);
    }

    #[test]
    fn fills_up_and_rejects() {
        let mut p = SlottedPage::new();
        let rec = [7u8; 100];
        let mut n = 0;
        while p.fits(rec.len()) {
            p.insert(&rec).unwrap();
            n += 1;
        }
        // 4096 - 4 header = 4092; each record takes 104 bytes -> 39 records.
        assert_eq!(n, (PAGE_SIZE - HEADER) / (100 + SLOT_ENTRY));
        assert!(p.insert(&rec).is_err());
    }

    #[test]
    fn delete_tombstones_and_preserves_other_slots() {
        let mut p = SlottedPage::new();
        let a = p.insert(b"aaa").unwrap();
        let b = p.insert(b"bbb").unwrap();
        assert!(p.delete(a));
        assert!(!p.delete(a), "double delete is a no-op");
        assert_eq!(p.get(a), None);
        assert_eq!(p.get(b), Some(&b"bbb"[..]));
        assert_eq!(p.live_count(), 1);
    }

    #[test]
    fn update_in_place_and_relocating() {
        let mut p = SlottedPage::new();
        let a = p.insert(b"0123456789").unwrap();
        // Shrinking update keeps the slot.
        let same = p.update(a, b"xyz").unwrap();
        assert_eq!(same, a);
        assert_eq!(p.get(a), Some(&b"xyz"[..]));
        // Growing update relocates.
        let moved = p.update(a, b"a-much-longer-record").unwrap();
        assert_eq!(p.get(moved), Some(&b"a-much-longer-record"[..]));
    }

    #[test]
    fn update_of_dead_slot_fails() {
        let mut p = SlottedPage::new();
        let a = p.insert(b"x").unwrap();
        p.delete(a);
        assert!(p.update(a, b"y").is_err());
        assert!(p.update(SlotId(99), b"y").is_err());
    }

    #[test]
    fn compact_reclaims_space() {
        let mut p = SlottedPage::new();
        let rec = [1u8; 200];
        let mut slots = Vec::new();
        while p.fits(rec.len()) {
            slots.push(p.insert(&rec).unwrap());
        }
        // Delete every other record.
        for s in slots.iter().step_by(2) {
            p.delete(*s);
        }
        let before = p.free_space();
        let mapping = p.compact();
        assert!(p.free_space() > before);
        assert_eq!(mapping.len(), slots.len() / 2);
        assert_eq!(p.live_count(), slots.len() / 2);
        for (_, new) in mapping {
            assert_eq!(p.get(new), Some(&rec[..]));
        }
    }

    #[test]
    fn round_trips_through_bytes() {
        let mut p = SlottedPage::new();
        p.insert(b"persist me").unwrap();
        let q = SlottedPage::from_bytes(p.as_bytes()).unwrap();
        assert_eq!(q.get(SlotId(0)), Some(&b"persist me"[..]));
    }

    #[test]
    fn from_bytes_rejects_wrong_size_and_corrupt_header() {
        assert!(SlottedPage::from_bytes(&[0u8; 10]).is_err());
        let mut bad = vec![0u8; PAGE_SIZE];
        bad[0] = 0xFF; // slot count 0xFF with cell start 0 -> dir overruns
        bad[1] = 0xFF;
        assert!(SlottedPage::from_bytes(&bad).is_err());
    }

    #[test]
    fn rejects_oversized_and_empty_records() {
        let mut p = SlottedPage::new();
        assert!(p.insert(&[]).is_err());
        let huge = vec![0u8; PAGE_SIZE];
        assert!(matches!(p.insert(&huge), Err(Error::TupleTooLarge(_))));
    }
}
