//! The simulated disk.
//!
//! Pages live in process memory; each transfer charges one `IOseq` or
//! `IOrand` operation on the shared [`CostMeter`]. This substitutes for the
//! paper's 1984 drives (10 ms sequential / 25 ms random): cost-model
//! conclusions depend only on the charged operation counts and their Table 2
//! prices, not on real seek times, so experiments run in milliseconds while
//! preserving the paper's economics.

use crate::meter::CostMeter;
use mmdb_types::{Error, PageId, Result, PAGE_SIZE};
use std::sync::Arc;

/// How an I/O should be priced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoKind {
    /// Charge `IOseq` (10 ms in Table 2).
    Sequential,
    /// Charge `IOrand` (25 ms in Table 2).
    Random,
    /// Charge `IOseq` if this access is to the page following the previous
    /// access on this disk, `IOrand` otherwise — models a single arm.
    Auto,
}

/// An in-memory page store that prices every transfer.
#[derive(Debug)]
pub struct SimDisk {
    pages: Vec<Option<Box<[u8]>>>,
    meter: Arc<CostMeter>,
    last_accessed: Option<u64>,
}

impl SimDisk {
    /// A fresh, empty disk charging to `meter`.
    pub fn new(meter: Arc<CostMeter>) -> Self {
        SimDisk {
            pages: Vec::new(),
            meter,
            last_accessed: None,
        }
    }

    /// The meter this disk charges to.
    pub fn meter(&self) -> &Arc<CostMeter> {
        &self.meter
    }

    /// Allocates a fresh zeroed page. Allocation itself is free (the write
    /// that follows pays).
    pub fn allocate(&mut self) -> PageId {
        let id = self.pages.len() as u64;
        self.pages
            .push(Some(vec![0u8; PAGE_SIZE].into_boxed_slice()));
        PageId(id)
    }

    /// Number of pages ever allocated.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Whether the page exists (allocated and not freed).
    pub fn exists(&self, id: PageId) -> bool {
        self.pages
            .get(id.0 as usize)
            .map(|p| p.is_some())
            .unwrap_or(false)
    }

    /// True when the access should be charged at the sequential rate.
    fn classify_sequential(&mut self, id: PageId, kind: IoKind) -> bool {
        let sequential = match kind {
            IoKind::Auto => {
                matches!(self.last_accessed, Some(last) if id.0 == last + 1 || id.0 == last)
            }
            k => k == IoKind::Sequential,
        };
        self.last_accessed = Some(id.0);
        sequential
    }

    fn charge(&mut self, id: PageId, kind: IoKind) {
        if self.classify_sequential(id, kind) {
            self.meter.charge_seq_ios(1);
        } else {
            self.meter.charge_rand_ios(1);
        }
    }

    /// Reads a page, charging one I/O of `kind`.
    pub fn read(&mut self, id: PageId, kind: IoKind) -> Result<&[u8]> {
        if !self.exists(id) {
            return Err(Error::PageNotFound(id.0));
        }
        self.charge(id, kind);
        Ok(self.pages[id.0 as usize].as_deref().expect("checked above"))
    }

    /// Copies a page into `out`, charging one I/O of `kind`.
    pub fn read_into(&mut self, id: PageId, kind: IoKind, out: &mut [u8]) -> Result<()> {
        let data = self.read(id, kind)?;
        out.copy_from_slice(data);
        Ok(())
    }

    /// Writes a page, charging one I/O of `kind`. `data` must be exactly
    /// one page.
    pub fn write(&mut self, id: PageId, kind: IoKind, data: &[u8]) -> Result<()> {
        if data.len() != PAGE_SIZE {
            return Err(Error::Internal(format!(
                "write of {} bytes is not a page",
                data.len()
            )));
        }
        if !self.exists(id) {
            return Err(Error::PageNotFound(id.0));
        }
        self.charge(id, kind);
        self.pages[id.0 as usize]
            .as_mut()
            .expect("checked above")
            .copy_from_slice(data);
        Ok(())
    }

    /// Allocates a page and writes `data` to it with one I/O of `kind`.
    pub fn append(&mut self, kind: IoKind, data: &[u8]) -> Result<PageId> {
        let id = self.allocate();
        self.write(id, kind, data)?;
        Ok(id)
    }

    /// Frees a page. Subsequent access errors. Freeing is itself free.
    pub fn free(&mut self, id: PageId) -> Result<()> {
        match self.pages.get_mut(id.0 as usize) {
            Some(slot @ Some(_)) => {
                *slot = None;
                Ok(())
            }
            _ => Err(Error::PageNotFound(id.0)),
        }
    }

    /// Direct unpriced access for checkpoint/recovery tooling that models
    /// its own I/O costs (the §5 simulators price log I/O themselves).
    pub fn peek(&self, id: PageId) -> Result<&[u8]> {
        self.pages
            .get(id.0 as usize)
            .and_then(|p| p.as_deref())
            .ok_or(Error::PageNotFound(id.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk() -> (SimDisk, Arc<CostMeter>) {
        let meter = Arc::new(CostMeter::new());
        (SimDisk::new(Arc::clone(&meter)), meter)
    }

    #[test]
    fn write_read_roundtrip() {
        let (mut d, _) = disk();
        let id = d.allocate();
        let mut page = vec![0u8; PAGE_SIZE];
        page[0] = 42;
        d.write(id, IoKind::Sequential, &page).unwrap();
        assert_eq!(d.read(id, IoKind::Sequential).unwrap()[0], 42);
    }

    #[test]
    fn io_kinds_charge_correct_counters() {
        let (mut d, m) = disk();
        let a = d.allocate();
        let page = vec![0u8; PAGE_SIZE];
        d.write(a, IoKind::Sequential, &page).unwrap();
        d.read(a, IoKind::Random).unwrap();
        let s = m.snapshot();
        assert_eq!(s.seq_ios, 1);
        assert_eq!(s.rand_ios, 1);
    }

    #[test]
    fn auto_classifies_by_adjacency() {
        let (mut d, m) = disk();
        let p0 = d.allocate();
        let p1 = d.allocate();
        let p2 = d.allocate();
        let page = vec![0u8; PAGE_SIZE];
        for p in [p0, p1, p2] {
            d.write(p, IoKind::Sequential, &page).unwrap();
        }
        m.reset();
        d.read(p0, IoKind::Auto).unwrap(); // first access: random
        d.read(p1, IoKind::Auto).unwrap(); // next page: sequential
        d.read(p1, IoKind::Auto).unwrap(); // same page: sequential
        d.read(p0, IoKind::Auto).unwrap(); // backwards: random
        d.read(p2, IoKind::Auto).unwrap(); // skip: random
        let s = m.snapshot();
        assert_eq!(s.seq_ios, 2);
        assert_eq!(s.rand_ios, 3);
    }

    #[test]
    fn missing_pages_error() {
        let (mut d, _) = disk();
        assert!(matches!(
            d.read(PageId(0), IoKind::Random),
            Err(Error::PageNotFound(0))
        ));
        let id = d.allocate();
        d.free(id).unwrap();
        assert!(d.read(id, IoKind::Random).is_err());
        assert!(d.free(id).is_err());
        assert!(!d.exists(id));
    }

    #[test]
    fn wrong_size_write_rejected() {
        let (mut d, _) = disk();
        let id = d.allocate();
        assert!(d.write(id, IoKind::Sequential, &[0u8; 10]).is_err());
    }

    #[test]
    fn peek_is_free() {
        let (mut d, m) = disk();
        let id = d.allocate();
        let baseline = m.snapshot().total_ios();
        d.peek(id).unwrap();
        assert_eq!(m.snapshot().total_ios(), baseline);
    }

    #[test]
    fn append_allocates_and_writes() {
        let (mut d, m) = disk();
        let mut page = vec![0u8; PAGE_SIZE];
        page[7] = 7;
        let id = d.append(IoKind::Sequential, &page).unwrap();
        assert_eq!(d.peek(id).unwrap()[7], 7);
        assert_eq!(m.snapshot().seq_ios, 1);
    }
}
