//! A bounded buffer pool over the simulated disk.
//!
//! §2 of the paper assumes a **random replacement** policy when deriving
//! `faults = C · (1 − |M|/S)`; that policy is provided (seeded, so runs are
//! reproducible) alongside LRU and Clock for the buffer-management
//! experiments the paper lists as future work.

use crate::disk::{IoKind, SimDisk};
use mmdb_types::{AuditViolation, Auditable, Error, PageId, Result, PAGE_SIZE};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, HashMap};

/// Page replacement policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplacementPolicy {
    /// Uniformly random victim — the §2 model's assumption.
    Random {
        /// Seed for the victim-selection stream.
        seed: u64,
    },
    /// Least-recently-used victim.
    Lru,
    /// Clock (second chance).
    Clock,
}

#[derive(Debug)]
struct Frame {
    data: Box<[u8]>,
    dirty: bool,
    pins: u32,
    lru_stamp: u64,
    referenced: bool,
}

/// Cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Requests satisfied from the pool.
    pub hits: u64,
    /// Requests that had to read from disk.
    pub faults: u64,
    /// Victims written back because they were dirty.
    pub writebacks: u64,
    /// Total evictions.
    pub evictions: u64,
}

impl PoolStats {
    /// Fault rate in `[0, 1]`; zero when no accesses happened.
    pub fn fault_rate(&self) -> f64 {
        let total = self.hits + self.faults;
        if total == 0 {
            0.0
        } else {
            self.faults as f64 / total as f64
        }
    }
}

/// A fixed-capacity page cache.
#[derive(Debug)]
pub struct BufferPool {
    capacity: usize,
    policy: ReplacementPolicy,
    frames: HashMap<u64, Frame>,
    // Random bookkeeping: resident page ids with O(1) swap-remove.
    resident: Vec<u64>,
    resident_pos: HashMap<u64, usize>,
    // LRU bookkeeping: stamp -> page id.
    lru_order: BTreeMap<u64, u64>,
    lru_counter: u64,
    // Clock bookkeeping.
    ring: Vec<u64>,
    hand: usize,
    rng: StdRng,
    stats: PoolStats,
}

impl BufferPool {
    /// A pool holding at most `capacity` pages (`|M|` in the paper).
    pub fn new(capacity: usize, policy: ReplacementPolicy) -> Self {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        let seed = match policy {
            ReplacementPolicy::Random { seed } => seed,
            _ => 0,
        };
        BufferPool {
            capacity,
            policy,
            frames: HashMap::with_capacity(capacity),
            resident: Vec::with_capacity(capacity),
            resident_pos: HashMap::with_capacity(capacity),
            lru_order: BTreeMap::new(),
            lru_counter: 0,
            ring: Vec::with_capacity(capacity),
            hand: 0,
            rng: StdRng::seed_from_u64(seed),
            stats: PoolStats::default(),
        }
    }

    /// Pool capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Pages currently resident.
    pub fn resident_count(&self) -> usize {
        self.frames.len()
    }

    /// Whether `id` is resident.
    pub fn contains(&self, id: PageId) -> bool {
        self.frames.contains_key(&id.0)
    }

    /// Cache statistics so far.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Zeroes the statistics (the cache contents are kept).
    pub fn reset_stats(&mut self) {
        self.stats = PoolStats::default();
    }

    fn touch(&mut self, id: u64) {
        let is_lru = matches!(self.policy, ReplacementPolicy::Lru);
        self.lru_counter += 1;
        let stamp = self.lru_counter;
        if let Some(f) = self.frames.get_mut(&id) {
            if is_lru {
                self.lru_order.remove(&f.lru_stamp);
                f.lru_stamp = stamp;
                self.lru_order.insert(stamp, id);
            }
            f.referenced = true;
        }
    }

    fn admit(&mut self, id: u64, frame: Frame) {
        match self.policy {
            ReplacementPolicy::Lru => {
                self.lru_order.insert(frame.lru_stamp, id);
            }
            ReplacementPolicy::Random { .. } => {
                self.resident_pos.insert(id, self.resident.len());
                self.resident.push(id);
            }
            ReplacementPolicy::Clock => {
                self.ring.push(id);
            }
        }
        self.frames.insert(id, frame);
    }

    fn remove_bookkeeping(&mut self, id: u64) {
        match self.policy {
            ReplacementPolicy::Random { .. } => {
                if let Some(pos) = self.resident_pos.remove(&id) {
                    let last = self.resident.pop().expect("resident non-empty");
                    if pos < self.resident.len() {
                        self.resident[pos] = last;
                        self.resident_pos.insert(last, pos);
                    }
                }
            }
            ReplacementPolicy::Clock => {
                if let Some(pos) = self.ring.iter().position(|&p| p == id) {
                    self.ring.remove(pos);
                    if self.hand > pos {
                        self.hand -= 1;
                    }
                    if !self.ring.is_empty() {
                        self.hand %= self.ring.len();
                    } else {
                        self.hand = 0;
                    }
                }
            }
            ReplacementPolicy::Lru => {}
        }
    }

    fn pick_victim(&mut self) -> Result<u64> {
        match self.policy {
            ReplacementPolicy::Random { .. } => {
                // Retry a bounded number of times to skip pinned frames.
                for _ in 0..self.resident.len() * 4 + 16 {
                    let idx = self.rng.gen_range(0..self.resident.len());
                    let id = self.resident[idx];
                    if self.frames[&id].pins == 0 {
                        return Ok(id);
                    }
                }
                // Fall back to a scan in case almost everything is pinned.
                self.resident
                    .iter()
                    .copied()
                    .find(|id| self.frames[id].pins == 0)
                    .ok_or(Error::OutOfMemory {
                        needed: 1,
                        available: 0,
                    })
            }
            ReplacementPolicy::Lru => self
                .lru_order
                .values()
                .copied()
                .find(|id| self.frames[id].pins == 0)
                .ok_or(Error::OutOfMemory {
                    needed: 1,
                    available: 0,
                }),
            ReplacementPolicy::Clock => {
                let n = self.ring.len();
                // Two full sweeps guarantee termination: the first clears
                // referenced bits, the second must find a victim unless all
                // frames are pinned.
                for _ in 0..2 * n {
                    let id = self.ring[self.hand];
                    let f = self.frames.get_mut(&id).expect("ring in sync");
                    if f.pins == 0 {
                        if f.referenced {
                            f.referenced = false;
                        } else {
                            return Ok(id);
                        }
                    }
                    self.hand = (self.hand + 1) % n;
                }
                Err(Error::OutOfMemory {
                    needed: 1,
                    available: 0,
                })
            }
        }
    }

    fn evict_one(&mut self, disk: &mut SimDisk) -> Result<()> {
        let victim = self.pick_victim()?;
        let frame = self.frames.remove(&victim).expect("victim resident");
        self.lru_order.remove(&frame.lru_stamp);
        self.remove_bookkeeping(victim);
        self.stats.evictions += 1;
        if frame.dirty {
            self.stats.writebacks += 1;
            disk.write(PageId(victim), IoKind::Random, &frame.data)?;
        }
        Ok(())
    }

    fn ensure_resident(&mut self, disk: &mut SimDisk, id: PageId, kind: IoKind) -> Result<()> {
        if self.frames.contains_key(&id.0) {
            self.stats.hits += 1;
            self.touch(id.0);
            return Ok(());
        }
        self.stats.faults += 1;
        while self.frames.len() >= self.capacity {
            self.evict_one(disk)?;
        }
        let mut data = vec![0u8; PAGE_SIZE].into_boxed_slice();
        disk.read_into(id, kind, &mut data)?;
        self.lru_counter += 1;
        self.admit(
            id.0,
            Frame {
                data,
                dirty: false,
                pins: 0,
                lru_stamp: self.lru_counter,
                referenced: true,
            },
        );
        Ok(())
    }

    /// Reads a page through the pool.
    pub fn get(&mut self, disk: &mut SimDisk, id: PageId, kind: IoKind) -> Result<&[u8]> {
        self.ensure_resident(disk, id, kind)?;
        Ok(&self.frames.get(&id.0).expect("just ensured").data)
    }

    /// Reads a page for modification; the frame is marked dirty and will be
    /// written back on eviction or flush.
    pub fn get_mut(&mut self, disk: &mut SimDisk, id: PageId, kind: IoKind) -> Result<&mut [u8]> {
        self.ensure_resident(disk, id, kind)?;
        let f = self.frames.get_mut(&id.0).expect("just ensured");
        f.dirty = true;
        Ok(&mut f.data)
    }

    /// Installs page contents without reading from disk (for freshly
    /// allocated pages). Marks the frame dirty.
    pub fn put(&mut self, disk: &mut SimDisk, id: PageId, data: &[u8]) -> Result<()> {
        if data.len() != PAGE_SIZE {
            return Err(Error::Internal("put of non-page-sized buffer".into()));
        }
        if let Some(f) = self.frames.get_mut(&id.0) {
            f.data.copy_from_slice(data);
            f.dirty = true;
            self.touch(id.0);
            return Ok(());
        }
        while self.frames.len() >= self.capacity {
            self.evict_one(disk)?;
        }
        self.lru_counter += 1;
        self.admit(
            id.0,
            Frame {
                data: data.to_vec().into_boxed_slice(),
                dirty: true,
                pins: 0,
                lru_stamp: self.lru_counter,
                referenced: true,
            },
        );
        Ok(())
    }

    /// Pins a resident page so it cannot be evicted.
    pub fn pin(&mut self, id: PageId) -> Result<()> {
        self.frames
            .get_mut(&id.0)
            .map(|f| f.pins += 1)
            .ok_or(Error::PageNotFound(id.0))
    }

    /// Releases one pin.
    pub fn unpin(&mut self, id: PageId) -> Result<()> {
        let f = self
            .frames
            .get_mut(&id.0)
            .ok_or(Error::PageNotFound(id.0))?;
        if f.pins == 0 {
            return Err(Error::Internal(format!("unpin of unpinned page {}", id.0)));
        }
        f.pins -= 1;
        Ok(())
    }

    /// Writes a single dirty page back to disk (keeps it resident).
    pub fn flush(&mut self, disk: &mut SimDisk, id: PageId) -> Result<()> {
        let f = self
            .frames
            .get_mut(&id.0)
            .ok_or(Error::PageNotFound(id.0))?;
        if f.dirty {
            disk.write(id, IoKind::Random, &f.data)?;
            f.dirty = false;
            self.stats.writebacks += 1;
        }
        Ok(())
    }

    /// Writes every dirty page back to disk. Returns how many were written.
    pub fn flush_all(&mut self, disk: &mut SimDisk) -> Result<usize> {
        let dirty: Vec<u64> = self
            .frames
            .iter()
            .filter(|(_, f)| f.dirty)
            .map(|(id, _)| *id)
            .collect();
        let n = dirty.len();
        for id in dirty {
            self.flush(disk, PageId(id))?;
        }
        Ok(n)
    }

    /// Ids of currently dirty resident pages (used by the §5.3 sweeping
    /// checkpointer).
    pub fn dirty_pages(&self) -> Vec<PageId> {
        let mut v: Vec<PageId> = self
            .frames
            .iter()
            .filter(|(_, f)| f.dirty)
            .map(|(id, _)| PageId(*id))
            .collect();
        v.sort_unstable();
        v
    }
}

impl Auditable for BufferPool {
    /// Verifies frame accounting: occupancy never exceeds capacity, every
    /// frame is page-sized and stamp-consistent, and the policy-specific
    /// victim bookkeeping (random residency vector, LRU order map, clock
    /// ring) describes exactly the resident frame set. The §2 fault model
    /// only holds if the pool's idea of "resident" is self-consistent.
    fn audit(&self) -> std::result::Result<(), AuditViolation> {
        const C: &str = "BufferPool";
        AuditViolation::ensure(self.frames.len() <= self.capacity, C, "capacity", || {
            format!(
                "{} frames resident, capacity {}",
                self.frames.len(),
                self.capacity
            )
        })?;
        for (id, f) in &self.frames {
            AuditViolation::ensure(f.data.len() == PAGE_SIZE, C, "frame-size", || {
                format!("page {id} frame holds {} bytes", f.data.len())
            })?;
            AuditViolation::ensure(f.lru_stamp <= self.lru_counter, C, "stamp-order", || {
                format!(
                    "page {id} stamp {} exceeds counter {}",
                    f.lru_stamp, self.lru_counter
                )
            })?;
        }
        match self.policy {
            ReplacementPolicy::Random { .. } => {
                AuditViolation::ensure(
                    self.resident.len() == self.frames.len(),
                    C,
                    "random-bookkeeping",
                    || {
                        format!(
                            "residency vector tracks {} pages, {} frames resident",
                            self.resident.len(),
                            self.frames.len()
                        )
                    },
                )?;
                for (pos, id) in self.resident.iter().enumerate() {
                    AuditViolation::ensure(
                        self.frames.contains_key(id),
                        C,
                        "random-bookkeeping",
                        || format!("residency vector lists non-resident page {id}"),
                    )?;
                    AuditViolation::ensure(
                        self.resident_pos.get(id) == Some(&pos),
                        C,
                        "random-bookkeeping",
                        || format!("page {id} at slot {pos} but position map disagrees"),
                    )?;
                }
            }
            ReplacementPolicy::Lru => {
                AuditViolation::ensure(
                    self.lru_order.len() == self.frames.len(),
                    C,
                    "lru-bookkeeping",
                    || {
                        format!(
                            "LRU order tracks {} pages, {} frames resident",
                            self.lru_order.len(),
                            self.frames.len()
                        )
                    },
                )?;
                for (stamp, id) in &self.lru_order {
                    let frame_stamp = self.frames.get(id).map(|f| f.lru_stamp);
                    AuditViolation::ensure(
                        frame_stamp == Some(*stamp),
                        C,
                        "lru-bookkeeping",
                        || {
                            format!(
                                "LRU entry ({stamp}, page {id}) but frame stamp is {frame_stamp:?}"
                            )
                        },
                    )?;
                }
            }
            ReplacementPolicy::Clock => {
                AuditViolation::ensure(
                    self.ring.len() == self.frames.len(),
                    C,
                    "clock-bookkeeping",
                    || {
                        format!(
                            "clock ring holds {} pages, {} frames resident",
                            self.ring.len(),
                            self.frames.len()
                        )
                    },
                )?;
                let mut seen = std::collections::HashSet::new();
                for id in &self.ring {
                    AuditViolation::ensure(seen.insert(*id), C, "clock-bookkeeping", || {
                        format!("page {id} appears twice in the clock ring")
                    })?;
                    AuditViolation::ensure(
                        self.frames.contains_key(id),
                        C,
                        "clock-bookkeeping",
                        || format!("clock ring lists non-resident page {id}"),
                    )?;
                }
                AuditViolation::ensure(
                    self.ring.is_empty() && self.hand == 0 || self.hand < self.ring.len(),
                    C,
                    "clock-hand",
                    || format!("hand {} outside ring of {}", self.hand, self.ring.len()),
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meter::CostMeter;
    use std::sync::Arc;

    fn setup(pages: usize) -> (SimDisk, Vec<PageId>, Arc<CostMeter>) {
        let meter = Arc::new(CostMeter::new());
        let mut disk = SimDisk::new(Arc::clone(&meter));
        let ids: Vec<PageId> = (0..pages)
            .map(|i| {
                let id = disk.allocate();
                let mut p = vec![0u8; PAGE_SIZE];
                p[0] = i as u8;
                disk.write(id, IoKind::Sequential, &p).unwrap();
                id
            })
            .collect();
        meter.reset();
        (disk, ids, meter)
    }

    #[test]
    fn hits_do_not_touch_disk() {
        let (mut disk, ids, meter) = setup(4);
        let mut pool = BufferPool::new(4, ReplacementPolicy::Lru);
        pool.get(&mut disk, ids[0], IoKind::Random).unwrap();
        let after_first = meter.snapshot().total_ios();
        pool.get(&mut disk, ids[0], IoKind::Random).unwrap();
        assert_eq!(meter.snapshot().total_ios(), after_first);
        assert_eq!(pool.stats().hits, 1);
        assert_eq!(pool.stats().faults, 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let (mut disk, ids, _) = setup(3);
        let mut pool = BufferPool::new(2, ReplacementPolicy::Lru);
        pool.get(&mut disk, ids[0], IoKind::Random).unwrap();
        pool.get(&mut disk, ids[1], IoKind::Random).unwrap();
        pool.get(&mut disk, ids[0], IoKind::Random).unwrap(); // refresh 0
        pool.get(&mut disk, ids[2], IoKind::Random).unwrap(); // evicts 1
        assert!(pool.contains(ids[0]));
        assert!(!pool.contains(ids[1]));
        assert!(pool.contains(ids[2]));
    }

    #[test]
    fn clock_gives_second_chance() {
        let (mut disk, ids, _) = setup(3);
        let mut pool = BufferPool::new(2, ReplacementPolicy::Clock);
        pool.get(&mut disk, ids[0], IoKind::Random).unwrap();
        pool.get(&mut disk, ids[1], IoKind::Random).unwrap();
        // Both referenced; the sweep clears 0 then 1, returns to 0, evicts it.
        pool.get(&mut disk, ids[2], IoKind::Random).unwrap();
        assert!(!pool.contains(ids[0]));
        assert!(pool.contains(ids[1]));
    }

    #[test]
    fn random_policy_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let (mut disk, ids, _) = setup(16);
            let mut pool = BufferPool::new(4, ReplacementPolicy::Random { seed });
            for &id in ids.iter().cycle().take(100) {
                pool.get(&mut disk, id, IoKind::Random).unwrap();
            }
            pool.stats().faults
        };
        assert_eq!(run(1), run(1));
    }

    #[test]
    fn random_policy_fault_rate_tracks_model() {
        // §2: with |M| of S pages resident and uniform access, the fault
        // probability approaches 1 − |M|/S.
        let (mut disk, ids, _) = setup(100);
        let mut pool = BufferPool::new(25, ReplacementPolicy::Random { seed: 7 });
        let mut rng = StdRng::seed_from_u64(99);
        // Warm up.
        for _ in 0..2_000 {
            let id = ids[rng.gen_range(0..ids.len())];
            pool.get(&mut disk, id, IoKind::Random).unwrap();
        }
        pool.reset_stats();
        for _ in 0..20_000 {
            let id = ids[rng.gen_range(0..ids.len())];
            pool.get(&mut disk, id, IoKind::Random).unwrap();
        }
        let rate = pool.stats().fault_rate();
        let expected = 1.0 - 25.0 / 100.0;
        assert!(
            (rate - expected).abs() < 0.05,
            "fault rate {rate} vs model {expected}"
        );
    }

    #[test]
    fn dirty_pages_written_back_on_eviction() {
        let (mut disk, ids, _) = setup(3);
        let mut pool = BufferPool::new(1, ReplacementPolicy::Lru);
        {
            let data = pool.get_mut(&mut disk, ids[0], IoKind::Random).unwrap();
            data[100] = 0xEE;
        }
        pool.get(&mut disk, ids[1], IoKind::Random).unwrap(); // evicts dirty 0
        assert_eq!(pool.stats().writebacks, 1);
        assert_eq!(disk.peek(ids[0]).unwrap()[100], 0xEE);
    }

    #[test]
    fn pinned_pages_survive_pressure() {
        let (mut disk, ids, _) = setup(5);
        let mut pool = BufferPool::new(2, ReplacementPolicy::Lru);
        pool.get(&mut disk, ids[0], IoKind::Random).unwrap();
        pool.pin(ids[0]).unwrap();
        for &id in &ids[1..] {
            pool.get(&mut disk, id, IoKind::Random).unwrap();
        }
        assert!(pool.contains(ids[0]));
        pool.unpin(ids[0]).unwrap();
        assert!(pool.unpin(ids[0]).is_err(), "double unpin must fail");
    }

    #[test]
    fn all_pinned_pool_errors_instead_of_looping() {
        let (mut disk, ids, _) = setup(3);
        let mut pool = BufferPool::new(2, ReplacementPolicy::Clock);
        pool.get(&mut disk, ids[0], IoKind::Random).unwrap();
        pool.get(&mut disk, ids[1], IoKind::Random).unwrap();
        pool.pin(ids[0]).unwrap();
        pool.pin(ids[1]).unwrap();
        assert!(pool.get(&mut disk, ids[2], IoKind::Random).is_err());
    }

    #[test]
    fn flush_all_cleans_everything() {
        let (mut disk, ids, _) = setup(4);
        let mut pool = BufferPool::new(4, ReplacementPolicy::Lru);
        for &id in &ids {
            pool.get_mut(&mut disk, id, IoKind::Random).unwrap()[0] = 9;
        }
        assert_eq!(pool.dirty_pages().len(), 4);
        assert_eq!(pool.flush_all(&mut disk).unwrap(), 4);
        assert!(pool.dirty_pages().is_empty());
        assert_eq!(pool.flush_all(&mut disk).unwrap(), 0);
    }

    #[test]
    fn put_installs_without_read() {
        let (mut disk, ids, meter) = setup(1);
        let mut pool = BufferPool::new(1, ReplacementPolicy::Lru);
        let page = vec![3u8; PAGE_SIZE];
        pool.put(&mut disk, ids[0], &page).unwrap();
        assert_eq!(meter.snapshot().total_ios(), 0, "no read I/O for put");
        assert_eq!(pool.get(&mut disk, ids[0], IoKind::Random).unwrap()[5], 3);
    }
}
