//! Binary tuple encoding used by slotted pages, spill files and the log.
//!
//! Layout: `u16` arity, then per value a 1-byte tag (`0` null, `1` int,
//! `2` float, `3` string) followed by the payload (8-byte little-endian
//! scalar, or `u16` length + UTF-8 bytes).

use bytes::{Buf, BufMut};
use mmdb_types::{Error, Result, Tuple, Value};

const TAG_NULL: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_FLOAT: u8 = 2;
const TAG_STR: u8 = 3;

/// Appends the encoding of `tuple` to `out`.
pub fn encode_into(tuple: &Tuple, out: &mut Vec<u8>) {
    out.put_u16_le(tuple.arity() as u16);
    for v in tuple.values() {
        match v {
            Value::Null => out.put_u8(TAG_NULL),
            Value::Int(i) => {
                out.put_u8(TAG_INT);
                out.put_i64_le(*i);
            }
            Value::Float(x) => {
                out.put_u8(TAG_FLOAT);
                out.put_f64_le(*x);
            }
            Value::Str(s) => {
                out.put_u8(TAG_STR);
                out.put_u16_le(s.len() as u16);
                out.put_slice(s.as_bytes());
            }
        }
    }
}

/// Encodes a tuple into a fresh buffer.
pub fn encode(tuple: &Tuple) -> Vec<u8> {
    let mut out = Vec::with_capacity(tuple.stored_width());
    encode_into(tuple, &mut out);
    out
}

/// Decodes one tuple from the front of `buf`, advancing it.
pub fn decode_from(buf: &mut &[u8]) -> Result<Tuple> {
    if buf.remaining() < 2 {
        return Err(Error::CorruptLog("truncated tuple header".into()));
    }
    let arity = buf.get_u16_le() as usize;
    let mut values = Vec::with_capacity(arity);
    for _ in 0..arity {
        if buf.remaining() < 1 {
            return Err(Error::CorruptLog("truncated value tag".into()));
        }
        let tag = buf.get_u8();
        let v = match tag {
            TAG_NULL => Value::Null,
            TAG_INT => {
                if buf.remaining() < 8 {
                    return Err(Error::CorruptLog("truncated int".into()));
                }
                Value::Int(buf.get_i64_le())
            }
            TAG_FLOAT => {
                if buf.remaining() < 8 {
                    return Err(Error::CorruptLog("truncated float".into()));
                }
                Value::Float(buf.get_f64_le())
            }
            TAG_STR => {
                if buf.remaining() < 2 {
                    return Err(Error::CorruptLog("truncated string length".into()));
                }
                let len = buf.get_u16_le() as usize;
                if buf.remaining() < len {
                    return Err(Error::CorruptLog("truncated string body".into()));
                }
                let bytes = &buf[..len];
                let s = std::str::from_utf8(bytes)
                    .map_err(|_| Error::CorruptLog("invalid utf-8 in string".into()))?
                    .to_owned();
                buf.advance(len);
                Value::Str(s)
            }
            other => {
                return Err(Error::CorruptLog(format!("unknown value tag {other}")));
            }
        };
        values.push(v);
    }
    Ok(Tuple::new(values))
}

/// Decodes a tuple that occupies the whole of `bytes`.
pub fn decode(mut bytes: &[u8]) -> Result<Tuple> {
    let t = decode_from(&mut bytes)?;
    if !bytes.is_empty() {
        return Err(Error::CorruptLog(format!(
            "{} trailing bytes after tuple",
            bytes.len()
        )));
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(t: &Tuple) {
        let enc = encode(t);
        let dec = decode(&enc).unwrap();
        assert_eq!(&dec, t);
    }

    #[test]
    fn roundtrips_all_types() {
        roundtrip(&Tuple::new(vec![]));
        roundtrip(&Tuple::new(vec![Value::Null]));
        roundtrip(&Tuple::new(vec![
            Value::Int(i64::MIN),
            Value::Int(i64::MAX),
            Value::Float(-0.0),
            Value::Float(f64::INFINITY),
            Value::Str(String::new()),
            Value::Str("héllo wörld".into()),
        ]));
    }

    #[test]
    fn rejects_truncation_at_every_length() {
        let t = Tuple::new(vec![Value::Int(77), Value::Str("abcdef".into())]);
        let enc = encode(&t);
        for cut in 0..enc.len() {
            assert!(decode(&enc[..cut]).is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut enc = encode(&Tuple::new(vec![Value::Int(1)]));
        enc.push(0xAB);
        assert!(decode(&enc).is_err());
    }

    #[test]
    fn rejects_unknown_tag() {
        let enc = vec![1u8, 0, 9]; // arity 1, tag 9
        assert!(decode(&enc).is_err());
    }

    #[test]
    fn decode_from_advances() {
        let a = Tuple::new(vec![Value::Int(1)]);
        let b = Tuple::new(vec![Value::Str("xy".into())]);
        let mut buf = encode(&a);
        buf.extend(encode(&b));
        let mut view = buf.as_slice();
        assert_eq!(decode_from(&mut view).unwrap(), a);
        assert_eq!(decode_from(&mut view).unwrap(), b);
        assert!(view.is_empty());
    }
}
