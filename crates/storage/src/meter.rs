//! The virtual cost clock.
//!
//! Every primitive operation the paper prices (Table 2) is counted here.
//! Algorithms call `charge_*` as they execute; experiments convert the
//! counters to simulated seconds with the parameter block of their choice.
//! Counters are atomic so a single meter can be shared (`Arc<CostMeter>`)
//! across operators and threads.

use mmdb_types::SystemParams;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Thread-safe counters for the six primitive operations of Table 2.
#[derive(Debug, Default)]
pub struct CostMeter {
    comparisons: AtomicU64,
    hashes: AtomicU64,
    moves: AtomicU64,
    swaps: AtomicU64,
    seq_ios: AtomicU64,
    rand_ios: AtomicU64,
}

/// A point-in-time copy of a [`CostMeter`]'s counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CostSnapshot {
    /// Key comparisons (`comp`).
    pub comparisons: u64,
    /// Key hashes (`hash`).
    pub hashes: u64,
    /// Tuple moves (`move`).
    pub moves: u64,
    /// Tuple swaps (`swap`).
    pub swaps: u64,
    /// Sequential I/O operations (`IOseq`).
    pub seq_ios: u64,
    /// Random I/O operations (`IOrand`).
    pub rand_ios: u64,
}

impl CostSnapshot {
    /// Simulated elapsed seconds under the given parameters. The paper
    /// assumes no CPU/I/O overlap (§3.2), so contributions sum.
    pub fn seconds(&self, p: &SystemParams) -> f64 {
        self.comparisons as f64 * p.comp()
            + self.hashes as f64 * p.hash()
            + self.moves as f64 * p.mv()
            + self.swaps as f64 * p.swap()
            + self.seq_ios as f64 * p.io_seq()
            + self.rand_ios as f64 * p.io_rand()
    }

    /// Total I/O operations of either kind.
    pub fn total_ios(&self) -> u64 {
        self.seq_ios + self.rand_ios
    }

    /// CPU-only seconds (everything but the I/O terms).
    pub fn cpu_seconds(&self, p: &SystemParams) -> f64 {
        self.comparisons as f64 * p.comp()
            + self.hashes as f64 * p.hash()
            + self.moves as f64 * p.mv()
            + self.swaps as f64 * p.swap()
    }

    /// Counter-wise difference `self - earlier`; saturates at zero.
    pub fn delta_since(&self, earlier: &CostSnapshot) -> CostSnapshot {
        CostSnapshot {
            comparisons: self.comparisons.saturating_sub(earlier.comparisons),
            hashes: self.hashes.saturating_sub(earlier.hashes),
            moves: self.moves.saturating_sub(earlier.moves),
            swaps: self.swaps.saturating_sub(earlier.swaps),
            seq_ios: self.seq_ios.saturating_sub(earlier.seq_ios),
            rand_ios: self.rand_ios.saturating_sub(earlier.rand_ios),
        }
    }
}

impl CostMeter {
    /// A fresh meter with zeroed counters.
    pub fn new() -> Self {
        CostMeter::default()
    }

    /// Charges `n` key comparisons.
    #[inline]
    pub fn charge_comparisons(&self, n: u64) {
        // ordering: model-cost tallies are independent monotone counters
        // read only by `snapshot`; no cross-counter consistency needed.
        self.comparisons.fetch_add(n, Ordering::Relaxed);
    }

    /// Charges `n` key hashes.
    #[inline]
    pub fn charge_hashes(&self, n: u64) {
        // ordering: independent cost tally (see `charge_comparisons`).
        self.hashes.fetch_add(n, Ordering::Relaxed);
    }

    /// Charges `n` tuple moves.
    #[inline]
    pub fn charge_moves(&self, n: u64) {
        // ordering: independent cost tally (see `charge_comparisons`).
        self.moves.fetch_add(n, Ordering::Relaxed);
    }

    /// Charges `n` tuple swaps.
    #[inline]
    pub fn charge_swaps(&self, n: u64) {
        // ordering: independent cost tally (see `charge_comparisons`).
        self.swaps.fetch_add(n, Ordering::Relaxed);
    }

    /// Charges `n` sequential I/O operations.
    #[inline]
    pub fn charge_seq_ios(&self, n: u64) {
        // ordering: independent cost tally (see `charge_comparisons`).
        self.seq_ios.fetch_add(n, Ordering::Relaxed);
    }

    /// Charges `n` random I/O operations.
    #[inline]
    pub fn charge_rand_ios(&self, n: u64) {
        // ordering: independent cost tally (see `charge_comparisons`).
        self.rand_ios.fetch_add(n, Ordering::Relaxed);
    }

    /// Copies out the counters.
    pub fn snapshot(&self) -> CostSnapshot {
        CostSnapshot {
            // ordering: the copy is advisory — charges racing a snapshot
            // land in the next one; fields need not be mutually atomic.
            comparisons: self.comparisons.load(Ordering::Relaxed),
            hashes: self.hashes.load(Ordering::Relaxed),
            moves: self.moves.load(Ordering::Relaxed),
            swaps: self.swaps.load(Ordering::Relaxed),
            seq_ios: self.seq_ios.load(Ordering::Relaxed),
            rand_ios: self.rand_ios.load(Ordering::Relaxed),
        }
    }

    /// Zeroes every counter.
    pub fn reset(&self) {
        // ordering: reset races an in-flight charge only in tests that
        // reuse a meter; losing such a charge is acceptable there.
        self.comparisons.store(0, Ordering::Relaxed);
        self.hashes.store(0, Ordering::Relaxed);
        self.moves.store(0, Ordering::Relaxed);
        self.swaps.store(0, Ordering::Relaxed);
        self.seq_ios.store(0, Ordering::Relaxed);
        self.rand_ios.store(0, Ordering::Relaxed);
    }

    /// Simulated elapsed seconds under `p` for the current counters.
    pub fn seconds(&self, p: &SystemParams) -> f64 {
        self.snapshot().seconds(p)
    }

    /// Bridges this meter's six Table 2 counters into an
    /// [`mmdb_obs::Registry`] as live callback metrics, so virtual-clock
    /// benches and the wall-clock session engine share one snapshot and
    /// exposition format. The registry reads the meter's atomics at
    /// snapshot/render time — nothing is copied, and `reset` shows
    /// through (the exposition is a window onto the meter, not a log).
    pub fn register_into(self: &Arc<CostMeter>, registry: &mmdb_obs::Registry) {
        type Row = (&'static str, &'static str, fn(&CostSnapshot) -> u64);
        let pairs: [Row; 6] = [
            (
                "mmdb_cost_comparisons_total",
                "Key comparisons charged (Table 2 `comp`)",
                |s| s.comparisons,
            ),
            (
                "mmdb_cost_hashes_total",
                "Key hashes charged (Table 2 `hash`)",
                |s| s.hashes,
            ),
            (
                "mmdb_cost_moves_total",
                "Tuple moves charged (Table 2 `move`)",
                |s| s.moves,
            ),
            (
                "mmdb_cost_swaps_total",
                "Tuple swaps charged (Table 2 `swap`)",
                |s| s.swaps,
            ),
            (
                "mmdb_cost_seq_ios_total",
                "Sequential I/O operations charged (Table 2 `IOseq`)",
                |s| s.seq_ios,
            ),
            (
                "mmdb_cost_rand_ios_total",
                "Random I/O operations charged (Table 2 `IOrand`)",
                |s| s.rand_ios,
            ),
        ];
        for (name, help, field) in pairs {
            let meter = Arc::clone(self);
            registry.counter_fn(name, help, move || field(&meter.snapshot()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate() {
        let m = CostMeter::new();
        m.charge_comparisons(3);
        m.charge_comparisons(2);
        m.charge_seq_ios(7);
        let s = m.snapshot();
        assert_eq!(s.comparisons, 5);
        assert_eq!(s.seq_ios, 7);
        assert_eq!(s.total_ios(), 7);
    }

    #[test]
    fn seconds_match_table2_arithmetic() {
        let m = CostMeter::new();
        m.charge_comparisons(1_000_000); // 3 s at 3 µs each
        m.charge_rand_ios(40); // 1 s at 25 ms each
        let p = SystemParams::table2();
        let secs = m.seconds(&p);
        assert!((secs - 4.0).abs() < 1e-9, "got {secs}");
        assert!((m.snapshot().cpu_seconds(&p) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn reset_zeroes() {
        let m = CostMeter::new();
        m.charge_moves(10);
        m.reset();
        assert_eq!(m.snapshot(), CostSnapshot::default());
    }

    #[test]
    fn delta_since() {
        let m = CostMeter::new();
        m.charge_hashes(4);
        let before = m.snapshot();
        m.charge_hashes(6);
        m.charge_swaps(2);
        let d = m.snapshot().delta_since(&before);
        assert_eq!(d.hashes, 6);
        assert_eq!(d.swaps, 2);
        assert_eq!(d.comparisons, 0);
    }

    #[test]
    fn registers_live_callbacks_into_obs() {
        use std::sync::Arc;
        let m = Arc::new(CostMeter::new());
        let registry = mmdb_obs::Registry::new();
        m.register_into(&registry);
        m.charge_comparisons(5);
        m.charge_rand_ios(2);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("mmdb_cost_comparisons_total"), Some(5));
        assert_eq!(snap.counter("mmdb_cost_rand_ios_total"), Some(2));
        assert_eq!(snap.counter("mmdb_cost_swaps_total"), Some(0));
        // Live view: later charges show in later snapshots, and reset
        // shows through.
        m.charge_comparisons(1);
        assert_eq!(
            registry.snapshot().counter("mmdb_cost_comparisons_total"),
            Some(6)
        );
        m.reset();
        assert_eq!(
            registry.snapshot().counter("mmdb_cost_comparisons_total"),
            Some(0)
        );
        assert!(registry.hygiene_violations().is_empty());
        assert!(registry
            .render_text()
            .contains("# TYPE mmdb_cost_seq_ios_total counter"));
    }

    #[test]
    fn shared_across_threads() {
        use std::sync::Arc;
        let m = Arc::new(CostMeter::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        m.charge_comparisons(1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.snapshot().comparisons, 4000);
    }
}
