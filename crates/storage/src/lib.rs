#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Paged storage substrate for the mmdb workspace.
//!
//! The paper's experiments run against 1984 disk hardware; this crate
//! substitutes a **simulated disk**: pages live in process memory and every
//! transfer is charged against a virtual [`CostMeter`] using the Table 2
//! operation times, so experiments measure the paper's cost model rather
//! than the host machine's SSD.
//!
//! Components:
//!
//! * [`CostMeter`] — thread-safe counters for the six primitive operations
//!   (`comp`, `hash`, `move`, `swap`, `IOseq`, `IOrand`) convertible to
//!   simulated seconds.
//! * [`SlottedPage`] — a real slotted-page layout over a 4 KB buffer.
//! * [`SimDisk`] — the page store, charging sequential or random I/O.
//! * [`BufferPool`] — bounded page cache with Random (the §2 assumption),
//!   LRU and Clock replacement.
//! * [`HeapFile`] — relations as unordered collections of slotted pages.
//! * [`MemRelation`] — a fully memory-resident relation with a paged view,
//!   the substrate the §3 join algorithms execute against.

pub mod buffer;
pub mod disk;
pub mod heap;
pub mod mem;
pub mod meter;
pub mod page;
pub mod tuple_codec;

pub use buffer::{BufferPool, ReplacementPolicy};
pub use disk::{IoKind, SimDisk};
pub use heap::HeapFile;
pub use mem::MemRelation;
pub use meter::{CostMeter, CostSnapshot};
pub use page::SlottedPage;
