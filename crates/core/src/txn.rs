//! The transactional store: the engine's §5 durability subsystem.
//!
//! The paper studies recovery for a *memory-resident* database processing
//! short banking-style transactions. [`TransactionalStore`] is that
//! subsystem surfaced through the engine: a durable key–value store of
//! account-style integers with the full §5 machinery (group commit,
//! pre-committed transactions, partitioned logs, stable memory,
//! checkpoints, crash/restart). It re-exports the recovery crate's manager
//! under an engine-flavoured API and adds the banking workload helper the
//! paper's arithmetic is based on.

pub use mmdb_recovery::manager::{CommitMode, RecoveryReport};
use mmdb_recovery::manager::{CrashImage, RecoveryManager, TxnHandle};
use mmdb_types::Result;

/// A durable, memory-resident transactional KV store.
#[derive(Debug)]
pub struct TransactionalStore {
    inner: RecoveryManager,
}

impl TransactionalStore {
    /// A store under the given §5 commit mode.
    pub fn new(mode: CommitMode) -> Self {
        TransactionalStore {
            inner: RecoveryManager::new(mode),
        }
    }

    /// Reads an account balance.
    pub fn read(&self, key: u64) -> Option<i64> {
        self.inner.read(key)
    }

    /// Runs one §5.1 "typical" banking transaction: debit `from`, credit
    /// `to`, each update logged at the paper's 400-byte volume (split
    /// across the two updates). Returns the transaction's durability time
    /// in virtual microseconds.
    pub fn transfer(&mut self, from: u64, to: u64, amount: i64) -> Result<u64> {
        let txn = self.inner.begin();
        if from == to {
            // A self-transfer is a net no-op — but still a real, logged
            // transaction (reading both balances up front would otherwise
            // lose the amount).
            let balance = self.inner.read(from).unwrap_or(0);
            self.inner.write_typical(&txn, from, balance)?;
            self.inner.write_typical(&txn, to, balance)?;
            return self.inner.commit(txn);
        }
        let from_balance = self.inner.read(from).unwrap_or(0);
        let to_balance = self.inner.read(to).unwrap_or(0);
        self.inner
            .write_typical(&txn, from, from_balance - amount)?;
        self.inner.write_typical(&txn, to, to_balance + amount)?;
        self.inner.commit(txn)
    }

    /// Begins a raw transaction.
    pub fn begin(&mut self) -> TxnHandle {
        self.inner.begin()
    }

    /// Writes under a transaction.
    pub fn write(&mut self, txn: &TxnHandle, key: u64, value: i64) -> Result<()> {
        self.inner.write(txn, key, value)
    }

    /// Commits; returns the durability time (µs, virtual).
    pub fn commit(&mut self, txn: TxnHandle) -> Result<u64> {
        self.inner.commit(txn)
    }

    /// Aborts, rolling the transaction's effects back.
    pub fn abort(&mut self, txn: TxnHandle) -> Result<()> {
        self.inner.abort(txn)
    }

    /// Forces buffered commit records to the log (the group-commit
    /// timeout) and waits — advances virtual time — until the write
    /// completes, so everything committed so far is durable on return.
    pub fn flush(&mut self) {
        if let Some(t) = self.inner.flush() {
            let now = self.inner.now();
            self.inner.advance(t.saturating_sub(now));
        }
    }

    /// §5.3: sweeps up to `max_pages` dirty pages to the disk snapshot.
    pub fn checkpoint(&mut self, max_pages: usize) -> usize {
        self.inner.checkpoint_sweep(max_pages)
    }

    /// Log pages written so far.
    pub fn log_pages_written(&self) -> usize {
        self.inner.log_pages_written()
    }

    /// Current virtual time.
    pub fn now(&self) -> u64 {
        self.inner.now()
    }

    /// Simulates a crash, losing all volatile state.
    pub fn crash(self) -> CrashImage {
        self.inner.crash()
    }

    /// Restart recovery from a crash image.
    pub fn recover(image: CrashImage) -> (TransactionalStore, RecoveryReport) {
        let (inner, report) = RecoveryManager::recover(image);
        (TransactionalStore { inner }, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfers_preserve_total_balance_across_crash() {
        let mut store = TransactionalStore::new(CommitMode::GroupCommit);
        // Seed accounts.
        let seed = store.begin();
        for acct in 0..10u64 {
            store.write(&seed, acct, 1_000).unwrap();
        }
        store.commit(seed).unwrap();
        store.flush();
        // Random-ish committed transfers.
        for i in 0..50u64 {
            store.transfer(i % 10, (i + 3) % 10, 10).unwrap();
        }
        store.flush();
        // One in-flight transfer that must not survive.
        let t = store.begin();
        store.write(&t, 0, -999_999).unwrap();
        let (recovered, report) = TransactionalStore::recover(store.crash());
        let total: i64 = (0..10).map(|a| recovered.read(a).unwrap()).sum();
        assert_eq!(total, 10_000, "money is conserved");
        assert_ne!(recovered.read(0), Some(-999_999));
        assert_eq!(report.committed.len(), 51);
    }

    #[test]
    fn transfer_is_typical_sized() {
        // Two 400-byte-class updates per transfer: ~5 transfers per log
        // page rather than 10 single-update transactions.
        let mut store = TransactionalStore::new(CommitMode::GroupCommit);
        for i in 0..25 {
            store.transfer(i, i + 100, 1).unwrap();
        }
        store.flush();
        assert!(store.log_pages_written() >= 2);
    }

    #[test]
    fn abort_rolls_back() {
        let mut store = TransactionalStore::new(CommitMode::Synchronous);
        let t0 = store.begin();
        store.write(&t0, 1, 500).unwrap();
        store.commit(t0).unwrap();
        let t = store.begin();
        store.write(&t, 1, 999).unwrap();
        assert_eq!(store.read(1), Some(999));
        store.abort(t).unwrap();
        assert_eq!(store.read(1), Some(500));
    }

    #[test]
    fn checkpoint_then_recover() {
        let mut store = TransactionalStore::new(CommitMode::StableMemory {
            capacity_bytes: 1 << 20,
        });
        for i in 0..20u64 {
            store.transfer(i, i + 1, 5).unwrap();
        }
        let swept = store.checkpoint(1_000);
        assert!(swept > 0);
        let (recovered, report) = TransactionalStore::recover(store.crash());
        assert_eq!(report.committed.len(), 20);
        assert_eq!(recovered.read(0), Some(-5));
    }
}
